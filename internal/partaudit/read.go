package partaudit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Log is a fully parsed audit log, in record order within each kind.
type Log struct {
	Header    *Header
	Decisions []Decision
	Windows   []Window
	Merges    []Merge
	Layers    []LayerRecord
	Final     *Final
	// Truncated reports a torn final line (the audited run crashed
	// mid-write); the parsed prefix is complete and usable, mirroring
	// traceview.Trace.Truncated.
	Truncated bool
}

// DecisionsFor returns every sampled decision for the given vertex, in
// layer/stream order.
func (l *Log) DecisionsFor(vertex int) []Decision {
	var out []Decision
	for _, d := range l.Decisions {
		if d.Vertex == vertex {
			out = append(out, d)
		}
	}
	return out
}

// LastWindow returns the final window of the given layer's stream (ok =
// false if that layer emitted none).
func (l *Log) LastWindow(layer int) (Window, bool) {
	for i := len(l.Windows) - 1; i >= 0; i-- {
		if l.Windows[i].Layer == layer {
			return l.Windows[i], true
		}
	}
	return Window{}, false
}

// PieceToPart returns the final piece→part mapping of the given layer
// (-1 = dissolved into the next layer), reconstructed from the layer's
// group records.
func (l *Log) PieceToPart(layer int) ([]int, bool) {
	for _, lr := range l.Layers {
		if lr.Layer != layer {
			continue
		}
		if lr.Pieces < 0 {
			// Malformed record (hand-edited or fuzzed log); there is no
			// mapping to reconstruct.
			return nil, false
		}
		m := make([]int, lr.Pieces)
		for i := range m {
			m[i] = -1
		}
		for _, grp := range lr.Groups {
			for _, p := range grp.Pieces {
				if p >= 0 && p < len(m) {
					m[p] = grp.Final
				}
			}
		}
		return m, true
	}
	return nil, false
}

// maxLine bounds one audit line; the widest real lines are decision
// records whose candidate table is bounded by the piece count.
const maxLine = 16 << 20

// ReadLog parses a JSONL audit log. Like traceview.Read, a damaged or
// incomplete final line (a run that crashed mid-write) is tolerated and
// flagged via Log.Truncated; damage anywhere earlier is a hard error,
// since silently skipping interior records would skew the timeline.
func ReadLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	log := &Log{}
	type bad struct {
		line int
		err  error
	}
	var pending *bad
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pending != nil {
			return nil, fmt.Errorf("partaudit: line %d: %w (not the final line, refusing to skip)", pending.line, pending.err)
		}
		if err := log.parseLine(line); err != nil {
			pending = &bad{lineNo, err}
			continue
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("partaudit: read: %w", err)
	}
	if pending != nil {
		// A torn tail is only tolerable when it follows a usable prefix; if
		// the very first line is garbage the file is not an audit log at
		// all, and "empty but truncated" would hide that from callers.
		if log.empty() {
			return nil, fmt.Errorf("partaudit: line %d: %w (no valid audit records precede it)", pending.line, pending.err)
		}
		log.Truncated = true
	}
	return log, nil
}

// empty reports whether not a single usable record was parsed.
func (l *Log) empty() bool {
	return l.Header == nil && l.Final == nil &&
		len(l.Decisions) == 0 && len(l.Windows) == 0 &&
		len(l.Merges) == 0 && len(l.Layers) == 0
}

// ReadLogFile parses the audit log at path.
func ReadLogFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := ReadLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

func (l *Log) parseLine(line string) error {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(line), &probe); err != nil {
		return err
	}
	switch probe.Type {
	case "audit_header":
		var h Header
		if err := json.Unmarshal([]byte(line), &h); err != nil {
			return err
		}
		if h.Version != Version {
			return fmt.Errorf("unsupported audit schema version %d (reader supports %d)", h.Version, Version)
		}
		if l.Header == nil {
			l.Header = &h
		}
	case "decision":
		var d Decision
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return err
		}
		l.Decisions = append(l.Decisions, d)
	case "window":
		var w Window
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			return err
		}
		l.Windows = append(l.Windows, w)
	case "combine":
		var m Merge
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return err
		}
		l.Merges = append(l.Merges, m)
	case "layer":
		var lr LayerRecord
		if err := json.Unmarshal([]byte(line), &lr); err != nil {
			return err
		}
		l.Layers = append(l.Layers, lr)
	case "final":
		var f Final
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return err
		}
		l.Final = &f
	case "error":
		// A degraded unencodable record; nothing to recover.
	default:
		return fmt.Errorf("unknown audit record type %q", probe.Type)
	}
	return nil
}

package partaudit

import (
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// StreamRecorder audits one streaming pass: it samples placement
// decisions and maintains the windowed quality timeline. It is created
// per stream via Auditor.Stream and is not safe for concurrent use — the
// streaming loop it instruments is sequential by construction.
//
// A nil *StreamRecorder is a valid no-op on every method, so the
// streaming engine carries one unconditionally.
type StreamRecorder struct {
	a     *Auditor
	layer int
	g     *graph.Graph
	in    *graph.Graph // transpose of g; arcs arriving at v

	placed    int
	windowIdx int
	pieceV    []int
	pieceE    []int
	// resolved/cut count arcs whose both endpoints are placed; at the end
	// of a full-graph stream resolved == |E| and cut == CountCrossEdges.
	resolved int
	cut      int

	dec Decision // scratch reused across sampled placements
}

// Stream starts auditing one streaming pass over k pieces. layer is the
// BPart over-split layer (0 for single-phase schemes). in must be the
// transpose of g or nil, in which case it is built here; the cut timeline
// needs arcs in both directions to resolve each arc exactly once, when
// its second endpoint is placed.
func (a *Auditor) Stream(layer int, g *graph.Graph, in *graph.Graph, k int) *StreamRecorder {
	if a == nil {
		return nil
	}
	if in == nil {
		in = g.Transpose()
	}
	return &StreamRecorder{
		a:      a,
		layer:  layer,
		g:      g,
		in:     in,
		pieceV: make([]int, k),
		pieceE: make([]int, k),
	}
}

// SampleDecision returns a Decision scratch when this placement is
// sampled — every cfg.SampleEvery-th position of the stream, plus every
// vertex at or above the hub out-degree threshold — and nil otherwise.
// The caller fills the score table via Decision.Candidate and hands the
// scratch back to Place.
func (r *StreamRecorder) SampleDecision(v graph.VertexID, degree int) *Decision {
	if r == nil {
		return nil
	}
	if r.placed%r.a.cfg.SampleEvery != 0 && degree < r.a.hubDeg {
		return nil
	}
	d := &r.dec
	d.Type = "decision"
	d.Layer = r.layer
	d.Pos = r.placed
	d.Vertex = int(v)
	d.Degree = degree
	d.Piece = -1
	d.Cause = ""
	d.RunnerUp = -1
	d.Gap = 0
	d.Cands = d.Cands[:0]
	return d
}

// Place records that v (with the given out-degree) was assigned to piece.
// cause is one of the Cause* constants; dec is the scratch returned by
// SampleDecision for this vertex (nil when the placement was not
// sampled); parts is the assignment-so-far (parts[v] already set), used
// for incremental cut accounting. Cost is O(deg(v)) per placement.
func (r *StreamRecorder) Place(v graph.VertexID, degree, piece int, cause string, dec *Decision, parts []int) {
	if r == nil {
		return
	}
	if dec != nil {
		dec.Piece = piece
		dec.Cause = cause
		dec.RunnerUp, dec.Gap = runnerUp(dec.Cands, piece)
		r.a.emit(*dec)
	}
	r.pieceV[piece]++
	r.pieceE[piece] += degree
	// An arc is resolved when its second endpoint is placed: outgoing
	// arcs whose target is already placed, plus incoming arcs whose
	// source is already placed. Self-loops resolve in the out-scan alone
	// (parts[v] is already set), so the in-scan skips them.
	for _, u := range r.g.Neighbors(v) {
		if p := parts[u]; p >= 0 {
			r.resolved++
			if p != piece {
				r.cut++
			}
		}
	}
	for _, u := range r.in.Neighbors(v) {
		if u == v {
			continue
		}
		if p := parts[u]; p >= 0 {
			r.resolved++
			if p != piece {
				r.cut++
			}
		}
	}
	r.placed++
	if r.placed%r.a.cfg.Window == 0 {
		r.emitWindow()
	}
}

// End closes the stream's timeline, emitting the trailing partial window
// (the final snapshot, when the stream length is not a multiple of the
// window size).
func (r *StreamRecorder) End() {
	if r == nil {
		return
	}
	if r.placed == 0 || r.placed%r.a.cfg.Window != 0 {
		r.emitWindow()
	}
}

func (r *StreamRecorder) emitWindow() {
	cutRatio := 0.0
	if r.resolved > 0 {
		cutRatio = float64(r.cut) / float64(r.resolved)
	}
	r.a.emit(Window{
		Type:         "window",
		Layer:        r.layer,
		Index:        r.windowIdx,
		Placed:       r.placed,
		PieceV:       append([]int(nil), r.pieceV...),
		PieceE:       append([]int(nil), r.pieceE...),
		VBias:        metrics.Bias(r.pieceV),
		EBias:        metrics.Bias(r.pieceE),
		CutRatio:     cutRatio,
		ResolvedArcs: r.resolved,
		CutArcs:      r.cut,
	})
	r.windowIdx++
}

// runnerUp returns the best-scoring eligible candidate other than chosen,
// and the score gap to it.
func runnerUp(cands []Candidate, chosen int) (piece int, gap float64) {
	var chosenScore float64
	haveChosen := false
	for _, c := range cands {
		if c.Piece == chosen {
			chosenScore = c.Score
			haveChosen = true
			break
		}
	}
	best := -1
	var bestScore float64
	for _, c := range cands {
		if c.Piece == chosen || c.Skip != "" {
			continue
		}
		if best == -1 || c.Score > bestScore {
			best, bestScore = c.Piece, c.Score
		}
	}
	if best == -1 || !haveChosen {
		return -1, 0
	}
	return best, chosenScore - bestScore
}

// Integration tests for the audit acceptance guarantees, in an external
// test package: core and partition import partaudit, so these tests must
// sit outside the package to avoid an import cycle.
package partaudit_test

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"

	"bpart/internal/core"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partaudit"
	"bpart/internal/partition"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 4000, AvgDegree: 12, Skew: 0.75, Locality: 0.5, Window: 128, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// auditedRun attaches a fresh Auditor to p, partitions, and returns the
// parsed log plus the assignment.
func auditedRun(t *testing.T, p partition.Partitioner, g *graph.Graph, k int, cfg partaudit.Config) (*partaudit.Log, *partition.Assignment) {
	t.Helper()
	var buf bytes.Buffer
	aud, err := partaudit.New(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := p.(partaudit.Auditable)
	if !ok {
		t.Fatalf("%s does not implement partaudit.Auditable", p.Name())
	}
	a.SetAudit(aud)
	res, err := p.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := partaudit.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return log, res
}

// The final window of a full-graph stream must reproduce Evaluate's Report
// exactly: same per-piece sizes, same biases, same cut ratio (acceptance).
func TestFennelTimelineFinalWindowEqualsReport(t *testing.T) {
	g := testGraph(t)
	const k = 8
	log, a := auditedRun(t, &partition.Fennel{}, g, k, partaudit.Config{Window: 512})

	h := log.Header
	if h == nil || h.Scheme != "Fennel" || h.K != k || h.Vertices != g.NumVertices() || h.Edges != g.NumEdges() {
		t.Fatalf("header = %+v", h)
	}

	rep := metrics.NewReport(g, a.Parts, k, false)
	win, ok := log.LastWindow(0)
	if !ok {
		t.Fatal("no layer-0 windows")
	}
	if win.Placed != g.NumVertices() {
		t.Fatalf("final window placed %d, graph has %d vertices", win.Placed, g.NumVertices())
	}
	if win.ResolvedArcs != g.NumEdges() {
		t.Fatalf("final window resolved %d arcs, graph has %d", win.ResolvedArcs, g.NumEdges())
	}
	for i := 0; i < k; i++ {
		if win.PieceV[i] != rep.Vertices[i] || win.PieceE[i] != rep.Edges[i] {
			t.Fatalf("piece %d: window (%d,%d), report (%d,%d)",
				i, win.PieceV[i], win.PieceE[i], rep.Vertices[i], rep.Edges[i])
		}
	}
	if win.VBias != rep.VertexBias || win.EBias != rep.EdgeBias || win.CutRatio != rep.CutRatio {
		t.Fatalf("window (%v,%v,%v) != report (%v,%v,%v)",
			win.VBias, win.EBias, win.CutRatio, rep.VertexBias, rep.EdgeBias, rep.CutRatio)
	}
	f := log.Final
	if f == nil {
		t.Fatal("no final record")
	}
	if f.VBias != rep.VertexBias || f.EBias != rep.EdgeBias || f.CutRatio != rep.CutRatio {
		t.Fatalf("final record (%v,%v,%v) != report (%v,%v,%v)",
			f.VBias, f.EBias, f.CutRatio, rep.VertexBias, rep.EdgeBias, rep.CutRatio)
	}
}

// Every sampled decision's chosen piece must (a) match the piece the
// assignment actually holds and (b) be the argmax of its own score table
// (acceptance: explain matches the assignment).
func TestDecisionsMatchAssignment(t *testing.T) {
	g := testGraph(t)
	const k = 8
	for _, p := range []partition.Partitioner{&partition.Fennel{}, &partition.LDG{}} {
		log, a := auditedRun(t, p, g, k, partaudit.Config{})
		if len(log.Decisions) == 0 {
			t.Fatalf("%s: no sampled decisions", p.Name())
		}
		for _, d := range log.Decisions {
			if got := a.Parts[d.Vertex]; got != d.Piece {
				t.Fatalf("%s: vertex %d audited onto piece %d, assignment has %d",
					p.Name(), d.Vertex, d.Piece, got)
			}
			chosen, ok := d.Chosen()
			if d.Cause == partaudit.CauseFallback {
				continue // every part was at capacity; no eligible argmax
			}
			if !ok {
				t.Fatalf("%s: vertex %d: chosen piece %d missing from score table %+v",
					p.Name(), d.Vertex, d.Piece, d.Cands)
			}
			if chosen.Skip != "" {
				t.Fatalf("%s: vertex %d placed on a skipped piece: %+v", p.Name(), d.Vertex, chosen)
			}
			for _, c := range d.Cands {
				if c.Skip != "" || c.Piece == d.Piece {
					continue
				}
				if c.Score > chosen.Score && !metrics.TieEq(c.Score, chosen.Score) {
					t.Fatalf("%s: vertex %d (%s): piece %d scored %v, beats chosen piece %d at %v",
						p.Name(), d.Vertex, d.Cause, c.Piece, c.Score, d.Piece, chosen.Score)
				}
			}
			if d.RunnerUp >= 0 && d.Gap < 0 && d.Cause == partaudit.CauseGreedy {
				t.Fatalf("%s: vertex %d: greedy placement with negative runner-up gap %v",
					p.Name(), d.Vertex, d.Gap)
			}
		}
	}
}

// The BPart final record must equal Evaluate's Report after the JSON
// round-trip (acceptance), and the predicted sizes must cover every part.
func TestBPartFinalEqualsReport(t *testing.T) {
	g := testGraph(t)
	const k = 8
	b, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	log, a := auditedRun(t, b, g, k, partaudit.Config{})
	rep := metrics.NewReport(g, a.Parts, k, false)
	f := log.Final
	if f == nil {
		t.Fatal("no final record")
	}
	if f.K != k || f.VBias != rep.VertexBias || f.EBias != rep.EdgeBias || f.CutRatio != rep.CutRatio {
		t.Fatalf("final = %+v, report = %+v", f, rep)
	}
	for i := 0; i < k; i++ {
		if f.V[i] != rep.Vertices[i] || f.E[i] != rep.Edges[i] {
			t.Fatalf("part %d: final (%d,%d), report (%d,%d)", i, f.V[i], f.E[i], rep.Vertices[i], rep.Edges[i])
		}
	}
	if len(f.PredictedV) != k || len(f.PredictedE) != k {
		t.Fatalf("predicted sizes: %d/%d entries, want %d", len(f.PredictedV), len(f.PredictedE), k)
	}
	for i := 0; i < k; i++ {
		if f.PredictedV[i] <= 0 {
			t.Fatalf("part %d predicted empty at freeze time: %v", i, f.PredictedV)
		}
	}
}

// The combining audit tree must reproduce the piece→part mapping: replaying
// the merge records from singleton pieces yields exactly the layer's group
// records, frozen group ids cover 0..k-1 once, and with refinement disabled
// the predicted per-part sizes equal the actual ones (acceptance).
func TestBPartCombineTreeReproducesMapping(t *testing.T) {
	g := testGraph(t)
	const k = 8
	cfg := core.Default()
	cfg.DisableRefine = true
	b, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := auditedRun(t, b, g, k, partaudit.Config{})
	if len(log.Layers) == 0 {
		t.Fatal("no layer records")
	}

	finalSeen := map[int]bool{}
	for _, lr := range log.Layers {
		// Replay this layer's merges from singleton piece groups.
		groups := map[string]int{}
		for p := 0; p < lr.Pieces; p++ {
			groups[groupKey([]int{p})]++
		}
		for _, m := range log.Merges {
			if m.Layer != lr.Layer {
				continue
			}
			ka, kb := groupKey(m.APieces), groupKey(m.BPieces)
			if groups[ka] == 0 || groups[kb] == 0 {
				t.Fatalf("layer %d: merge of unknown groups %v + %v", lr.Layer, m.APieces, m.BPieces)
			}
			groups[ka]--
			groups[kb]--
			groups[groupKey(append(append([]int(nil), m.APieces...), m.BPieces...))]++
		}
		for _, grp := range lr.Groups {
			key := groupKey(grp.Pieces)
			if groups[key] == 0 {
				t.Fatalf("layer %d: group %v not reproduced by the merge records", lr.Layer, grp.Pieces)
			}
			groups[key]--
			if grp.Final >= 0 {
				if finalSeen[grp.Final] {
					t.Fatalf("part %d frozen twice", grp.Final)
				}
				finalSeen[grp.Final] = true
			}
		}
		for key, n := range groups {
			if n != 0 {
				t.Fatalf("layer %d: replay left group %s unaccounted (%d)", lr.Layer, key, n)
			}
		}

		// PieceToPart must agree with the group records it derives from.
		m, ok := log.PieceToPart(lr.Layer)
		if !ok {
			t.Fatalf("PieceToPart(%d) missing", lr.Layer)
		}
		for _, grp := range lr.Groups {
			for _, p := range grp.Pieces {
				if m[p] != grp.Final {
					t.Fatalf("layer %d piece %d maps to %d, group says %d", lr.Layer, p, m[p], grp.Final)
				}
			}
		}
	}
	for part := 0; part < k; part++ {
		if !finalSeen[part] {
			t.Fatalf("part %d never frozen across %d layers", part, len(log.Layers))
		}
	}

	// Without refinement, the sizes predicted at freeze time are the actual
	// final sizes.
	f := log.Final
	if f == nil {
		t.Fatal("no final record")
	}
	if f.RefineMoves != 0 {
		t.Fatalf("refine disabled but %d moves recorded", f.RefineMoves)
	}
	for i := 0; i < k; i++ {
		if f.PredictedV[i] != f.V[i] || f.PredictedE[i] != f.E[i] {
			t.Fatalf("part %d: predicted (%d,%d) != actual (%d,%d) with refine disabled",
				i, f.PredictedV[i], f.PredictedE[i], f.V[i], f.E[i])
		}
	}
}

// groupKey canonicalizes a piece set (merge records list A's pieces before
// B's; group records inherit that order, but sorting keeps the key robust).
func groupKey(pieces []int) string {
	s := append([]int(nil), pieces...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// Auditing is pure observation: the audited assignment must be identical
// to an unaudited one, for every auditable scheme.
func TestAuditDoesNotChangeResult(t *testing.T) {
	g := testGraph(t)
	const k = 8
	newBPart := func() partition.Partitioner {
		b, err := core.New(core.Default())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, mk := range []func() partition.Partitioner{
		func() partition.Partitioner { return &partition.Fennel{} },
		func() partition.Partitioner { return &partition.LDG{} },
		newBPart,
	} {
		plain := mk()
		a1, err := plain.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		audited := mk()
		aud, err := partaudit.New(io.Discard, partaudit.Config{})
		if err != nil {
			t.Fatal(err)
		}
		audited.(partaudit.Auditable).SetAudit(aud)
		a2, err := audited.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a1.Parts {
			if a1.Parts[v] != a2.Parts[v] {
				t.Fatalf("%s: vertex %d: unaudited part %d, audited part %d",
					plain.Name(), v, a1.Parts[v], a2.Parts[v])
			}
		}
	}
}

// The text and HTML renderers must handle a real log without error, and
// explain must reject an unsampled vertex with a helpful error.
func TestRenderers(t *testing.T) {
	g := testGraph(t)
	const k = 8
	b, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	log, _ := auditedRun(t, b, g, k, partaudit.Config{})

	var out bytes.Buffer
	// Stream position 0 is always sampled (pos % SampleEvery == 0).
	first := log.Decisions[0].Vertex
	if err := partaudit.WriteExplain(&out, log, first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("<- chosen")) {
		t.Fatalf("explain output lacks a chosen marker:\n%s", out.String())
	}
	out.Reset()
	if err := partaudit.WriteTimeline(&out, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("final (= Evaluate's Report)")) {
		t.Fatal("timeline output lacks the final report row")
	}
	out.Reset()
	if err := partaudit.WriteCombine(&out, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("FROZEN as part")) {
		t.Fatal("combine output lacks freeze outcomes")
	}
	out.Reset()
	if err := partaudit.WriteTimelineHTML(&out, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("<svg")) {
		t.Fatal("HTML timeline lacks the chart")
	}

	// A vertex no rule sampled: find one absent from the decision log.
	sampled := map[int]bool{}
	for _, d := range log.Decisions {
		sampled[d.Vertex] = true
	}
	unsampled := -1
	for v := 0; v < g.NumVertices(); v++ {
		if !sampled[v] {
			unsampled = v
			break
		}
	}
	if unsampled >= 0 {
		if err := partaudit.WriteExplain(io.Discard, log, unsampled); err == nil {
			t.Fatal("explain accepted an unsampled vertex")
		}
	}
}

package partaudit

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bpart/internal/graph"
)

func TestConfigNormalize(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.SampleEvery != 64 || c.Hubs != 16 || c.Window != 1024 || c.FlushEvery != 256 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	for _, bad := range []Config{
		{SampleEvery: -1}, {Hubs: -1}, {Window: -2}, {FlushEvery: -3},
	} {
		cfg := bad
		if err := cfg.Normalize(); err == nil {
			t.Fatalf("negative config accepted: %+v", bad)
		}
	}
	if _, err := New(&bytes.Buffer{}, Config{Window: -1}); err == nil {
		t.Fatal("New accepted a negative config")
	}
}

// Every exported entry point must be a no-op on a nil receiver, so
// partitioners carry an unconditional audit sink.
func TestNilSafety(t *testing.T) {
	var a *Auditor
	g := pathGraph(t)
	a.Begin("X", g, 4)
	a.Combine(Merge{})
	a.Layer(LayerRecord{})
	a.Final(Final{})
	if err := a.Flush(); err != nil {
		t.Fatalf("nil Auditor Flush = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("nil Auditor Close = %v", err)
	}

	r := a.Stream(0, g, nil, 4)
	if r != nil {
		t.Fatal("nil Auditor Stream returned a recorder")
	}
	if d := r.SampleDecision(0, 3); d != nil {
		t.Fatal("nil StreamRecorder sampled a decision")
	}
	r.Place(0, 3, 1, CauseGreedy, nil, nil)
	r.End()

	var d *Decision
	d.Candidate(0, 1, 0.5, 0.5, "")
	if _, ok := d.Chosen(); ok {
		t.Fatal("nil Decision has a chosen candidate")
	}
}

// pathGraph returns the directed path 0→1→2→3.
func pathGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	return b.Build()
}

// The stream recorder must resolve each arc exactly once — when its second
// endpoint is placed — and count cut arcs incrementally.
func TestStreamWindowAccounting(t *testing.T) {
	g := pathGraph(t)
	var buf bytes.Buffer
	a, err := New(&buf, Config{SampleEvery: 1000, Hubs: 0, Window: 2, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Begin("Test", g, 2)
	r := a.Stream(0, g, nil, 2)
	parts := []int{-1, -1, -1, -1}
	// Pieces: 0,1 → piece 0; 2,3 → piece 1. Cut arc: 1→2.
	for v, piece := range []int{0, 0, 1, 1} {
		parts[v] = piece
		r.Place(graph.VertexID(v), g.OutDegree(graph.VertexID(v)), piece, CauseGreedy, nil, parts)
	}
	r.End()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Windows) != 2 {
		t.Fatalf("got %d windows, want 2 (window size 2, 4 placements)", len(log.Windows))
	}
	w0, w1 := log.Windows[0], log.Windows[1]
	// After 0,1: arc 0→1 resolved, not cut.
	if w0.Placed != 2 || w0.ResolvedArcs != 1 || w0.CutArcs != 0 {
		t.Fatalf("window 0 = %+v", w0)
	}
	// After all four: all 3 arcs resolved, 1→2 cut.
	if w1.Placed != 4 || w1.ResolvedArcs != 3 || w1.CutArcs != 1 {
		t.Fatalf("window 1 = %+v", w1)
	}
	if got := w1.CutRatio; got != 1.0/3.0 {
		t.Fatalf("final cut ratio = %v, want 1/3", got)
	}
	if w1.PieceV[0] != 2 || w1.PieceV[1] != 2 {
		t.Fatalf("final PieceV = %v", w1.PieceV)
	}
	// PieceE is out-degree mass: 0,1 carry 1+1; 2,3 carry 1+0.
	if w1.PieceE[0] != 2 || w1.PieceE[1] != 1 {
		t.Fatalf("final PieceE = %v", w1.PieceE)
	}
	// End() after a full window must not emit a duplicate trailing window.
	if w1.Index != 1 {
		t.Fatalf("final window index = %d, want 1", w1.Index)
	}
}

// A self-loop must resolve exactly once (in the out-scan).
func TestStreamSelfLoopResolvesOnce(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	a, err := New(&buf, Config{SampleEvery: 1000, Hubs: 0, Window: 1, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Begin("Test", g, 2)
	r := a.Stream(0, g, nil, 2)
	parts := []int{-1, -1}
	parts[0] = 0
	r.Place(0, 2, 0, CauseGreedy, nil, parts)
	parts[1] = 1
	r.Place(1, 0, 1, CauseGreedy, nil, parts)
	r.End()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	last := log.Windows[len(log.Windows)-1]
	if last.ResolvedArcs != g.NumEdges() {
		t.Fatalf("resolved %d arcs, graph has %d", last.ResolvedArcs, g.NumEdges())
	}
	if last.CutArcs != 1 { // only 0→1 crosses
		t.Fatalf("cut arcs = %d, want 1", last.CutArcs)
	}
}

func TestRunnerUp(t *testing.T) {
	cands := []Candidate{
		{Piece: 0, Score: 2.0},
		{Piece: 1, Score: 3.0},
		{Piece: 2, Score: 2.5},
		{Piece: 3, Score: 9.9, Skip: SkipCapV}, // ineligible, must not win
	}
	piece, gap := runnerUp(cands, 1)
	if piece != 2 || gap != 0.5 {
		t.Fatalf("runnerUp = (%d, %v), want (2, 0.5)", piece, gap)
	}
	// Chosen is the only eligible candidate.
	piece, _ = runnerUp([]Candidate{{Piece: 0, Score: 1}}, 0)
	if piece != -1 {
		t.Fatalf("sole candidate runner-up = %d, want -1", piece)
	}
	// Chosen not in the table (fallback with every part skipped).
	piece, _ = runnerUp([]Candidate{{Piece: 0, Score: 1, Skip: SkipCapW}}, 2)
	if piece != -1 {
		t.Fatalf("fallback runner-up = %d, want -1", piece)
	}
}

func TestDecisionSampling(t *testing.T) {
	// 8 vertices: vertex 7 has out-degree 3 (the hub), the rest ≤ 1.
	b := graph.NewBuilder(8)
	b.AddEdge(7, 0)
	b.AddEdge(7, 1)
	b.AddEdge(7, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	a, err := New(&buf, Config{SampleEvery: 4, Hubs: 1, Window: 100, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Begin("Test", g, 2)
	if a.hubDeg != 3 {
		t.Fatalf("hub degree = %d, want 3", a.hubDeg)
	}
	r := a.Stream(0, g, nil, 2)
	parts := make([]int, 8)
	for v := 0; v < 8; v++ {
		d := g.OutDegree(graph.VertexID(v))
		dec := r.SampleDecision(graph.VertexID(v), d)
		// Positions 0 and 4 sample by cadence; vertex 7 samples as a hub.
		wantSampled := v%4 == 0 || v == 7
		if (dec != nil) != wantSampled {
			t.Fatalf("vertex %d: sampled = %v, want %v", v, dec != nil, wantSampled)
		}
		dec.Candidate(0, 0, 0, 0, "")
		parts[v] = 0
		r.Place(graph.VertexID(v), d, 0, CauseGreedy, dec, parts)
	}
	r.End()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Decisions) != 3 {
		t.Fatalf("got %d decisions, want 3 (pos 0, pos 4, hub 7)", len(log.Decisions))
	}
	if hub := log.DecisionsFor(7); len(hub) != 1 || hub[0].Degree != 3 {
		t.Fatalf("hub decision = %+v", hub)
	}
}

// The reader must tolerate a torn final line (crashed run) but reject
// interior damage.
func TestReadLogTornFinalLine(t *testing.T) {
	valid := `{"type":"audit_header","version":1,"scheme":"X","k":2,"n":4,"m":3,"sample_every":64,"hubs":16,"hub_degree":5,"window":1024}
{"type":"window","layer":0,"index":0,"placed":4,"piece_v":[2,2],"piece_e":[2,1],"v_bias":0,"e_bias":0.3,"cut_ratio":0.5,"resolved_arcs":2,"cut_arcs":1}
`
	log, err := ReadLog(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated || log.Header == nil || len(log.Windows) != 1 {
		t.Fatalf("clean log parsed wrong: truncated=%v header=%v windows=%d",
			log.Truncated, log.Header, len(log.Windows))
	}

	torn := valid + `{"type":"win`
	log, err = ReadLog(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if !log.Truncated {
		t.Fatal("torn final line not flagged")
	}
	if log.Header == nil || len(log.Windows) != 1 {
		t.Fatal("intact prefix lost on torn final line")
	}

	interior := `{"type":"win` + "\n" + valid
	if _, err := ReadLog(strings.NewReader(interior)); err == nil {
		t.Fatal("interior damage accepted")
	}

	unknownFinal := valid + `{"type":"mystery"}`
	log, err = ReadLog(strings.NewReader(unknownFinal))
	if err != nil || !log.Truncated {
		t.Fatalf("unknown final record: err=%v truncated=%v", err, log != nil && log.Truncated)
	}
}

// A file whose only line is garbage is not a truncated audit log — it is
// not an audit log at all, and must be a hard error (the CLIs turn this
// into a non-zero exit instead of silently printing nothing).
func TestReadLogAllGarbage(t *testing.T) {
	for _, in := range []string{
		"this is not an audit log\n",
		`{"type":"win`,
		`{"not":"typed"}` + "\n",
	} {
		if _, err := ReadLog(strings.NewReader(in)); err == nil {
			t.Errorf("ReadLog(%q) accepted a log with no usable records", in)
		}
	}
	// The genuinely empty file stays fine: a run that wrote nothing yet.
	log, err := ReadLog(strings.NewReader(""))
	if err != nil || log.Truncated {
		t.Fatalf("empty input: err=%v truncated=%v", err, log != nil && log.Truncated)
	}
}

func TestReadLogVersionMismatch(t *testing.T) {
	in := `{"type":"audit_header","version":99}
{"type":"window","layer":0,"index":0,"placed":1,"piece_v":[1],"piece_e":[0],"v_bias":0,"e_bias":0,"cut_ratio":0,"resolved_arcs":0,"cut_arcs":0}
`
	_, err := ReadLog(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "unsupported audit schema version") {
		t.Fatalf("version mismatch error = %v", err)
	}
}

func TestLogHelpers(t *testing.T) {
	l := &Log{
		Windows: []Window{
			{Layer: 1, Index: 0}, {Layer: 1, Index: 1}, {Layer: 2, Index: 0},
		},
		Layers: []LayerRecord{{
			Layer:  1,
			Pieces: 4,
			Groups: []LayerGroup{
				{Pieces: []int{0, 3}, Final: 0},
				{Pieces: []int{1, 2}, Final: -1},
			},
		}},
	}
	if w, ok := l.LastWindow(1); !ok || w.Index != 1 {
		t.Fatalf("LastWindow(1) = %+v, %v", w, ok)
	}
	if _, ok := l.LastWindow(9); ok {
		t.Fatal("LastWindow(9) found a window")
	}
	m, ok := l.PieceToPart(1)
	if !ok {
		t.Fatal("PieceToPart(1) missing")
	}
	want := []int{0, -1, -1, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("PieceToPart(1) = %v, want %v", m, want)
		}
	}
	if _, ok := l.PieceToPart(5); ok {
		t.Fatal("PieceToPart(5) found a layer")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

// A failing sink must surface its first error through Flush/Close, never
// silently drop records.
func TestStickyWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	a, err := New(failWriter{wantErr}, Config{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Final(Final{K: 1})
	if err := a.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush = %v, want %v", err, wantErr)
	}
	if err := a.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close = %v, want %v (sticky)", err, wantErr)
	}
}

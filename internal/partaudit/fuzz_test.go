package partaudit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLog throws arbitrary byte streams at the JSONL audit-log reader,
// mirroring traceview's FuzzRead. The reader faces files written by a
// process that may have died mid-line, so it must never panic, and its
// tolerance contract is precise: only the final line may be damaged — and
// only when a usable prefix precedes it (flagged via Truncated); damage
// anywhere earlier, or a file with no usable records at all, is a hard
// error. Anything that parses cleanly must survive a second pass over the
// same bytes with identical results.
func FuzzReadLog(f *testing.F) {
	f.Add([]byte(`{"type":"audit_header","version":1,"scheme":"BPart","k":8,"n":100,"m":400,"sample_every":64,"hubs":16,"hub_degree":5,"window":1024}` + "\n"))
	f.Add([]byte(`{"type":"window","layer":0,"index":0,"placed":4,"piece_v":[2,2],"piece_e":[2,1],"v_bias":0,"e_bias":0.3,"cut_ratio":0.5,"resolved_arcs":2,"cut_arcs":1}` + "\n" +
		`{"type":"decision","layer":1,"stream_pos":0,"vertex":7,"degree":3,"chosen":1,"candidates":[{"piece":0,"score":1.5,"gain":1,"balance":0.5},{"piece":1,"score":2,"gain":2,"balance":0}]}` + "\n"))
	f.Add([]byte(`{"type":"combine","layer":2,"left":0,"right":1,"final":-1}` + "\n" +
		`{"type":"final","v_bias":0.01,"e_bias":0.02,"cut_ratio":0.4}` + "\n"))
	f.Add([]byte(`{"type":"error","reason":"degraded"}` + "\n"))
	// Torn final line after a usable prefix: the only damage ReadLog tolerates.
	f.Add([]byte(`{"type":"audit_header","version":1}` + "\n" + `{"type":"win`))
	// Interior damage: must be a hard error.
	f.Add([]byte("garbage\n" + `{"type":"audit_header","version":1}` + "\n"))
	// Whole-file garbage: must be a hard error, not Truncated+empty.
	f.Add([]byte("not an audit log\n"))
	f.Add([]byte(`{"type":"wormhole"}` + "\n"))
	f.Add([]byte(`{"type":"audit_header","version":99}` + "\n"))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		if log == nil {
			t.Fatal("ReadLog returned nil log with nil error")
		}
		// A truncated-but-empty log would hide a non-log file from callers;
		// the reader promises never to produce one.
		if log.Truncated && log.empty() {
			t.Fatal("ReadLog produced Truncated with no usable records")
		}
		// The same bytes must parse again to the same log.
		log2, err2 := ReadLog(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second ReadLog of identical bytes failed: %v", err2)
		}
		if log2.Truncated != log.Truncated ||
			len(log2.Decisions) != len(log.Decisions) ||
			len(log2.Windows) != len(log.Windows) ||
			len(log2.Merges) != len(log.Merges) ||
			len(log2.Layers) != len(log.Layers) {
			t.Fatal("non-deterministic parse of identical bytes")
		}
		// Every record the reader kept came from one complete line.
		lines := 0
		for _, l := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(l) != "" {
				lines++
			}
		}
		records := len(log.Decisions) + len(log.Windows) + len(log.Merges) + len(log.Layers)
		if log.Header != nil {
			records++
		}
		if log.Final != nil {
			records++
		}
		if records > lines {
			t.Fatalf("parsed %d records from %d non-blank lines", records, lines)
		}
		// The derived views must hold up on anything ReadLog accepts.
		for _, d := range log.Decisions {
			got := log.DecisionsFor(d.Vertex)
			if len(got) == 0 {
				t.Fatalf("DecisionsFor(%d) lost a decision", d.Vertex)
			}
		}
		for _, lr := range log.Layers {
			if m, ok := log.PieceToPart(lr.Layer); ok && len(m) != lr.Pieces {
				t.Fatalf("PieceToPart(%d) = %d entries, layer has %d pieces", lr.Layer, len(m), lr.Pieces)
			}
		}
	})
}

package partaudit

import (
	"fmt"
	"io"
	"strings"
)

// errWriter folds per-line error checks into one sticky error (the
// traceview report idiom).
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// bar renders v/max as a fixed-width ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return strings.Repeat(".", width)
	}
	n := int(v/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func writeHeaderLine(ew *errWriter, l *Log) {
	if h := l.Header; h != nil {
		ew.printf("AUDIT: %s  k=%d  n=%d  m=%d  (sampled every %d, hub degree >= %d, window %d)\n",
			h.Scheme, h.K, h.Vertices, h.Edges, h.SampleEvery, h.HubDegree, h.Window)
	}
	if l.Truncated {
		ew.printf("  WARNING: final line torn (run crashed mid-write); showing the intact prefix\n")
	}
}

// WriteExplain renders every sampled decision for one vertex: the full
// per-piece score table (affinity − penalty = score, capacity skips), the
// chosen piece, the cause and the runner-up gap — `partstat explain`.
func WriteExplain(w io.Writer, l *Log, vertex int) error {
	ew := &errWriter{w: w}
	writeHeaderLine(ew, l)
	decs := l.DecisionsFor(vertex)
	if len(decs) == 0 {
		if ew.err != nil {
			return ew.err
		}
		return fmt.Errorf("partaudit: vertex %d has no sampled decisions (sampled: every %s vertex plus hubs; re-run with a smaller -audit-sample to catch it)",
			vertex, ordinal(sampleEveryOf(l)))
	}
	for _, d := range decs {
		ew.printf("\nvertex %d  layer %d  stream position %d  out-degree %d\n", d.Vertex, d.Layer, d.Pos, d.Degree)
		ew.printf("  placed on piece %d (%s)", d.Piece, d.Cause)
		if d.RunnerUp >= 0 {
			ew.printf("; runner-up piece %d trails by %.4f", d.RunnerUp, d.Gap)
		}
		ew.printf("\n")
		ew.printf("  %5s  %8s  %10s  %10s  %s\n", "piece", "affinity", "penalty", "score", "")
		for _, c := range d.Cands {
			marker := ""
			switch {
			case c.Piece == d.Piece:
				marker = "<- chosen"
			case c.Skip != "":
				marker = "skipped: " + c.Skip
			case c.Piece == d.RunnerUp:
				marker = "runner-up"
			}
			ew.printf("  %5d  %8d  %10.4f  %10.4f  %s\n", c.Piece, c.Affinity, c.Penalty, c.Score, marker)
		}
	}
	return ew.err
}

func sampleEveryOf(l *Log) int {
	if l.Header != nil {
		return l.Header.SampleEvery
	}
	return 0
}

func ordinal(n int) string {
	if n <= 0 {
		return "Nth"
	}
	return fmt.Sprintf("%dth", n)
}

// WriteTimeline renders the streaming quality timeline — one row per
// window with vertex/edge bias and cut ratio — and the final report row,
// which equals Evaluate's Report — `partstat timeline`.
func WriteTimeline(w io.Writer, l *Log) error {
	ew := &errWriter{w: w}
	writeHeaderLine(ew, l)
	if len(l.Windows) == 0 {
		ew.printf("no window records: the audited run placed no vertices\n")
		return ew.err
	}
	maxBias := 0.0
	for _, win := range l.Windows {
		if win.VBias > maxBias {
			maxBias = win.VBias
		}
		if win.EBias > maxBias {
			maxBias = win.EBias
		}
	}
	ew.printf("\n  %5s %6s %8s  %8s %-12s  %8s %-12s  %9s\n",
		"layer", "win", "placed", "v_bias", "", "e_bias", "", "cut_ratio")
	for _, win := range l.Windows {
		ew.printf("  %5d %6d %8d  %8.4f %-12s  %8.4f %-12s  %9.4f\n",
			win.Layer, win.Index, win.Placed,
			win.VBias, bar(win.VBias, maxBias, 12),
			win.EBias, bar(win.EBias, maxBias, 12),
			win.CutRatio)
	}
	if f := l.Final; f != nil {
		ew.printf("\n  final (= Evaluate's Report): k=%d  v_bias %.4f  e_bias %.4f  cut_ratio %.4f  refine moves %d\n",
			f.K, f.VBias, f.EBias, f.CutRatio, f.RefineMoves)
	}
	return ew.err
}

// WriteCombine renders the combining audit tree: per layer, the pairing
// rounds (vertex-lightest group merged with vertex-heaviest — the
// inverse-proportionality rationale), every group's deviation and freeze
// outcome, and the predicted-vs-actual final balance — `partstat
// combine`.
func WriteCombine(w io.Writer, l *Log) error {
	ew := &errWriter{w: w}
	writeHeaderLine(ew, l)
	if len(l.Layers) == 0 {
		ew.printf("no layer records: the audited scheme has no combining phase (single-phase stream)\n")
		return ew.err
	}
	for _, lr := range l.Layers {
		ew.printf("\nLAYER %d: %d pieces -> targets |V|=%.1f |E|=%.1f per part (epsilon %.3f)\n",
			lr.Layer, lr.Pieces, lr.TargetV, lr.TargetE, lr.Epsilon)
		round := -1
		for _, m := range l.Merges {
			if m.Layer != lr.Layer {
				continue
			}
			if m.Round != round {
				round = m.Round
				ew.printf("  round %d:\n", round)
			}
			ew.printf("    merge v-light %v (|V|=%d |E|=%d) + v-heavy %v (|V|=%d |E|=%d) -> |V|=%d |E|=%d\n",
				m.APieces, m.AV, m.AE, m.BPieces, m.BV, m.BE, m.AV+m.BV, m.AE+m.BE)
		}
		frozen := 0
		for _, grp := range lr.Groups {
			status := "dissolved into next layer"
			if grp.Final >= 0 {
				status = fmt.Sprintf("FROZEN as part %d", grp.Final)
				frozen++
			}
			ew.printf("  group %v: |V|=%d (dev %.3f) |E|=%d (dev %.3f) — %s\n",
				grp.Pieces, grp.V, grp.VDev, grp.E, grp.EDev, status)
		}
		ew.printf("  %d/%d groups frozen\n", frozen, len(lr.Groups))
	}
	if f := l.Final; f != nil {
		ew.printf("\nFINAL: k=%d  v_bias %.4f  e_bias %.4f  cut_ratio %.4f\n", f.K, f.VBias, f.EBias, f.CutRatio)
		if len(f.PredictedV) == len(f.V) && len(f.PredictedE) == len(f.E) {
			ew.printf("  predicted at freeze vs actual after refine (%d moves):\n", f.RefineMoves)
			ew.printf("  %5s  %10s %10s  %10s %10s\n", "part", "pred |V|", "act |V|", "pred |E|", "act |E|")
			for i := range f.V {
				ew.printf("  %5d  %10d %10d  %10d %10d\n", i, f.PredictedV[i], f.V[i], f.PredictedE[i], f.E[i])
			}
		}
	}
	return ew.err
}

package partaudit

import (
	"html"
	"io"

	"bpart/internal/htmlpage"
)

// WriteTimelineHTML renders the streaming quality timeline as one
// self-contained HTML file (traceview page chrome, no server, no external
// assets): a line chart of vertex bias, edge bias and cut ratio per
// window, segmented by layer, plus the final report — how balance in both
// dimensions evolved as the stream progressed.
func WriteTimelineHTML(w io.Writer, l *Log) error {
	if err := htmlpage.Start(w, "bpart audit timeline"); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	if h := l.Header; h != nil {
		ew.printf("<p class=meta>%s · k=%d · n=%d · m=%d · window %d · %d windows, %d sampled decisions</p>\n",
			html.EscapeString(h.Scheme), h.K, h.Vertices, h.Edges, h.Window, len(l.Windows), len(l.Decisions))
	}
	if l.Truncated {
		ew.printf("<p class=warn>audit log truncated: final line torn (crashed run); showing intact prefix</p>\n")
	}
	writeHTMLChart(ew, l)
	writeHTMLFinal(ew, l)
	if ew.err != nil {
		return ew.err
	}
	return htmlpage.End(w)
}

func writeHTMLChart(ew *errWriter, l *Log) {
	if len(l.Windows) == 0 {
		ew.printf("<p class=meta>no window records</p>\n")
		return
	}
	const (
		chartW = 1000
		chartH = 220
		padL   = 40
		padB   = 24
	)
	maxY := 0.0
	for _, win := range l.Windows {
		for _, v := range []float64{win.VBias, win.EBias, win.CutRatio} {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	n := len(l.Windows)
	x := func(i int) float64 {
		if n == 1 {
			return padL + chartW/2
		}
		return padL + float64(i)/float64(n-1)*chartW
	}
	y := func(v float64) float64 { return float64(chartH) - v/maxY*float64(chartH) + 8 }
	ew.printf("<h2>Streaming quality timeline</h2>\n")
	ew.printf("<p class=legend><span style=\"background:#4878b0\">vertex bias</span><span style=\"background:#b07848\">edge bias</span><span style=\"background:#5b9a68\">cut ratio</span></p>\n")
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", chartW+padL+20, chartH+padB+16)
	series := []struct {
		color string
		pick  func(Window) float64
	}{
		{"#4878b0", func(w Window) float64 { return w.VBias }},
		{"#b07848", func(w Window) float64 { return w.EBias }},
		{"#5b9a68", func(w Window) float64 { return w.CutRatio }},
	}
	for _, s := range series {
		ew.printf("<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"", s.color)
		for i, win := range l.Windows {
			ew.printf("%.1f,%.1f ", x(i), y(s.pick(win)))
		}
		ew.printf("\"/>\n")
	}
	// Layer boundaries: a vertical rule wherever the layer changes.
	for i := 1; i < n; i++ {
		if l.Windows[i].Layer != l.Windows[i-1].Layer {
			ew.printf("<line x1=\"%.1f\" y1=\"8\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ccc\" stroke-dasharray=\"3,3\"/>\n",
				x(i), x(i), chartH+8)
			ew.printf("<text class=lbl x=\"%.1f\" y=\"%d\">layer %d</text>\n", x(i)+3, chartH+20, l.Windows[i].Layer)
		}
	}
	ew.printf("<text class=lbl x=\"2\" y=\"14\">%.3f</text>\n", maxY)
	ew.printf("<text class=lbl x=\"2\" y=\"%d\">0</text>\n", chartH+8)
	ew.printf("</svg>\n")
}

func writeHTMLFinal(ew *errWriter, l *Log) {
	f := l.Final
	if f == nil {
		return
	}
	ew.printf("<h2>Final report</h2>\n")
	ew.printf("<p class=meta>k=%d · vertex bias %.4f · edge bias %.4f · cut ratio %.4f · refine moves %d</p>\n",
		f.K, f.VBias, f.EBias, f.CutRatio, f.RefineMoves)
}

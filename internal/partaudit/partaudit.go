// Package partaudit is the decision-side observability subsystem: where
// internal/telemetry answers "how long did each phase take" and
// internal/traceview answers "where did the simulated cluster wait",
// partaudit answers "why did the partitioner do what it did".
//
// An Auditor writes an opt-in JSONL audit log of one partitioning run with
// three kinds of content:
//
//   - Decision records — a sampled subset of streaming placements (every
//     Nth vertex, plus every top-degree hub) with the full per-candidate
//     score decomposition: the neighbor-affinity term, the balance-penalty
//     term, the capacity-skip reason, and the runner-up gap. These are the
//     per-decision quantities behind the paper's Eq. 2 scoring.
//   - Window records — every Window placed vertices, a snapshot of the
//     per-piece |V_i|/|E_i|, the vertex/edge bias and the cut ratio over
//     the arcs resolved so far. The final snapshot of a full-graph stream
//     reproduces metrics.NewReport exactly (tested), so the timeline ends
//     on the same numbers Evaluate reports.
//   - Combining records — per layer and round, which pieces were paired
//     (vertex-lightest with vertex-heaviest, the paper's
//     inverse-proportionality rationale), every group's per-dimension
//     deviation and freeze outcome, and the final predicted-vs-actual
//     per-part balance.
//
// The write side follows the telemetry JSONL conventions: a nil *Auditor
// is a valid no-op on every method, writes are buffered with a FlushEvery
// cadence and a sticky first error surfaced by Flush/Close, and the reader
// (ReadLog) tolerates a torn final line from a crashed run while rejecting
// interior damage. cmd/partstat renders the log (explain / timeline /
// combine).
package partaudit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"bpart/internal/graph"
)

// Version is the audit log schema version, written in the header record
// and documented in EXPERIMENTS.md.
const Version = 1

// Placement causes recorded on decision records.
const (
	// CauseGreedy marks a clean argmax placement.
	CauseGreedy = "greedy"
	// CauseTieBreak marks a score tie resolved by picking the lighter part.
	CauseTieBreak = "tie_break"
	// CauseFallback marks the all-parts-full lightest-part fallback.
	CauseFallback = "fallback"
)

// Capacity-skip reasons recorded on candidate rows.
const (
	// SkipCapW marks a candidate rejected by the W_i slack cap.
	SkipCapW = "cap_w"
	// SkipCapV marks a candidate rejected by the hard |V_i| cap.
	SkipCapV = "cap_v"
	// SkipCapE marks a candidate rejected by the hard |E_i| cap.
	SkipCapE = "cap_e"
)

// Config tunes what the Auditor records. The zero value selects defaults
// via Normalize.
type Config struct {
	// SampleEvery records the full score decomposition of every Nth
	// placement of each stream. Default 64.
	SampleEvery int
	// Hubs always records the placements of the Hubs highest-out-degree
	// vertices regardless of sampling — hub placements are the ones the
	// edge-balance claims hinge on. Default 16.
	Hubs int
	// Window is the timeline snapshot cadence in placed vertices.
	// Default 1024.
	Window int
	// FlushEvery flushes the JSONL buffer after this many records, so a
	// crashed run still leaves a parseable prefix. Default 256.
	FlushEvery int
}

// Normalize fills defaults and validates the configuration.
func (c *Config) Normalize() error {
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
	if c.Hubs == 0 {
		c.Hubs = 16
	}
	if c.Window == 0 {
		c.Window = 1024
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 256
	}
	if c.SampleEvery < 0 || c.Hubs < 0 || c.Window < 0 || c.FlushEvery < 0 {
		return fmt.Errorf("partaudit: negative Config field: %+v", *c)
	}
	return nil
}

// Auditable is implemented by partitioners that accept an audit sink after
// construction (BPart, Fennel, LDG).
type Auditable interface {
	SetAudit(*Auditor)
}

// Header is the first record of an audit log.
type Header struct {
	Type        string `json:"type"` // "audit_header"
	Version     int    `json:"version"`
	Scheme      string `json:"scheme"`
	K           int    `json:"k"`
	Vertices    int    `json:"n"`
	Edges       int    `json:"m"`
	SampleEvery int    `json:"sample_every"`
	Hubs        int    `json:"hubs"`
	HubDegree   int    `json:"hub_degree"` // min out-degree that forces sampling
	Window      int    `json:"window"`
}

// Candidate is one row of a decision's score table: how one piece scored
// for the vertex being placed, decomposed into the affinity and penalty
// terms of Eq. 2 (Score = Affinity − Penalty), or why it was ineligible.
type Candidate struct {
	Piece    int     `json:"piece"`
	Affinity int     `json:"aff"`
	Penalty  float64 `json:"pen"`
	Score    float64 `json:"score"`
	// Skip is the capacity reason this piece was ineligible ("" = eligible).
	Skip string `json:"skip,omitempty"`
}

// Decision records one sampled streaming placement with its full score
// decomposition.
type Decision struct {
	Type   string `json:"type"` // "decision"
	Layer  int    `json:"layer"`
	Pos    int    `json:"pos"` // position in this layer's stream
	Vertex int    `json:"vertex"`
	Degree int    `json:"degree"`
	Piece  int    `json:"piece"` // the piece actually chosen
	Cause  string `json:"cause"`
	// RunnerUp is the best-scoring eligible piece other than the chosen
	// one (-1 if the chosen piece was the only eligible candidate).
	RunnerUp int `json:"runner_up"`
	// Gap is the chosen score minus the runner-up score.
	Gap   float64     `json:"gap"`
	Cands []Candidate `json:"cands"`
}

// Candidate appends one score-table row; nil-safe so uninstrumented loops
// can call it unconditionally.
func (d *Decision) Candidate(piece, affinity int, penalty, score float64, skip string) {
	if d == nil {
		return
	}
	d.Cands = append(d.Cands, Candidate{
		Piece: piece, Affinity: affinity, Penalty: penalty, Score: score, Skip: skip,
	})
}

// Chosen returns the candidate row of the piece actually assigned.
func (d *Decision) Chosen() (Candidate, bool) {
	if d == nil {
		return Candidate{}, false
	}
	for _, c := range d.Cands {
		if c.Piece == d.Piece {
			return c, true
		}
	}
	return Candidate{}, false
}

// Window is one streaming quality snapshot: the per-piece sizes and
// quality metrics after Placed vertices of one stream.
type Window struct {
	Type   string `json:"type"` // "window"
	Layer  int    `json:"layer"`
	Index  int    `json:"index"`
	Placed int    `json:"placed"`
	PieceV []int  `json:"piece_v"`
	PieceE []int  `json:"piece_e"`
	// VBias and EBias are metrics.Bias over PieceV/PieceE.
	VBias float64 `json:"v_bias"`
	EBias float64 `json:"e_bias"`
	// CutRatio is CutArcs/ResolvedArcs; an arc is resolved once both its
	// endpoints are placed, so the final window of a full-graph stream
	// has ResolvedArcs = |E| and CutRatio equal to the Report's.
	CutRatio     float64 `json:"cut_ratio"`
	ResolvedArcs int     `json:"resolved_arcs"`
	CutArcs      int     `json:"cut_arcs"`
}

// Merge records one pairing of a combining round: the vertex-lightest
// group A (which, by the paper's inverse proportionality, is the
// edge-heaviest) merged with the vertex-heaviest group B.
type Merge struct {
	Type    string `json:"type"` // "combine"
	Layer   int    `json:"layer"`
	Round   int    `json:"round"`
	APieces []int  `json:"a_pieces"`
	AV      int    `json:"a_v"`
	AE      int    `json:"a_e"`
	BPieces []int  `json:"b_pieces"`
	BV      int    `json:"b_v"`
	BE      int    `json:"b_e"`
}

// LayerGroup is one combined group at the end of a layer's rounds: its
// pieces, sizes, per-dimension deviation from the global per-part targets,
// and whether it froze into a final part.
type LayerGroup struct {
	Pieces []int `json:"pieces"`
	V      int   `json:"v"`
	E      int   `json:"e"`
	// VDev and EDev are |size − target|/target, the quantities the ε
	// freeze test compares.
	VDev float64 `json:"v_dev"`
	EDev float64 `json:"e_dev"`
	// Final is the final part id this group froze into, or -1 if it was
	// dissolved into the next layer.
	Final int `json:"final"`
}

// LayerRecord is the combining outcome of one layer.
type LayerRecord struct {
	Type    string       `json:"type"` // "layer"
	Layer   int          `json:"layer"`
	Pieces  int          `json:"pieces"`
	TargetV float64      `json:"target_v"`
	TargetE float64      `json:"target_e"`
	Epsilon float64      `json:"epsilon"`
	Groups  []LayerGroup `json:"groups"`
}

// Final is the last record of an audit log: the finished partition's
// quality report (identical to metrics.NewReport over the assignment) and,
// for BPart, the per-part sizes predicted at freeze time — the
// predicted-vs-actual gap is exactly what the refine pass repaired.
type Final struct {
	Type     string  `json:"type"` // "final"
	K        int     `json:"k"`
	V        []int   `json:"v"`
	E        []int   `json:"e"`
	VBias    float64 `json:"v_bias"`
	EBias    float64 `json:"e_bias"`
	CutRatio float64 `json:"cut_ratio"`
	// PredictedV/PredictedE are the per-part sizes at combining freeze
	// time (BPart only).
	PredictedV  []int `json:"predicted_v,omitempty"`
	PredictedE  []int `json:"predicted_e,omitempty"`
	RefineMoves int   `json:"refine_moves"`
}

// Auditor writes the audit log. A nil *Auditor is a valid no-op sink, so
// partitioners store one unconditionally and never branch on "is audit
// on" beyond a nil check.
type Auditor struct {
	cfg        Config
	mu         sync.Mutex
	bw         *bufio.Writer
	werr       error // first write failure, surfaced by Flush/Close
	sinceFlush int
	hubDeg     int
}

// New returns an Auditor writing JSON lines to w. A zero Config selects
// the defaults.
func New(w io.Writer, cfg Config) (*Auditor, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return &Auditor{cfg: cfg, bw: bufio.NewWriter(w), hubDeg: math.MaxInt}, nil
}

// Begin writes the header record for one partitioning run and derives the
// hub sampling threshold (the cfg.Hubs-th largest out-degree) from g.
// Call it once, before any stream starts.
func (a *Auditor) Begin(scheme string, g *graph.Graph, k int) {
	if a == nil {
		return
	}
	hubDeg := math.MaxInt
	n := g.NumVertices()
	if a.cfg.Hubs > 0 && n > 0 {
		degs := make([]int, n)
		for v := 0; v < n; v++ {
			degs[v] = g.OutDegree(graph.VertexID(v))
		}
		sort.Ints(degs)
		h := a.cfg.Hubs
		if h > n {
			h = n
		}
		hubDeg = degs[n-h]
		if hubDeg < 1 {
			hubDeg = 1 // never hub-sample isolated vertices
		}
	}
	a.mu.Lock()
	a.hubDeg = hubDeg
	a.mu.Unlock()
	a.emit(Header{
		Type:        "audit_header",
		Version:     Version,
		Scheme:      scheme,
		K:           k,
		Vertices:    n,
		Edges:       g.NumEdges(),
		SampleEvery: a.cfg.SampleEvery,
		Hubs:        a.cfg.Hubs,
		HubDegree:   hubDeg,
		Window:      a.cfg.Window,
	})
}

// Combine records one pairing of a combining round.
func (a *Auditor) Combine(m Merge) {
	if a == nil {
		return
	}
	m.Type = "combine"
	a.emit(m)
}

// Layer records one layer's combining outcome.
func (a *Auditor) Layer(l LayerRecord) {
	if a == nil {
		return
	}
	l.Type = "layer"
	a.emit(l)
}

// Final records the finished partition's quality report. It is the audit
// timeline's last window: by construction it equals Evaluate's Report.
func (a *Auditor) Final(f Final) {
	if a == nil {
		return
	}
	f.Type = "final"
	a.emit(f)
}

// emit marshals one record as a JSON line. An unencodable record degrades
// to an error line that keeps the stream parseable, mirroring
// telemetry.JSONL.
func (a *Auditor) emit(rec any) {
	if a == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(`{"type":"error"}`)
	}
	a.mu.Lock()
	if _, err := a.bw.Write(append(line, '\n')); err != nil && a.werr == nil {
		a.werr = err
	}
	a.sinceFlush++
	if a.sinceFlush >= a.cfg.FlushEvery {
		a.sinceFlush = 0
		if err := a.bw.Flush(); err != nil && a.werr == nil {
			a.werr = err
		}
	}
	a.mu.Unlock()
}

// Flush drains buffered lines and returns the first error any write hit,
// so a truncated audit log is never silent.
func (a *Auditor) Flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.bw.Flush(); a.werr == nil && err != nil {
		a.werr = err
	}
	return a.werr
}

// Close flushes; the underlying writer is the caller's to close.
func (a *Auditor) Close() error { return a.Flush() }

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-value RNG stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolBias(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.2) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.2) > 0.01 {
		t.Fatalf("Bool(0.2) hit rate %v", p)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p = 0.25
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
	if r.Geometric(1.0) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestAliasUniform(t *testing.T) {
	a := NewAlias([]float64{1, 1, 1, 1})
	r := New(17)
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		if p := float64(c) / n; math.Abs(p-0.25) > 0.01 {
			t.Fatalf("outcome %d prob %v, want 0.25", i, p)
		}
	}
}

func TestAliasSkewed(t *testing.T) {
	a := NewAlias([]float64{8, 1, 1, 0})
	r := New(19)
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	if counts[3] != 0 {
		t.Fatalf("zero-weight outcome drawn %d times", counts[3])
	}
	if p := float64(counts[0]) / n; math.Abs(p-0.8) > 0.01 {
		t.Fatalf("heavy outcome prob %v, want 0.8", p)
	}
}

func TestAliasSingle(t *testing.T) {
	a := NewAlias([]float64{3.5})
	r := New(23)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%s) did not panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}

// Property: alias sampling over random weights matches the weight
// distribution within statistical tolerance.
func TestQuickAliasDistribution(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := r.Intn(20) + 2
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = float64(r.Intn(10))
			total += weights[i]
		}
		if total == 0 {
			weights[0], total = 1, 1
		}
		a := NewAlias(weights)
		counts := make([]int, n)
		const draws = 100000
		for i := 0; i < draws; i++ {
			counts[a.Sample(r)]++
		}
		for i := range weights {
			want := weights[i] / total
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.015 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(100, 0.75, 1)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("weights not non-increasing at %d", i)
		}
	}
	if w[0] != 1 {
		t.Fatalf("w[0] = %v, want 1", w[0])
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a := NewAlias(PowerLawWeights(1<<16, 0.75, 1))
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

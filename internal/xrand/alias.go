package xrand

import "math"

// Alias is a Vose alias table supporting O(1) sampling from an arbitrary
// discrete distribution. Construction is O(n). It backs the
// degree-proportional endpoint sampling in the graph generators and the
// weighted neighbor selection in the walk engine, both of which draw
// millions of samples per experiment.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over the given non-negative weights.
// At least one weight must be positive.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("xrand: empty weight vector")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: all weights zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		// Numerical leftovers: treat as certain.
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one outcome index using rng.
func (a *Alias) Sample(rng *RNG) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// PowerLawWeights returns weights w[i] = (i + shift)^(-s) for i in [0, n).
// With s in (0,1) this is the ranked ("Zipfian") weight profile used by the
// Chung–Lu generator: vertex 0 is the highest-weight hub, mirroring social
// graphs where low IDs belong to the oldest, best-connected accounts.
func PowerLawWeights(n int, s, shift float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i)+shift, -s)
	}
	return w
}

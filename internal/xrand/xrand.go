// Package xrand provides the deterministic random-number and sampling
// machinery used across the repository: a splitmix64 PRNG whose streams are
// reproducible across platforms and Go releases, Vose alias tables for O(1)
// weighted sampling (degree-proportional endpoint selection in the graph
// generators, first-order transition sampling in the walk engine), and small
// helpers (shuffle, geometric-ish power-law draws).
//
// Determinism matters here: every experiment table in EXPERIMENTS.md must be
// regenerable bit-for-bit, so no code path may consult math/rand's global
// state or any time-seeded source.
package xrand

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New for an explicit seed.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork returns a new RNG whose stream is derived from, but independent of,
// the receiver's. Used to give each simulated machine / walker batch its own
// stream so parallel execution order does not change results.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Shuffle permutes the first n elements using swap (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Geometric returns a draw from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	u := r.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

package commview

import (
	"fmt"
	"io"
	"strings"

	"bpart/internal/partaudit"
)

// ReportOptions tunes the terminal report.
type ReportOptions struct {
	// MaxMatrix caps the machine count for which the full K×K matrix is
	// printed (0 = 16); larger clusters get only the skew and pair
	// sections.
	MaxMatrix int
	// MaxSupersteps caps the per-superstep evolution table (0 = 16). The
	// summary always covers the whole run.
	MaxSupersteps int
	// Audit, when non-nil, adds the predicted-vs-observed reconciliation
	// section to every run.
	Audit *partaudit.Log
}

func (o ReportOptions) maxMatrix() int {
	if o.MaxMatrix <= 0 {
		return 16
	}
	return o.MaxMatrix
}

func (o ReportOptions) maxSupersteps() int {
	if o.MaxSupersteps <= 0 {
		return 16
	}
	return o.MaxSupersteps
}

// errWriter folds per-line error checks into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// bar renders v/max as a fixed-width ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return strings.Repeat(".", width)
	}
	n := int(v/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// WriteReport renders the terminal comm-topology report: per run, the
// summed src→dst matrix, per-machine in/out skew, hot-pair attribution
// with runner-up slack, the per-superstep evolution, and (with an audit
// log attached) the predicted-vs-observed reconciliation.
func WriteReport(w io.Writer, log *Log, opt ReportOptions) error {
	ew := &errWriter{w: w}
	if log.Truncated {
		ew.printf("WARNING: final trace line torn (run crashed mid-write); analyzing the intact prefix\n")
	}
	if len(log.Steps) == 0 {
		ew.printf("No comm matrices in trace: matrix capture was off (enable with Cluster.SetCommMatrix).\n")
		return ew.err
	}
	for i, run := range GroupRuns(log.Steps) {
		writeRun(ew, i+1, run, opt)
	}
	return ew.err
}

func writeRun(ew *errWriter, idx int, run []Superstep, opt ReportOptions) {
	s := Summarize(run)
	recovery := 0
	for _, st := range run {
		if st.Phase != "" {
			recovery++
		}
	}
	ew.printf("RUN %d: %d machines, %d supersteps (%d recovery), %d cross-machine messages\n",
		idx, s.Machines, s.Supersteps, recovery, s.Messages)
	ew.printf("  comm imbalance ratio %.4f  (max machine traffic / mean; 1.0 = flat)\n", s.ImbalanceRatio)
	ew.printf("  pair fairness (Jain) %.4f over %d/%d active pairs\n",
		s.PairJain, s.ActivePairs, s.Machines*(s.Machines-1))
	if s.HotSrc >= 0 {
		ew.printf("  hot pair M%d->M%d: %d messages (lead over runner-up: %d)\n",
			s.HotSrc, s.HotDst, s.HotMessages, s.HotSlack)
	}

	if s.Machines <= opt.maxMatrix() {
		writeMatrix(ew, &s)
	} else {
		ew.printf("  (matrix elided: %d machines > -matrix cap %d)\n", s.Machines, opt.maxMatrix())
	}
	writeSkew(ew, &s)
	writeEvolution(ew, run, &s, opt)
	if opt.Audit != nil {
		writeReconcile(ew, run, opt.Audit)
	}
}

func writeMatrix(ew *errWriter, s *Summary) {
	// Column width fits the widest cell so the grid stays aligned.
	width := 6
	for _, row := range s.Matrix {
		for _, n := range row {
			if w := len(fmt.Sprintf("%d", n)); w+1 > width {
				width = w + 1
			}
		}
	}
	ew.printf("  src\\dst matrix (messages over the whole run):\n")
	ew.printf("    %4s", "")
	for j := 0; j < s.Machines; j++ {
		ew.printf("%*s", width, fmt.Sprintf("M%d", j))
	}
	ew.printf("\n")
	for i, row := range s.Matrix {
		ew.printf("    %-4s", fmt.Sprintf("M%d", i))
		for j, n := range row {
			if i == j {
				ew.printf("%*s", width, ".")
			} else {
				ew.printf("%*d", width, n)
			}
		}
		ew.printf("\n")
	}
}

func writeSkew(ew *errWriter, s *Summary) {
	var max int64
	for i := range s.Out {
		if t := s.Out[i] + s.In[i]; t > max {
			max = t
		}
	}
	ew.printf("  per-machine out/in skew:\n")
	for i := range s.Out {
		ew.printf("    M%-2d %s out %-10d in %-10d\n",
			i, bar(float64(s.Out[i]+s.In[i]), float64(max), 20), s.Out[i], s.In[i])
	}
}

func writeEvolution(ew *errWriter, run []Superstep, s *Summary, opt ReportOptions) {
	var max int64
	for _, m := range s.PerStepMessages {
		if m > max {
			max = m
		}
	}
	ew.printf("  per-superstep evolution (messages, active pairs):\n")
	shown := 0
	for i, st := range run {
		if shown >= opt.maxSupersteps() {
			ew.printf("    ... %d more supersteps elided (raise -supersteps)\n", len(run)-shown)
			break
		}
		shown++
		label := ""
		if st.Phase != "" {
			label = "  [" + st.Phase + "]"
		}
		ew.printf("    %5d  %s %-10d pairs %d%s\n",
			st.Iteration, bar(float64(s.PerStepMessages[i]), float64(max), 20),
			s.PerStepMessages[i], s.PerStepActivePairs[i], label)
	}
}

func writeReconcile(ew *errWriter, run []Superstep, audit *partaudit.Log) {
	r, err := Reconcile(run, audit)
	if err != nil {
		ew.printf("  reconciliation vs partitioner: %v\n", err)
		return
	}
	ew.printf("  reconciliation vs partitioner:\n")
	ew.printf("    observed cut share  %.4f  (%d messages / %d opportunities)\n",
		r.ObservedCutShare, r.Messages, r.Opportunities)
	ew.printf("    predicted cut ratio %.4f  (from audit log)\n", r.PredictedCutRatio)
	ew.printf("    gap %+.4f  (negative: mirrors/dedup saved traffic; drifting positive: placement degraded)\n", r.Gap)
}

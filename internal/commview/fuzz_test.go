package commview

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary byte streams at the comm-matrix reader. It
// inherits traceview.Read's tolerance contract — only a torn final line
// may be damaged, all-garbage input is a hard error — and layers the
// matrix decode on top, so it must never panic, must parse the same bytes
// to the same steps twice, and every accepted matrix must be square and
// shaped to its machine count.
func FuzzRead(f *testing.F) {
	valid := `{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[4,4],"vertices":[1,1],"messages":[1,0],"pairs":[[0,1],[0,0]]}}` + "\n"
	f.Add([]byte(valid))
	// Superstep without pairs: skipped, not an error.
	f.Add([]byte(`{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":1,"time_us":1,"compute":[1],"comm":[1],"waiting":[0],"steps":[0],"edges":[0],"vertices":[1],"messages":[0]}}` + "\n"))
	// Malformed matrices: hard errors.
	f.Add([]byte(`{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[0,0],"vertices":[1,1],"messages":[0,0],"pairs":[[0]]}}` + "\n"))
	f.Add([]byte(`{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"pairs":"garbage"}}` + "\n"))
	// Torn final line after a valid prefix: tolerated.
	f.Add([]byte(valid + `{"ts":"2026-08-07T12:0`))
	// Interior damage and all-garbage first lines: hard errors.
	f.Add([]byte("garbage\n" + valid))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l == nil {
			t.Fatal("Read returned nil log with nil error")
		}
		l2, err2 := Read(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second Read of identical bytes failed: %v", err2)
		}
		if len(l2.Steps) != len(l.Steps) || l2.Truncated != l.Truncated {
			t.Fatalf("non-deterministic parse: %d/%v then %d/%v",
				len(l.Steps), l.Truncated, len(l2.Steps), l2.Truncated)
		}
		for i, st := range l.Steps {
			if len(st.Pairs) != st.Machines {
				t.Fatalf("step %d: %d rows for %d machines", i, len(st.Pairs), st.Machines)
			}
			for _, row := range st.Pairs {
				if len(row) != st.Machines {
					t.Fatalf("step %d: ragged matrix row", i)
				}
			}
			if len(st.Messages) != st.Machines || len(st.Edges) != st.Machines || len(st.Steps) != st.Machines {
				t.Fatalf("step %d: flat counter shape mismatch", i)
			}
		}
		// The derived views must hold up on anything Read accepts.
		// (CheckMessages may legitimately reject a fuzzer-built matrix —
		// its invariant is about our writers — but it must not panic.)
		for _, run := range GroupRuns(l.Steps) {
			s := Summarize(run)
			if s.Messages < 0 {
				// int64 overflow from adversarial cell values: the sum
				// wrapped. Summarize makes no overflow promises; nothing
				// further to assert on this input.
				return
			}
			if s.ActivePairs > s.Machines*s.Machines {
				t.Fatalf("ActivePairs %d exceeds matrix size", s.ActivePairs)
			}
		}
		_ = CheckMessages(l.Steps)
	})
}

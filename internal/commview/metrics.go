package commview

// Summary is the derived communication topology of one run: the matrix
// summed over its supersteps plus the balance metrics the paper's 2D-claim
// is judged on.
type Summary struct {
	Machines   int
	Supersteps int
	// Matrix is the run-total src→dst matrix.
	Matrix [][]int64
	// Out[i] and In[i] are machine i's total sent and received messages
	// (row and column sums of Matrix).
	Out []int64
	In  []int64
	// Messages is the run's total cross-machine traffic (ΣMatrix).
	Messages int64
	// ImbalanceRatio is max_i(In[i]+Out[i]) / mean_i(In[i]+Out[i]) over
	// live machines — 1.0 is a perfectly flat topology; the comm analogue
	// of the paper's Fig 12 balance metric. Machines with zero traffic in
	// both directions are treated as dead and excluded from the mean.
	ImbalanceRatio float64
	// PairJain is Jain's fairness index over the off-diagonal pair loads:
	// 1.0 when every machine pair carries equal traffic, 1/(K·(K−1)) when
	// a single pair carries everything.
	PairJain float64
	// ActivePairs counts (src,dst) pairs with nonzero run-total traffic.
	ActivePairs int
	// The hottest pair and its lead over the runner-up pair — the comm
	// analogue of traceview's straggler slack: HotSlack is how much the
	// hot pair's load would have to drop before attribution moves.
	HotSrc      int
	HotDst      int
	HotMessages int64
	HotSlack    int64
	// PerStepMessages[s] is superstep s's total traffic and
	// PerStepActivePairs[s] its nonzero pair count — the evolution series
	// the report and heatmap page plot.
	PerStepMessages    []int64
	PerStepActivePairs []int
}

// Summarize derives the Summary of one run (as split by GroupRuns). An
// empty run yields a zero Summary.
func Summarize(run []Superstep) Summary {
	s := Summary{Supersteps: len(run)}
	if len(run) == 0 {
		return s
	}
	k := run[0].Machines
	s.Machines = k
	s.Matrix = make([][]int64, k)
	for i := range s.Matrix {
		s.Matrix[i] = make([]int64, k)
	}
	s.Out = make([]int64, k)
	s.In = make([]int64, k)
	s.PerStepMessages = make([]int64, len(run))
	s.PerStepActivePairs = make([]int, len(run))
	for idx, st := range run {
		for i, row := range st.Pairs {
			for j, n := range row {
				if n == 0 {
					continue
				}
				s.Matrix[i][j] += n
				s.PerStepMessages[idx] += n
				s.PerStepActivePairs[idx]++
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			n := s.Matrix[i][j]
			s.Out[i] += n
			s.In[j] += n
			s.Messages += n
			if n > 0 {
				s.ActivePairs++
			}
		}
	}
	s.ImbalanceRatio = imbalance(s.In, s.Out)
	s.PairJain = pairJain(s.Matrix)
	s.HotSrc, s.HotDst, s.HotMessages, s.HotSlack = hotPair(s.Matrix)
	return s
}

// imbalance is max(in+out) over mean(in+out), counting only machines with
// any traffic (a restreamed-away machine would otherwise drag the mean).
func imbalance(in, out []int64) float64 {
	var max, sum int64
	live := 0
	for i := range in {
		t := in[i] + out[i]
		if t == 0 {
			continue
		}
		live++
		sum += t
		if t > max {
			max = t
		}
	}
	if live == 0 || sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(live)
	return float64(max) / mean
}

// pairJain is Jain's fairness index (Σx)²/(n·Σx²) over every off-diagonal
// cell — including the zero ones, so a topology where one pair carries all
// traffic scores 1/(K·(K−1)), not 1.
func pairJain(m [][]int64) float64 {
	var sum, sumSq float64
	n := 0
	for i, row := range m {
		for j, x := range row {
			if i == j {
				continue
			}
			n++
			f := float64(x)
			sum += f
			sumSq += f * f
		}
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// hotPair finds the heaviest off-diagonal cell and its lead over the
// runner-up. Ties resolve to the lowest (src, dst) in row-major order, so
// reports are deterministic — the same convention as traceview's
// argmaxSlack.
func hotPair(m [][]int64) (src, dst int, max, slack int64) {
	src, dst = -1, -1
	var second int64
	seen := 0
	for i, row := range m {
		for j, x := range row {
			if i == j {
				continue
			}
			seen++
			if seen == 1 || x > max {
				if seen > 1 {
					second = max
				}
				src, dst, max = i, j, x
			} else if seen == 2 || x > second {
				second = x
			}
		}
	}
	if seen <= 1 {
		return src, dst, max, 0
	}
	return src, dst, max, max - second
}

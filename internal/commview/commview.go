// Package commview is the communication-topology half of the repo's
// observability story: internal/cluster (with SetCommMatrix enabled)
// records a per-superstep K×K src→dst message matrix into its
// "cluster.superstep" trace events, and commview reads it back.
//
// The paper's core claim is that two-dimensional balance flattens
// communication load across machines; aggregate per-machine message counts
// (traceview's view) cannot show *who talks to whom*, so this package
// derives the topology-level quantities — comm imbalance ratio,
// per-machine in/out skew, hot-pair attribution with runner-up slack
// (mirroring traceview's straggler pattern) — and a reconciliation bridge
// correlating observed traffic against the partitioner's predicted edge
// cut from the partaudit timeline. cmd/tracestat's `comm` subcommand is
// the CLI over this package.
package commview

import (
	"fmt"
	"io"
	"os"

	"bpart/internal/cluster"
	"bpart/internal/traceview"
)

// Superstep is one decoded superstep's communication matrix plus the flat
// counters it must reconcile with.
type Superstep struct {
	// Iteration is the cluster's monotone superstep number (shared across
	// algorithm supersteps and recovery phases of one cluster).
	Iteration int
	// Machines is the cluster size K.
	Machines int
	// Phase is "" for an algorithm superstep, or the recovery phase kind
	// ("checkpoint", "restore", "restream") for a barrier the fault
	// controller charged.
	Phase string
	// Pairs[i][j] counts messages charged to machine i whose remote peer
	// is machine j. The diagonal is zero and row i sums to Messages[i].
	Pairs [][]int64
	// Messages, Edges and Steps echo the flat per-machine counters of the
	// same superstep (Edges and Steps feed the observed-cut-share side of
	// the partaudit reconciliation).
	Messages []int64
	Edges    []int64
	Steps    []int64
}

// Log is a fully decoded comm-matrix stream.
type Log struct {
	Steps []Superstep
	// Truncated mirrors traceview.Trace.Truncated: the underlying trace's
	// final line was torn, the decoded prefix is complete and usable.
	Truncated bool
}

// Read parses a JSONL trace and decodes its comm matrices. It inherits
// traceview.Read's tolerance contract exactly: only a torn final line is
// tolerated (flagged via Log.Truncated), interior damage or an
// all-garbage first line is a hard error. A valid trace whose supersteps
// carry no "pairs" attr (matrix capture was off) decodes to zero steps,
// which is not an error — the caller decides how to report it.
func Read(r io.Reader) (*Log, error) {
	tr, err := traceview.Read(r)
	if err != nil {
		return nil, err
	}
	steps, err := FromTrace(tr)
	if err != nil {
		return nil, err
	}
	return &Log{Steps: steps, Truncated: tr.Truncated}, nil
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// FromTrace decodes the comm matrix of every cluster.superstep event that
// carries one, in trace order. Supersteps without a "pairs" attr (capture
// disabled, or a pre-commview trace) are skipped silently; a present but
// malformed matrix — wrong shape, non-numeric cells — is a hard error,
// since a silently dropped matrix would skew every derived statistic.
func FromTrace(tr *traceview.Trace) ([]Superstep, error) {
	var out []Superstep
	for _, r := range tr.Events("cluster.superstep") {
		raw, present := r.Attrs["pairs"]
		if !present {
			continue
		}
		st := Superstep{}
		var ok bool
		if st.Iteration, ok = r.Int("iteration"); !ok {
			return nil, fmt.Errorf("commview: superstep record missing iteration attr")
		}
		if st.Machines, ok = r.Int("machines"); !ok {
			return nil, fmt.Errorf("commview: superstep %d missing machines attr", st.Iteration)
		}
		st.Phase, _ = r.Str("phase")
		if st.Pairs, ok = decodePairs(raw, st.Machines); !ok {
			return nil, fmt.Errorf("commview: superstep %d: bad pairs matrix (want %d×%d numbers)", st.Iteration, st.Machines, st.Machines)
		}
		for _, f := range []struct {
			key string
			dst *[]int64
		}{{"messages", &st.Messages}, {"edges", &st.Edges}, {"steps", &st.Steps}} {
			v, ok := r.Ints(f.key)
			if !ok || len(v) != st.Machines {
				return nil, fmt.Errorf("commview: superstep %d: bad %s array (want %d machines)", st.Iteration, f.key, st.Machines)
			}
			*f.dst = v
		}
		out = append(out, st)
	}
	return out, nil
}

// decodePairs converts the JSON-decoded pairs attr ([]any of []any of
// float64) into a k×k matrix.
func decodePairs(raw any, k int) ([][]int64, bool) {
	rows, ok := raw.([]any)
	if !ok || len(rows) != k {
		return nil, false
	}
	out := make([][]int64, k)
	for i, rr := range rows {
		cells, ok := rr.([]any)
		if !ok || len(cells) != k {
			return nil, false
		}
		row := make([]int64, k)
		for j, c := range cells {
			f, ok := c.(float64)
			if !ok {
				return nil, false
			}
			row[j] = int64(f)
		}
		out[i] = row
	}
	return out, true
}

// FromRunStats decodes comm matrices straight from a live run's RunStats —
// the in-process path the BENCH artifact and the Comm Matrix experiment
// use, bypassing the JSONL round-trip. Iterations without a captured
// matrix are skipped, mirroring FromTrace; Phase is "" throughout (the
// RunStats carry no phase kinds).
func FromRunStats(stats *cluster.RunStats) []Superstep {
	var out []Superstep
	for i := range stats.Iterations {
		it := &stats.Iterations[i]
		if it.Work.Pairs == nil {
			continue
		}
		out = append(out, Superstep{
			Iteration: i,
			Machines:  len(it.Compute),
			Pairs:     it.Work.Pairs,
			Messages:  it.Work.Messages,
			Edges:     it.Work.Edges,
			Steps:     it.Work.Steps,
		})
	}
	return out
}

// GroupRuns splits a superstep stream into runs, exactly as
// traceview.GroupRuns does: the cluster numbers supersteps monotonically
// per instance, so an iteration reset or a machine-count change starts a
// new run.
func GroupRuns(steps []Superstep) [][]Superstep {
	var runs [][]Superstep
	for i, st := range steps {
		if i == 0 || st.Iteration <= steps[i-1].Iteration || st.Machines != steps[i-1].Machines {
			runs = append(runs, nil)
		}
		runs[len(runs)-1] = append(runs[len(runs)-1], st)
	}
	return runs
}

// CheckMessages verifies the reconciliation invariant on every superstep:
// matrix row i must sum to the flat Messages[i] counter exactly, and the
// diagonal must be zero (a machine never messages itself). A violation
// means an engine updated one counter without the other — corrupted
// instrumentation, not a quality problem — so it is an error, not a metric.
func CheckMessages(steps []Superstep) error {
	for _, st := range steps {
		for i, row := range st.Pairs {
			var sum int64
			for j, n := range row {
				if n < 0 {
					return fmt.Errorf("commview: superstep %d: negative pair count %d at [%d][%d]", st.Iteration, n, i, j)
				}
				if i == j && n != 0 {
					return fmt.Errorf("commview: superstep %d: machine %d messages itself (%d)", st.Iteration, i, n)
				}
				sum += n
			}
			if sum != st.Messages[i] {
				return fmt.Errorf("commview: superstep %d: machine %d row sum %d != messages %d", st.Iteration, i, sum, st.Messages[i])
			}
		}
	}
	return nil
}

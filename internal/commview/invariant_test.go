package commview

import (
	"testing"

	"bpart/internal/cluster"
	_ "bpart/internal/core" // registers the BPart partitioner
	"bpart/internal/engine"
	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
	"bpart/internal/walk"
)

// The reconciliation invariant, end to end: with matrix capture on, every
// superstep's matrix row sums must equal the per-machine Work.Messages the
// engines have always counted, and the run-total matrix must equal the
// registry's cluster_messages_total — bit-exactly, across engines,
// partitioning schemes, and fault schedules. Any drift means an engine
// updated one counter without the other.

const invK = 4

func invGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Preset(gen.LJSim, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func invAssignment(t *testing.T, g *graph.Graph, scheme string) []int {
	t.Helper()
	p, err := partition.Get(scheme)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Partition(g, invK)
	if err != nil {
		t.Fatal(err)
	}
	return a.Parts
}

// checkRun asserts the invariant over one finished run.
func checkRun(t *testing.T, name string, stats *cluster.RunStats, reg *telemetry.Registry) {
	t.Helper()
	steps := FromRunStats(stats)
	if len(steps) != len(stats.Iterations) {
		t.Fatalf("%s: %d of %d supersteps carry a matrix — capture must cover every observed superstep",
			name, len(steps), len(stats.Iterations))
	}
	if err := CheckMessages(steps); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var matrixTotal int64
	for _, st := range steps {
		for _, row := range st.Pairs {
			for _, n := range row {
				matrixTotal += n
			}
		}
	}
	if got := reg.Counter("cluster_messages_total").Value(); got != matrixTotal {
		t.Fatalf("%s: matrix total %d != cluster_messages_total %d", name, matrixTotal, got)
	}
}

func TestInvariantIterationEngines(t *testing.T) {
	g := invGraph(t)
	for _, scheme := range []string{"Chunk-V", "Fennel", "BPart"} {
		parts := invAssignment(t, g, scheme)
		for _, alg := range []struct {
			name string
			run  func(e *engine.Engine) (*cluster.RunStats, error)
		}{
			{"pagerank", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.PageRank(4, 0.85)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"pagerank-pull", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.PageRankPull(4, 0.85)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"cc", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.ConnectedComponents(6)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"bfs", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.BFS(0)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"dobfs", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.BFSDirectionOptimizing(0)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"sssp", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.SSSP(0)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
			{"kcore", func(e *engine.Engine) (*cluster.RunStats, error) {
				r, err := e.KCore(5)
				if err != nil {
					return nil, err
				}
				return &r.Stats, nil
			}},
		} {
			e, err := engine.New(g, parts, invK, cluster.DefaultCostModel())
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			e.SetTelemetry(nil, reg)
			e.Cluster().SetCommMatrix(true)
			stats, err := alg.run(e)
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, alg.name, err)
			}
			checkRun(t, scheme+"/"+alg.name, stats, reg)
		}
	}
}

func TestInvariantWalkEngine(t *testing.T) {
	g := invGraph(t)
	parts := invAssignment(t, g, "Fennel")
	e, err := walk.New(g, parts, invK, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.SetTelemetry(nil, reg)
	e.Cluster().SetCommMatrix(true)
	res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: 1, Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, "walk", &res.Stats, reg)

	// Cross-check against the walk engine's own independently counted
	// Traffic matrix: Traffic is tallied at delivery in the merge phase,
	// Pairs at send in the parallel phase — they must agree cell for cell.
	sum := Summarize(FromRunStats(&res.Stats))
	for i := range res.Traffic {
		for j, n := range res.Traffic[i] {
			if sum.Matrix[i][j] != n {
				t.Fatalf("Pairs[%d][%d] = %d, walk Traffic = %d", i, j, sum.Matrix[i][j], n)
			}
		}
	}
}

// Fault schedules: rollback replays and restream placement surgery must
// both preserve the invariant, and the restream phase's own transfer
// traffic must appear in the matrix with matching row sums.
func TestInvariantUnderFaults(t *testing.T) {
	g := invGraph(t)
	parts := invAssignment(t, g, "Chunk-V")
	for _, spec := range []*fault.Spec{
		{Policy: fault.Rollback, CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 3, Machine: 1}}},
		{Policy: fault.Restream, CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 2, Machine: 2}}},
	} {
		e, err := engine.New(g, parts, invK, cluster.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		e.SetTelemetry(nil, reg)
		e.Cluster().SetCommMatrix(true)
		ctl, err := fault.NewController(g, e.Cluster(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetFaults(ctl); err != nil {
			t.Fatal(err)
		}
		r, err := e.PageRank(6, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		if r.Recovery == nil || r.Recovery.Crashes == 0 {
			t.Fatalf("policy %s: schedule fired no crash", spec.Policy)
		}
		checkRun(t, "faults/"+string(spec.Policy), &r.Stats, reg)
		if spec.Policy == fault.Restream {
			// The restream phase streamed RestreamedVertices states off the
			// dead machine (2); its matrix rows must carry at least that
			// much outbound traffic, on top of its pre-crash edge messages.
			var fromDead int64
			for _, st := range FromRunStats(&r.Stats) {
				fromDead += st.Pairs[2][0] + st.Pairs[2][1] + st.Pairs[2][3]
			}
			if fromDead < int64(r.Recovery.RestreamedVertices) {
				t.Fatalf("dead machine's matrix rows carry %d messages, want >= %d restreamed vertices",
					fromDead, r.Recovery.RestreamedVertices)
			}
		}
	}
}

// Capture must change nothing but the matrix: the same run with capture
// off and on yields identical timing, flat counters and registry totals.
func TestCaptureIsObservationOnly(t *testing.T) {
	g := invGraph(t)
	parts := invAssignment(t, g, "BPart")
	run := func(capture bool) (*engine.PRResult, *telemetry.Registry) {
		e, err := engine.New(g, parts, invK, cluster.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		e.SetTelemetry(nil, reg)
		e.Cluster().SetCommMatrix(capture)
		r, err := e.PageRank(4, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		return r, reg
	}
	off, regOff := run(false)
	on, regOn := run(true)
	if off.Stats.TotalTime() != on.Stats.TotalTime() {
		t.Fatalf("capture changed sim time: %v vs %v", off.Stats.TotalTime(), on.Stats.TotalTime())
	}
	if off.Stats.TotalMessages() != on.Stats.TotalMessages() {
		t.Fatalf("capture changed message count: %d vs %d", off.Stats.TotalMessages(), on.Stats.TotalMessages())
	}
	if a, b := regOff.Counter("cluster_messages_total").Value(), regOn.Counter("cluster_messages_total").Value(); a != b {
		t.Fatalf("capture changed cluster_messages_total: %d vs %d", a, b)
	}
	// comm_* metrics exist only on the capture side.
	if v := regOff.Counter("comm_messages_total").Value(); v != 0 {
		t.Fatalf("disabled run grew comm_messages_total = %d", v)
	}
	if v := regOn.Counter("comm_messages_total").Value(); v != on.Stats.TotalMessages() {
		t.Fatalf("comm_messages_total = %d, want %d", v, on.Stats.TotalMessages())
	}
}

package commview

import (
	"fmt"
	"io"

	"bpart/internal/htmlpage"
)

// WriteHTML renders the self-contained comm-topology page: per run, an SVG
// src→dst heatmap of the summed matrix and a per-superstep traffic
// evolution strip. Same chrome as the trace and audit timelines
// (internal/htmlpage), no external assets, byte-deterministic for a
// deterministic trace.
func WriteHTML(w io.Writer, log *Log, title string) error {
	if err := htmlpage.Start(w, title); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	if log.Truncated {
		ew.printf("<p class=\"warn\">final trace line torn; analyzing the intact prefix</p>\n")
	}
	runs := GroupRuns(log.Steps)
	if len(runs) == 0 {
		ew.printf("<p class=\"meta\">No comm matrices in trace: matrix capture was off (enable with Cluster.SetCommMatrix).</p>\n")
	}
	for i, run := range runs {
		writeRunHTML(ew, i+1, run)
	}
	if ew.err != nil {
		return ew.err
	}
	return htmlpage.End(w)
}

func writeRunHTML(ew *errWriter, idx int, run []Superstep) {
	s := Summarize(run)
	ew.printf("<h2>Run %d</h2>\n", idx)
	ew.printf("<p class=\"meta\">%d machines, %d supersteps, %d messages — imbalance %.4f, pair Jain %.4f",
		s.Machines, s.Supersteps, s.Messages, s.ImbalanceRatio, s.PairJain)
	if s.HotSrc >= 0 {
		ew.printf(", hot pair M%d&rarr;M%d (%d, slack %d)", s.HotSrc, s.HotDst, s.HotMessages, s.HotSlack)
	}
	ew.printf("</p>\n")
	writeHeatmap(ew, &s)
	writeEvolutionSVG(ew, run, &s)
}

// writeHeatmap draws the K×K matrix as a colored grid: white = no traffic,
// saturated red = the run's hottest pair.
func writeHeatmap(ew *errWriter, s *Summary) {
	const cell, label = 26, 34
	k := s.Machines
	wpx := label + k*cell + 10
	hpx := label + k*cell + 10
	var max int64
	for _, row := range s.Matrix {
		for _, n := range row {
			if n > max {
				max = n
			}
		}
	}
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", wpx, hpx)
	for j := 0; j < k; j++ {
		ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\" text-anchor=\"middle\">M%d</text>\n",
			label+j*cell+cell/2, label-8, j)
	}
	for i := 0; i < k; i++ {
		ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\" text-anchor=\"end\">M%d</text>\n",
			label-6, label+i*cell+cell/2+4, i)
		for j := 0; j < k; j++ {
			n := s.Matrix[i][j]
			fill := "#eee"
			if i != j && max > 0 {
				// Intensity ramps white→red with load share.
				g := int(240 - 200*float64(n)/float64(max))
				fill = fmt.Sprintf("rgb(240,%d,%d)", g, g)
			}
			ew.printf("<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"#ccc\"><title>M%d&rarr;M%d: %d</title></rect>\n",
				label+j*cell, label+i*cell, cell, cell, fill, i, j, n)
		}
	}
	ew.printf("</svg>\n")
}

// writeEvolutionSVG draws per-superstep total traffic as a bar strip;
// recovery-phase bars are outlined darker so restream spikes stand out.
func writeEvolutionSVG(ew *errWriter, run []Superstep, s *Summary) {
	const barW, maxH, base = 6, 60, 14
	var max int64
	for _, m := range s.PerStepMessages {
		if m > max {
			max = m
		}
	}
	if max == 0 {
		return
	}
	wpx := len(run)*barW + 10
	ew.printf("<p class=\"meta\">per-superstep traffic (dark = recovery phase)</p>\n")
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", wpx, maxH+base)
	for i, st := range run {
		h := int(float64(s.PerStepMessages[i]) / float64(max) * maxH)
		if h < 1 && s.PerStepMessages[i] > 0 {
			h = 1
		}
		fill := "#69c"
		if st.Phase != "" {
			fill = "#333"
		}
		ew.printf("<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"><title>superstep %d: %d</title></rect>\n",
			5+i*barW, maxH-h, barW-1, h, fill, st.Iteration, s.PerStepMessages[i])
	}
	ew.printf("</svg>\n")
}

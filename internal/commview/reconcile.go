package commview

import (
	"fmt"

	"bpart/internal/partaudit"
)

// Reconciliation correlates the traffic a run actually generated against
// the edge cut its partitioner predicted — the bridge between the
// partaudit timeline (what the streaming heuristic thought it was buying)
// and the comm matrix (what the cluster then paid).
type Reconciliation struct {
	// ObservedCutShare is the run's cross-machine messages divided by its
	// message opportunities: Σmessages / Σ(edges+steps) over algorithm
	// supersteps. Push engines send one message per cut edge scanned
	// (edges is the opportunity count; steps is zero), the walk engine
	// one per walker step that crosses machines (steps counts, edges is
	// zero), so the share is the traffic-weighted cut ratio the run
	// actually experienced.
	ObservedCutShare float64
	// PredictedCutRatio is the partitioner's cut ratio from the audit log
	// (Final record, falling back to the last window of a crashed run).
	PredictedCutRatio float64
	// Gap = ObservedCutShare − PredictedCutRatio. Near zero for push
	// iteration engines on static placements; pull mode's mirror dedup
	// drives it negative, fault restreaming moves it as the placement
	// degrades — the gap's sign and drift are the signal, not noise.
	Gap float64
	// Messages and Opportunities are the raw numerator and denominator
	// behind ObservedCutShare.
	Messages      int64
	Opportunities int64
}

// Reconcile derives the Reconciliation of one run against an audit log.
// Recovery-phase supersteps (Phase != "") are excluded from the observed
// side: restream transfers are placement surgery, not edge traffic, and
// would skew the cut-share estimate they exist to explain. Errors: a run
// with no message opportunities, or a log carrying neither a final record
// nor any window.
func Reconcile(run []Superstep, log *partaudit.Log) (Reconciliation, error) {
	var r Reconciliation
	for _, st := range run {
		if st.Phase != "" {
			continue
		}
		for i := range st.Messages {
			r.Messages += st.Messages[i]
			r.Opportunities += st.Edges[i] + st.Steps[i]
		}
	}
	if r.Opportunities == 0 {
		return r, fmt.Errorf("commview: reconcile: run has no message opportunities (no algorithm supersteps with edge or step work)")
	}
	r.ObservedCutShare = float64(r.Messages) / float64(r.Opportunities)
	switch {
	case log.Final != nil:
		r.PredictedCutRatio = log.Final.CutRatio
	case len(log.Windows) > 0:
		r.PredictedCutRatio = log.Windows[len(log.Windows)-1].CutRatio
	default:
		return r, fmt.Errorf("commview: reconcile: audit log has no final record and no windows")
	}
	r.Gap = r.ObservedCutShare - r.PredictedCutRatio
	return r, nil
}

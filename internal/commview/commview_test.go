package commview

import (
	"strings"
	"testing"

	"bpart/internal/partaudit"
)

// sampleTrace is a two-superstep, two-machine trace with pairs matrices,
// plus one pre-commview superstep (no pairs attr) that must be skipped.
const sampleTrace = `{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":100,"waiting_us_total":0,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[10,10],"vertices":[2,2],"messages":[3,1],"pairs":[[0,3],[1,0]]}}
{"ts":"2026-08-07T12:00:01Z","type":"event","name":"cluster.superstep","attrs":{"iteration":1,"machines":2,"time_us":100,"waiting_us_total":0,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[8,4],"vertices":[2,2],"messages":[2,0],"pairs":[[0,2],[0,0]],"phase":"restream"}}
{"ts":"2026-08-07T12:00:02Z","type":"event","name":"cluster.superstep","attrs":{"iteration":2,"machines":2,"time_us":100,"waiting_us_total":0,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[1,1],"vertices":[1,1],"messages":[0,0]}}
`

func TestReadDecodesPairs(t *testing.T) {
	l, err := Read(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Steps) != 2 {
		t.Fatalf("decoded %d steps, want 2 (pairs-less superstep skipped)", len(l.Steps))
	}
	st := l.Steps[0]
	if st.Iteration != 0 || st.Machines != 2 || st.Phase != "" {
		t.Fatalf("step 0 = %+v", st)
	}
	if st.Pairs[0][1] != 3 || st.Pairs[1][0] != 1 {
		t.Fatalf("step 0 pairs = %v", st.Pairs)
	}
	if l.Steps[1].Phase != "restream" {
		t.Fatalf("step 1 phase = %q, want restream", l.Steps[1].Phase)
	}
	if err := CheckMessages(l.Steps); err != nil {
		t.Fatalf("CheckMessages: %v", err)
	}
}

func TestReadRejectsMalformedPairs(t *testing.T) {
	for name, trace := range map[string]string{
		"wrong shape":      `{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[1,1],"vertices":[1,1],"messages":[0,0],"pairs":[[0,0]]}}` + "\n",
		"non-numeric":      `{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"steps":[0,0],"edges":[1,1],"vertices":[1,1],"messages":[0,0],"pairs":[[0,"x"],[0,0]]}}` + "\n",
		"missing messages": `{"ts":"2026-08-07T12:00:00Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":1,"compute":[1,1],"comm":[1,1],"waiting":[0,0],"pairs":[[0,0],[0,0]]}}` + "\n",
	} {
		if _, err := Read(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: Read accepted a malformed matrix", name)
		}
	}
}

func TestReadAllGarbageHardError(t *testing.T) {
	if _, err := Read(strings.NewReader("not json at all\n")); err == nil {
		t.Fatal("Read accepted all-garbage input")
	}
}

func TestReadTornTail(t *testing.T) {
	torn := sampleTrace + `{"ts":"2026-08-07T12:0`
	l, err := Read(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Truncated {
		t.Fatal("torn tail not flagged")
	}
	if len(l.Steps) != 2 {
		t.Fatalf("decoded %d steps from intact prefix, want 2", len(l.Steps))
	}
}

func TestCheckMessagesViolations(t *testing.T) {
	base := func() []Superstep {
		return []Superstep{{
			Iteration: 0, Machines: 2,
			Pairs:    [][]int64{{0, 2}, {1, 0}},
			Messages: []int64{2, 1},
			Edges:    []int64{4, 4},
			Steps:    []int64{0, 0},
		}}
	}
	ok := base()
	if err := CheckMessages(ok); err != nil {
		t.Fatalf("valid steps rejected: %v", err)
	}
	badSum := base()
	badSum[0].Messages[0] = 5
	if err := CheckMessages(badSum); err == nil {
		t.Fatal("row-sum mismatch accepted")
	}
	badDiag := base()
	badDiag[0].Pairs[0][0] = 1
	badDiag[0].Messages[0] = 3
	if err := CheckMessages(badDiag); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	badNeg := base()
	badNeg[0].Pairs[0][1] = -2
	if err := CheckMessages(badNeg); err == nil {
		t.Fatal("negative pair count accepted")
	}
}

func TestGroupRunsSplitsOnReset(t *testing.T) {
	steps := []Superstep{
		{Iteration: 0, Machines: 2}, {Iteration: 1, Machines: 2},
		{Iteration: 0, Machines: 2}, // new cluster: counter reset
		{Iteration: 1, Machines: 3}, // machine-count change
	}
	runs := GroupRuns(steps)
	if len(runs) != 3 || len(runs[0]) != 2 || len(runs[1]) != 1 || len(runs[2]) != 1 {
		t.Fatalf("runs = %v", runs)
	}
}

func TestSummarize(t *testing.T) {
	run := []Superstep{
		{
			Iteration: 0, Machines: 3,
			Pairs:    [][]int64{{0, 4, 1}, {2, 0, 0}, {1, 0, 0}},
			Messages: []int64{5, 2, 1},
		},
		{
			Iteration: 1, Machines: 3,
			Pairs:    [][]int64{{0, 4, 0}, {0, 0, 0}, {0, 0, 0}},
			Messages: []int64{4, 0, 0},
		},
	}
	s := Summarize(run)
	if s.Messages != 12 {
		t.Fatalf("Messages = %d, want 12", s.Messages)
	}
	if s.Matrix[0][1] != 8 {
		t.Fatalf("Matrix[0][1] = %d, want 8", s.Matrix[0][1])
	}
	if s.Out[0] != 9 || s.In[1] != 8 {
		t.Fatalf("Out = %v, In = %v", s.Out, s.In)
	}
	if s.HotSrc != 0 || s.HotDst != 1 || s.HotMessages != 8 || s.HotSlack != 6 {
		t.Fatalf("hot pair = M%d->M%d %d slack %d", s.HotSrc, s.HotDst, s.HotMessages, s.HotSlack)
	}
	if s.ActivePairs != 4 {
		t.Fatalf("ActivePairs = %d, want 4", s.ActivePairs)
	}
	// Machine totals: M0 = 9+3 = 12, M1 = 2+8 = 10, M2 = 1+1 = 2;
	// mean = 8, max = 12 → imbalance 1.5.
	if s.ImbalanceRatio != 1.5 {
		t.Fatalf("ImbalanceRatio = %v, want 1.5", s.ImbalanceRatio)
	}
	if s.PerStepMessages[1] != 4 || s.PerStepActivePairs[1] != 1 {
		t.Fatalf("evolution = %v / %v", s.PerStepMessages, s.PerStepActivePairs)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.Machines != 0 || s.Messages != 0 {
		t.Fatalf("empty run summary = %+v", s)
	}
	// All-zero matrix: no active pairs, hot pair present but zero.
	s := Summarize([]Superstep{{
		Iteration: 0, Machines: 2,
		Pairs: [][]int64{{0, 0}, {0, 0}}, Messages: []int64{0, 0},
	}})
	if s.ImbalanceRatio != 0 || s.PairJain != 0 || s.ActivePairs != 0 {
		t.Fatalf("zero-traffic summary = %+v", s)
	}
}

func TestPairJainBounds(t *testing.T) {
	flat := pairJain([][]int64{{0, 5, 5}, {5, 0, 5}, {5, 5, 0}})
	if flat != 1 {
		t.Fatalf("flat Jain = %v, want 1", flat)
	}
	// One pair carries everything: 1/(K·(K−1)) = 1/6.
	skew := pairJain([][]int64{{0, 9, 0}, {0, 0, 0}, {0, 0, 0}})
	if diff := skew - 1.0/6; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("single-pair Jain = %v, want 1/6", skew)
	}
}

func TestReconcile(t *testing.T) {
	run := []Superstep{
		{Iteration: 0, Machines: 2, Messages: []int64{3, 1}, Edges: []int64{10, 10}, Steps: []int64{0, 0},
			Pairs: [][]int64{{0, 3}, {1, 0}}},
		// Recovery phase: excluded from the observed side.
		{Iteration: 1, Machines: 2, Phase: "restream", Messages: []int64{100, 0}, Edges: []int64{0, 0}, Steps: []int64{0, 0},
			Pairs: [][]int64{{0, 100}, {0, 0}}},
	}
	audit := &partaudit.Log{Final: &partaudit.Final{CutRatio: 0.25}}
	r, err := Reconcile(run, audit)
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages != 4 || r.Opportunities != 20 {
		t.Fatalf("observed %d/%d, want 4/20", r.Messages, r.Opportunities)
	}
	if r.ObservedCutShare != 0.2 || r.PredictedCutRatio != 0.25 {
		t.Fatalf("shares = %v vs %v", r.ObservedCutShare, r.PredictedCutRatio)
	}
	if diff := r.Gap - (-0.05); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("gap = %v, want -0.05", r.Gap)
	}

	// Fallback to the last window when there is no final record.
	windowed := &partaudit.Log{Windows: []partaudit.Window{{CutRatio: 0.5}, {CutRatio: 0.3}}}
	r, err = Reconcile(run, windowed)
	if err != nil {
		t.Fatal(err)
	}
	if r.PredictedCutRatio != 0.3 {
		t.Fatalf("windowed predicted = %v, want 0.3", r.PredictedCutRatio)
	}

	if _, err := Reconcile(run, &partaudit.Log{}); err == nil {
		t.Fatal("empty audit log accepted")
	}
	if _, err := Reconcile(nil, audit); err == nil {
		t.Fatal("empty run accepted")
	}
}

func TestWriteReportDeterministic(t *testing.T) {
	l, err := Read(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var b strings.Builder
		if err := WriteReport(&b, l, ReportOptions{Audit: &partaudit.Log{Final: &partaudit.Final{CutRatio: 0.2}}}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	for _, want := range []string{
		"RUN 1", "comm imbalance ratio", "hot pair M0->M1",
		"src\\dst matrix", "[restream]", "reconciliation vs partitioner",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if out != render() {
		t.Fatal("report not byte-identical across renders")
	}
}

func TestWriteReportNoMatrices(t *testing.T) {
	var b strings.Builder
	if err := WriteReport(&b, &Log{}, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "matrix capture was off") {
		t.Fatalf("empty-log report = %q", b.String())
	}
}

func TestWriteHTMLDeterministic(t *testing.T) {
	l, err := Read(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var b strings.Builder
		if err := WriteHTML(&b, l, "comm heatmap"); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	for _, want := range []string{"<svg", "Run 1", "rgb(240,", "</html>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	if out != render() {
		t.Fatal("HTML not byte-identical across renders")
	}
}

// Writer errors must surface, not vanish — the errio discipline.
func TestWriteReportWriterError(t *testing.T) {
	l, err := Read(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(failWriter{}, l, ReportOptions{}); err == nil {
		t.Fatal("WriteReport swallowed the writer error")
	}
	if err := WriteHTML(failWriter{}, l, "x"); err == nil {
		t.Fatal("WriteHTML swallowed the writer error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = errorString("writer failed")

type errorString string

func (e errorString) Error() string { return string(e) }

package resview

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary byte streams at the resource-log reader. It
// inherits traceview.Read's tolerance contract — only a torn final line may
// be damaged, all-garbage input is a hard error — so it must never panic,
// must parse the same bytes identically twice, and every accepted record
// must satisfy the schema invariants the parser promises (known kind,
// non-empty phase, non-negative wall clock).
func FuzzRead(f *testing.F) {
	valid := `{"v":1,"type":"resource","seq":0,"kind":"span","phase":"partition.stream","wall_us":123.5,"allocs":10,"alloc_bytes":4096,"heap_bytes":1000,"gc_cycles":1,"gc_pause_us":5,"goroutines":2,"attrs":{"k":8}}` + "\n"
	lap := `{"v":1,"type":"resource","seq":1,"kind":"lap","phase":"cluster.superstep","wall_us":10,"allocs":0,"alloc_bytes":0,"heap_bytes":500,"gc_cycles":0,"gc_pause_us":0,"goroutines":3,"attrs":{"iter":0}}` + "\n"
	scaling := `{"v":1,"type":"resource","seq":2,"kind":"span","phase":"scaling.replay","wall_us":50,"attrs":{"scheme":"Fennel","workers":2}}` + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid + lap + scaling))
	// Torn final line after a valid prefix: tolerated.
	f.Add([]byte(valid + `{"v":1,"type":"resou`))
	// Interior damage and all-garbage first lines: hard errors.
	f.Add([]byte("garbage\n" + valid))
	f.Add([]byte("garbage\n"))
	// Schema violations: wrong version, wrong type, bad kind, negative wall.
	f.Add([]byte(`{"v":2,"type":"resource","seq":0,"kind":"span","phase":"a","wall_us":1}` + "\n"))
	f.Add([]byte(`{"v":1,"type":"span","seq":0,"kind":"span","phase":"a","wall_us":1}` + "\n"))
	f.Add([]byte(`{"v":1,"type":"resource","seq":0,"kind":"x","phase":"a","wall_us":1}` + "\n"))
	f.Add([]byte(`{"v":1,"type":"resource","seq":0,"kind":"span","phase":"a","wall_us":-1}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l == nil {
			t.Fatal("Read returned nil log with nil error")
		}
		l2, err2 := Read(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second Read of identical bytes failed: %v", err2)
		}
		if len(l2.Records) != len(l.Records) || l2.Truncated != l.Truncated {
			t.Fatalf("non-deterministic parse: %d/%v then %d/%v",
				len(l.Records), l.Truncated, len(l2.Records), l2.Truncated)
		}
		for i, r := range l.Records {
			if r.Kind != KindSpan && r.Kind != KindLap {
				t.Fatalf("record %d: unvalidated kind %q", i, r.Kind)
			}
			if r.Phase == "" {
				t.Fatalf("record %d: empty phase escaped the parser", i)
			}
			if r.WallUS < 0 {
				t.Fatalf("record %d: negative wall %v", i, r.WallUS)
			}
		}
		// The derived views must hold up on anything Read accepts.
		s := Summarize(l.Records)
		if len(s) > len(l.Records) {
			t.Fatalf("%d summaries from %d records", len(s), len(l.Records))
		}
		for _, c := range Curves(l.Records) {
			for j := 1; j < len(c.Points); j++ {
				if c.Points[j].Workers <= c.Points[j-1].Workers {
					t.Fatalf("curve %s: unsorted or duplicate widths", c.Scheme)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, l, ReportOptions{}); err != nil {
			t.Fatalf("report on accepted log: %v", err)
		}
		buf.Reset()
		if err := WriteHTML(&buf, l, "fuzz"); err != nil {
			t.Fatalf("html on accepted log: %v", err)
		}
	})
}

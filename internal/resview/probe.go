package resview

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	rmetrics "runtime/metrics"
	"sync"

	"bpart/internal/telemetry"
)

// gcCPUMetric is the runtime/metrics sample the probe reads next to
// MemStats: cumulative GC CPU seconds. Older or unusual runtimes may not
// export it; the probe degrades to omitting the field.
const gcCPUMetric = "/cpu/classes/gc/total:cpu-seconds"

// Probe captures runtime resource deltas around named phases and writes
// one versioned JSONL `resource` record per phase to its sink. It
// implements telemetry.PhaseProbe, so it attaches to every hook site
// (partition streams, BPart layers, cluster supersteps, bench experiments)
// without those packages importing resview.
//
// Capture is observation-only: a probed run's deterministic artifacts
// (assignments, traces, audit logs, BENCH sections) are byte-identical to
// an unprobed run's. Each record is written as one complete line and
// flushed, so a crashed run leaves at worst a torn final line — exactly
// what Read tolerates. Write and flush errors are sticky and surfaced by
// Flush/Close, never silently dropped.
//
// A nil *Probe is safe: every method is a no-op, so callers can thread an
// optional probe without guarding.
type Probe struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	werr error // first write failure, surfaced by Flush/Close
	seq  int64
	ms   runtime.MemStats // scratch, reused under mu
	laps map[string]snap  // per-name lap baselines
	// origin is the probe's creation snapshot: the baseline of the first
	// lap of every name.
	origin snap
	// cpu holds the runtime/metrics sample buffer; gcCPUOK degrades to
	// false the first time the runtime reports the metric unsupported.
	cpu     []rmetrics.Sample
	gcCPUOK bool
}

// snap is one point-in-time resource snapshot.
type snap struct {
	sw         *telemetry.Stopwatch
	mallocs    uint64
	totalAlloc uint64
	numGC      uint32
	pauseNs    uint64
	gcCPU      float64 // cumulative seconds; -1 when unsupported
}

// NewProbe returns a probe writing resource records to w. The caller owns
// w; call Close (or Flush) before reading the output, and check its error —
// a full disk must not silently truncate the log.
func NewProbe(w io.Writer) *Probe {
	p := &Probe{
		bw:      bufio.NewWriter(w),
		laps:    map[string]snap{},
		cpu:     []rmetrics.Sample{{Name: gcCPUMetric}},
		gcCPUOK: true,
	}
	p.origin = p.takeLocked()
	return p
}

// takeLocked snapshots the runtime. Callers hold p.mu (or, in NewProbe,
// have exclusive access).
func (p *Probe) takeLocked() snap {
	runtime.ReadMemStats(&p.ms)
	s := snap{
		sw:         telemetry.NewStopwatch(),
		mallocs:    p.ms.Mallocs,
		totalAlloc: p.ms.TotalAlloc,
		numGC:      p.ms.NumGC,
		pauseNs:    p.ms.PauseTotalNs,
		gcCPU:      -1,
	}
	if p.gcCPUOK {
		rmetrics.Read(p.cpu)
		if p.cpu[0].Value.Kind() == rmetrics.KindFloat64 {
			s.gcCPU = p.cpu[0].Value.Float64()
		} else {
			p.gcCPUOK = false
		}
	}
	return s
}

// BeginPhase implements telemetry.PhaseProbe.
func (p *Probe) BeginPhase(name string, attrs ...telemetry.Attr) telemetry.PhaseEnd {
	if p == nil {
		return telemetry.NopProbe().BeginPhase(name)
	}
	p.mu.Lock()
	begin := p.takeLocked()
	p.mu.Unlock()
	return &phaseEnd{p: p, name: name, begin: begin, attrs: append([]telemetry.Attr(nil), attrs...)}
}

// phaseEnd closes one BeginPhase observation.
type phaseEnd struct {
	p     *Probe
	name  string
	begin snap
	attrs []telemetry.Attr
}

// EndPhase implements telemetry.PhaseEnd.
func (e *phaseEnd) EndPhase(attrs ...telemetry.Attr) {
	p := e.p
	p.mu.Lock()
	end := p.takeLocked()
	p.emitLocked(KindSpan, e.name, e.begin, end, append(e.attrs, attrs...))
	p.mu.Unlock()
}

// Lap implements telemetry.PhaseProbe: one record covering everything
// since the previous Lap with the same name, or since the probe's creation
// for the first.
func (p *Probe) Lap(name string, attrs ...telemetry.Attr) {
	if p == nil {
		return
	}
	p.mu.Lock()
	begin, ok := p.laps[name]
	if !ok {
		begin = p.origin
	}
	end := p.takeLocked()
	p.laps[name] = end
	p.emitLocked(KindLap, name, begin, end, attrs)
	p.mu.Unlock()
}

// emitLocked writes one record. Callers hold p.mu. The end snapshot's
// MemStats still sit in p.ms, so HeapAlloc is read from there.
func (p *Probe) emitLocked(kind, phase string, begin, end snap, attrs []telemetry.Attr) {
	jr := jsonRecord{
		V:          SchemaVersion,
		Type:       "resource",
		Seq:        p.seq,
		Kind:       kind,
		Phase:      phase,
		WallUS:     begin.sw.Seconds() * 1e6,
		Allocs:     int64(end.mallocs - begin.mallocs),
		AllocBytes: int64(end.totalAlloc - begin.totalAlloc),
		HeapBytes:  int64(p.ms.HeapAlloc),
		GCCycles:   int64(end.numGC - begin.numGC),
		GCPauseUS:  float64(end.pauseNs-begin.pauseNs) / 1e3,
		Goroutines: runtime.NumGoroutine(),
	}
	p.seq++
	if begin.gcCPU >= 0 && end.gcCPU >= 0 {
		jr.GCCPUUS = (end.gcCPU - begin.gcCPU) * 1e6
	}
	if len(attrs) > 0 {
		jr.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			jr.Attrs[a.Key] = a.Value()
		}
	}
	line, err := json.Marshal(jr)
	if err != nil {
		// An unencodable attr payload should not kill the probed run;
		// degrade to a minimal record that keeps the stream parseable.
		minimal := jr
		minimal.Attrs = nil
		line, err = json.Marshal(minimal)
		if err != nil {
			if p.werr == nil {
				p.werr = err
			}
			return
		}
	}
	if _, err := p.bw.Write(append(line, '\n')); err != nil && p.werr == nil {
		p.werr = err
	}
	// Flush per record: resource records are per-phase, not per-vertex, so
	// the cost is negligible and a crashed run keeps its whole prefix.
	if err := p.bw.Flush(); err != nil && p.werr == nil {
		p.werr = err
	}
}

// Flush drains buffered records to the underlying writer. It returns the
// first error any record write hit, so a truncated log is never silent.
func (p *Probe) Flush() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bw.Flush(); p.werr == nil && err != nil {
		p.werr = err
	}
	return p.werr
}

// Close flushes; the underlying writer is the caller's to close.
func (p *Probe) Close() error { return p.Flush() }

var _ telemetry.PhaseProbe = (*Probe)(nil)

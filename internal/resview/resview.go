// Package resview is the runtime-resource half of the repo's
// observability story: a Probe (attached through telemetry.PhaseProbe, the
// hook interface the deterministic packages hold) snapshots real machine
// state — wall clock, allocations, live heap, GC cycles and pauses,
// goroutine counts — around named phases (partition streams, BPart
// combining layers, cluster supersteps, bench experiments) and streams the
// deltas as versioned JSONL `resource` records; this package reads them
// back and derives the phase self-time breakdown, alloc/GC attribution and
// the scaling-probe speedup curves. cmd/tracestat's `resources` subcommand
// is the CLI over it.
//
// Everything here is host-dependent by nature and therefore lives outside
// the determinism boundary: capture is strictly opt-in, the hook sites are
// one nil check when disabled, and no resource record ever flows into the
// trace, audit or BENCH byte-identity paths. For tests that compare probed
// runs, Log.StripWallClock zeroes every host-dependent field, mirroring
// the BENCH artifact's -deterministic normalization.
package resview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// SchemaVersion is the resource-record schema version. Bump it on any
// incompatible field change; the reader rejects versions it does not
// handle. The schema itself is documented in EXPERIMENTS.md.
const SchemaVersion = 1

// Record kinds: a span covers one BeginPhase/EndPhase pair; a lap covers
// everything since the previous lap of the same phase name.
const (
	KindSpan = "span"
	KindLap  = "lap"
)

// ScalingPhase is the phase name the scaling-probe and parallel-speedup
// harnesses (internal/experiments) record one span per (scheme, workers)
// repetition under; Curves derives the speedup plot from records with this
// name. The parallel harness namespaces its schemes as "Engine/Scheme"
// (e.g. "PageRank/BPart"), so its curves sort after the probe's.
const ScalingPhase = "scaling.replay"

// Record is one parsed resource record: the runtime's resource deltas over
// one named phase.
type Record struct {
	// Seq is the probe's monotone emission index.
	Seq int64
	// Kind is KindSpan or KindLap.
	Kind string
	// Phase is the phase name ("partition.stream", "cluster.superstep",
	// "bench.experiment", ...).
	Phase string
	// WallUS is the phase's wall-clock self-time in microseconds.
	WallUS float64
	// Allocs and AllocBytes are the heap objects and bytes allocated
	// during the phase (runtime.MemStats Mallocs/TotalAlloc deltas).
	Allocs     int64
	AllocBytes int64
	// HeapBytes is the live heap at phase end (HeapAlloc).
	HeapBytes int64
	// GCCycles and GCPauseUS are the garbage-collection cycles completed
	// and stop-the-world pause time (µs) accrued during the phase.
	GCCycles  int64
	GCPauseUS float64
	// GCCPUUS is the GC CPU time (µs) accrued during the phase, from
	// runtime/metrics; 0 when the runtime does not expose it.
	GCCPUUS float64
	// Goroutines is the goroutine count at phase end.
	Goroutines int
	// Attrs carries the phase's annotations (k, workers, scheme, ...).
	Attrs map[string]any
}

// Float returns the named attribute as a float64 (JSON numbers decode to
// float64), with ok reporting presence.
func (r *Record) Float(key string) (float64, bool) {
	v, ok := r.Attrs[key].(float64)
	return v, ok
}

// Int returns the named numeric attribute truncated to int.
func (r *Record) Int(key string) (int, bool) {
	v, ok := r.Float(key)
	return int(v), ok
}

// Str returns the named string attribute.
func (r *Record) Str(key string) (string, bool) {
	v, ok := r.Attrs[key].(string)
	return v, ok
}

// Log is a fully parsed resource log.
type Log struct {
	Records []Record
	// Truncated reports that the final line was torn — the writing process
	// died mid-write (the Probe writes whole lines, so only the last line
	// of a crashed run can be damaged). The parsed prefix is complete and
	// usable.
	Truncated bool
}

// StripWallClock zeroes every host-dependent field of every record —
// wall clock, allocation and GC deltas, goroutine counts — leaving only
// the deterministic structure (seq, kind, phase, attrs). It is the
// BENCH artifact's -deterministic normalization applied to resource logs:
// two probed runs of the same workload strip to comparable logs.
func (l *Log) StripWallClock() {
	for i := range l.Records {
		r := &l.Records[i]
		r.WallUS = 0
		r.Allocs = 0
		r.AllocBytes = 0
		r.HeapBytes = 0
		r.GCCycles = 0
		r.GCPauseUS = 0
		r.GCCPUUS = 0
		r.Goroutines = 0
	}
}

// jsonRecord is the wire shape of one resource line. Fields marshal in
// declaration order, so probe output is layout-stable.
type jsonRecord struct {
	V          int            `json:"v"`
	Type       string         `json:"type"`
	Seq        int64          `json:"seq"`
	Kind       string         `json:"kind"`
	Phase      string         `json:"phase"`
	WallUS     float64        `json:"wall_us"`
	Allocs     int64          `json:"allocs"`
	AllocBytes int64          `json:"alloc_bytes"`
	HeapBytes  int64          `json:"heap_bytes"`
	GCCycles   int64          `json:"gc_cycles"`
	GCPauseUS  float64        `json:"gc_pause_us"`
	GCCPUUS    float64        `json:"gc_cpu_us,omitempty"`
	Goroutines int            `json:"goroutines"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// maxLine bounds one JSONL line, matching traceview's reader.
const maxLine = 16 << 20

// Read parses a JSONL resource log. It follows traceview.Read's tolerance
// contract exactly: only a torn final line is tolerated (flagged via
// Log.Truncated), interior damage or an all-garbage first line is a hard
// error, and unknown schema versions are rejected.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	l := &Log{}
	type bad struct {
		line int
		err  error
	}
	var pending *bad
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pending != nil {
			return nil, fmt.Errorf("resview: line %d: %w (not the final line, refusing to skip)", pending.line, pending.err)
		}
		rec, err := parseLine(line)
		if err != nil {
			pending = &bad{lineNo, err}
			continue
		}
		l.Records = append(l.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resview: read: %w", err)
	}
	if pending != nil {
		// A torn tail is only tolerable when it follows a usable prefix;
		// if the very first line is garbage the file is not a resource log
		// at all, and "empty but truncated" would hide that from callers.
		if len(l.Records) == 0 {
			return nil, fmt.Errorf("resview: line %d: %w (no valid resource records precede it)", pending.line, pending.err)
		}
		l.Truncated = true
	}
	return l, nil
}

// ReadFile parses the JSONL resource log at path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

func parseLine(line string) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal([]byte(line), &jr); err != nil {
		return Record{}, err
	}
	if jr.Type != "resource" {
		return Record{}, fmt.Errorf("record type %q, want \"resource\"", jr.Type)
	}
	if jr.V != SchemaVersion {
		return Record{}, fmt.Errorf("resource record schema v%d, this reader handles v%d", jr.V, SchemaVersion)
	}
	if jr.Kind != KindSpan && jr.Kind != KindLap {
		return Record{}, fmt.Errorf("unknown resource record kind %q", jr.Kind)
	}
	if jr.Phase == "" {
		return Record{}, fmt.Errorf("resource record without a phase name")
	}
	if jr.WallUS < 0 {
		return Record{}, fmt.Errorf("negative wall_us %v", jr.WallUS)
	}
	return Record{
		Seq:        jr.Seq,
		Kind:       jr.Kind,
		Phase:      jr.Phase,
		WallUS:     jr.WallUS,
		Allocs:     jr.Allocs,
		AllocBytes: jr.AllocBytes,
		HeapBytes:  jr.HeapBytes,
		GCCycles:   jr.GCCycles,
		GCPauseUS:  jr.GCPauseUS,
		GCCPUUS:    jr.GCCPUUS,
		Goroutines: jr.Goroutines,
		Attrs:      jr.Attrs,
	}, nil
}

package resview

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"bpart/internal/telemetry"
)

func TestProbeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewProbe(&buf)
	pe := p.BeginPhase("partition.stream", telemetry.Int("k", 8))
	waste := make([]byte, 1<<20)
	_ = waste
	pe.EndPhase(telemetry.Int("placed", 100))
	p.Lap("cluster.superstep", telemetry.Int("iter", 0))
	p.Lap("cluster.superstep", telemetry.Int("iter", 1))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Truncated {
		t.Fatal("clean log flagged truncated")
	}
	if len(l.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(l.Records))
	}
	r := l.Records[0]
	if r.Kind != KindSpan || r.Phase != "partition.stream" || r.Seq != 0 {
		t.Fatalf("record 0: %+v", r)
	}
	if r.WallUS < 0 {
		t.Fatalf("negative wall: %v", r.WallUS)
	}
	if k, ok := r.Int("k"); !ok || k != 8 {
		t.Fatalf("k attr: %v %v", k, ok)
	}
	if placed, ok := r.Int("placed"); !ok || placed != 100 {
		t.Fatalf("EndPhase attr lost: %v %v", placed, ok)
	}
	if r.Goroutines < 1 {
		t.Fatalf("goroutines %d, want >= 1", r.Goroutines)
	}
	for i, r := range l.Records {
		if r.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if l.Records[1].Kind != KindLap || l.Records[2].Kind != KindLap {
		t.Fatal("laps not recorded as laps")
	}
}

func TestProbeNilSafe(t *testing.T) {
	var p *Probe
	pe := p.BeginPhase("x")
	pe.EndPhase()
	p.Lap("y")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(b []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(b) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(b)
	return len(b), nil
}

func TestProbeWriteErrorSticky(t *testing.T) {
	p := NewProbe(&failWriter{n: 10})
	for i := 0; i < 4; i++ {
		p.BeginPhase("x").EndPhase()
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close hid the write failure")
	}
	if err := p.Flush(); err == nil {
		t.Fatal("error not sticky across Flush calls")
	}
}

func TestStripWallClock(t *testing.T) {
	var buf bytes.Buffer
	p := NewProbe(&buf)
	p.BeginPhase("a", telemetry.String("scheme", "Fennel")).EndPhase()
	p.Lap("b")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.StripWallClock()
	for i, r := range l.Records {
		if r.WallUS != 0 || r.Allocs != 0 || r.AllocBytes != 0 || r.HeapBytes != 0 ||
			r.GCCycles != 0 || r.GCPauseUS != 0 || r.GCCPUUS != 0 || r.Goroutines != 0 {
			t.Fatalf("record %d kept host-dependent fields: %+v", i, r)
		}
	}
	// Deterministic structure survives.
	if l.Records[0].Phase != "a" || l.Records[1].Phase != "b" {
		t.Fatal("strip damaged phases")
	}
	if s, ok := l.Records[0].Str("scheme"); !ok || s != "Fennel" {
		t.Fatal("strip damaged attrs")
	}
}

func validLine(seq int, phase string, wall float64, attrs string) string {
	a := ""
	if attrs != "" {
		a = `,"attrs":` + attrs
	}
	return fmt.Sprintf(`{"v":1,"type":"resource","seq":%d,"kind":"span","phase":%q,"wall_us":%v,"allocs":10,"alloc_bytes":4096,"heap_bytes":1000,"gc_cycles":1,"gc_pause_us":5,"goroutines":2%s}`,
		seq, phase, wall, a) + "\n"
}

func TestReadTornTail(t *testing.T) {
	in := validLine(0, "a", 100, "") + `{"v":1,"type":"resou`
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Truncated || len(l.Records) != 1 {
		t.Fatalf("torn tail: %d records, truncated=%v", len(l.Records), l.Truncated)
	}
}

func TestReadHardErrors(t *testing.T) {
	cases := map[string]string{
		"interior damage":  validLine(0, "a", 100, "") + "garbage\n" + validLine(1, "b", 50, ""),
		"garbage first":    "garbage\n",
		"wrong type":       `{"v":1,"type":"span","seq":0,"kind":"span","phase":"a","wall_us":1}` + "\n",
		"future schema":    `{"v":99,"type":"resource","seq":0,"kind":"span","phase":"a","wall_us":1}` + "\n",
		"unknown kind":     `{"v":1,"type":"resource","seq":0,"kind":"interval","phase":"a","wall_us":1}` + "\n",
		"empty phase":      `{"v":1,"type":"resource","seq":0,"kind":"span","phase":"","wall_us":1}` + "\n",
		"negative wall_us": `{"v":1,"type":"resource","seq":0,"kind":"span","phase":"a","wall_us":-1}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadEmptyAndBlankLines(t *testing.T) {
	l, err := Read(strings.NewReader(""))
	if err != nil || len(l.Records) != 0 || l.Truncated {
		t.Fatalf("empty input: %v %+v", err, l)
	}
	l, err = Read(strings.NewReader("\n\n" + validLine(0, "a", 1, "") + "\n"))
	if err != nil || len(l.Records) != 1 {
		t.Fatalf("blank lines: %v, %d records", err, len(l.Records))
	}
}

func TestSummarize(t *testing.T) {
	in := validLine(0, "slow", 1000, "") + validLine(1, "fast", 10, "") + validLine(2, "slow", 500, "")
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(l.Records)
	if len(s) != 2 {
		t.Fatalf("got %d summaries, want 2", len(s))
	}
	if s[0].Phase != "slow" || s[0].WallUS != 1500 || s[0].Count != 2 {
		t.Fatalf("summary 0: %+v", s[0])
	}
	if s[0].Allocs != 20 || s[0].AllocBytes != 8192 || s[0].GCCycles != 2 {
		t.Fatalf("summary 0 deltas: %+v", s[0])
	}
	if s[1].Phase != "fast" {
		t.Fatalf("sort order: %+v", s)
	}
}

func scalingLine(seq int, scheme string, workers int, wall float64) string {
	return fmt.Sprintf(`{"v":1,"type":"resource","seq":%d,"kind":"span","phase":%q,"wall_us":%v,"attrs":{"scheme":%q,"workers":%d}}`,
		seq, ScalingPhase, wall, scheme, workers) + "\n"
}

func TestCurves(t *testing.T) {
	in := scalingLine(0, "Fennel", 1, 1000) +
		scalingLine(1, "Fennel", 1, 800) + // best-of: keep the faster rep
		scalingLine(2, "Fennel", 2, 500) +
		scalingLine(3, "Fennel", 4, 400) +
		scalingLine(4, "LDG", 1, 600) +
		scalingLine(5, "LDG", 2, 300) +
		validLine(6, "partition.stream", 123, "") // unrelated phase ignored
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	curves := Curves(l.Records)
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2", len(curves))
	}
	if curves[0].Scheme != "Fennel" || curves[1].Scheme != "LDG" {
		t.Fatalf("scheme order: %+v", curves)
	}
	f := curves[0].Points
	if len(f) != 3 || f[0].Workers != 1 || f[1].Workers != 2 || f[2].Workers != 4 {
		t.Fatalf("Fennel points: %+v", f)
	}
	if f[0].WallUS != 800 {
		t.Fatalf("best-of-N not applied: %+v", f[0])
	}
	if f[1].Speedup != 1.6 || f[1].Efficiency != 0.8 {
		t.Fatalf("speedup math: %+v", f[1])
	}
	if f[0].Speedup != 1 || f[0].Efficiency != 1 {
		t.Fatalf("base point: %+v", f[0])
	}
	// Without a 1-worker base the derived columns stay zero.
	l2, err := Read(strings.NewReader(scalingLine(0, "X", 2, 100)))
	if err != nil {
		t.Fatal(err)
	}
	c2 := Curves(l2.Records)
	if len(c2) != 1 || c2[0].Points[0].Speedup != 0 {
		t.Fatalf("baseless curve: %+v", c2)
	}
}

func TestWriteReport(t *testing.T) {
	in := validLine(0, "partition.stream", 2500, "") + scalingLine(1, "Fennel", 1, 1000) + scalingLine(2, "Fennel", 2, 600)
	l, err := Read(strings.NewReader(in + `{"torn`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, l, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"WARNING: final log line torn",
		"RESOURCES: 3 records across 2 phases",
		"partition.stream",
		"scaling probe",
		"Fennel",
		"speedup",
		"efficiency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Empty log gets the how-to-enable hint, not a crash.
	buf.Reset()
	if err := WriteReport(&buf, &Log{}, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "capture was off") {
		t.Errorf("empty-log hint missing:\n%s", buf.String())
	}
	// MaxPhases elides.
	buf.Reset()
	many := validLine(0, "a", 3, "") + validLine(1, "b", 2, "") + validLine(2, "c", 1, "")
	l3, err := Read(strings.NewReader(many))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&buf, l3, ReportOptions{MaxPhases: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more phases elided") {
		t.Errorf("MaxPhases did not elide:\n%s", buf.String())
	}
}

func TestWriteHTML(t *testing.T) {
	in := validLine(0, "partition.stream", 2500, "") + scalingLine(1, "Fennel", 1, 1000) + scalingLine(2, "Fennel", 4, 400)
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, l, "test resources"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "test resources", "<svg", "Fennel", "partition.stream"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/resources.jsonl"); err == nil {
		t.Fatal("missing file accepted")
	}
}

package resview

import (
	"fmt"
	"io"
	"strings"
)

// ReportOptions tunes the terminal report.
type ReportOptions struct {
	// MaxPhases caps the phase breakdown tables (0 = 16). The scaling
	// section always covers every curve.
	MaxPhases int
}

func (o ReportOptions) maxPhases() int {
	if o.MaxPhases <= 0 {
		return 16
	}
	return o.MaxPhases
}

// errWriter folds per-line error checks into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// bar renders v/max as a fixed-width ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return strings.Repeat(".", width)
	}
	n := int(v/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtUS renders microseconds at millisecond/second granularity.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

// WriteReport renders the terminal resource report: the phase self-time
// breakdown, alloc/GC attribution, and — when the log carries
// scaling-probe records — the measured speedup curve per scheme with its
// efficiency against ideal linear scaling.
func WriteReport(w io.Writer, log *Log, opt ReportOptions) error {
	ew := &errWriter{w: w}
	if log.Truncated {
		ew.printf("WARNING: final log line torn (run crashed mid-write); analyzing the intact prefix\n")
	}
	if len(log.Records) == 0 {
		ew.printf("No resource records: capture was off (enable with -resources / resview.NewProbe).\n")
		return ew.err
	}
	phases := Summarize(log.Records)
	ew.printf("RESOURCES: %d records across %d phases (schema v%d)\n",
		len(log.Records), len(phases), SchemaVersion)
	writePhases(ew, phases, opt)
	writeAllocs(ew, phases, opt)
	if curves := Curves(log.Records); len(curves) > 0 {
		writeScaling(ew, curves)
	}
	return ew.err
}

func writePhases(ew *errWriter, phases []PhaseSummary, opt ReportOptions) {
	var maxWall float64
	for _, s := range phases {
		if s.WallUS > maxWall {
			maxWall = s.WallUS
		}
	}
	ew.printf("  phase self-time (wall clock):\n")
	for i, s := range phases {
		if i >= opt.maxPhases() {
			ew.printf("    ... %d more phases elided (raise -phases)\n", len(phases)-i)
			break
		}
		ew.printf("    %-24s %s %10s  x%-6d goroutines<=%d\n",
			s.Phase, bar(s.WallUS, maxWall, 20), fmtUS(s.WallUS), s.Count, s.MaxGoroutines)
	}
}

func writeAllocs(ew *errWriter, phases []PhaseSummary, opt ReportOptions) {
	var maxBytes int64
	for _, s := range phases {
		if s.AllocBytes > maxBytes {
			maxBytes = s.AllocBytes
		}
	}
	ew.printf("  allocation / GC attribution:\n")
	for i, s := range phases {
		if i >= opt.maxPhases() {
			ew.printf("    ... %d more phases elided (raise -phases)\n", len(phases)-i)
			break
		}
		gc := ""
		if s.GCCycles > 0 {
			gc = fmt.Sprintf("  gc %d (pause %s)", s.GCCycles, fmtUS(s.GCPauseUS))
		}
		ew.printf("    %-24s %s %10s  %d allocs%s\n",
			s.Phase, bar(float64(s.AllocBytes), float64(maxBytes), 20), fmtBytes(s.AllocBytes), s.Allocs, gc)
	}
}

func writeScaling(ew *errWriter, curves []ScalingCurve) {
	ew.printf("  scaling probe (parallel score replay; speedup vs 1 worker, ideal = linear):\n")
	for _, c := range curves {
		ew.printf("    %s:\n", c.Scheme)
		for _, pt := range c.Points {
			ideal := float64(pt.Workers)
			ew.printf("      %3d workers  %10s  speedup %5.2fx %s  efficiency %5.1f%%\n",
				pt.Workers, fmtUS(pt.WallUS), pt.Speedup, bar(pt.Speedup, ideal, 20), pt.Efficiency*100)
		}
	}
}

package resview

import "sort"

// PhaseSummary aggregates every record of one phase name.
type PhaseSummary struct {
	Phase string
	// Count is the number of records (spans + laps) under the name.
	Count int
	// WallUS, Allocs, AllocBytes, GCCycles, GCPauseUS and GCCPUUS are the
	// summed deltas across those records.
	WallUS     float64
	Allocs     int64
	AllocBytes int64
	GCCycles   int64
	GCPauseUS  float64
	GCCPUUS    float64
	// MaxGoroutines is the highest goroutine count any record of the phase
	// observed at its end.
	MaxGoroutines int
}

// Summarize groups records by phase name and sums their deltas, sorted by
// total wall time descending (name ascending on ties), so the heaviest
// phases lead the report deterministically.
func Summarize(records []Record) []PhaseSummary {
	byName := map[string]*PhaseSummary{}
	var names []string
	for i := range records {
		r := &records[i]
		s, ok := byName[r.Phase]
		if !ok {
			s = &PhaseSummary{Phase: r.Phase}
			byName[r.Phase] = s
			names = append(names, r.Phase)
		}
		s.Count++
		s.WallUS += r.WallUS
		s.Allocs += r.Allocs
		s.AllocBytes += r.AllocBytes
		s.GCCycles += r.GCCycles
		s.GCPauseUS += r.GCPauseUS
		s.GCCPUUS += r.GCCPUUS
		if r.Goroutines > s.MaxGoroutines {
			s.MaxGoroutines = r.Goroutines
		}
	}
	out := make([]PhaseSummary, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallUS != out[j].WallUS {
			return out[i].WallUS > out[j].WallUS
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// ScalingPoint is one (workers → wall time) measurement of a scaling
// curve, with the derived speedup over the 1-worker point and the parallel
// efficiency (speedup/workers; 1.0 = ideal linear scaling).
type ScalingPoint struct {
	Workers    int
	WallUS     float64
	Speedup    float64
	Efficiency float64
}

// ScalingCurve is one scheme's measured speedup curve.
type ScalingCurve struct {
	Scheme string
	Points []ScalingPoint
}

// Curves extracts the scaling-probe measurements: records with phase
// ScalingPhase and "scheme"/"workers" attrs, grouped by scheme (sorted by
// name) with points sorted by workers. Repeated measurements of the same
// width keep the fastest (the conventional best-of-N timing); speedup and
// efficiency are derived from the 1-worker point and left zero when it is
// absent.
func Curves(records []Record) []ScalingCurve {
	type key struct {
		scheme  string
		workers int
	}
	best := map[key]float64{}
	var schemes []string
	seen := map[string]bool{}
	for i := range records {
		r := &records[i]
		if r.Phase != ScalingPhase {
			continue
		}
		scheme, ok := r.Str("scheme")
		if !ok {
			continue
		}
		workers, ok := r.Int("workers")
		if !ok || workers <= 0 {
			continue
		}
		k := key{scheme, workers}
		if w, ok := best[k]; !ok || r.WallUS < w {
			best[k] = r.WallUS
		}
		if !seen[scheme] {
			seen[scheme] = true
			schemes = append(schemes, scheme)
		}
	}
	sort.Strings(schemes)
	var out []ScalingCurve
	for _, scheme := range schemes {
		var widths []int
		for k := range best {
			if k.scheme == scheme {
				widths = append(widths, k.workers)
			}
		}
		sort.Ints(widths)
		base := best[key{scheme, 1}]
		c := ScalingCurve{Scheme: scheme}
		for _, w := range widths {
			pt := ScalingPoint{Workers: w, WallUS: best[key{scheme, w}]}
			if base > 0 && pt.WallUS > 0 {
				pt.Speedup = base / pt.WallUS
				pt.Efficiency = pt.Speedup / float64(w)
			}
			c.Points = append(c.Points, pt)
		}
		out = append(out, c)
	}
	return out
}

package resview

import (
	"fmt"
	"io"

	"bpart/internal/htmlpage"
)

// WriteHTML renders the self-contained resource page: horizontal bar
// charts for phase self-time and allocation attribution, and — when the
// log carries scaling-probe records — one speedup-curve SVG per scheme
// with the ideal linear-scaling diagonal for reference. Same chrome as the
// trace, audit and comm pages (internal/htmlpage), no external assets.
func WriteHTML(w io.Writer, log *Log, title string) error {
	if err := htmlpage.Start(w, title); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	if log.Truncated {
		ew.printf("<p class=\"warn\">final log line torn; analyzing the intact prefix</p>\n")
	}
	if len(log.Records) == 0 {
		ew.printf("<p class=\"meta\">No resource records: capture was off (enable with -resources / resview.NewProbe).</p>\n")
	} else {
		phases := Summarize(log.Records)
		ew.printf("<p class=\"meta\">%d records across %d phases (schema v%d)</p>\n",
			len(log.Records), len(phases), SchemaVersion)
		writeBarsHTML(ew, "Phase self-time", phases, func(s *PhaseSummary) (float64, string) {
			return s.WallUS, fmtUS(s.WallUS)
		})
		writeBarsHTML(ew, "Allocation attribution", phases, func(s *PhaseSummary) (float64, string) {
			return float64(s.AllocBytes), fmtBytes(s.AllocBytes)
		})
		for _, c := range Curves(log.Records) {
			writeCurveSVG(ew, c)
		}
	}
	if ew.err != nil {
		return ew.err
	}
	return htmlpage.End(w)
}

// writeBarsHTML draws one horizontal bar per phase, scaled to the largest
// value the metric takes.
func writeBarsHTML(ew *errWriter, title string, phases []PhaseSummary, metric func(*PhaseSummary) (float64, string)) {
	const rowH, barMax, label = 18, 360, 190
	var max float64
	for i := range phases {
		if v, _ := metric(&phases[i]); v > max {
			max = v
		}
	}
	ew.printf("<h2>%s</h2>\n", title)
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", label+barMax+120, len(phases)*rowH+10)
	for i := range phases {
		s := &phases[i]
		v, txt := metric(s)
		w := 0
		if max > 0 {
			w = int(v / max * barMax)
		}
		y := 5 + i*rowH
		ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
			label-6, y+12, s.Phase)
		ew.printf("<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#69c\"><title>%s: %s (%d records)</title></rect>\n",
			label, y+2, w, rowH-5, s.Phase, txt, s.Count)
		ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\">%s</text>\n", label+w+4, y+12, txt)
	}
	ew.printf("</svg>\n")
}

// writeCurveSVG draws one scheme's speedup curve (measured polyline over
// the dashed ideal diagonal) with the per-point efficiency as hover text.
func writeCurveSVG(ew *errWriter, c ScalingCurve) {
	const plotW, plotH, pad = 320, 200, 36
	maxW := 1
	maxS := 1.0
	for _, pt := range c.Points {
		if pt.Workers > maxW {
			maxW = pt.Workers
		}
		if pt.Speedup > maxS {
			maxS = pt.Speedup
		}
	}
	// The ideal diagonal tops out at maxW; scale the y axis to whichever
	// of measured/ideal reaches higher so both stay in frame.
	if float64(maxW) > maxS {
		maxS = float64(maxW)
	}
	x := func(workers int) int { return pad + int(float64(workers-1)/float64(max(maxW-1, 1))*plotW) }
	y := func(speedup float64) int { return pad + plotH - int(speedup/maxS*float64(plotH)) }
	ew.printf("<h2>Scaling: %s</h2>\n", c.Scheme)
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", pad*2+plotW+60, pad*2+plotH)
	ew.printf("<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n",
		x(1), y(1), x(maxW), y(float64(maxW)))
	poly := ""
	for _, pt := range c.Points {
		poly += fmt.Sprintf("%d,%d ", x(pt.Workers), y(pt.Speedup))
	}
	ew.printf("<polyline points=\"%s\" fill=\"none\" stroke=\"#69c\" stroke-width=\"2\"/>\n", poly)
	for _, pt := range c.Points {
		ew.printf("<circle cx=\"%d\" cy=\"%d\" r=\"3\" fill=\"#247\"><title>%d workers: %s, speedup %.2fx, efficiency %.1f%%</title></circle>\n",
			x(pt.Workers), y(pt.Speedup), pt.Workers, fmtUS(pt.WallUS), pt.Speedup, pt.Efficiency*100)
		ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\" text-anchor=\"middle\">%d</text>\n",
			x(pt.Workers), pad+plotH+14, pt.Workers)
	}
	ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\">workers</text>\n", pad+plotW+8, pad+plotH+14)
	ew.printf("<text class=\"lbl\" x=\"%d\" y=\"%d\">speedup</text>\n", 2, pad-8)
	ew.printf("</svg>\n")
}

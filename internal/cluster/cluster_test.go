package cluster

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"bpart/internal/telemetry"
)

func mustNew(t *testing.T, assignment []int, k int) *Cluster {
	t.Helper()
	c, err := New(assignment, k, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{0, 1}, 0, DefaultCostModel()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New([]int{0, 5}, 2, DefaultCostModel()); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	c := mustNew(t, []int{0, 1, 1}, 2)
	if c.NumMachines() != 2 {
		t.Fatalf("NumMachines = %d", c.NumMachines())
	}
	if c.Owner(2) != 1 {
		t.Fatalf("Owner(2) = %d", c.Owner(2))
	}
}

func TestFinishIterationTiming(t *testing.T) {
	model := CostModel{StepCost: 1, EdgeCost: 0, VertexCost: 0, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewCounters()
	w.Steps[0] = 100 // compute 100
	w.Steps[1] = 40  // compute 40
	w.Messages[0] = 5
	w.Messages[1] = 10 // comm 20
	st := c.FinishIteration(w)
	if st.Compute[0] != 100 || st.Compute[1] != 40 {
		t.Fatalf("compute %v", st.Compute)
	}
	if st.Comm[0] != 10 || st.Comm[1] != 20 {
		t.Fatalf("comm %v", st.Comm)
	}
	// Time = maxCompute(100) + maxComm(20) + latency(10)
	if st.Time != 130 {
		t.Fatalf("Time = %v, want 130", st.Time)
	}
	// Waiting: machine 0 waits 0 compute + 10 comm; machine 1 waits 60+0.
	if st.Waiting[0] != 10 || st.Waiting[1] != 60 {
		t.Fatalf("Waiting = %v", st.Waiting)
	}
}

func TestFinishIterationCopiesCounters(t *testing.T) {
	c := mustNew(t, []int{0}, 1)
	w := c.NewCounters()
	w.Steps[0] = 7
	st := c.FinishIteration(w)
	w.Steps[0] = 99
	if st.Work.Steps[0] != 7 {
		t.Fatal("IterationStats aliases live counters")
	}
}

func TestRunStatsAggregation(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 1, Latency: 0}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	var run RunStats
	for i := 0; i < 3; i++ {
		w := c.NewCounters()
		w.Steps[0] = 10
		w.Steps[1] = 10
		w.Messages[0] = 2
		run.Add(c.FinishIteration(w))
	}
	if got := run.TotalTime(); got != 3*(10+2) {
		t.Fatalf("TotalTime = %v", got)
	}
	if got := run.TotalMessages(); got != 6 {
		t.Fatalf("TotalMessages = %d", got)
	}
	// machine 1 waits 2 comm units per iteration.
	if got := run.TotalWaiting(); got != 6 {
		t.Fatalf("TotalWaiting = %v", got)
	}
	wantRatio := 6.0 / (36 * 2)
	if got := run.WaitRatio(); math.Abs(got-wantRatio) > 1e-12 {
		t.Fatalf("WaitRatio = %v, want %v", got, wantRatio)
	}
	cb := run.ComputeByMachine()
	if cb[0] != 30 || cb[1] != 30 {
		t.Fatalf("ComputeByMachine = %v", cb)
	}
}

func TestRunStatsEmpty(t *testing.T) {
	var run RunStats
	if run.WaitRatio() != 0 || run.TotalTime() != 0 || run.ComputeByMachine() != nil {
		t.Fatal("empty RunStats not zero")
	}
}

func TestBalancedLoadZeroWaiting(t *testing.T) {
	c := mustNew(t, []int{0, 1, 2, 3}, 4)
	w := c.NewCounters()
	for i := range w.Steps {
		w.Steps[i] = 1000
		w.Messages[i] = 50
	}
	st := c.FinishIteration(w)
	for i, wt := range st.Waiting {
		if wt != 0 {
			t.Fatalf("machine %d waits %v under perfect balance", i, wt)
		}
	}
}

func TestPipelinedTiming(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10, Pipelined: true}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewCounters()
	w.Steps[0] = 100   // compute 100
	w.Messages[1] = 30 // comm 60
	st := c.FinishIteration(w)
	// Pipelined: time = max(100, 60) + 10.
	if st.Time != 110 {
		t.Fatalf("pipelined Time = %v, want 110", st.Time)
	}
	// Machine 0 busy 100 (compute-bound), waits 0; machine 1 busy 60, waits 40.
	if st.Waiting[0] != 0 || st.Waiting[1] != 40 {
		t.Fatalf("pipelined Waiting = %v", st.Waiting)
	}
}

func TestPipelinedNeverSlower(t *testing.T) {
	base := DefaultCostModel()
	pipe := base
	pipe.Pipelined = true
	c1, _ := New([]int{0, 1, 2}, 3, base)
	c2, _ := New([]int{0, 1, 2}, 3, pipe)
	w := c1.NewCounters()
	for i := range w.Steps {
		w.Steps[i] = int64(100 * (i + 1))
		w.Messages[i] = int64(50 * (3 - i))
	}
	t1 := c1.FinishIteration(w)
	t2 := c2.FinishIteration(w)
	if t2.Time > t1.Time {
		t.Fatalf("pipelined time %v exceeds sequential %v", t2.Time, t1.Time)
	}
}

func TestSpeedsValidation(t *testing.T) {
	m := DefaultCostModel()
	m.Speeds = []float64{1}
	if _, err := New([]int{0, 1}, 2, m); err == nil {
		t.Fatal("speed length mismatch accepted")
	}
	m.Speeds = []float64{1, 0}
	if _, err := New([]int{0, 1}, 2, m); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestSpeedsSlowMachineTakesLonger(t *testing.T) {
	m := CostModel{StepCost: 1, Speeds: []float64{0.5, 1}}
	c, err := New([]int{0, 1}, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewCounters()
	w.Steps[0] = 100
	w.Steps[1] = 100
	st := c.FinishIteration(w)
	if st.Compute[0] != 200 || st.Compute[1] != 100 {
		t.Fatalf("compute %v, want [200 100]", st.Compute)
	}
	if st.Waiting[1] != 100 {
		t.Fatalf("fast machine waiting %v, want 100", st.Waiting[1])
	}
}

func TestWriteTimeline(t *testing.T) {
	c := mustNew(t, []int{0, 1}, 2)
	var run RunStats
	w := c.NewCounters()
	w.Steps[0] = 5
	w.Messages[1] = 3
	run.Add(c.FinishIteration(w))
	var buf strings.Builder
	if err := run.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 machines × 1 iteration
		t.Fatalf("timeline lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "iteration,machine,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,") || !strings.HasPrefix(lines[2], "0,1,") {
		t.Fatalf("rows wrong:\n%s", buf.String())
	}
}

func TestParallelRunsAllMachines(t *testing.T) {
	c := mustNew(t, []int{0, 0, 1, 2}, 3)
	var ran int64
	c.Parallel(func(machine int) {
		atomic.AddInt64(&ran, 1<<machine)
	})
	if ran != 1+2+4 {
		t.Fatalf("machines run mask = %b", ran)
	}
}

// Property: waiting is non-negative, the slowest machine never waits in its
// dominant phase, and Time ≥ every machine's own busy time.
func TestQuickTimingInvariants(t *testing.T) {
	f := func(steps, msgs [4]uint16) bool {
		c, err := New([]int{0, 1, 2, 3}, 4, DefaultCostModel())
		if err != nil {
			return false
		}
		w := c.NewCounters()
		for i := 0; i < 4; i++ {
			w.Steps[i] = int64(steps[i])
			w.Messages[i] = int64(msgs[i])
		}
		st := c.FinishIteration(w)
		for i := 0; i < 4; i++ {
			if st.Waiting[i] < -1e9 {
				return false
			}
			busy := st.Compute[i] + st.Comm[i]
			if st.Time < busy {
				return false
			}
			if math.Abs(st.Time-(busy+st.Waiting[i]+c.Model().Latency)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: New must copy the assignment slice. Before the fix it stored
// the caller's slice, so mutating it silently re-homed vertices.
func TestNewCopiesAssignment(t *testing.T) {
	assignment := []int{0, 1, 1}
	c := mustNew(t, assignment, 2)
	// Clobber every entry of the caller's slice: the cluster must have
	// taken its own copy at construction, not aliased ours.
	for i := range assignment {
		assignment[i] = 0
	}
	want := []int{0, 1, 1}
	for v, w := range want {
		if got := c.Owner(uint32(v)); got != w {
			t.Fatalf("Owner(%d) = %d after caller mutated its slice, want %d", v, got, w)
		}
	}
}

// Degenerate runs: zero machines in the first iteration, zero-time runs.
func TestRunStatsDegenerate(t *testing.T) {
	// First iteration has zero machines: WaitRatio must not divide by the
	// machine count of a non-existent fleet.
	zeroMachines := RunStats{Iterations: []IterationStats{{}}}
	if got := zeroMachines.WaitRatio(); got != 0 {
		t.Fatalf("WaitRatio with zero machines = %v, want 0", got)
	}
	if got := zeroMachines.TotalMessages(); got != 0 {
		t.Fatalf("TotalMessages with zero machines = %d, want 0", got)
	}
	if got := zeroMachines.ComputeByMachine(); len(got) != 0 {
		t.Fatalf("ComputeByMachine with zero machines = %v, want empty", got)
	}

	// All-zero work: total time is zero (zero latency), ratio must be 0,
	// not NaN.
	c, err := New([]int{0, 1}, 2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	var run RunStats
	run.Add(c.FinishIteration(c.NewCounters()))
	if got := run.WaitRatio(); got != 0 || math.IsNaN(got) {
		t.Fatalf("WaitRatio of zero-cost run = %v, want 0", got)
	}
	if got := run.TotalMessages(); got != 0 {
		t.Fatalf("TotalMessages = %d, want 0", got)
	}
	if got := run.ComputeByMachine(); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("ComputeByMachine = %v, want [0 0]", got)
	}
}

// Golden round-trip: exact CSV bytes for a two-machine, two-iteration run.
func TestWriteTimelineGolden(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	var run RunStats
	w := c.NewCounters()
	w.Steps[0], w.Steps[1] = 3, 1
	w.Messages[1] = 2
	run.Add(c.FinishIteration(w))
	w = c.NewCounters()
	w.Edges[0] = 4
	run.Add(c.FinishIteration(w))

	var buf strings.Builder
	if err := run.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	want := "iteration,machine,compute,comm,waiting,steps,edges,messages,received\n" +
		"0,0,3.000,0.000,4.000,3,0,0,0\n" +
		"0,1,1.000,4.000,2.000,1,0,2,0\n" +
		"1,0,0.000,0.000,0.000,0,4,0,0\n" +
		"1,1,0.000,0.000,0.000,0,0,0,0\n"
	if buf.String() != want {
		t.Fatalf("timeline CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// With matrix capture on, the received column is the matrix column sum —
// machine 0's two messages to machine 1 show up as received by 1.
func TestWriteTimelineGoldenWithPairs(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCommMatrix(true)
	var run RunStats
	w := c.NewCounters()
	w.Steps[0] = 3
	w.Messages[0] = 2
	w.Pairs[0][1] = 2
	run.Add(c.FinishIteration(w))

	var buf strings.Builder
	if err := run.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	want := "iteration,machine,compute,comm,waiting,steps,edges,messages,received\n" +
		"0,0,3.000,4.000,0.000,3,0,2,0\n" +
		"0,1,0.000,0.000,7.000,0,0,0,2\n"
	if buf.String() != want {
		t.Fatalf("timeline CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// failAfter errors once n bytes have been written.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		allowed := f.n - f.written
		if allowed < 0 {
			allowed = 0
		}
		f.written += allowed
		return allowed, errShortWrite
	}
	f.written += len(p)
	return len(p), nil
}

var errShortWrite = errors.New("writer full")

func TestWriteTimelineWriterError(t *testing.T) {
	c := mustNew(t, []int{0, 1}, 2)
	var run RunStats
	for i := 0; i < 2000; i++ {
		w := c.NewCounters()
		w.Steps[0] = int64(i)
		run.Add(c.FinishIteration(w))
	}
	// Fail at several depths: inside the header, inside the rows, and at
	// the final flush.
	for _, limit := range []int{4, 100, 60000} {
		if err := run.WriteTimeline(&failAfter{n: limit}); !errors.Is(err, errShortWrite) {
			t.Fatalf("limit %d: error = %v, want errShortWrite", limit, err)
		}
	}
}

// Telemetry: every finished superstep emits one cluster.superstep record
// mirroring the IterationStats, and counters accumulate.
func TestSuperstepTelemetry(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	c.SetTelemetry(tr, reg)

	w := c.NewCounters()
	w.Steps[0], w.Steps[1] = 3, 1
	w.Messages[1] = 2
	st := c.FinishIteration(w)
	w = c.NewCounters()
	c.FinishIteration(w)

	recs := tr.Find("cluster.superstep")
	if len(recs) != 2 {
		t.Fatalf("got %d superstep records, want 2", len(recs))
	}
	first := recs[0]
	if got := first.Attr("iteration"); got != int64(0) {
		t.Fatalf("iteration attr = %v, want 0", got)
	}
	if got := first.Attr("time_us"); got != st.Time {
		t.Fatalf("time_us attr = %v, want %v", got, st.Time)
	}
	comp, ok := first.Attr("compute").([]float64)
	if !ok || len(comp) != 2 || comp[0] != st.Compute[0] || comp[1] != st.Compute[1] {
		t.Fatalf("compute attr = %v, want %v", first.Attr("compute"), st.Compute)
	}
	msgs, ok := first.Attr("messages").([]int64)
	if !ok || msgs[1] != 2 {
		t.Fatalf("messages attr = %v", first.Attr("messages"))
	}
	if got := recs[1].Attr("iteration"); got != int64(1) {
		t.Fatalf("second iteration attr = %v, want 1", got)
	}

	if got := reg.Counter("cluster_supersteps_total").Value(); got != 2 {
		t.Fatalf("supersteps counter = %d, want 2", got)
	}
	if got := reg.Counter("cluster_messages_total").Value(); got != 2 {
		t.Fatalf("messages counter = %d, want 2", got)
	}
	if got := reg.Counter("cluster_sim_time_us_total").Value(); got == 0 {
		t.Fatal("sim time counter is zero")
	}

	// Detaching restores the no-op path.
	c.SetTelemetry(nil, nil)
	c.FinishIteration(c.NewCounters())
	if got := len(tr.Find("cluster.superstep")); got != 2 {
		t.Fatalf("detached cluster still recorded: %d records", got)
	}
}

// Histograms: superstep durations, per-machine compute loads and message
// batch sizes are recorded per FinishIteration.
func TestSuperstepHistograms(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.SetTelemetry(nil, reg)

	w := c.NewCounters()
	w.Steps[0], w.Steps[1] = 3, 1
	w.Messages[1] = 2
	st := c.FinishIteration(w)
	c.FinishIteration(c.NewCounters())

	if got := reg.Histogram("cluster_superstep_time_us").Count(); got != 2 {
		t.Fatalf("superstep time observations = %d, want 2", got)
	}
	if got := reg.Histogram("cluster_superstep_time_us").Quantile(1); got != st.Time {
		t.Fatalf("superstep time max = %v, want %v", got, st.Time)
	}
	if got := reg.Histogram("cluster_machine_compute_us").Count(); got != 4 {
		t.Fatalf("compute observations = %d, want 2 machines x 2 iterations", got)
	}
	bh := reg.Histogram("cluster_machine_message_batch")
	if got := bh.Count(); got != 4 {
		t.Fatalf("message batch observations = %d, want 4", got)
	}
	if got := bh.Sum(); got != 2 {
		t.Fatalf("message batch sum = %v, want 2", got)
	}
}

package cluster

import (
	"strings"
	"testing"

	"bpart/internal/telemetry"
)

// fixedDisrupter replays a queue of disruptions, one per FinishIteration.
type fixedDisrupter struct {
	queue []Disruption
}

func (f *fixedDisrupter) Disrupt() Disruption {
	if len(f.queue) == 0 {
		return Disruption{}
	}
	d := f.queue[0]
	f.queue = f.queue[1:]
	return d
}

func TestDisruptionSlowAndResend(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 2, Latency: 10}
	c, err := New([]int{0, 1}, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDisrupter(&fixedDisrupter{queue: []Disruption{
		{Slow: []float64{3, 0}, Resend: []float64{0, 0.5}, ExtraLatency: 7},
	}})
	w := c.NewCounters()
	w.Steps[0], w.Steps[1] = 10, 10
	w.Messages[0], w.Messages[1] = 4, 4
	st := c.FinishIteration(w)
	// Machine 0: compute 10×3=30; machine 1: compute 10, comm 8×1.5=12.
	if st.Compute[0] != 30 || st.Compute[1] != 10 {
		t.Fatalf("Compute = %v", st.Compute)
	}
	if st.Comm[0] != 8 || st.Comm[1] != 12 {
		t.Fatalf("Comm = %v", st.Comm)
	}
	// Time = maxCompute(30) + maxComm(12) + latency(10) + extra(7).
	if st.Time != 59 {
		t.Fatalf("Time = %v, want 59", st.Time)
	}
	// Second iteration: the queue is drained, no disruption.
	st = c.FinishIteration(w)
	if st.Compute[0] != 10 || st.Comm[1] != 8 || st.Time != 28 {
		t.Fatalf("undisrupted iteration: Compute=%v Comm=%v Time=%v", st.Compute, st.Comm, st.Time)
	}
}

func TestMarkDeadRequiresRehome(t *testing.T) {
	c := mustNew(t, []int{0, 1, 1}, 2)
	if err := c.MarkDead(1); err == nil {
		t.Fatal("MarkDead accepted a machine that still owns vertices")
	}
	if err := c.MarkDead(5); err == nil {
		t.Fatal("MarkDead accepted out-of-range machine")
	}
	if err := c.Rehome([]int{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDead(1); err != nil {
		t.Fatal(err)
	}
	if !c.Dead(1) || c.Dead(0) {
		t.Fatalf("Dead flags wrong: %v %v", c.Dead(0), c.Dead(1))
	}
	if c.LiveMachines() != 1 {
		t.Fatalf("LiveMachines = %d", c.LiveMachines())
	}
	// Rehoming back onto the dead machine must fail.
	if err := c.Rehome([]int{0, 1, 0}); err == nil {
		t.Fatal("Rehome onto dead machine accepted")
	}
	if err := c.Rehome([]int{0, 0}); err == nil {
		t.Fatal("Rehome with wrong vertex count accepted")
	}
}

func TestDeadMachineExcludedFromTiming(t *testing.T) {
	model := CostModel{StepCost: 1, MessageCost: 1, Latency: 5}
	c, err := New([]int{0, 0, 2}, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rehome([]int{0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDead(1); err != nil {
		t.Fatal(err)
	}
	w := c.NewCounters()
	w.Steps[0], w.Steps[2] = 8, 4
	// Stale counters on the dead machine must not leak into timing.
	w.Steps[1] = 1000
	st := c.FinishIteration(w)
	if st.Compute[1] != 0 || st.Waiting[1] != 0 {
		t.Fatalf("dead machine charged: compute=%v waiting=%v", st.Compute[1], st.Waiting[1])
	}
	if st.Time != 13 { // max(8,4) + 0 + 5
		t.Fatalf("Time = %v, want 13", st.Time)
	}
	if st.Waiting[2] != 4 {
		t.Fatalf("Waiting[2] = %v, want 4", st.Waiting[2])
	}
}

func TestChargePhase(t *testing.T) {
	model := CostModel{Latency: 5}
	c, err := New([]int{0, 1, 2}, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	mem := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	c.SetTelemetry(mem, reg)
	st, err := c.ChargePhase("checkpoint", []float64{10, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 15 {
		t.Fatalf("Time = %v, want 15", st.Time)
	}
	if st.Waiting[0] != 0 || st.Waiting[1] != 6 || st.Waiting[2] != 10 {
		t.Fatalf("Waiting = %v", st.Waiting)
	}
	if _, err := c.ChargePhase("checkpoint", []float64{1}); err == nil {
		t.Fatal("ChargePhase accepted wrong busy length")
	}
	// The phase event must carry its kind so traces can separate recovery
	// barriers from algorithm supersteps.
	recs := mem.Records()
	if len(recs) != 1 || recs[0].Name != "cluster.superstep" {
		t.Fatalf("records = %+v", recs)
	}
	found := false
	for _, a := range recs[0].Attrs {
		if a.Key == "phase" {
			found = true
		}
	}
	if !found {
		t.Fatal("phase attr missing from ChargePhase event")
	}
	if got := reg.Counter("cluster_supersteps_total").Value(); got != 1 {
		t.Fatalf("cluster_supersteps_total = %d", got)
	}
}

func TestChargePhaseDeadMachineZero(t *testing.T) {
	c := mustNew(t, []int{0, 0}, 2)
	if err := c.Rehome([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDead(1); err != nil {
		t.Fatal(err)
	}
	st, err := c.ChargePhase("restore", []float64{3, 99})
	if err != nil {
		t.Fatal(err)
	}
	if st.Compute[1] != 0 || st.Waiting[1] != 0 {
		t.Fatalf("dead machine charged in phase: %+v", st)
	}
	if st.Time != 3+c.Model().Latency {
		t.Fatalf("Time = %v", st.Time)
	}
}

func TestAssignmentIsCopy(t *testing.T) {
	c := mustNew(t, []int{0, 1}, 2)
	a := c.Assignment()
	a[0] = 1
	if c.Owner(0) != 0 {
		t.Fatal("Assignment returned an aliased slice")
	}
}

func TestDefaultCostModelHasCheckpointCost(t *testing.T) {
	if DefaultCostModel().CheckpointCost <= 0 {
		t.Fatal("DefaultCostModel.CheckpointCost must be positive")
	}
	// Sanity on relative magnitude: cheaper than a message, pricier than
	// an edge traversal — the docstring's contract.
	m := DefaultCostModel()
	if !(m.CheckpointCost < m.MessageCost && m.CheckpointCost > m.EdgeCost) {
		t.Fatalf("CheckpointCost %v out of expected band (%v, %v)", m.CheckpointCost, m.EdgeCost, m.MessageCost)
	}
}

func TestDisruptionDoesNotAffectWriteTimeline(t *testing.T) {
	// WriteTimeline should render disrupted runs like any other — a smoke
	// check that the header is intact and rows parse per machine.
	c := mustNew(t, []int{0, 1}, 2)
	c.SetDisrupter(&fixedDisrupter{queue: []Disruption{{ExtraLatency: 3}}})
	w := c.NewCounters()
	w.Steps[0] = 1
	var rs RunStats
	rs.Add(c.FinishIteration(w))
	var sb strings.Builder
	if err := rs.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines = %d, want header + 2 machines", len(lines))
	}
}

// Package cluster simulates the paper's testbed: a cluster of machines
// running bulk-synchronous-parallel (BSP) graph computations (§2.1, Fig 1).
//
// The paper's performance metrics — per-machine compute time per iteration
// (Fig 12), waiting-time ratio (Fig 13), normalized running time (Figs 14,
// 15) — are relative quantities determined by load balance and cut-edge
// traffic, not by absolute hardware speed. The simulation therefore charges
// deterministic unit costs per walk step, per edge traversal, per vertex
// update and per cross-machine message, and derives BSP timing exactly:
// within an iteration every machine computes in parallel, then exchanges
// messages, then all barrier; the iteration lasts as long as its slowest
// machine, and every faster machine's surplus is waiting time — the
// synchronization overhead BPart attacks.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"bpart/internal/telemetry"
)

// CostModel holds unit costs in microseconds. Only ratios matter for the
// reproduced figures.
type CostModel struct {
	// StepCost is charged per random-walk step executed (walk engine).
	StepCost float64
	// EdgeCost is charged per edge traversed (iteration engine).
	EdgeCost float64
	// VertexCost is charged per vertex update (iteration engine).
	VertexCost float64
	// MessageCost is charged per cross-machine message sent.
	MessageCost float64
	// Latency is a fixed per-iteration barrier/network setup cost.
	Latency float64
	// CheckpointCost is charged per vertex written to (or read back from)
	// stable storage at a checkpoint or recovery barrier. Checkpoint time
	// therefore tracks per-machine vertex count — one of the two balance
	// dimensions — so vertex-skewed partitions pay for it at every
	// checkpoint barrier. Unused unless fault injection is enabled.
	CheckpointCost float64
	// Pipelined overlaps the computation and communication phases the
	// way some systems do (§2.1: "the computation and communication
	// phases may be processed in a pipelined fashion"): iteration time
	// becomes max(compute, comm) instead of compute + comm.
	Pipelined bool
	// Speeds, when non-nil, gives each machine a relative compute speed
	// (1.0 = nominal; 0.5 = half speed). It models heterogeneous
	// clusters, where uniformly balanced partitions are no longer the
	// optimum — the Hetero ablation quantifies this. Length must equal
	// the machine count.
	Speeds []float64
}

// DefaultCostModel approximates the paper's testbed ratios: a walk step or
// vertex update is ~10 ns of CPU, an edge traversal ~2 ns, and a message
// ~40 ns of effective per-message cost on a fast network with batching.
func DefaultCostModel() CostModel {
	return CostModel{
		StepCost:    0.010,
		EdgeCost:    0.002,
		VertexCost:  0.010,
		MessageCost: 0.040,
		Latency:     50,
		// A checkpointed vertex costs a few serialized words to stable
		// storage — pricier than an in-memory update, cheaper than a
		// network message plus ack.
		CheckpointCost: 0.025,
	}
}

// Cluster is a set of simulated machines plus the vertex→machine placement
// produced by a partitioner.
type Cluster struct {
	numMachines int
	owner       []int // vertex -> machine
	model       CostModel
	dead        []bool // machine -> permanently failed
	disrupter   Disrupter

	tr    telemetry.Tracer
	reg   *telemetry.Registry
	probe telemetry.PhaseProbe
	iter  int // supersteps finished, for span numbering

	// workers sizes the bounded goroutine pool RunTasks executes superstep
	// work on. 1 (the default) runs every task inline on the caller — the
	// sequential mode whose outputs every parallel run must reproduce
	// bit-for-bit.
	workers int

	// commMatrix enables per-superstep src→dst message matrix capture
	// (Counters.Pairs). Off by default: the K×K matrix costs one write per
	// cross-machine message, so only runs that want communication-topology
	// observability (tracestat comm, the BENCH comm section) pay for it.
	commMatrix bool
}

// Disruption perturbs one iteration's BSP timing. A fault injector supplies
// one per FinishIteration call; the zero value disrupts nothing.
type Disruption struct {
	// Slow[i] multiplies machine i's compute time (1 = nominal, 3 = a 3×
	// transient straggler). nil means no slowdown anywhere.
	Slow []float64
	// Resend[i] is the fraction of machine i's outgoing messages that had
	// to be retransmitted after a lost batch; machine i's comm time grows
	// by that fraction. nil means no loss anywhere.
	Resend []float64
	// ExtraLatency is added once to the iteration's wall-clock time — the
	// detection/resend round a lost batch forces through the barrier.
	ExtraLatency float64
}

// Disrupter supplies the Disruption for the superstep currently being
// finished. FinishIteration consults it once per call, on the caller's
// goroutine, so implementations need no locking against the cluster.
type Disrupter interface {
	Disrupt() Disruption
}

// SetDisrupter attaches (or with nil detaches) a fault injector.
func (c *Cluster) SetDisrupter(d Disrupter) { c.disrupter = d }

// New builds a cluster of k machines owning vertices per assignment.
func New(assignment []int, k int, model CostModel) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: %d machines", k)
	}
	if model.Speeds != nil {
		if len(model.Speeds) != k {
			return nil, fmt.Errorf("cluster: %d speeds for %d machines", len(model.Speeds), k)
		}
		for i, s := range model.Speeds {
			if s <= 0 {
				return nil, fmt.Errorf("cluster: machine %d speed %v, want > 0", i, s)
			}
		}
	}
	for v, p := range assignment {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("cluster: vertex %d owned by machine %d, want [0,%d)", v, p, k)
		}
	}
	// Copy the assignment: the caller keeps its slice, and a later
	// mutation of it must not silently re-home vertices mid-run.
	owner := append([]int(nil), assignment...)
	return &Cluster{numMachines: k, owner: owner, model: model, tr: telemetry.Nop()}, nil
}

// SetTelemetry implements telemetry.Instrumentable: with a tracer attached
// (may be nil to detach), every FinishIteration emits one
// "cluster.superstep" event carrying the full IterationStats — per-machine
// compute, comm and waiting plus the raw work counters — so a whole run
// yields a machine-level timeline. reg (may be nil) accumulates
// cluster_* totals.
func (c *Cluster) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	c.tr = telemetry.Safe(tr)
	c.reg = reg
}

// SetResourceProbe attaches (or with nil detaches) a resource probe: every
// observed superstep or recovery phase then emits one "cluster.superstep"
// lap covering the real host time and alloc/GC activity since the previous
// superstep (the first lap measures from probe creation, so it includes
// setup). Simulated time in the traces is untouched — the probe reports
// what the simulation itself costs to run, not what it models.
func (c *Cluster) SetResourceProbe(p telemetry.PhaseProbe) { c.probe = p }

// SetCommMatrix enables (or disables) per-superstep src→dst message matrix
// capture. When on, NewCounters allocates Counters.Pairs and the engines
// record each cross-machine message's destination alongside the existing
// per-machine totals; FinishIteration then publishes the matrix through
// telemetry ("pairs" attr, comm_* metrics). Enable before the run starts —
// counters already handed to an engine keep their allocation.
func (c *Cluster) SetCommMatrix(on bool) { c.commMatrix = on }

// CommMatrixEnabled reports whether src→dst matrix capture is on.
func (c *Cluster) CommMatrixEnabled() bool { return c.commMatrix }

// SetWorkers sizes the bounded worker pool each superstep's vertex work
// runs on (RunTasks). w < 1 is clamped to 1, the sequential default. The
// pool size is an execution detail, never an output: engines must combine
// per-task results in fixed task order, so every result and every counter
// is bit-identical at any worker count. Set it before a run starts; the
// engines read it once per superstep phase.
func (c *Cluster) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	c.workers = w
}

// Workers returns the worker-pool size (>= 1).
func (c *Cluster) Workers() int {
	if c.workers < 1 {
		return 1
	}
	return c.workers
}

// RunTasks executes fn(task) for every task in [0, ntasks) on the
// cluster's worker pool. With Workers() == 1 the tasks run inline on the
// calling goroutine in ascending order; with W > 1, min(W, ntasks)
// goroutines drain the tasks through an atomic cursor, so scheduling order
// is arbitrary. Callers must therefore confine each task's writes to
// task-private state and combine results in fixed task order afterwards —
// that contract is what keeps parallel runs bit-identical to sequential
// ones.
func (c *Cluster) RunTasks(ntasks int, fn func(task int)) {
	w := c.Workers()
	if w > ntasks {
		w = ntasks
	}
	if w <= 1 {
		for t := 0; t < ntasks; t++ {
			fn(t)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				t := int(cursor.Add(1)) - 1
				if t >= ntasks {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
}

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return c.numMachines }

// Owner returns the machine owning vertex v.
func (c *Cluster) Owner(v uint32) int { return c.owner[v] }

// Model returns the cost model.
func (c *Cluster) Model() CostModel { return c.model }

// Assignment returns a copy of the current vertex→machine placement.
func (c *Cluster) Assignment() []int { return append([]int(nil), c.owner...) }

// MarkDead records a permanent machine failure. A dead machine contributes
// no compute, no comm and no waiting to subsequent iterations — it is gone,
// not idle. Marking requires the machine to own no vertices (Rehome first).
func (c *Cluster) MarkDead(m int) error {
	if m < 0 || m >= c.numMachines {
		return fmt.Errorf("cluster: mark dead machine %d of %d", m, c.numMachines)
	}
	for v, p := range c.owner {
		if p == m {
			return fmt.Errorf("cluster: machine %d still owns vertex %d; rehome before MarkDead", m, v)
		}
	}
	if c.dead == nil {
		c.dead = make([]bool, c.numMachines)
	}
	c.dead[m] = true
	return nil
}

// Dead reports whether machine m has been marked permanently failed.
func (c *Cluster) Dead(m int) bool { return c.dead != nil && c.dead[m] }

// LiveMachines counts machines not marked dead.
func (c *Cluster) LiveMachines() int {
	n := c.numMachines
	for _, d := range c.dead {
		if d {
			n--
		}
	}
	return n
}

// Rehome replaces the vertex→machine placement mid-run — degraded-mode
// recovery restreaming a dead machine's vertices onto survivors. The new
// assignment must cover the same vertices and place none on a dead machine.
func (c *Cluster) Rehome(assignment []int) error {
	if len(assignment) != len(c.owner) {
		return fmt.Errorf("cluster: rehome %d vertices, cluster has %d", len(assignment), len(c.owner))
	}
	for v, p := range assignment {
		if p < 0 || p >= c.numMachines {
			return fmt.Errorf("cluster: rehome vertex %d to machine %d, want [0,%d)", v, p, c.numMachines)
		}
		if c.Dead(p) {
			return fmt.Errorf("cluster: rehome vertex %d to dead machine %d", v, p)
		}
	}
	copy(c.owner, assignment)
	return nil
}

// Counters accumulates one iteration's per-machine work. Engines fill it
// during a superstep (each machine writes only its own slot, so concurrent
// machine goroutines need no locking) and pass it to FinishIteration.
type Counters struct {
	Steps    []int64 // walk steps executed
	Edges    []int64 // edges traversed
	Vertices []int64 // vertex updates applied
	Messages []int64 // cross-machine messages sent

	// Pairs, when non-nil, is the K×K src→dst message matrix:
	// Pairs[i][j] counts the messages charged to machine i whose remote
	// peer is machine j. Row i belongs to machine i (same lock-free
	// discipline as the flat counters), the diagonal stays zero, and row
	// sums equal Messages exactly — the reconciliation invariant
	// commview.CheckMessages enforces. nil unless SetCommMatrix(true).
	Pairs [][]int64
}

// NewCounters returns zeroed counters for this cluster.
func (c *Cluster) NewCounters() *Counters {
	w := &Counters{
		Steps:    make([]int64, c.numMachines),
		Edges:    make([]int64, c.numMachines),
		Vertices: make([]int64, c.numMachines),
		Messages: make([]int64, c.numMachines),
	}
	if c.commMatrix {
		w.Pairs = newPairs(c.numMachines)
	}
	return w
}

// newPairs allocates a zeroed k×k matrix backed by one contiguous slice.
func newPairs(k int) [][]int64 {
	flat := make([]int64, k*k)
	rows := make([][]int64, k)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}

// clonePairs deep-copies a pair matrix (nil in, nil out).
func clonePairs(p [][]int64) [][]int64 {
	if p == nil {
		return nil
	}
	out := newPairs(len(p))
	for i, row := range p {
		copy(out[i], row)
	}
	return out
}

// IterationStats is the timing of one BSP iteration.
type IterationStats struct {
	// Compute[i] is machine i's computation time.
	Compute []float64
	// Comm[i] is machine i's communication time.
	Comm []float64
	// Waiting[i] is machine i's idle time at the two phase barriers.
	Waiting []float64
	// Time is the iteration's wall-clock duration:
	// max(Compute) + max(Comm) + Latency.
	Time float64
	// Work echoes the raw counters the stats were derived from.
	Work Counters
}

// FinishIteration converts raw work counters into BSP timing.
func (c *Cluster) FinishIteration(w *Counters) IterationStats {
	k := c.numMachines
	st := IterationStats{
		Compute: make([]float64, k),
		Comm:    make([]float64, k),
		Waiting: make([]float64, k),
		Work: Counters{
			Steps:    append([]int64(nil), w.Steps...),
			Edges:    append([]int64(nil), w.Edges...),
			Vertices: append([]int64(nil), w.Vertices...),
			Messages: append([]int64(nil), w.Messages...),
			Pairs:    clonePairs(w.Pairs),
		},
	}
	m := c.model
	var d Disruption
	if c.disrupter != nil {
		d = c.disrupter.Disrupt()
	}
	var maxCompute, maxComm float64
	for i := 0; i < k; i++ {
		if c.Dead(i) {
			continue
		}
		st.Compute[i] = m.StepCost*float64(w.Steps[i]) +
			m.EdgeCost*float64(w.Edges[i]) +
			m.VertexCost*float64(w.Vertices[i])
		if m.Speeds != nil {
			st.Compute[i] /= m.Speeds[i]
		}
		if d.Slow != nil && d.Slow[i] > 0 {
			st.Compute[i] *= d.Slow[i]
		}
		st.Comm[i] = m.MessageCost * float64(w.Messages[i])
		if d.Resend != nil && d.Resend[i] > 0 {
			st.Comm[i] *= 1 + d.Resend[i]
		}
		if st.Compute[i] > maxCompute {
			maxCompute = st.Compute[i]
		}
		if st.Comm[i] > maxComm {
			maxComm = st.Comm[i]
		}
	}
	if m.Pipelined {
		phase := maxCompute
		if maxComm > phase {
			phase = maxComm
		}
		st.Time = phase + m.Latency
		for i := 0; i < k; i++ {
			if c.Dead(i) {
				continue
			}
			busy := st.Compute[i]
			if st.Comm[i] > busy {
				busy = st.Comm[i]
			}
			st.Waiting[i] = phase - busy
		}
	} else {
		st.Time = maxCompute + maxComm + m.Latency
		for i := 0; i < k; i++ {
			if c.Dead(i) {
				continue
			}
			st.Waiting[i] = (maxCompute - st.Compute[i]) + (maxComm - st.Comm[i])
		}
	}
	st.Time += d.ExtraLatency
	c.observe(&st, "")
	return st
}

// ChargePhase accounts a barrier-gated recovery phase — checkpoint write,
// checkpoint restore, restream transfer — as one pseudo-iteration. busy[i]
// is machine i's busy time in simulated µs (dead machines must be 0); the
// phase lasts max(busy)+Latency, every faster live machine waits out the
// slack, and the phase is observed through telemetry with its kind attached
// so traces can separate recovery overhead from algorithm supersteps.
func (c *Cluster) ChargePhase(kind string, busy []float64) (IterationStats, error) {
	return c.ChargePhaseWork(kind, busy, nil)
}

// ChargePhaseWork is ChargePhase with explicit work counters attached to the
// phase record. Fault recovery uses it to publish restream traffic — which
// survivor received how many vertex states from the dead machine — so the
// comm matrix shows recovery-induced shifts, not just algorithm messages.
// work may be nil (a phase that moves no messages); when non-nil it is
// deep-copied into the observed stats, and its Pairs matrix (if any) rides
// along into the trace like any algorithm superstep's.
func (c *Cluster) ChargePhaseWork(kind string, busy []float64, work *Counters) (IterationStats, error) {
	k := c.numMachines
	if len(busy) != k {
		return IterationStats{}, fmt.Errorf("cluster: phase %q busy for %d machines, want %d", kind, len(busy), k)
	}
	if work == nil {
		work = c.NewCounters()
	}
	st := IterationStats{
		Compute: make([]float64, k),
		Comm:    make([]float64, k),
		Waiting: make([]float64, k),
		Work: Counters{
			Steps:    append([]int64(nil), work.Steps...),
			Edges:    append([]int64(nil), work.Edges...),
			Vertices: append([]int64(nil), work.Vertices...),
			Messages: append([]int64(nil), work.Messages...),
			Pairs:    clonePairs(work.Pairs),
		},
	}
	var max float64
	for i := 0; i < k; i++ {
		if c.Dead(i) {
			continue
		}
		st.Compute[i] = busy[i]
		if busy[i] > max {
			max = busy[i]
		}
	}
	st.Time = max + c.model.Latency
	for i := 0; i < k; i++ {
		if c.Dead(i) {
			continue
		}
		st.Waiting[i] = max - st.Compute[i]
	}
	c.observe(&st, kind)
	return st, nil
}

// observe publishes one finished superstep to the attached telemetry. The
// emitted record carries the IterationStats verbatim: per-machine compute,
// comm and waiting (simulated µs) plus the raw work counters. phase is ""
// for an algorithm superstep, or the recovery phase kind from ChargePhase.
func (c *Cluster) observe(st *IterationStats, phase string) {
	iter := c.iter
	c.iter++
	if c.probe != nil {
		attrs := []telemetry.Attr{telemetry.Int("iter", iter)}
		if phase != "" {
			attrs = append(attrs, telemetry.String("kind", phase))
		}
		c.probe.Lap("cluster.superstep", attrs...)
	}
	if c.reg != nil {
		var msgs int64
		for _, x := range st.Work.Messages {
			msgs += x
		}
		c.reg.Counter("cluster_supersteps_total").Inc()
		c.reg.Counter("cluster_messages_total").Add(msgs)
		c.reg.Counter("cluster_sim_time_us_total").Add(int64(st.Time))
		// Distribution metrics: the histogram summaries BENCH artifacts
		// persist. Superstep durations and, per machine per superstep,
		// the compute load and the outgoing message batch — the raw
		// material of the paper's Fig 12 skew and Fig 13 waiting plots.
		c.reg.Histogram("cluster_superstep_time_us").Observe(st.Time)
		computeH := c.reg.Histogram("cluster_machine_compute_us")
		msgH := c.reg.Histogram("cluster_machine_message_batch")
		for i := range st.Compute {
			computeH.Observe(st.Compute[i])
			msgH.Observe(float64(st.Work.Messages[i]))
		}
		if st.Work.Pairs != nil {
			// Matrix-capture metrics exist only when capture is on, so a
			// disabled run's registry (and BENCH histogram section) is
			// byte-identical to one built before this feature existed.
			var total, active int64
			batchH := c.reg.Histogram("comm_pair_batch_messages")
			for _, row := range st.Work.Pairs {
				for _, n := range row {
					if n == 0 {
						continue
					}
					total += n
					active++
					batchH.Observe(float64(n))
				}
			}
			c.reg.Counter("comm_messages_total").Add(total)
			c.reg.Counter("comm_active_pairs_total").Add(active)
		}
	}
	if c.tr != nil && c.tr.Enabled() {
		var waiting float64
		for _, x := range st.Waiting {
			waiting += x
		}
		attrs := []telemetry.Attr{
			telemetry.Int("iteration", iter),
			telemetry.Int("machines", c.numMachines),
		}
		// The worker count is attached only when the pool is real, so a
		// sequential run's trace stays byte-identical to one recorded
		// before the parallel mode existed (the committed baselines).
		if c.Workers() > 1 {
			attrs = append(attrs, telemetry.Int("workers", c.Workers()))
		}
		attrs = append(attrs,
			telemetry.Float("time_us", st.Time),
			telemetry.Float("waiting_us_total", waiting),
			telemetry.Any("compute", st.Compute),
			telemetry.Any("comm", st.Comm),
			telemetry.Any("waiting", st.Waiting),
			telemetry.Any("steps", st.Work.Steps),
			telemetry.Any("edges", st.Work.Edges),
			telemetry.Any("vertices", st.Work.Vertices),
			telemetry.Any("messages", st.Work.Messages),
		)
		if st.Work.Pairs != nil {
			attrs = append(attrs, telemetry.Any("pairs", st.Work.Pairs))
		}
		if phase != "" {
			attrs = append(attrs, telemetry.String("phase", phase))
		}
		c.tr.Event("cluster.superstep", attrs...)
	}
}

// RunStats aggregates a whole computation.
type RunStats struct {
	Iterations []IterationStats
}

// Add appends one iteration.
func (r *RunStats) Add(st IterationStats) { r.Iterations = append(r.Iterations, st) }

// TotalTime is the simulated wall-clock time of the run.
func (r *RunStats) TotalTime() float64 {
	var t float64
	for _, it := range r.Iterations {
		t += it.Time
	}
	return t
}

// TotalWaiting sums every machine's waiting time across all iterations.
func (r *RunStats) TotalWaiting() float64 {
	var w float64
	for _, it := range r.Iterations {
		for _, x := range it.Waiting {
			w += x
		}
	}
	return w
}

// WaitRatio is the paper's Fig 13 metric: total waiting time of all
// machines divided by (total running time × machine count) — the share of
// cluster capacity wasted at barriers.
func (r *RunStats) WaitRatio() float64 {
	if len(r.Iterations) == 0 {
		return 0
	}
	k := len(r.Iterations[0].Compute)
	if k == 0 {
		// A degenerate run (zero machines in the first iteration) has no
		// capacity to waste.
		return 0
	}
	total := r.TotalTime() * float64(k)
	if total == 0 {
		return 0
	}
	return r.TotalWaiting() / total
}

// TotalMessages counts every cross-machine message of the run.
func (r *RunStats) TotalMessages() int64 {
	var m int64
	for _, it := range r.Iterations {
		for _, x := range it.Work.Messages {
			m += x
		}
	}
	return m
}

// ComputeByMachine returns each machine's summed compute time.
func (r *RunStats) ComputeByMachine() []float64 {
	if len(r.Iterations) == 0 {
		return nil
	}
	out := make([]float64, len(r.Iterations[0].Compute))
	for _, it := range r.Iterations {
		for i, c := range it.Compute {
			out[i] += c
		}
	}
	return out
}

// WriteTimeline writes the run as CSV rows
// (iteration, machine, compute, comm, waiting, steps, edges, messages,
// received), one per machine per iteration — the raw data behind the
// paper's Fig 12 per-machine bar charts. messages counts what the machine
// sent; received is the matching inbound count, the column sum of the
// iteration's src→dst matrix — derivable only when the run captured one
// (SetCommMatrix), and 0 otherwise.
func (r *RunStats) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "iteration,machine,compute,comm,waiting,steps,edges,messages,received"); err != nil {
		return err
	}
	for it, st := range r.Iterations {
		for m := range st.Compute {
			var recv int64
			if st.Work.Pairs != nil {
				for _, row := range st.Work.Pairs {
					recv += row[m]
				}
			}
			if _, err := fmt.Fprintf(bw, "%d,%d,%.3f,%.3f,%.3f,%d,%d,%d,%d\n",
				it, m, st.Compute[m], st.Comm[m], st.Waiting[m],
				st.Work.Steps[m], st.Work.Edges[m], st.Work.Messages[m], recv); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Parallel runs fn(machine) concurrently for every machine and waits for
// all of them — one BSP phase. Machines must confine their writes to their
// own counter slots and per-machine state.
func (c *Cluster) Parallel(fn func(machine int)) {
	var wg sync.WaitGroup
	wg.Add(c.numMachines)
	for i := 0; i < c.numMachines; i++ {
		go func(machine int) {
			defer wg.Done()
			fn(machine)
		}(i)
	}
	wg.Wait()
}

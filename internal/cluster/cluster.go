// Package cluster simulates the paper's testbed: a cluster of machines
// running bulk-synchronous-parallel (BSP) graph computations (§2.1, Fig 1).
//
// The paper's performance metrics — per-machine compute time per iteration
// (Fig 12), waiting-time ratio (Fig 13), normalized running time (Figs 14,
// 15) — are relative quantities determined by load balance and cut-edge
// traffic, not by absolute hardware speed. The simulation therefore charges
// deterministic unit costs per walk step, per edge traversal, per vertex
// update and per cross-machine message, and derives BSP timing exactly:
// within an iteration every machine computes in parallel, then exchanges
// messages, then all barrier; the iteration lasts as long as its slowest
// machine, and every faster machine's surplus is waiting time — the
// synchronization overhead BPart attacks.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"bpart/internal/telemetry"
)

// CostModel holds unit costs in microseconds. Only ratios matter for the
// reproduced figures.
type CostModel struct {
	// StepCost is charged per random-walk step executed (walk engine).
	StepCost float64
	// EdgeCost is charged per edge traversed (iteration engine).
	EdgeCost float64
	// VertexCost is charged per vertex update (iteration engine).
	VertexCost float64
	// MessageCost is charged per cross-machine message sent.
	MessageCost float64
	// Latency is a fixed per-iteration barrier/network setup cost.
	Latency float64
	// Pipelined overlaps the computation and communication phases the
	// way some systems do (§2.1: "the computation and communication
	// phases may be processed in a pipelined fashion"): iteration time
	// becomes max(compute, comm) instead of compute + comm.
	Pipelined bool
	// Speeds, when non-nil, gives each machine a relative compute speed
	// (1.0 = nominal; 0.5 = half speed). It models heterogeneous
	// clusters, where uniformly balanced partitions are no longer the
	// optimum — the Hetero ablation quantifies this. Length must equal
	// the machine count.
	Speeds []float64
}

// DefaultCostModel approximates the paper's testbed ratios: a walk step or
// vertex update is ~10 ns of CPU, an edge traversal ~2 ns, and a message
// ~40 ns of effective per-message cost on a fast network with batching.
func DefaultCostModel() CostModel {
	return CostModel{
		StepCost:    0.010,
		EdgeCost:    0.002,
		VertexCost:  0.010,
		MessageCost: 0.040,
		Latency:     50,
	}
}

// Cluster is a set of simulated machines plus the vertex→machine placement
// produced by a partitioner.
type Cluster struct {
	numMachines int
	owner       []int // vertex -> machine
	model       CostModel

	tr   telemetry.Tracer
	reg  *telemetry.Registry
	iter int // supersteps finished, for span numbering
}

// New builds a cluster of k machines owning vertices per assignment.
func New(assignment []int, k int, model CostModel) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: %d machines", k)
	}
	if model.Speeds != nil {
		if len(model.Speeds) != k {
			return nil, fmt.Errorf("cluster: %d speeds for %d machines", len(model.Speeds), k)
		}
		for i, s := range model.Speeds {
			if s <= 0 {
				return nil, fmt.Errorf("cluster: machine %d speed %v, want > 0", i, s)
			}
		}
	}
	for v, p := range assignment {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("cluster: vertex %d owned by machine %d, want [0,%d)", v, p, k)
		}
	}
	// Copy the assignment: the caller keeps its slice, and a later
	// mutation of it must not silently re-home vertices mid-run.
	owner := append([]int(nil), assignment...)
	return &Cluster{numMachines: k, owner: owner, model: model, tr: telemetry.Nop()}, nil
}

// SetTelemetry implements telemetry.Instrumentable: with a tracer attached
// (may be nil to detach), every FinishIteration emits one
// "cluster.superstep" event carrying the full IterationStats — per-machine
// compute, comm and waiting plus the raw work counters — so a whole run
// yields a machine-level timeline. reg (may be nil) accumulates
// cluster_* totals.
func (c *Cluster) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	c.tr = telemetry.Safe(tr)
	c.reg = reg
}

// NumMachines returns the machine count.
func (c *Cluster) NumMachines() int { return c.numMachines }

// Owner returns the machine owning vertex v.
func (c *Cluster) Owner(v uint32) int { return c.owner[v] }

// Model returns the cost model.
func (c *Cluster) Model() CostModel { return c.model }

// Counters accumulates one iteration's per-machine work. Engines fill it
// during a superstep (each machine writes only its own slot, so concurrent
// machine goroutines need no locking) and pass it to FinishIteration.
type Counters struct {
	Steps    []int64 // walk steps executed
	Edges    []int64 // edges traversed
	Vertices []int64 // vertex updates applied
	Messages []int64 // cross-machine messages sent
}

// NewCounters returns zeroed counters for this cluster.
func (c *Cluster) NewCounters() *Counters {
	return &Counters{
		Steps:    make([]int64, c.numMachines),
		Edges:    make([]int64, c.numMachines),
		Vertices: make([]int64, c.numMachines),
		Messages: make([]int64, c.numMachines),
	}
}

// IterationStats is the timing of one BSP iteration.
type IterationStats struct {
	// Compute[i] is machine i's computation time.
	Compute []float64
	// Comm[i] is machine i's communication time.
	Comm []float64
	// Waiting[i] is machine i's idle time at the two phase barriers.
	Waiting []float64
	// Time is the iteration's wall-clock duration:
	// max(Compute) + max(Comm) + Latency.
	Time float64
	// Work echoes the raw counters the stats were derived from.
	Work Counters
}

// FinishIteration converts raw work counters into BSP timing.
func (c *Cluster) FinishIteration(w *Counters) IterationStats {
	k := c.numMachines
	st := IterationStats{
		Compute: make([]float64, k),
		Comm:    make([]float64, k),
		Waiting: make([]float64, k),
		Work: Counters{
			Steps:    append([]int64(nil), w.Steps...),
			Edges:    append([]int64(nil), w.Edges...),
			Vertices: append([]int64(nil), w.Vertices...),
			Messages: append([]int64(nil), w.Messages...),
		},
	}
	m := c.model
	var maxCompute, maxComm float64
	for i := 0; i < k; i++ {
		st.Compute[i] = m.StepCost*float64(w.Steps[i]) +
			m.EdgeCost*float64(w.Edges[i]) +
			m.VertexCost*float64(w.Vertices[i])
		if m.Speeds != nil {
			st.Compute[i] /= m.Speeds[i]
		}
		st.Comm[i] = m.MessageCost * float64(w.Messages[i])
		if st.Compute[i] > maxCompute {
			maxCompute = st.Compute[i]
		}
		if st.Comm[i] > maxComm {
			maxComm = st.Comm[i]
		}
	}
	if m.Pipelined {
		phase := maxCompute
		if maxComm > phase {
			phase = maxComm
		}
		st.Time = phase + m.Latency
		for i := 0; i < k; i++ {
			busy := st.Compute[i]
			if st.Comm[i] > busy {
				busy = st.Comm[i]
			}
			st.Waiting[i] = phase - busy
		}
	} else {
		st.Time = maxCompute + maxComm + m.Latency
		for i := 0; i < k; i++ {
			st.Waiting[i] = (maxCompute - st.Compute[i]) + (maxComm - st.Comm[i])
		}
	}
	c.observe(&st)
	return st
}

// observe publishes one finished superstep to the attached telemetry. The
// emitted record carries the IterationStats verbatim: per-machine compute,
// comm and waiting (simulated µs) plus the raw work counters.
func (c *Cluster) observe(st *IterationStats) {
	iter := c.iter
	c.iter++
	if c.reg != nil {
		var msgs int64
		for _, x := range st.Work.Messages {
			msgs += x
		}
		c.reg.Counter("cluster_supersteps_total").Inc()
		c.reg.Counter("cluster_messages_total").Add(msgs)
		c.reg.Counter("cluster_sim_time_us_total").Add(int64(st.Time))
		// Distribution metrics: the histogram summaries BENCH artifacts
		// persist. Superstep durations and, per machine per superstep,
		// the compute load and the outgoing message batch — the raw
		// material of the paper's Fig 12 skew and Fig 13 waiting plots.
		c.reg.Histogram("cluster_superstep_time_us").Observe(st.Time)
		computeH := c.reg.Histogram("cluster_machine_compute_us")
		msgH := c.reg.Histogram("cluster_machine_message_batch")
		for i := range st.Compute {
			computeH.Observe(st.Compute[i])
			msgH.Observe(float64(st.Work.Messages[i]))
		}
	}
	if c.tr != nil && c.tr.Enabled() {
		var waiting float64
		for _, x := range st.Waiting {
			waiting += x
		}
		c.tr.Event("cluster.superstep",
			telemetry.Int("iteration", iter),
			telemetry.Int("machines", c.numMachines),
			telemetry.Float("time_us", st.Time),
			telemetry.Float("waiting_us_total", waiting),
			telemetry.Any("compute", st.Compute),
			telemetry.Any("comm", st.Comm),
			telemetry.Any("waiting", st.Waiting),
			telemetry.Any("steps", st.Work.Steps),
			telemetry.Any("edges", st.Work.Edges),
			telemetry.Any("vertices", st.Work.Vertices),
			telemetry.Any("messages", st.Work.Messages),
		)
	}
}

// RunStats aggregates a whole computation.
type RunStats struct {
	Iterations []IterationStats
}

// Add appends one iteration.
func (r *RunStats) Add(st IterationStats) { r.Iterations = append(r.Iterations, st) }

// TotalTime is the simulated wall-clock time of the run.
func (r *RunStats) TotalTime() float64 {
	var t float64
	for _, it := range r.Iterations {
		t += it.Time
	}
	return t
}

// TotalWaiting sums every machine's waiting time across all iterations.
func (r *RunStats) TotalWaiting() float64 {
	var w float64
	for _, it := range r.Iterations {
		for _, x := range it.Waiting {
			w += x
		}
	}
	return w
}

// WaitRatio is the paper's Fig 13 metric: total waiting time of all
// machines divided by (total running time × machine count) — the share of
// cluster capacity wasted at barriers.
func (r *RunStats) WaitRatio() float64 {
	if len(r.Iterations) == 0 {
		return 0
	}
	k := len(r.Iterations[0].Compute)
	if k == 0 {
		// A degenerate run (zero machines in the first iteration) has no
		// capacity to waste.
		return 0
	}
	total := r.TotalTime() * float64(k)
	if total == 0 {
		return 0
	}
	return r.TotalWaiting() / total
}

// TotalMessages counts every cross-machine message of the run.
func (r *RunStats) TotalMessages() int64 {
	var m int64
	for _, it := range r.Iterations {
		for _, x := range it.Work.Messages {
			m += x
		}
	}
	return m
}

// ComputeByMachine returns each machine's summed compute time.
func (r *RunStats) ComputeByMachine() []float64 {
	if len(r.Iterations) == 0 {
		return nil
	}
	out := make([]float64, len(r.Iterations[0].Compute))
	for _, it := range r.Iterations {
		for i, c := range it.Compute {
			out[i] += c
		}
	}
	return out
}

// WriteTimeline writes the run as CSV rows
// (iteration, machine, compute, comm, waiting, steps, edges, messages),
// one per machine per iteration — the raw data behind the paper's Fig 12
// per-machine bar charts.
func (r *RunStats) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "iteration,machine,compute,comm,waiting,steps,edges,messages"); err != nil {
		return err
	}
	for it, st := range r.Iterations {
		for m := range st.Compute {
			if _, err := fmt.Fprintf(bw, "%d,%d,%.3f,%.3f,%.3f,%d,%d,%d\n",
				it, m, st.Compute[m], st.Comm[m], st.Waiting[m],
				st.Work.Steps[m], st.Work.Edges[m], st.Work.Messages[m]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Parallel runs fn(machine) concurrently for every machine and waits for
// all of them — one BSP phase. Machines must confine their writes to their
// own counter slots and per-machine state.
func (c *Cluster) Parallel(fn func(machine int)) {
	var wg sync.WaitGroup
	wg.Add(c.numMachines)
	for i := 0; i < c.numMachines; i++ {
		go func(machine int) {
			defer wg.Done()
			fn(machine)
		}(i)
	}
	wg.Wait()
}

package vcut

import (
	"math"
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

func skewedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 10000, AvgDegree: 16, Skew: 0.8, Locality: 0.3, Window: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allSchemes() []Partitioner {
	return []Partitioner{RandomEdge{}, DBH{}, Greedy{}, HDRF{}}
}

func TestArgValidation(t *testing.T) {
	g := gen.Ring(4)
	for _, p := range allSchemes() {
		if _, err := p.Partition(g, 0); err == nil {
			t.Errorf("%s accepted k=0", p.Name())
		}
		if _, err := p.Partition(g, MaxParts+1); err == nil {
			t.Errorf("%s accepted k>MaxParts", p.Name())
		}
		if _, err := p.Partition(nil, 4); err == nil {
			t.Errorf("%s accepted nil graph", p.Name())
		}
	}
}

func TestAssignmentsValid(t *testing.T) {
	g := skewedGraph(t)
	for _, p := range allSchemes() {
		a, err := p.Partition(g, 8)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := gen.Ring(4)
	a, err := RandomEdge{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Parts[0] = 99
	if err := a.Validate(g); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	short := &EdgeAssignment{Parts: []int{0}, K: 2}
	if err := short.Validate(g); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestReplicationFactorBounds(t *testing.T) {
	g := skewedGraph(t)
	for _, p := range allSchemes() {
		a, err := p.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReport(g, a)
		if r.ReplicationFactor < 1 || r.ReplicationFactor > 8 {
			t.Fatalf("%s: replication factor %v out of [1,k]", p.Name(), r.ReplicationFactor)
		}
		if r.MaxReplicas > 8 {
			t.Fatalf("%s: max replicas %d > k", p.Name(), r.MaxReplicas)
		}
		total := 0
		for _, c := range r.EdgeCounts {
			total += c
		}
		if total != g.NumEdges() {
			t.Fatalf("%s: edge counts sum %d != %d", p.Name(), total, g.NumEdges())
		}
	}
}

func TestDBHBeatsRandomOnReplication(t *testing.T) {
	g := skewedGraph(t)
	ar, _ := RandomEdge{}.Partition(g, 8)
	ad, _ := DBH{}.Partition(g, 8)
	rr := NewReport(g, ar)
	rd := NewReport(g, ad)
	if rd.ReplicationFactor >= rr.ReplicationFactor {
		t.Fatalf("DBH RF %v not below RandomEdge RF %v", rd.ReplicationFactor, rr.ReplicationFactor)
	}
}

func TestHDRFBeatsRandomAndBalances(t *testing.T) {
	g := skewedGraph(t)
	ar, _ := RandomEdge{}.Partition(g, 8)
	ah, _ := HDRF{}.Partition(g, 8)
	rr := NewReport(g, ar)
	rh := NewReport(g, ah)
	if rh.ReplicationFactor >= rr.ReplicationFactor {
		t.Fatalf("HDRF RF %v not below RandomEdge RF %v", rh.ReplicationFactor, rr.ReplicationFactor)
	}
	if b := metrics.Bias(rh.EdgeCounts); b > 0.2 {
		t.Fatalf("HDRF edge bias %v, want balanced", b)
	}
}

func TestRandomEdgePerfectishBalance(t *testing.T) {
	g := skewedGraph(t)
	a, _ := RandomEdge{}.Partition(g, 8)
	r := NewReport(g, a)
	if b := metrics.Bias(r.EdgeCounts); b > 0.05 {
		t.Fatalf("RandomEdge edge bias %v", b)
	}
}

func TestLowDegreeVerticesStayWholeUnderDBH(t *testing.T) {
	g := skewedGraph(t)
	a, _ := DBH{}.Partition(g, 8)
	masks := Replicas(g, a)
	deg := totalDegrees(g)
	// A degree-1 vertex's single arc anchors on it (it is the low-degree
	// endpoint unless tied), so it should have exactly 1 replica... but
	// its single arc may anchor on the other endpoint on ties. Check the
	// aggregate: replication of degree-≤2 vertices stays near 1.
	var sum, count int
	for v, m := range masks {
		if m == 0 || deg[v] > 2 {
			continue
		}
		sum += popcount(m)
		count++
	}
	if count == 0 {
		t.Skip("no low-degree vertices")
	}
	if avg := float64(sum) / float64(count); avg > 1.6 {
		t.Fatalf("low-degree vertices replicated %.2fx under DBH", avg)
	}
}

func TestReplicasMatchAssignment(t *testing.T) {
	// 0->1, 1->2 on 2 parts assigned [0, 1]: vertex 1 replicated on both.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {}})
	a := &EdgeAssignment{Parts: []int{0, 1}, K: 2}
	masks := Replicas(g, a)
	if masks[0] != 1 || masks[2] != 2 {
		t.Fatalf("endpoint masks wrong: %b %b", masks[0], masks[2])
	}
	if masks[1] != 3 {
		t.Fatalf("vertex 1 mask %b, want both parts", masks[1])
	}
	r := NewReport(g, a)
	if math.Abs(r.ReplicationFactor-4.0/3) > 1e-9 {
		t.Fatalf("RF = %v, want 4/3", r.ReplicationFactor)
	}
	if r.MaxReplicas != 2 {
		t.Fatalf("MaxReplicas = %d", r.MaxReplicas)
	}
}

func TestIsolatedVerticesIgnoredInRF(t *testing.T) {
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}, {}}) // vertex 2 isolated
	a := &EdgeAssignment{Parts: []int{0}, K: 2}
	r := NewReport(g, a)
	if r.ReplicationFactor != 1 {
		t.Fatalf("RF = %v with isolated vertex, want 1", r.ReplicationFactor)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 0xFF: 8, 1 << 63: 1}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%x) = %d, want %d", x, got, want)
		}
	}
}

// Property: every scheme covers all arcs, keeps parts in range, and
// produces RF within [1, k].
func TestQuickSchemesValid(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%100) + 2
		k := int(rawK)%16 + 1
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 4, Skew: 0.7, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range allSchemes() {
			a, err := p.Partition(g, k)
			if err != nil || a.Validate(g) != nil {
				return false
			}
			r := NewReport(g, a)
			if r.ReplicationFactor < 1 || r.ReplicationFactor > float64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHDRF(b *testing.B) {
	g := skewedGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (HDRF{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

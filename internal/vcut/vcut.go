// Package vcut implements vertex-cut graph partitioning, the second family
// the paper surveys in §5: instead of assigning vertices and cutting
// edges, vertex-cut schemes assign *edges* to parts and replicate any
// vertex whose edges span several parts (PowerGraph, PowerLyra, HDRF).
// The communication metric of this family is the replication factor —
// the average number of copies per vertex — in place of the edge-cut
// ratio.
//
// Implemented schemes:
//
//   - RandomEdge — hash each edge (PowerGraph's default oblivious-free
//     baseline); perfect edge balance, worst replication.
//   - DBH — degree-based hashing (Xie et al., NeurIPS'14): hash on the
//     lower-degree endpoint, so hubs (whose replication is unavoidable)
//     absorb the cuts and low-degree vertices stay whole.
//   - Greedy — PowerGraph's streaming heuristic: prefer parts already
//     holding both endpoints, then one, then the lightest part.
//   - HDRF — High-Degree Replicated First (Petroni et al., CIKM'15):
//     Greedy plus a normalized-degree term that pushes replication onto
//     hubs, with an explicit load-balance term λ.
package vcut

import (
	"fmt"

	"bpart/internal/graph"
)

// MaxParts bounds k so per-vertex replica sets fit one machine word.
const MaxParts = 64

// EdgeAssignment maps every arc (in g.Edges enumeration order: source-major,
// targets sorted) to a part.
type EdgeAssignment struct {
	Parts []int
	K     int
}

// Validate checks the assignment covers every arc with parts in range.
func (a *EdgeAssignment) Validate(g *graph.Graph) error {
	if len(a.Parts) != g.NumEdges() {
		return fmt.Errorf("vcut: %d entries for %d arcs", len(a.Parts), g.NumEdges())
	}
	if a.K <= 0 || a.K > MaxParts {
		return fmt.Errorf("vcut: K = %d, want in [1,%d]", a.K, MaxParts)
	}
	for i, p := range a.Parts {
		if p < 0 || p >= a.K {
			return fmt.Errorf("vcut: arc %d assigned to part %d, want [0,%d)", i, p, a.K)
		}
	}
	return nil
}

// Partitioner is a vertex-cut partitioning scheme.
type Partitioner interface {
	Name() string
	Partition(g *graph.Graph, k int) (*EdgeAssignment, error)
}

func checkArgs(g *graph.Graph, k int) error {
	if g == nil {
		return fmt.Errorf("vcut: nil graph")
	}
	if k <= 0 || k > MaxParts {
		return fmt.Errorf("vcut: k = %d, want in [1,%d]", k, MaxParts)
	}
	return nil
}

// Replicas returns, per vertex, the bitmask of parts holding at least one
// of its arcs (as source or target).
func Replicas(g *graph.Graph, a *EdgeAssignment) []uint64 {
	masks := make([]uint64, g.NumVertices())
	i := 0
	g.Edges(func(e graph.Edge) bool {
		bit := uint64(1) << a.Parts[i]
		masks[e.Src] |= bit
		masks[e.Dst] |= bit
		i++
		return true
	})
	return masks
}

// Report summarizes vertex-cut quality.
type Report struct {
	K int
	// EdgeCounts is the per-part arc count (the balanced dimension).
	EdgeCounts []int
	// ReplicationFactor is Σ copies / |V| over vertices with ≥1 arc.
	ReplicationFactor float64
	// MaxReplicas is the largest per-vertex copy count.
	MaxReplicas int
}

// NewReport computes the Report for an edge assignment.
func NewReport(g *graph.Graph, a *EdgeAssignment) Report {
	r := Report{K: a.K, EdgeCounts: make([]int, a.K)}
	for _, p := range a.Parts {
		r.EdgeCounts[p]++
	}
	masks := Replicas(g, a)
	var total, present int
	for _, m := range masks {
		if m == 0 {
			continue
		}
		c := popcount(m)
		total += c
		present++
		if c > r.MaxReplicas {
			r.MaxReplicas = c
		}
	}
	if present > 0 {
		r.ReplicationFactor = float64(total) / float64(present)
	}
	return r
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RandomEdge hashes each arc to a part.
type RandomEdge struct {
	Seed uint64
	observability
}

// Name implements Partitioner.
func (RandomEdge) Name() string { return "RandomEdge" }

// Partition implements Partitioner.
func (r RandomEdge) Partition(g *graph.Graph, k int) (*EdgeAssignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	sp := r.startSpan("RandomEdge", g, k)
	parts := make([]int, g.NumEdges())
	for i := range parts {
		parts[i] = int(mix64(uint64(i)^r.Seed) % uint64(k))
	}
	a := &EdgeAssignment{Parts: parts, K: k}
	r.finish(sp, g, a)
	return a, nil
}

// DBH assigns each arc by hashing its lower-(total-)degree endpoint.
type DBH struct {
	Seed uint64
	observability
}

// Name implements Partitioner.
func (DBH) Name() string { return "DBH" }

// Partition implements Partitioner.
func (d DBH) Partition(g *graph.Graph, k int) (*EdgeAssignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	sp := d.startSpan("DBH", g, k)
	deg := totalDegrees(g)
	parts := make([]int, g.NumEdges())
	i := 0
	g.Edges(func(e graph.Edge) bool {
		anchor := e.Src
		if deg[e.Dst] < deg[e.Src] {
			anchor = e.Dst
		}
		parts[i] = int(mix64(uint64(anchor)^d.Seed) % uint64(k))
		i++
		return true
	})
	a := &EdgeAssignment{Parts: parts, K: k}
	d.finish(sp, g, a)
	return a, nil
}

// totalDegrees returns out-degree + in-degree per vertex.
func totalDegrees(g *graph.Graph) []int {
	deg := make([]int, g.NumVertices())
	g.Edges(func(e graph.Edge) bool {
		deg[e.Src]++
		deg[e.Dst]++
		return true
	})
	return deg
}

// Greedy is PowerGraph's streaming edge placement.
type Greedy struct {
	observability
}

// Name implements Partitioner.
func (Greedy) Name() string { return "Greedy" }

// Partition implements Partitioner.
func (gr Greedy) Partition(g *graph.Graph, k int) (*EdgeAssignment, error) {
	return streamEdges(g, k, "Greedy", gr.observability, func(_, _ float64, repU, repV bool, load, minLoad, maxLoad int) float64 {
		score := 0.0
		if repU {
			score++
		}
		if repV {
			score++
		}
		// Light balance tie-break.
		spread := float64(maxLoad-minLoad) + 1
		return score + float64(maxLoad-load)/spread
	})
}

// HDRF is the High-Degree Replicated First scheme.
type HDRF struct {
	// Lambda weighs the balance term; <= 0 selects 1.0.
	Lambda float64
	observability
}

// Name implements Partitioner.
func (HDRF) Name() string { return "HDRF" }

// Partition implements Partitioner.
func (h HDRF) Partition(g *graph.Graph, k int) (*EdgeAssignment, error) {
	lambda := h.Lambda
	if lambda <= 0 {
		lambda = 1.0
	}
	return streamEdges(g, k, "HDRF", h.observability, func(thetaU, thetaV float64, repU, repV bool, load, minLoad, maxLoad int) float64 {
		score := 0.0
		if repU {
			score += 1 + (1 - thetaU)
		}
		if repV {
			score += 1 + (1 - thetaV)
		}
		spread := float64(maxLoad-minLoad) + 1
		return score + lambda*float64(maxLoad-load)/spread
	})
}

// scoreFunc rates placing the current arc (u,v) on a part: thetaU/thetaV
// are the endpoints' normalized partial degrees, repU/repV whether the part
// already replicates them, and load/minLoad/maxLoad the part's and the
// extreme edge loads.
type scoreFunc func(thetaU, thetaV float64, repU, repV bool, load, minLoad, maxLoad int) float64

func streamEdges(g *graph.Graph, k int, name string, o observability, score scoreFunc) (*EdgeAssignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	sp := o.startSpan(name, g, k)
	n := g.NumVertices()
	parts := make([]int, g.NumEdges())
	replicas := make([]uint64, n)
	load := make([]int, k)
	partial := make([]int, n) // degree seen so far
	minLoad, maxLoad := 0, 0

	// Arc index base per source, so assignments land at the arc's
	// position in the canonical source-major enumeration even though the
	// stream visits sources in shuffled order (HDRF/Greedy are defined
	// over randomly ordered edge streams; source-major order lets the
	// replication term snowball one part to 8× overload).
	base := make([]int, n)
	sum := 0
	for v := 0; v < n; v++ {
		base[v] = sum
		sum += g.OutDegree(graph.VertexID(v))
	}
	order := shuffledVertices(n, 0x5747)

	for _, src := range order {
		for off, dst := range g.Neighbors(src) {
			partial[src]++
			partial[dst]++
			du, dv := partial[src], partial[dst]
			thetaU := float64(du) / float64(du+dv)
			thetaV := 1 - thetaU
			best, bestScore := 0, -1.0
			for p := 0; p < k; p++ {
				bit := uint64(1) << p
				s := score(thetaU, thetaV,
					replicas[src]&bit != 0, replicas[dst]&bit != 0,
					load[p], minLoad, maxLoad)
				if s > bestScore || (s == bestScore && load[p] < load[best]) {
					best, bestScore = p, s
				}
			}
			parts[base[src]+off] = best
			bit := uint64(1) << best
			replicas[src] |= bit
			replicas[dst] |= bit
			load[best]++
			minLoad, maxLoad = load[0], load[0]
			for p := 1; p < k; p++ {
				if load[p] < minLoad {
					minLoad = load[p]
				}
				if load[p] > maxLoad {
					maxLoad = load[p]
				}
			}
		}
	}
	a := &EdgeAssignment{Parts: parts, K: k}
	o.finish(sp, g, a)
	return a, nil
}

// shuffledVertices returns a deterministic pseudo-random vertex order.
func shuffledVertices(n int, seed uint64) []graph.VertexID {
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state = mix64(state)
		j := int(state % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

package vcut

import (
	"testing"

	"bpart/internal/telemetry"
)

// instrumentedSchemes returns pointer instances (SetTelemetry has a pointer
// receiver) of every vertex-cut scheme.
func instrumentedSchemes() []Partitioner {
	return []Partitioner{&RandomEdge{}, &DBH{}, &Greedy{}, &HDRF{}}
}

// Every traced scheme must emit one vcut.partition span whose end
// attributes match the assignment's own Report, and fill the registry.
func TestPartitionTelemetry(t *testing.T) {
	g := skewedGraph(t)
	const k = 8
	for _, p := range instrumentedSchemes() {
		tr := telemetry.NewMemory()
		reg := telemetry.NewRegistry()
		in, ok := p.(telemetry.Instrumentable)
		if !ok {
			t.Fatalf("%s does not implement telemetry.Instrumentable", p.Name())
		}
		in.SetTelemetry(tr, reg)

		a, err := p.Partition(g, k)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		rep := NewReport(g, a)

		spans := tr.Find("vcut.partition")
		if len(spans) != 1 {
			t.Fatalf("%s: got %d vcut.partition spans, want 1", p.Name(), len(spans))
		}
		sp := spans[0]
		if got := sp.Attr("scheme"); got != p.Name() {
			t.Fatalf("%s: span scheme attr = %v", p.Name(), got)
		}
		if got := sp.Attr("k"); got != int64(k) {
			t.Fatalf("%s: span k = %v", p.Name(), got)
		}
		if got := sp.Attr("edges"); got != int64(g.NumEdges()) {
			t.Fatalf("%s: span edges = %v, want %d", p.Name(), got, g.NumEdges())
		}
		if got := sp.Attr("replication_factor"); got != rep.ReplicationFactor {
			t.Fatalf("%s: span replication_factor = %v, report says %v", p.Name(), got, rep.ReplicationFactor)
		}
		if got := sp.Attr("max_replicas"); got != int64(rep.MaxReplicas) {
			t.Fatalf("%s: span max_replicas = %v, report says %d", p.Name(), got, rep.MaxReplicas)
		}
		if _, ok := sp.Attr("edge_bias").(float64); !ok {
			t.Fatalf("%s: span edge_bias = %v", p.Name(), sp.Attr("edge_bias"))
		}

		if got := reg.Counter("vcut_partitions_total").Value(); got != 1 {
			t.Fatalf("%s: vcut_partitions_total = %d, want 1", p.Name(), got)
		}
		if got := reg.Counter("vcut_edges_placed_total").Value(); got != int64(g.NumEdges()) {
			t.Fatalf("%s: vcut_edges_placed_total = %d, want %d", p.Name(), got, g.NumEdges())
		}
		if got := reg.Gauge("vcut_replication_factor").Value(); got != rep.ReplicationFactor {
			t.Fatalf("%s: vcut_replication_factor gauge = %v, report says %v", p.Name(), got, rep.ReplicationFactor)
		}
		if got := reg.Gauge("vcut_max_replicas").Value(); got != float64(rep.MaxReplicas) {
			t.Fatalf("%s: vcut_max_replicas gauge = %v, report says %d", p.Name(), got, rep.MaxReplicas)
		}
	}
}

// An uninstrumented scheme must behave identically, and instrumenting must
// not change the assignment.
func TestTelemetryDoesNotChangeResult(t *testing.T) {
	g := skewedGraph(t)
	plain := allSchemes()
	traced := instrumentedSchemes()
	for i := range plain {
		a1, err := plain[i].Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		in := traced[i].(telemetry.Instrumentable)
		in.SetTelemetry(telemetry.NewMemory(), telemetry.NewRegistry())
		a2, err := traced[i].Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		for e := range a1.Parts {
			if a1.Parts[e] != a2.Parts[e] {
				t.Fatalf("%s: arc %d: untraced part %d, traced part %d",
					plain[i].Name(), e, a1.Parts[e], a2.Parts[e])
			}
		}
	}
}

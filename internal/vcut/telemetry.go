package vcut

import (
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/telemetry"
)

// observability holds the optional tracer/registry a scheme carries;
// embedding it gives every scheme SetTelemetry (telemetry.Instrumentable)
// via a pointer receiver — attach with a pointer instance, e.g. the
// facade's NewRandomEdgeCut.
type observability struct {
	tr  telemetry.Tracer
	reg *telemetry.Registry
}

// SetTelemetry implements telemetry.Instrumentable: tr (may be nil)
// receives one "vcut.partition" span per Partition call; reg (may be nil)
// accumulates vcut_* counters and the replication-factor gauge.
func (o *observability) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	o.tr = telemetry.Safe(tr)
	o.reg = reg
}

// startSpan opens the per-partition span when tracing is attached.
func (o observability) startSpan(scheme string, g *graph.Graph, k int) telemetry.Span {
	if o.tr == nil || !o.tr.Enabled() {
		return nil
	}
	return o.tr.Span("vcut.partition",
		telemetry.String("scheme", scheme),
		telemetry.Int("k", k),
		telemetry.Int("vertices", g.NumVertices()),
		telemetry.Int("edges", g.NumEdges()))
}

// finish publishes the finished assignment's quality — replication factor,
// max replicas, edge balance — on the span and registry. The O(|E|)
// replication scan runs only when telemetry is attached.
func (o observability) finish(sp telemetry.Span, g *graph.Graph, a *EdgeAssignment) {
	if sp == nil && o.reg == nil {
		return
	}
	rep := NewReport(g, a)
	if o.reg != nil {
		o.reg.Counter("vcut_partitions_total").Inc()
		o.reg.Counter("vcut_edges_placed_total").Add(int64(len(a.Parts)))
		o.reg.Gauge("vcut_replication_factor").Set(rep.ReplicationFactor)
		o.reg.Gauge("vcut_max_replicas").Set(float64(rep.MaxReplicas))
	}
	if sp != nil {
		sp.End(
			telemetry.Float("replication_factor", rep.ReplicationFactor),
			telemetry.Int("max_replicas", rep.MaxReplicas),
			telemetry.Float("edge_bias", metrics.Bias(rep.EdgeCounts)))
	}
}

package traceview

import "fmt"

// Superstep is one decoded "cluster.superstep" event — the IterationStats
// the simulated cluster emitted for one BSP iteration.
type Superstep struct {
	Iteration int
	Machines  int
	TimeUS    float64
	Compute   []float64 // per-machine compute time (simulated µs)
	Comm      []float64 // per-machine communication time
	Waiting   []float64 // per-machine barrier idle time
	Steps     []int64
	Edges     []int64
	Vertices  []int64
	Messages  []int64
}

// Supersteps decodes every cluster.superstep event in trace order. A
// record missing the per-machine arrays is an error: it means the trace
// came from an incompatible writer, not from PR-1's cluster.
func Supersteps(tr *Trace) ([]Superstep, error) {
	var out []Superstep
	for _, r := range tr.Events("cluster.superstep") {
		st, err := decodeSuperstep(r)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func decodeSuperstep(r *Record) (Superstep, error) {
	st := Superstep{}
	var ok bool
	if st.Iteration, ok = r.Int("iteration"); !ok {
		return st, fmt.Errorf("traceview: superstep record missing iteration attr")
	}
	if st.Machines, ok = r.Int("machines"); !ok {
		return st, fmt.Errorf("traceview: superstep %d missing machines attr", st.Iteration)
	}
	if st.TimeUS, ok = r.Float("time_us"); !ok {
		return st, fmt.Errorf("traceview: superstep %d missing time_us attr", st.Iteration)
	}
	for _, f := range []struct {
		key string
		dst *[]float64
	}{{"compute", &st.Compute}, {"comm", &st.Comm}, {"waiting", &st.Waiting}} {
		v, ok := r.Floats(f.key)
		if !ok || len(v) != st.Machines {
			return st, fmt.Errorf("traceview: superstep %d: bad %s array (want %d machines)", st.Iteration, f.key, st.Machines)
		}
		*f.dst = v
	}
	for _, f := range []struct {
		key string
		dst *[]int64
	}{{"steps", &st.Steps}, {"edges", &st.Edges}, {"vertices", &st.Vertices}, {"messages", &st.Messages}} {
		v, ok := r.Ints(f.key)
		if !ok || len(v) != st.Machines {
			return st, fmt.Errorf("traceview: superstep %d: bad %s array (want %d machines)", st.Iteration, f.key, st.Machines)
		}
		*f.dst = v
	}
	return st, nil
}

// GroupRuns splits a superstep stream into runs. The cluster numbers
// supersteps monotonically per Cluster instance, so a fresh engine (new
// experiment, new scheme) restarts or rewinds the iteration counter; a
// machine-count change likewise implies a different cluster.
func GroupRuns(steps []Superstep) [][]Superstep {
	var runs [][]Superstep
	for i, st := range steps {
		if i == 0 || st.Iteration <= steps[i-1].Iteration || st.Machines != steps[i-1].Machines {
			runs = append(runs, nil)
		}
		runs[len(runs)-1] = append(runs[len(runs)-1], st)
	}
	return runs
}

// Straggler attributes one superstep's two BSP phases: which machine
// bounded each barrier, and by how much.
type Straggler struct {
	Iteration int
	// ComputeMachine bounded the compute phase with ComputeUS of work;
	// every other machine waited for it. ComputeSlackUS is its lead over
	// the runner-up — the amount the barrier would shrink if only this
	// machine were faster.
	ComputeMachine int
	ComputeUS      float64
	ComputeSlackUS float64
	// The same attribution for the communication phase.
	CommMachine int
	CommUS      float64
	CommSlackUS float64
}

// Stragglers attributes every superstep of one run.
func Stragglers(run []Superstep) []Straggler {
	out := make([]Straggler, 0, len(run))
	for _, st := range run {
		s := Straggler{Iteration: st.Iteration}
		s.ComputeMachine, s.ComputeUS, s.ComputeSlackUS = argmaxSlack(st.Compute)
		s.CommMachine, s.CommUS, s.CommSlackUS = argmaxSlack(st.Comm)
		out = append(out, s)
	}
	return out
}

// argmaxSlack returns the index and value of the maximum and its lead over
// the second-largest value. Ties resolve to the lowest index, so reports
// are deterministic.
func argmaxSlack(xs []float64) (idx int, max, slack float64) {
	if len(xs) == 0 {
		return -1, 0, 0
	}
	second := 0.0
	for i, x := range xs {
		if i == 0 || x > max {
			if i > 0 {
				second = max
			}
			idx, max = i, x
		} else if i == 1 || x > second {
			second = x
		}
	}
	if len(xs) == 1 {
		return idx, max, 0
	}
	return idx, max, max - second
}

// WaitBreakdown decomposes the run's waiting-time ratio (the paper's
// Fig 13 metric) into per-machine contributions.
type WaitBreakdown struct {
	Machines    int
	Supersteps  int
	TotalTimeUS float64
	// WaitUS[i] is machine i's total barrier idle time.
	WaitUS []float64
	// Contribution[i] = WaitUS[i] / (TotalTimeUS · Machines). The terms
	// sum to WaitRatio exactly: the decomposition is a partition of the
	// wasted cluster capacity, not an approximation.
	Contribution []float64
	// WaitRatio = Σ WaitUS / (TotalTimeUS · Machines), matching
	// cluster.RunStats.WaitRatio for the same run.
	WaitRatio float64
}

// DecomposeWaitRatio computes the per-machine WaitRatio breakdown of one
// run. A run with zero machines, zero supersteps or zero total time has a
// zero breakdown, mirroring RunStats.WaitRatio's degenerate cases.
func DecomposeWaitRatio(run []Superstep) WaitBreakdown {
	if len(run) == 0 || run[0].Machines == 0 {
		return WaitBreakdown{}
	}
	k := run[0].Machines
	b := WaitBreakdown{
		Machines:     k,
		Supersteps:   len(run),
		WaitUS:       make([]float64, k),
		Contribution: make([]float64, k),
	}
	for _, st := range run {
		b.TotalTimeUS += st.TimeUS
		for i, w := range st.Waiting {
			b.WaitUS[i] += w
		}
	}
	if b.TotalTimeUS == 0 {
		return b
	}
	capacity := b.TotalTimeUS * float64(k)
	for i, w := range b.WaitUS {
		b.Contribution[i] = w / capacity
		b.WaitRatio += b.Contribution[i]
	}
	return b
}

// CritSegment is one leg of a run's critical path.
type CritSegment struct {
	Iteration int
	Phase     string // "compute", "comm" or "latency"
	Machine   int    // -1 for latency (no machine is responsible)
	DurUS     float64
}

// CriticalPath is the chain of phase-bounding machines whose durations sum
// to the run's simulated wall time: per BSP iteration, the slowest
// machine's compute phase, the slowest machine's communication phase, and
// the fixed barrier latency. Shrinking anything off this path cannot speed
// the run up; the per-phase shares say which lever matters.
type CriticalPath struct {
	Segments  []CritSegment
	ComputeUS float64
	CommUS    float64
	LatencyUS float64
	TotalUS   float64
	// OnPathUS[i] is machine i's time on the critical path; the machine
	// with the largest share is the run's dominant straggler.
	OnPathUS []float64
	// Pipelined reports that the cost model overlapped compute and comm
	// (iteration time = max of the phases, not their sum); only the
	// dominant phase is on the path then.
	Pipelined bool
}

// ComputeCriticalPath derives the critical path of one run. The cluster's
// execution mode is inferred per the cost model: when an iteration's time
// is at least maxCompute+maxComm the residual is barrier latency
// (sequential phases); when it is smaller the phases overlapped
// (CostModel.Pipelined) and only the dominant one bounds the iteration.
func ComputeCriticalPath(run []Superstep) CriticalPath {
	cp := CriticalPath{}
	if len(run) == 0 {
		return cp
	}
	cp.OnPathUS = make([]float64, run[0].Machines)
	for _, st := range run {
		cp.TotalUS += st.TimeUS
		cm, cUS, _ := argmaxSlack(st.Compute)
		mm, mUS, _ := argmaxSlack(st.Comm)
		if st.TimeUS+1e-9 < cUS+mUS {
			// Pipelined: the iteration finished before the phase sum —
			// compute and comm overlapped, the longer phase bounds it.
			cp.Pipelined = true
			phase, machine, dur := "compute", cm, cUS
			if mUS > cUS {
				phase, machine, dur = "comm", mm, mUS
			}
			cp.add(st.Iteration, phase, machine, dur)
			cp.add(st.Iteration, "latency", -1, st.TimeUS-dur)
			continue
		}
		cp.add(st.Iteration, "compute", cm, cUS)
		cp.add(st.Iteration, "comm", mm, mUS)
		cp.add(st.Iteration, "latency", -1, st.TimeUS-cUS-mUS)
	}
	return cp
}

func (cp *CriticalPath) add(iter int, phase string, machine int, dur float64) {
	if dur <= 0 {
		return
	}
	cp.Segments = append(cp.Segments, CritSegment{Iteration: iter, Phase: phase, Machine: machine, DurUS: dur})
	switch phase {
	case "compute":
		cp.ComputeUS += dur
	case "comm":
		cp.CommUS += dur
	default:
		cp.LatencyUS += dur
	}
	if machine >= 0 && machine < len(cp.OnPathUS) {
		cp.OnPathUS[machine] += dur
	}
}

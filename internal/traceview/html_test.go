package traceview

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The HTML artifact must be self-contained, well-escaped, and carry both
// charts for the fixture trace.
func TestWriteHTMLFixture(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<svg",
		"Span timeline",
		"Run 1 — 2 machines, 2 supersteps",
		"wait ratio 0.1500",
		"bench.experiment",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, "http://") || strings.Contains(out, "https://") {
		t.Error("HTML references external resources; it must be self-contained")
	}
}

// Span names are attacker-ish strings from the trace; they must be escaped.
func TestWriteHTMLEscapesNames(t *testing.T) {
	tr := mustRead(t, `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"<script>alert(1)</script>","dur_us":100}
`)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Fatal("span name not HTML-escaped")
	}
	if !strings.Contains(buf.String(), "&lt;script&gt;") {
		t.Fatal("escaped span name missing from output")
	}
}

func TestWriteHTMLRealTrace(t *testing.T) {
	tr, _ := tracedWalk(t, 9)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "walk.run") {
		t.Fatal("real-trace HTML missing walk.run span")
	}
}

package traceview

import "sort"

// SpanNode is one node of the reconstructed phase tree. The JSONL schema
// records spans flat (each line is one closed span), so nesting is rebuilt
// from wall-clock containment: a span is a child of the innermost span
// whose [start, end] interval contains it. That is exactly the call
// structure for the repo's single-process tracers, where nested phases
// (bpart.partition → bpart.layer → bpart.refine) literally nest in time.
type SpanNode struct {
	Rec      *Record // nil for the synthetic root
	Children []*SpanNode
}

// DurUS returns the node's span duration (0 for the root).
func (n *SpanNode) DurUS() float64 {
	if n.Rec == nil {
		return 0
	}
	return n.Rec.DurUS
}

// Walk visits the tree depth-first, reporting each node's depth (root =
// -1, top-level spans = 0).
func (n *SpanNode) Walk(fn func(node *SpanNode, depth int)) { n.walk(fn, -1) }

func (n *SpanNode) walk(fn func(*SpanNode, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// BuildTree reconstructs the span tree of a trace. Spans are sorted by
// start time (earlier first; ties: longer span first, so the container
// precedes the contained), then stacked: each span becomes a child of the
// deepest open span that still contains it. Concurrent sibling spans
// overlap without containing each other and end up as siblings, which is
// the honest rendering — the schema has no goroutine IDs to do better.
func BuildTree(tr *Trace) *SpanNode {
	var spans []*Record
	for i := range tr.Records {
		if tr.Records[i].Type == "span" {
			spans = append(spans, &tr.Records[i])
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Time.Equal(spans[j].Time) {
			return spans[i].Time.Before(spans[j].Time)
		}
		return spans[i].DurUS > spans[j].DurUS
	})
	root := &SpanNode{}
	stack := []*SpanNode{root}
	for _, sp := range spans {
		node := &SpanNode{Rec: sp}
		// Pop spans that ended before this one starts. The containment
		// test is on end time: equal-start spans were ordered so the
		// longer (containing) one is already on the stack.
		for len(stack) > 1 {
			top := stack[len(stack)-1]
			if sp.Time.Before(top.Rec.End()) && !sp.End().After(top.Rec.End()) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		parent := stack[len(stack)-1]
		parent.Children = append(parent.Children, node)
		stack = append(stack, node)
	}
	return root
}

// NameSummary aggregates all spans sharing a name.
type NameSummary struct {
	Name    string
	Count   int
	TotalUS float64
	MaxUS   float64
}

// SummarizeSpans aggregates span durations by name, sorted by total
// duration descending (ties by name, so output is deterministic).
func SummarizeSpans(tr *Trace) []NameSummary {
	idx := map[string]int{}
	var out []NameSummary
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Type != "span" {
			continue
		}
		j, ok := idx[r.Name]
		if !ok {
			j = len(out)
			idx[r.Name] = j
			out = append(out, NameSummary{Name: r.Name})
		}
		out[j].Count++
		out[j].TotalUS += r.DurUS
		if r.DurUS > out[j].MaxUS {
			out[j].MaxUS = r.DurUS
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

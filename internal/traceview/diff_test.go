package traceview

import (
	"bytes"
	"strings"
	"testing"
)

const diffBaseline = `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"walk.run","dur_us":1000}
{"ts":"2026-08-06T10:00:00.0001Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":100,"compute":[50,40],"comm":[20,10],"waiting":[0,10],"steps":[1,1],"edges":[0,0],"vertices":[0,0],"messages":[10,10]}}
`

// Candidate: sim time +50%, messages +100%, one extra span name.
const diffCandidate = `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"walk.run","dur_us":2000}
{"ts":"2026-08-06T10:00:00.00005Z","type":"span","name":"walk.extra","dur_us":100}
{"ts":"2026-08-06T10:00:00.0001Z","type":"event","name":"cluster.superstep","attrs":{"iteration":0,"machines":2,"time_us":150,"compute":[80,40],"comm":[20,10],"waiting":[0,10],"steps":[1,1],"edges":[0,0],"vertices":[0,0],"messages":[20,20]}}
`

func diffTraces(t *testing.T) *DiffReport {
	t.Helper()
	a := mustRead(t, diffBaseline)
	b := mustRead(t, diffCandidate)
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiffMetrics(t *testing.T) {
	d := diffTraces(t)
	byName := map[string]DiffMetric{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	st := byName["sim_time_us"]
	if !st.Gate || st.A != 100 || st.B != 150 || st.DeltaPct() != 50 {
		t.Fatalf("sim_time_us = %+v (delta %v)", st, st.DeltaPct())
	}
	mt := byName["messages_total"]
	if mt.DeltaPct() != 100 {
		t.Fatalf("messages_total delta = %v, want 100", mt.DeltaPct())
	}
	sp := byName["span:walk.run:wall_us"]
	if sp.Gate {
		t.Fatal("wall-clock span metric must not gate")
	}
	ex := byName["span:walk.extra:wall_us"]
	if ex.A != 0 || ex.B != 100 || ex.DeltaPct() != 0 {
		t.Fatalf("one-sided span metric = %+v (delta must be 0 when A=0)", ex)
	}
}

func TestDiffExceedsGate(t *testing.T) {
	d := diffTraces(t)
	if !d.Exceeds(10) {
		t.Fatal("50%% sim-time regression does not trip a 10%% gate")
	}
	if d.Exceeds(200) {
		t.Fatal("gate trips above the worst regression")
	}
	if d.Exceeds(0) {
		t.Fatal("pct=0 must disable the gate")
	}
	worst, ok := d.WorstGateRegression()
	if !ok || worst.Name != "messages_total" {
		t.Fatalf("worst regression = %+v (%v), want messages_total", worst, ok)
	}
}

func TestDiffNoRegression(t *testing.T) {
	a := mustRead(t, diffBaseline)
	d, err := Diff(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Exceeds(0.0001) {
		t.Fatal("identical traces trip the gate")
	}
	if _, ok := d.WorstGateRegression(); ok {
		t.Fatal("identical traces report a worst regression")
	}
}

func TestDiffWriteText(t *testing.T) {
	d := diffTraces(t)
	var buf bytes.Buffer
	if err := d.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("no FAIL marker above threshold:\n%s", out)
	}
	if !strings.Contains(out, "worst gated regression: messages_total +100.00%") {
		t.Fatalf("missing worst-regression footer:\n%s", out)
	}
	buf.Reset()
	if err := d.WriteText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "FAIL") {
		t.Fatal("FAIL marker printed with the gate disabled")
	}
}

package traceview

import (
	"path/filepath"
	"strings"
	"testing"
)

func mustRead(t *testing.T, lines string) *Trace {
	t.Helper()
	tr, err := Read(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// Nesting is rebuilt from wall-clock containment: a contained span becomes
// a child, an overlapping-but-not-contained span a sibling.
func TestBuildTreeContainment(t *testing.T) {
	tr := mustRead(t, `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"outer","dur_us":1000}
{"ts":"2026-08-06T10:00:00.0001Z","type":"span","name":"mid","dur_us":500}
{"ts":"2026-08-06T10:00:00.00015Z","type":"span","name":"inner","dur_us":100}
{"ts":"2026-08-06T10:00:00.0007Z","type":"span","name":"tail","dur_us":200}
{"ts":"2026-08-06T10:00:00.002Z","type":"span","name":"later","dur_us":100}
`)
	root := BuildTree(tr)
	if len(root.Children) != 2 {
		t.Fatalf("got %d top-level spans, want 2 (outer, later)", len(root.Children))
	}
	outer := root.Children[0]
	if outer.Rec.Name != "outer" || len(outer.Children) != 2 {
		t.Fatalf("outer = %q with %d children, want outer with 2 (mid, tail)", outer.Rec.Name, len(outer.Children))
	}
	mid := outer.Children[0]
	if mid.Rec.Name != "mid" || len(mid.Children) != 1 || mid.Children[0].Rec.Name != "inner" {
		t.Fatalf("mid subtree wrong: %q with %d children", mid.Rec.Name, len(mid.Children))
	}
	if outer.Children[1].Rec.Name != "tail" {
		t.Fatalf("second child of outer = %q, want tail", outer.Children[1].Rec.Name)
	}
	if root.Children[1].Rec.Name != "later" {
		t.Fatalf("second top-level span = %q, want later", root.Children[1].Rec.Name)
	}
}

// Equal-start spans: the longer one is the container.
func TestBuildTreeEqualStart(t *testing.T) {
	tr := mustRead(t, `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"short","dur_us":100}
{"ts":"2026-08-06T10:00:00Z","type":"span","name":"long","dur_us":1000}
`)
	root := BuildTree(tr)
	if len(root.Children) != 1 || root.Children[0].Rec.Name != "long" {
		t.Fatalf("top level = %v", root.Children)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Rec.Name != "short" {
		t.Fatal("short span not nested under the equal-start longer span")
	}
}

// Walk must report depth 0 for top-level spans and descend in order.
func TestWalkDepths(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var depths []int
	BuildTree(tr).Walk(func(n *SpanNode, depth int) {
		if n.Rec == nil {
			return
		}
		names = append(names, n.Rec.Name)
		depths = append(depths, depth)
	})
	if len(names) != 2 || names[0] != "bench.experiment" || names[1] != "walk.run" {
		t.Fatalf("walk order = %v", names)
	}
	if depths[0] != 0 || depths[1] != 1 {
		t.Fatalf("walk depths = %v", depths)
	}
}

func TestSummarizeSpans(t *testing.T) {
	tr := mustRead(t, `{"ts":"2026-08-06T10:00:00Z","type":"span","name":"a","dur_us":100}
{"ts":"2026-08-06T10:00:01Z","type":"span","name":"b","dur_us":400}
{"ts":"2026-08-06T10:00:02Z","type":"span","name":"a","dur_us":200}
{"ts":"2026-08-06T10:00:03Z","type":"event","name":"a"}
`)
	sums := SummarizeSpans(tr)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Name != "b" || sums[0].TotalUS != 400 {
		t.Fatalf("first summary = %+v, want b (largest total)", sums[0])
	}
	if sums[1].Name != "a" || sums[1].Count != 2 || sums[1].TotalUS != 300 || sums[1].MaxUS != 200 {
		t.Fatalf("a summary = %+v", sums[1])
	}
}

package traceview

import (
	"bytes"
	"strings"
	"testing"

	"bpart/internal/telemetry"
)

// A trace written by telemetry.JSONL must round-trip through the reader.
func TestReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	sp := jl.Span("bpart.partition", telemetry.String("scheme", "BPart"), telemetry.Int("k", 8))
	inner := jl.Span("bpart.layer", telemetry.Int("layer", 1))
	inner.End(telemetry.Int("pieces", 16))
	sp.End()
	jl.Event("cap.hit", telemetry.String("dim", "E"))
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Truncated {
		t.Fatal("clean trace flagged truncated")
	}
	if len(tr.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(tr.Records))
	}
	// JSONL records spans at End, so the inner layer span comes first.
	layers := tr.Spans("bpart.layer")
	if len(layers) != 1 {
		t.Fatalf("got %d bpart.layer spans, want 1", len(layers))
	}
	if v, ok := layers[0].Int("pieces"); !ok || v != 16 {
		t.Fatalf("pieces attr = %v (%v)", v, ok)
	}
	if v, ok := layers[0].Int("layer"); !ok || v != 1 {
		t.Fatalf("layer attr = %v (%v)", v, ok)
	}
	parts := tr.Spans("bpart.partition")
	if len(parts) != 1 {
		t.Fatal("missing bpart.partition span")
	}
	if s, ok := parts[0].Str("scheme"); !ok || s != "BPart" {
		t.Fatalf("scheme attr = %q (%v)", s, ok)
	}
	if parts[0].DurUS <= 0 {
		t.Fatal("span has no duration")
	}
	evs := tr.Events("cap.hit")
	if len(evs) != 1 || evs[0].DurUS != 0 {
		t.Fatalf("events = %v", evs)
	}
}

// A torn final line (crashed writer) is tolerated; the prefix is analyzed.
func TestReadTruncatedFinalLine(t *testing.T) {
	full := `{"ts":"2026-08-06T10:00:00Z","type":"event","name":"a"}
{"ts":"2026-08-06T10:00:01Z","type":"event","name":"b"}
{"ts":"2026-08-06T10:00:02Z","type":"ev`
	tr, err := Read(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated {
		t.Fatal("torn final line not flagged")
	}
	if len(tr.Records) != 2 {
		t.Fatalf("got %d records, want the 2 intact ones", len(tr.Records))
	}
}

// Damage before the final line is a hard error: skipping interior records
// would silently skew every statistic.
func TestReadInteriorDamageRejected(t *testing.T) {
	full := `{"ts":"2026-08-06T10:00:00Z","type":"event","name":"a"}
{"ts":"2026-08-06T10:00:01Z","type":"ev
{"ts":"2026-08-06T10:00:02Z","type":"event","name":"c"}
`
	if _, err := Read(strings.NewReader(full)); err == nil {
		t.Fatal("interior damage accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not locate the damage: %v", err)
	}
}

func TestReadRejectsUnknownType(t *testing.T) {
	line := `{"ts":"2026-08-06T10:00:00Z","type":"metric","name":"a"}
{"ts":"2026-08-06T10:00:01Z","type":"event","name":"b"}
`
	if _, err := Read(strings.NewReader(line)); err == nil {
		t.Fatal("unknown record type accepted as interior line")
	}
}

// A file whose only line is garbage is not a truncated trace — it is not
// a trace at all, and must be a hard error (cmd/tracestat turns this into
// a non-zero exit instead of silently printing an empty report).
func TestReadAllGarbageRejected(t *testing.T) {
	for _, in := range []string{
		"this is not a trace\n",
		`{"ts":"2026-08-06T10:00:00Z","type":"ev`,
		`{"ts":"bad-time","type":"event","name":"a"}` + "\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted a trace with no usable records", in)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Read(%q) error does not locate the damage: %v", in, err)
		}
	}
}

func TestReadEmptyTrace(t *testing.T) {
	tr, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 || tr.Truncated {
		t.Fatalf("empty trace = %+v", tr)
	}
	if _, _, ok := tr.Bounds(); ok {
		t.Fatal("empty trace has bounds")
	}
}

func TestRecordSliceAttrs(t *testing.T) {
	full := `{"ts":"2026-08-06T10:00:00Z","type":"event","name":"x","attrs":{"compute":[1.5,2.5],"messages":[3,4],"bad":[1,"two"]}}
`
	tr, err := Read(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	r := &tr.Records[0]
	fs, ok := r.Floats("compute")
	if !ok || len(fs) != 2 || fs[1] != 2.5 {
		t.Fatalf("Floats = %v (%v)", fs, ok)
	}
	is, ok := r.Ints("messages")
	if !ok || is[0] != 3 || is[1] != 4 {
		t.Fatalf("Ints = %v (%v)", is, ok)
	}
	if _, ok := r.Floats("bad"); ok {
		t.Fatal("mixed-type array decoded as floats")
	}
	if _, ok := r.Floats("missing"); ok {
		t.Fatal("missing attr decoded")
	}
}

package traceview

import (
	"fmt"
	"io"
	"strings"
)

// ReportOptions tunes the terminal report.
type ReportOptions struct {
	// MaxSupersteps caps the per-run straggler table (0 = 16). The
	// summary lines always cover the whole run.
	MaxSupersteps int
	// MaxTreeSpans caps the phase-tree listing (0 = 64).
	MaxTreeSpans int
}

func (o ReportOptions) maxSupersteps() int {
	if o.MaxSupersteps <= 0 {
		return 16
	}
	return o.MaxSupersteps
}

func (o ReportOptions) maxTreeSpans() int {
	if o.MaxTreeSpans <= 0 {
		return 64
	}
	return o.MaxTreeSpans
}

// errWriter folds per-line error checks into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// fmtUS renders a simulated-or-wall microsecond quantity with a readable
// unit.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.1fus", us)
	}
}

// bar renders v/max as a fixed-width ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return strings.Repeat(".", width)
	}
	n := int(v/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// WriteReport renders the full terminal report: trace summary, span
// aggregates, phase tree, and — per run — straggler attribution, the
// WaitRatio decomposition and the critical-path split.
func WriteReport(w io.Writer, tr *Trace, opt ReportOptions) error {
	ew := &errWriter{w: w}
	writeSummary(ew, tr)
	writeSpanTable(ew, tr)
	writeTree(ew, tr, opt)
	steps, err := Supersteps(tr)
	if err != nil {
		return err
	}
	if len(steps) == 0 {
		ew.printf("\nNo cluster.superstep records: trace carries no BSP runs.\n")
		return ew.err
	}
	for i, run := range GroupRuns(steps) {
		writeRun(ew, i+1, run, opt)
	}
	return ew.err
}

func writeSummary(ew *errWriter, tr *Trace) {
	spans, events, errs := 0, 0, 0
	for _, r := range tr.Records {
		switch r.Type {
		case "span":
			spans++
		case "event":
			events++
		default:
			errs++
		}
	}
	ew.printf("TRACE SUMMARY\n")
	ew.printf("  records %d  (spans %d, events %d, degraded %d)\n", len(tr.Records), spans, events, errs)
	if start, end, ok := tr.Bounds(); ok {
		ew.printf("  wall span %s\n", fmtUS(float64(end.Sub(start).Microseconds())))
	}
	if tr.Truncated {
		ew.printf("  WARNING: final line torn (run crashed mid-write); analyzing the intact prefix\n")
	}
}

func writeSpanTable(ew *errWriter, tr *Trace) {
	sums := SummarizeSpans(tr)
	if len(sums) == 0 {
		return
	}
	ew.printf("\nSPANS BY NAME\n")
	nameW := len("name")
	for _, s := range sums {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	ew.printf("  %-*s  %6s  %10s  %10s\n", nameW, "name", "count", "total", "max")
	for _, s := range sums {
		ew.printf("  %-*s  %6d  %10s  %10s\n", nameW, s.Name, s.Count, fmtUS(s.TotalUS), fmtUS(s.MaxUS))
	}
}

func writeTree(ew *errWriter, tr *Trace, opt ReportOptions) {
	root := BuildTree(tr)
	if len(root.Children) == 0 {
		return
	}
	ew.printf("\nPHASE TREE\n")
	shown, total := 0, 0
	root.Walk(func(n *SpanNode, depth int) {
		if n.Rec == nil {
			return
		}
		total++
		if shown >= opt.maxTreeSpans() {
			return
		}
		shown++
		ew.printf("  %s%s %s\n", strings.Repeat("  ", depth), n.Rec.Name, fmtUS(n.Rec.DurUS))
	})
	if total > shown {
		ew.printf("  ... %d more spans elided (raise -tree-spans)\n", total-shown)
	}
}

func writeRun(ew *errWriter, idx int, run []Superstep, opt ReportOptions) {
	b := DecomposeWaitRatio(run)
	ew.printf("\nRUN %d: %d machines, %d supersteps, sim time %s\n", idx, b.Machines, b.Supersteps, fmtUS(b.TotalTimeUS))
	ew.printf("  wait ratio %.4f  (share of cluster capacity idle at barriers)\n", b.WaitRatio)
	if b.Machines > 0 {
		maxC := 0.0
		for _, c := range b.Contribution {
			if c > maxC {
				maxC = c
			}
		}
		ew.printf("  per-machine contribution (terms sum to the wait ratio):\n")
		for i, c := range b.Contribution {
			ew.printf("    M%-2d %s %.4f  (idle %s)\n", i, bar(c, maxC, 20), c, fmtUS(b.WaitUS[i]))
		}
	}

	writeStragglers(ew, run, opt)
	writeCritPath(ew, run)
}

// WriteStragglers prints the straggler-attribution section for one run —
// the `tracestat stragglers` subcommand.
func WriteStragglers(w io.Writer, idx int, run []Superstep, opt ReportOptions) error {
	if len(run) == 0 {
		return nil
	}
	ew := &errWriter{w: w}
	ew.printf("RUN %d: %d machines, %d supersteps\n", idx, run[0].Machines, len(run))
	writeStragglers(ew, run, opt)
	return ew.err
}

// WriteCritPath prints the critical-path section for one run — the
// `tracestat critpath` subcommand.
func WriteCritPath(w io.Writer, idx int, run []Superstep) error {
	if len(run) == 0 {
		return nil
	}
	ew := &errWriter{w: w}
	ew.printf("RUN %d: %d machines, %d supersteps\n", idx, run[0].Machines, len(run))
	writeCritPath(ew, run)
	return ew.err
}

func writeStragglers(ew *errWriter, run []Superstep, opt ReportOptions) {
	strag := Stragglers(run)
	ew.printf("  straggler attribution (machine bounding each barrier, and its lead over the runner-up):\n")
	ew.printf("    %5s  %8s %10s %10s  %8s %10s %10s\n", "iter", "compute", "time", "slack", "comm", "time", "slack")
	shown := 0
	for _, s := range strag {
		if shown >= opt.maxSupersteps() {
			ew.printf("    ... %d more supersteps elided (raise -supersteps)\n", len(strag)-shown)
			break
		}
		shown++
		ew.printf("    %5d  %8s %10s %10s  %8s %10s %10s\n",
			s.Iteration,
			fmt.Sprintf("M%d", s.ComputeMachine), fmtUS(s.ComputeUS), fmtUS(s.ComputeSlackUS),
			fmt.Sprintf("M%d", s.CommMachine), fmtUS(s.CommUS), fmtUS(s.CommSlackUS))
	}
	// Aggregate: how often each machine bound a phase.
	k := run[0].Machines
	computeBound := make([]int, k)
	commBound := make([]int, k)
	for _, s := range strag {
		if s.ComputeMachine >= 0 && s.ComputeMachine < k {
			computeBound[s.ComputeMachine]++
		}
		if s.CommMachine >= 0 && s.CommMachine < k {
			commBound[s.CommMachine]++
		}
	}
	ew.printf("    bound-count by machine:")
	for i := 0; i < k; i++ {
		if computeBound[i] > 0 || commBound[i] > 0 {
			ew.printf("  M%d compute:%d comm:%d", i, computeBound[i], commBound[i])
		}
	}
	ew.printf("\n")
}

func writeCritPath(ew *errWriter, run []Superstep) {
	cp := ComputeCriticalPath(run)
	if cp.TotalUS <= 0 {
		return
	}
	mode := "sequential phases"
	if cp.Pipelined {
		mode = "pipelined phases"
	}
	ew.printf("  critical path (%s): compute %s (%.1f%%)  comm %s (%.1f%%)  latency %s (%.1f%%)\n",
		mode,
		fmtUS(cp.ComputeUS), 100*cp.ComputeUS/cp.TotalUS,
		fmtUS(cp.CommUS), 100*cp.CommUS/cp.TotalUS,
		fmtUS(cp.LatencyUS), 100*cp.LatencyUS/cp.TotalUS)
	domIdx, domUS, _ := argmaxSlack(cp.OnPathUS)
	if domIdx >= 0 && domUS > 0 {
		ew.printf("  dominant machine on path: M%d with %s (%.1f%% of sim time)\n", domIdx, fmtUS(domUS), 100*domUS/cp.TotalUS)
	}
}

package traceview

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead throws arbitrary byte streams at the JSONL trace reader. The
// reader faces files written by a process that may have died mid-line, so
// it must never panic, and its tolerance contract is precise: only the
// final line may be damaged (reported via Truncated), damage anywhere
// earlier is a hard error, and a trace that parses cleanly must survive a
// second pass over the same bytes with identical results.
func FuzzRead(f *testing.F) {
	f.Add([]byte(`{"ts":"2026-08-06T12:00:00.000000001Z","type":"span","name":"partition.stream","dur_us":1500.5,"attrs":{"layer":1,"k":8}}` + "\n"))
	f.Add([]byte(`{"ts":"2026-08-06T12:00:00Z","type":"event","name":"freeze","attrs":{"piece":3}}` + "\n" +
		`{"ts":"2026-08-06T12:00:01Z","type":"error","name":"degraded"}` + "\n"))
	// Torn final line: the only damage Read tolerates.
	f.Add([]byte(`{"ts":"2026-08-06T12:00:00Z","type":"event","name":"a"}` + "\n" + `{"ts":"2026-08-06T12:0`))
	// Interior damage: must be a hard error.
	f.Add([]byte("garbage\n" + `{"ts":"2026-08-06T12:00:00Z","type":"event","name":"a"}` + "\n"))
	f.Add([]byte(`{"ts":"not-a-time","type":"span","name":"x"}` + "\n"))
	f.Add([]byte(`{"ts":"2026-08-06T12:00:00Z","type":"wormhole","name":"x"}` + "\n"))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("Read returned nil trace with nil error")
		}
		// A clean, untruncated parse must be deterministic: the same bytes
		// parse again to the same records.
		tr2, err2 := Read(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second Read of identical bytes failed: %v", err2)
		}
		if len(tr2.Records) != len(tr.Records) || tr2.Truncated != tr.Truncated {
			t.Fatalf("non-deterministic parse: %d/%v then %d/%v",
				len(tr.Records), tr.Truncated, len(tr2.Records), tr2.Truncated)
		}
		// Truncated means the damaged tail was dropped, so every record the
		// reader did keep came from a complete line; non-blank input lines
		// can't be fewer than kept records.
		lines := 0
		for _, l := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(l) != "" {
				lines++
			}
		}
		if len(tr.Records) > lines {
			t.Fatalf("parsed %d records from %d non-blank lines", len(tr.Records), lines)
		}
		// The derived views must also hold up on anything Read accepts.
		for i := range tr.Records {
			r := &tr.Records[i]
			if r.End().Before(r.Time) && r.DurUS >= 0 {
				t.Fatalf("record %d: End %v before start %v with dur_us %v", i, r.End(), r.Time, r.DurUS)
			}
		}
		if _, err := Supersteps(tr); err != nil {
			// Malformed superstep attrs are a legitimate decode error, not
			// a panic — nothing more to assert.
			return
		}
	})
}

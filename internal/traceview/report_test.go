package traceview

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/traceview -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run with -update to rewrite):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// The full terminal report over the checked-in fixture trace must stay
// byte-stable: it is the CLI's primary output.
func TestReportGolden(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, tr, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", buf.Bytes())
}

// Spot-check the fixture's derived numbers by hand: the golden file should
// encode hand-verifiable arithmetic, not just whatever the code printed.
func TestReportFixtureArithmetic(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	steps, err := Supersteps(tr)
	if err != nil {
		t.Fatal(err)
	}
	runs := GroupRuns(steps)
	if len(runs) != 1 || len(runs[0]) != 2 {
		t.Fatalf("fixture runs = %v", runs)
	}
	b := DecomposeWaitRatio(runs[0])
	// Waiting totals: M0 = 10+10 = 20, M1 = 40+30 = 70; capacity = 300·2.
	if b.WaitRatio != 90.0/600.0 {
		t.Fatalf("fixture WaitRatio = %v, want 0.15", b.WaitRatio)
	}
	if b.Contribution[0] != 20.0/600.0 || b.Contribution[1] != 70.0/600.0 {
		t.Fatalf("fixture contributions = %v", b.Contribution)
	}
	cp := ComputeCriticalPath(runs[0])
	// iter 0: compute M0 100, comm M1 30, latency 20; iter 1: compute M1
	// 90, comm M0 40, latency 20.
	if cp.Pipelined {
		t.Fatal("fixture inferred pipelined")
	}
	if cp.ComputeUS != 190 || cp.CommUS != 70 || cp.LatencyUS != 40 {
		t.Fatalf("fixture critical path = compute %v, comm %v, latency %v", cp.ComputeUS, cp.CommUS, cp.LatencyUS)
	}
	if cp.OnPathUS[0] != 140 || cp.OnPathUS[1] != 120 {
		t.Fatalf("fixture on-path = %v", cp.OnPathUS)
	}
	strag := Stragglers(runs[0])
	if strag[0].ComputeMachine != 0 || strag[0].ComputeSlackUS != 40 ||
		strag[0].CommMachine != 1 || strag[0].CommSlackUS != 10 {
		t.Fatalf("fixture iter 0 stragglers = %+v", strag[0])
	}
	if strag[1].ComputeMachine != 1 || strag[1].ComputeSlackUS != 10 ||
		strag[1].CommMachine != 0 || strag[1].CommSlackUS != 30 {
		t.Fatalf("fixture iter 1 stragglers = %+v", strag[1])
	}
}

// A report over a real traced run must not error and must carry the
// headline sections.
func TestReportOnRealTrace(t *testing.T) {
	tr, _ := tracedWalk(t, 5)
	var buf bytes.Buffer
	if err := WriteReport(&buf, tr, ReportOptions{MaxSupersteps: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"TRACE SUMMARY",
		"SPANS BY NAME",
		"walk.run",
		"RUN 1:",
		"wait ratio",
		"per-machine contribution",
		"straggler attribution",
		"critical path",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBar(t *testing.T) {
	if got := bar(5, 10, 10); got != "#####....." {
		t.Fatalf("bar(5,10,10) = %q", got)
	}
	if got := bar(0, 10, 4); got != "...." {
		t.Fatalf("bar(0,10,4) = %q", got)
	}
	if got := bar(20, 10, 4); got != "####" {
		t.Fatalf("bar over max = %q", got)
	}
	if got := bar(1, 0, 4); got != "...." {
		t.Fatalf("bar zero max = %q", got)
	}
}

func TestFmtUS(t *testing.T) {
	cases := map[float64]string{
		12.3:    "12.3us",
		1500:    "1.5ms",
		2500000: "2.50s",
	}
	for in, want := range cases {
		if got := fmtUS(in); got != want {
			t.Errorf("fmtUS(%v) = %q, want %q", in, got, want)
		}
	}
}

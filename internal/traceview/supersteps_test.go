package traceview

import (
	"bytes"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/metrics"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
	"bpart/internal/walk"
)

// tracedWalk runs a real simulated-cluster walk with a JSONL tracer and
// returns the parsed trace alongside the engine's own RunStats.
func tracedWalk(t *testing.T, seed uint64) (*Trace, *walk.Result) {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{NumVertices: 1500, AvgDegree: 6, Skew: 0.8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.ChunkV{}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := walk.New(g, a.Parts, 4, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	e.SetTelemetry(jl, nil)
	res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: 1, Steps: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// The ISSUE's core invariant: the per-machine WaitRatio contributions of a
// real traced run must sum to cluster.RunStats.WaitRatio.
func TestDecomposeWaitRatioMatchesRunStats(t *testing.T) {
	tr, res := tracedWalk(t, 1)
	steps, err := Supersteps(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(res.Stats.Iterations) {
		t.Fatalf("decoded %d supersteps, engine ran %d", len(steps), len(res.Stats.Iterations))
	}
	runs := GroupRuns(steps)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	b := DecomposeWaitRatio(runs[0])
	want := res.Stats.WaitRatio()
	if !metrics.ApproxEq(b.WaitRatio, want, 1e-9) {
		t.Fatalf("decomposed WaitRatio = %v, RunStats.WaitRatio = %v", b.WaitRatio, want)
	}
	// The contributions are a partition: they must re-sum to the ratio.
	sum := 0.0
	for _, c := range b.Contribution {
		sum += c
	}
	if !metrics.ApproxEq(sum, want, 1e-9) {
		t.Fatalf("contribution sum = %v, want %v", sum, want)
	}
	if !metrics.ApproxEq(b.TotalTimeUS, res.Stats.TotalTime(), 1e-9) {
		t.Fatalf("TotalTimeUS = %v, engine TotalTime = %v", b.TotalTimeUS, res.Stats.TotalTime())
	}
}

// Straggler attribution must name the machine the engine's own
// IterationStats says was slowest, with slack = lead over the runner-up.
func TestStragglersMatchIterationStats(t *testing.T) {
	tr, res := tracedWalk(t, 2)
	steps, err := Supersteps(tr)
	if err != nil {
		t.Fatal(err)
	}
	strag := Stragglers(steps)
	if len(strag) != len(res.Stats.Iterations) {
		t.Fatalf("attributed %d supersteps, want %d", len(strag), len(res.Stats.Iterations))
	}
	for i, s := range strag {
		it := res.Stats.Iterations[i]
		wantIdx, wantMax, wantSlack := argmaxSlack(it.Compute)
		if s.ComputeMachine != wantIdx || s.ComputeUS != wantMax || s.ComputeSlackUS != wantSlack {
			t.Fatalf("iter %d compute attribution = (M%d, %v, %v), want (M%d, %v, %v)",
				i, s.ComputeMachine, s.ComputeUS, s.ComputeSlackUS, wantIdx, wantMax, wantSlack)
		}
		// Cross-check against a direct scan, independent of argmaxSlack.
		for m, c := range it.Compute {
			if c > s.ComputeUS {
				t.Fatalf("iter %d: M%d compute %v exceeds attributed straggler %v", i, m, c, s.ComputeUS)
			}
		}
	}
}

// The critical path must account for the whole simulated run time, and
// every segment machine must be in range.
func TestCriticalPathAccountsForSimTime(t *testing.T) {
	tr, res := tracedWalk(t, 3)
	steps, err := Supersteps(tr)
	if err != nil {
		t.Fatal(err)
	}
	cp := ComputeCriticalPath(steps)
	if !metrics.ApproxEq(cp.TotalUS, res.Stats.TotalTime(), 1e-9) {
		t.Fatalf("critical path total %v, engine sim time %v", cp.TotalUS, res.Stats.TotalTime())
	}
	if !metrics.ApproxEq(cp.ComputeUS+cp.CommUS+cp.LatencyUS, cp.TotalUS, 1e-9) {
		t.Fatalf("segments sum %v, total %v", cp.ComputeUS+cp.CommUS+cp.LatencyUS, cp.TotalUS)
	}
	onPath := 0.0
	for _, v := range cp.OnPathUS {
		onPath += v
	}
	if !metrics.ApproxEq(onPath+cp.LatencyUS, cp.TotalUS, 1e-9) {
		t.Fatalf("machine time %v + latency %v != total %v", onPath, cp.LatencyUS, cp.TotalUS)
	}
	for _, seg := range cp.Segments {
		if seg.DurUS <= 0 {
			t.Fatalf("non-positive segment: %+v", seg)
		}
		if seg.Phase == "latency" {
			if seg.Machine != -1 {
				t.Fatalf("latency segment names a machine: %+v", seg)
			}
		} else if seg.Machine < 0 || seg.Machine >= 4 {
			t.Fatalf("segment machine out of range: %+v", seg)
		}
	}
}

// Two back-to-back engine runs into the same trace must split into two
// runs: the iteration counter rewinds when a fresh cluster starts.
func TestGroupRunsSplitsEngineRuns(t *testing.T) {
	g := gen.Ring(300)
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	for _, seed := range []uint64{1, 2} {
		a, err := (partition.ChunkV{}).Partition(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		e, err := walk.New(g, a.Parts, 3, cluster.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		e.SetTelemetry(jl, nil)
		if _, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: 1, Steps: 3, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := Supersteps(tr)
	if err != nil {
		t.Fatal(err)
	}
	runs := GroupRuns(steps)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	for i, run := range runs {
		if len(run) == 0 {
			t.Fatalf("run %d empty", i)
		}
		for j := 1; j < len(run); j++ {
			if run[j].Iteration <= run[j-1].Iteration {
				t.Fatalf("run %d not monotonic at %d", i, j)
			}
		}
	}
}

func TestArgmaxSlack(t *testing.T) {
	cases := []struct {
		xs    []float64
		idx   int
		max   float64
		slack float64
	}{
		{nil, -1, 0, 0},
		{[]float64{5}, 0, 5, 0},
		{[]float64{1, 4, 2}, 1, 4, 2},
		{[]float64{9, 1, 9}, 0, 9, 0}, // tie → lowest index, zero slack
		{[]float64{2, 3, 10, 7}, 2, 10, 3},
		{[]float64{10, 2, 3}, 0, 10, 7}, // max first
	}
	for _, c := range cases {
		idx, max, slack := argmaxSlack(c.xs)
		if idx != c.idx || max != c.max || slack != c.slack {
			t.Errorf("argmaxSlack(%v) = (%d, %v, %v), want (%d, %v, %v)",
				c.xs, idx, max, slack, c.idx, c.max, c.slack)
		}
	}
}

func TestDecomposeWaitRatioDegenerate(t *testing.T) {
	if b := DecomposeWaitRatio(nil); b.WaitRatio != 0 || b.Machines != 0 {
		t.Fatalf("empty run breakdown = %+v", b)
	}
	run := []Superstep{{Machines: 2, TimeUS: 0, Waiting: []float64{0, 0}}}
	if b := DecomposeWaitRatio(run); b.WaitRatio != 0 {
		t.Fatalf("zero-time run WaitRatio = %v", b.WaitRatio)
	}
}

// A superstep whose time is below maxCompute+maxComm must be inferred as
// pipelined, with only the dominant phase plus latency on the path.
func TestCriticalPathPipelinedInference(t *testing.T) {
	run := []Superstep{{
		Iteration: 0, Machines: 2, TimeUS: 120,
		Compute: []float64{100, 40}, Comm: []float64{30, 80},
		Waiting: []float64{0, 0},
	}}
	cp := ComputeCriticalPath(run)
	if !cp.Pipelined {
		t.Fatal("overlapped superstep not inferred as pipelined")
	}
	if cp.ComputeUS != 100 || cp.CommUS != 0 || cp.LatencyUS != 20 {
		t.Fatalf("pipelined split = compute %v, comm %v, latency %v", cp.ComputeUS, cp.CommUS, cp.LatencyUS)
	}
	if cp.OnPathUS[0] != 100 || cp.OnPathUS[1] != 0 {
		t.Fatalf("on-path = %v", cp.OnPathUS)
	}
}

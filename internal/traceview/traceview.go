// Package traceview is the read/analyze half of the repo's observability
// story: internal/telemetry writes JSONL traces, traceview consumes them.
//
// It parses the JSONL schema back into typed records, reconstructs span
// nesting from wall-clock containment, decodes the per-superstep
// IterationStats the simulated cluster emits, and derives the quantities
// the paper's evaluation asks about — which machine bounds each BSP
// barrier (straggler attribution), how each machine contributes to the
// waiting-time ratio of Fig 13, and where the run's critical path spends
// its time. cmd/tracestat is the CLI over this package; cmd/bench's
// regression gate diffs two traces through it.
package traceview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Record is one parsed trace line.
type Record struct {
	Time  time.Time
	Type  string // "span", "event" or "error" (a degraded unencodable record)
	Name  string
	DurUS float64 // spans only
	Attrs map[string]any
}

// End returns the span's end time (its start time for events).
func (r *Record) End() time.Time {
	return r.Time.Add(time.Duration(r.DurUS * float64(time.Microsecond)))
}

// Float returns the named attribute as a float64 (JSON numbers decode to
// float64), with ok reporting presence.
func (r *Record) Float(key string) (float64, bool) {
	v, ok := r.Attrs[key].(float64)
	return v, ok
}

// Int returns the named numeric attribute truncated to int.
func (r *Record) Int(key string) (int, bool) {
	v, ok := r.Float(key)
	return int(v), ok
}

// Str returns the named string attribute.
func (r *Record) Str(key string) (string, bool) {
	v, ok := r.Attrs[key].(string)
	return v, ok
}

// Floats returns the named attribute as a float slice (JSON arrays decode
// to []any; non-numeric elements fail the decode).
func (r *Record) Floats(key string) ([]float64, bool) {
	raw, ok := r.Attrs[key].([]any)
	if !ok {
		return nil, false
	}
	out := make([]float64, len(raw))
	for i, e := range raw {
		f, ok := e.(float64)
		if !ok {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// Ints returns the named attribute as an int64 slice.
func (r *Record) Ints(key string) ([]int64, bool) {
	fs, ok := r.Floats(key)
	if !ok {
		return nil, false
	}
	out := make([]int64, len(fs))
	for i, f := range fs {
		out[i] = int64(f)
	}
	return out, true
}

// Trace is a fully parsed JSONL trace.
type Trace struct {
	Records []Record
	// Truncated reports that the final line was torn — the writing
	// process died mid-write (telemetry.JSONL writes whole lines, so
	// only the last line of a crashed run can be damaged). The parsed
	// prefix is complete and usable.
	Truncated bool
}

// Spans returns the span records with the given name, in file order.
func (t *Trace) Spans(name string) []*Record { return t.filter("span", name) }

// Events returns the event records with the given name, in file order.
func (t *Trace) Events(name string) []*Record { return t.filter("event", name) }

func (t *Trace) filter(typ, name string) []*Record {
	var out []*Record
	for i := range t.Records {
		r := &t.Records[i]
		if r.Type == typ && r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Bounds returns the earliest start and latest end across all records (and
// false for an empty trace).
func (t *Trace) Bounds() (start, end time.Time, ok bool) {
	for i := range t.Records {
		r := &t.Records[i]
		if !ok || r.Time.Before(start) {
			start = r.Time
		}
		if e := r.End(); !ok || e.After(end) {
			end = e
		}
		ok = true
	}
	return start, end, ok
}

// jsonRecord mirrors the telemetry.JSONL wire shape.
type jsonRecord struct {
	TS    string         `json:"ts"`
	Type  string         `json:"type"`
	Name  string         `json:"name"`
	DurUS *float64       `json:"dur_us"`
	Attrs map[string]any `json:"attrs"`
}

// maxLine bounds one trace line; the widest real lines are superstep
// records with per-machine arrays, far below this.
const maxLine = 16 << 20

// Read parses a JSONL trace. A damaged or incomplete final line (a run
// that crashed mid-write) is tolerated and flagged via Trace.Truncated;
// damage anywhere earlier is a hard error, since silently skipping
// interior records would skew every derived statistic.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	tr := &Trace{}
	type bad struct {
		line int
		err  error
	}
	var pending *bad
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pending != nil {
			return nil, fmt.Errorf("traceview: line %d: %w (not the final line, refusing to skip)", pending.line, pending.err)
		}
		rec, err := parseLine(line)
		if err != nil {
			pending = &bad{lineNo, err}
			continue
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceview: read: %w", err)
	}
	if pending != nil {
		// A torn tail is only tolerable when it follows a usable prefix; if
		// the very first line is garbage the file is not a trace at all,
		// and "empty but truncated" would hide that from callers.
		if len(tr.Records) == 0 {
			return nil, fmt.Errorf("traceview: line %d: %w (no valid trace records precede it)", pending.line, pending.err)
		}
		tr.Truncated = true
	}
	return tr, nil
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

func parseLine(line string) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal([]byte(line), &jr); err != nil {
		return Record{}, err
	}
	ts, err := time.Parse(time.RFC3339Nano, jr.TS)
	if err != nil {
		return Record{}, fmt.Errorf("bad ts %q: %w", jr.TS, err)
	}
	switch jr.Type {
	case "span", "event", "error":
	default:
		return Record{}, fmt.Errorf("unknown record type %q", jr.Type)
	}
	rec := Record{Time: ts, Type: jr.Type, Name: jr.Name, Attrs: jr.Attrs}
	if jr.DurUS != nil {
		rec.DurUS = *jr.DurUS
	}
	return rec, nil
}

package traceview

import (
	"html"
	"io"
	"time"

	"bpart/internal/htmlpage"
)

// WriteHTML renders the trace as one self-contained HTML file: a span
// timeline (rows in phase-tree order, bars on the trace's wall-clock
// axis) and, per run, a per-superstep chart stacking each machine's
// compute, communication and waiting time — Fig 12/13 as an artifact you
// can open in a browser with no server and no external assets.
func WriteHTML(w io.Writer, tr *Trace) error {
	if err := htmlpage.Start(w, "bpart trace timeline"); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	writeHTMLSummary(ew, tr)
	writeHTMLSpans(ew, tr)
	steps, err := Supersteps(tr)
	if err != nil {
		return err
	}
	for i, run := range GroupRuns(steps) {
		writeHTMLRun(ew, i+1, run)
	}
	if ew.err != nil {
		return ew.err
	}
	return htmlpage.End(w)
}

func writeHTMLSummary(ew *errWriter, tr *Trace) {
	spans, events := 0, 0
	for _, r := range tr.Records {
		switch r.Type {
		case "span":
			spans++
		case "event":
			events++
		}
	}
	ew.printf("<p class=meta>%d records (%d spans, %d events)", len(tr.Records), spans, events)
	if start, end, ok := tr.Bounds(); ok {
		ew.printf(" · wall span %s · start %s", fmtUS(float64(end.Sub(start).Microseconds())),
			html.EscapeString(start.UTC().Format(time.RFC3339Nano)))
	}
	ew.printf("</p>\n")
	if tr.Truncated {
		ew.printf("<p class=warn>trace truncated: final line torn (crashed run); showing intact prefix</p>\n")
	}
}

// maxHTMLSpans bounds the timeline so a bench-scale trace still renders
// instantly; elided spans are counted below the chart.
const maxHTMLSpans = 500

func writeHTMLSpans(ew *errWriter, tr *Trace) {
	root := BuildTree(tr)
	if len(root.Children) == 0 {
		return
	}
	start, end, _ := tr.Bounds()
	total := float64(end.Sub(start).Microseconds())
	if total <= 0 {
		total = 1
	}
	type row struct {
		node  *SpanNode
		depth int
	}
	var rows []row
	skipped := 0
	root.Walk(func(n *SpanNode, depth int) {
		if n.Rec == nil {
			return
		}
		if len(rows) >= maxHTMLSpans {
			skipped++
			return
		}
		rows = append(rows, row{n, depth})
	})
	const (
		chartW = 1000
		labelW = 280
		rowH   = 16
	)
	h := len(rows)*rowH + 24
	ew.printf("<h2>Span timeline</h2>\n")
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", chartW+labelW+20, h)
	palette := []string{"#4878b0", "#5b9a68", "#b07848", "#8868a8", "#a85868"}
	for i, rw := range rows {
		rec := rw.node.Rec
		y := 12 + i*rowH
		offUS := float64(rec.Time.Sub(start).Microseconds())
		x := labelW + offUS/total*chartW
		wid := rec.DurUS / total * chartW
		if wid < 1.5 {
			wid = 1.5
		}
		color := palette[rw.depth%len(palette)]
		ew.printf("<text class=lbl x=\"%d\" y=\"%d\">%s</text>\n",
			4+rw.depth*10, y+11, html.EscapeString(rec.Name))
		ew.printf("<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\"><title>%s — %s</title></rect>\n",
			x, y+2, wid, rowH-4, color,
			html.EscapeString(rec.Name), html.EscapeString(fmtUS(rec.DurUS)))
	}
	ew.printf("</svg>\n")
	if skipped > 0 {
		ew.printf("<p class=meta>%d spans elided</p>\n", skipped)
	}
}

func writeHTMLRun(ew *errWriter, idx int, run []Superstep) {
	b := DecomposeWaitRatio(run)
	cp := ComputeCriticalPath(run)
	ew.printf("<h2>Run %d — %d machines, %d supersteps</h2>\n", idx, b.Machines, b.Supersteps)
	ew.printf("<p class=meta>sim time %s · wait ratio %.4f · critical path: compute %.1f%%, comm %.1f%%, latency %.1f%%</p>\n",
		fmtUS(b.TotalTimeUS), b.WaitRatio,
		pctOf(cp.ComputeUS, cp.TotalUS), pctOf(cp.CommUS, cp.TotalUS), pctOf(cp.LatencyUS, cp.TotalUS))
	ew.printf("<p class=legend><span style=\"background:#4878b0\">compute</span><span style=\"background:#b07848\">comm</span><span style=\"background:#999\">waiting</span></p>\n")

	// One column group per superstep, one stacked bar per machine.
	maxBusy := 0.0
	for _, st := range run {
		for i := range st.Compute {
			if v := st.Compute[i] + st.Comm[i] + st.Waiting[i]; v > maxBusy {
				maxBusy = v
			}
		}
	}
	if maxBusy <= 0 {
		maxBusy = 1
	}
	const (
		barW   = 6
		gap    = 10
		chartH = 160
	)
	k := b.Machines
	groupW := k*barW + gap
	w := len(run)*groupW + 40
	ew.printf("<svg width=\"%d\" height=\"%d\">\n", w, chartH+30)
	for si, st := range run {
		x0 := 20 + si*groupW
		for m := 0; m < k; m++ {
			x := x0 + m*barW
			segs := []struct {
				v     float64
				color string
			}{
				{st.Compute[m], "#4878b0"},
				{st.Comm[m], "#b07848"},
				{st.Waiting[m], "#999"},
			}
			y := float64(chartH + 10)
			for _, s := range segs {
				hh := s.v / maxBusy * chartH
				y -= hh
				ew.printf("<rect x=\"%d\" y=\"%.1f\" width=\"%d\" height=\"%.1f\" fill=\"%s\"><title>iter %d M%d: %s</title></rect>\n",
					x, y, barW-1, hh, s.color, st.Iteration, m, html.EscapeString(fmtUS(s.v)))
			}
		}
		ew.printf("<text class=lbl x=\"%d\" y=\"%d\">%d</text>\n", x0, chartH+24, st.Iteration)
	}
	ew.printf("</svg>\n")
}

func pctOf(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * v / total
}

package traceview

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DiffMetric compares one quantity between two traces. All metrics here
// are lower-is-better, so a positive DeltaPct is a regression of trace B
// against baseline A.
type DiffMetric struct {
	Name string
	A, B float64
	// Gate marks metrics eligible for the -fail-above regression gate:
	// the deterministic simulation quantities. Wall-clock span durations
	// are reported but never gate, since they vary run to run.
	Gate bool
}

// DeltaPct is the relative change of B vs A in percent (0 when A is 0 —
// a metric that appears from nothing is reported but has no meaningful
// ratio).
func (m DiffMetric) DeltaPct() float64 {
	if m.A == 0 {
		return 0
	}
	return (m.B - m.A) / m.A * 100
}

// DiffReport is the comparison of two traces — typically the same workload
// under two partitioners, or before/after an optimization.
type DiffReport struct {
	Metrics []DiffMetric
}

// Diff compares two parsed traces. Superstep-derived quantities aggregate
// across all runs in each trace; per-span-name wall totals cover the
// phases both traces share plus any that appear on one side only.
func Diff(a, b *Trace) (*DiffReport, error) {
	sa, err := Supersteps(a)
	if err != nil {
		return nil, fmt.Errorf("trace A: %w", err)
	}
	sb, err := Supersteps(b)
	if err != nil {
		return nil, fmt.Errorf("trace B: %w", err)
	}
	d := &DiffReport{}
	add := func(name string, av, bv float64, gate bool) {
		d.Metrics = append(d.Metrics, DiffMetric{Name: name, A: av, B: bv, Gate: gate})
	}
	aAgg, bAgg := aggregate(sa), aggregate(sb)
	add("sim_time_us", aAgg.simTimeUS, bAgg.simTimeUS, true)
	add("wait_ratio", aAgg.waitRatio(), bAgg.waitRatio(), true)
	add("messages_total", float64(aAgg.messages), float64(bAgg.messages), true)
	add("supersteps", float64(aAgg.supersteps), float64(bAgg.supersteps), true)

	av, bv := SummarizeSpans(a), SummarizeSpans(b)
	names := map[string][2]float64{}
	for _, s := range av {
		names[s.Name] = [2]float64{s.TotalUS, 0}
	}
	for _, s := range bv {
		e := names[s.Name]
		e[1] = s.TotalUS
		names[s.Name] = e
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		add("span:"+n+":wall_us", names[n][0], names[n][1], false)
	}
	return d, nil
}

// aggregate folds a whole trace's supersteps (all runs) into totals.
type aggTotals struct {
	simTimeUS  float64
	capacityUS float64 // Σ per-run TimeUS·machines
	waitUS     float64
	messages   int64
	supersteps int
}

func aggregate(steps []Superstep) aggTotals {
	var t aggTotals
	for _, st := range steps {
		t.simTimeUS += st.TimeUS
		t.capacityUS += st.TimeUS * float64(st.Machines)
		for _, w := range st.Waiting {
			t.waitUS += w
		}
		for _, m := range st.Messages {
			t.messages += m
		}
		t.supersteps++
	}
	return t
}

func (t aggTotals) waitRatio() float64 {
	if t.capacityUS == 0 {
		return 0
	}
	return t.waitUS / t.capacityUS
}

// WorstGateRegression returns the gated metric with the largest positive
// DeltaPct (the worst regression), or ok=false when nothing gated
// regressed.
func (d *DiffReport) WorstGateRegression() (DiffMetric, bool) {
	worst := DiffMetric{}
	found := false
	for _, m := range d.Metrics {
		if !m.Gate || m.DeltaPct() <= 0 {
			continue
		}
		if !found || m.DeltaPct() > worst.DeltaPct() {
			worst, found = m, true
		}
	}
	return worst, found
}

// WriteText renders the comparison as an aligned table.
func (d *DiffReport) WriteText(w io.Writer, failAbovePct float64) error {
	ew := &errWriter{w: w}
	ew.printf("TRACE DIFF (A = baseline, B = candidate; lower is better)\n")
	nameW := len("metric")
	for _, m := range d.Metrics {
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
	}
	ew.printf("  %-*s  %14s  %14s  %9s  %s\n", nameW, "metric", "A", "B", "delta", "gate")
	for _, m := range d.Metrics {
		gate := ""
		if m.Gate {
			gate = "*"
			if failAbovePct > 0 && m.DeltaPct() > failAbovePct {
				gate = "FAIL"
			}
		}
		ew.printf("  %-*s  %14.3f  %14.3f  %8.2f%%  %s\n", nameW, m.Name, m.A, m.B, m.DeltaPct(), gate)
	}
	if worst, ok := d.WorstGateRegression(); ok {
		ew.printf("worst gated regression: %s %+.2f%%\n", worst.Name, worst.DeltaPct())
	} else {
		ew.printf("no gated regressions\n")
	}
	return ew.err
}

// Exceeds reports whether any gated metric regressed by more than pct
// (pct ≤ 0 disables the gate). NaN deltas never trip it.
func (d *DiffReport) Exceeds(pct float64) bool {
	if pct <= 0 {
		return false
	}
	for _, m := range d.Metrics {
		if m.Gate && !math.IsNaN(m.DeltaPct()) && m.DeltaPct() > pct {
			return true
		}
	}
	return false
}

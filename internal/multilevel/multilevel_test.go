package multilevel

import (
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partition"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 10000, AvgDegree: 16, Skew: 0.75, Locality: 0.5, Window: 256, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Imbalance != 0.03 || c.CoarsestPerPart != 30 || c.LabelIters != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	bad := Config{Imbalance: -0.1}
	if err := bad.Normalize(); err == nil {
		t.Fatal("negative imbalance accepted")
	}
}

func TestArgs(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Partition(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := m.Partition(gen.Ring(4), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestVertexBalancedEdgeSkewed(t *testing.T) {
	g := testGraph(t)
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	r := metrics.NewReport(g, a.Parts, 8, false)
	// The §4.2 asymmetry: vertex bias small (paper: 0.03), edge bias
	// substantial (paper: 0.70–2.59).
	if r.VertexBias > 0.05 {
		t.Fatalf("vertex bias %v, want ≤ imbalance+rounding", r.VertexBias)
	}
	if r.EdgeBias < 0.3 {
		t.Fatalf("edge bias %v, want the Mt-KaHIP-style skew (> 0.3)", r.EdgeBias)
	}
}

func TestCutBetterThanHash(t *testing.T) {
	g := testGraph(t)
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := partition.Hash{}.Partition(g, 8)
	if cm, ch := metrics.EdgeCutRatio(g, a.Parts), metrics.EdgeCutRatio(g, h.Parts); cm >= ch {
		t.Fatalf("multilevel cut %v not below hash %v", cm, ch)
	}
}

func TestSmallGraphs(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 17} {
		g := gen.Ring(n)
		a, err := m.Partition(g, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	empty := graph.FromAdjacency(nil)
	a, err := m.Partition(empty, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Parts) != 0 {
		t.Fatalf("empty graph parts: %v", a.Parts)
	}
}

func TestLPT(t *testing.T) {
	parts := lptAssign([]int{10, 9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 2)
	load := []int{0, 0}
	for i, p := range parts {
		load[p] += []int{10, 9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}[i]
	}
	if load[0] != 14 && load[0] != 15 {
		t.Fatalf("LPT loads %v, want ~even", load)
	}
}

func TestLabelPropagationRespectsCap(t *testing.T) {
	g := testGraph(t)
	w := ones(g.NumVertices())
	cap := 50
	labels := labelPropagation(g, w, cap, 3)
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	for l, s := range sizes {
		if s > cap {
			t.Fatalf("cluster %d has %d vertices, cap %d", l, s, cap)
		}
	}
	if len(sizes) >= g.NumVertices() {
		t.Fatal("label propagation did not cluster anything")
	}
}

func TestContract(t *testing.T) {
	// Two triangles joined by one arc; cluster each triangle.
	g := graph.FromAdjacency([][]graph.VertexID{
		{1}, {2}, {0, 3}, {4}, {5}, {3},
	})
	labels := []int{0, 0, 0, 9, 9, 9}
	lv, clusters, reduced := contract(g, ones(6), labels)
	if !reduced {
		t.Fatal("contract reported no reduction")
	}
	if lv.g.NumVertices() != 2 {
		t.Fatalf("coarse |V| = %d", lv.g.NumVertices())
	}
	if lv.g.NumEdges() != 1 {
		t.Fatalf("coarse |E| = %d, want only the bridge", lv.g.NumEdges())
	}
	if lv.weight[0] != 3 || lv.weight[1] != 3 {
		t.Fatalf("weights %v", lv.weight)
	}
	if clusters[0] != clusters[1] || clusters[0] == clusters[3] {
		t.Fatalf("cluster map wrong: %v", clusters)
	}
	// Degenerate: all distinct labels → no reduction.
	if _, _, red := contract(g, ones(6), []int{0, 1, 2, 3, 4, 5}); red {
		t.Fatal("identity contraction reported reduction")
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph(t)
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Parts {
		if a1.Parts[v] != a2.Parts[v] {
			t.Fatalf("multilevel not deterministic at vertex %d", v)
		}
	}
}

func TestRegistryHasMultilevel(t *testing.T) {
	p, err := partition.Get("Multilevel")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Multilevel" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// Property: valid assignments for arbitrary graphs and k.
func TestQuickValid(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%300) + 2
		k := int(rawK)%6 + 1
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 5, Skew: 0.7, Seed: seed})
		if err != nil {
			return false
		}
		m, err := New(Config{})
		if err != nil {
			return false
		}
		a, err := m.Partition(g, k)
		if err != nil {
			return false
		}
		return a.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultilevel10k(b *testing.B) {
	g := testGraph(b)
	m, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

package multilevel

import (
	"testing"

	"bpart/internal/telemetry"
)

// A traced Multilevel run must emit one multilevel.partition span, one
// coarsen span, one initial span and one refine span per level, and fill
// the metrics registry.
func TestPartitionTelemetry(t *testing.T) {
	g := testGraph(t)
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	m.SetTelemetry(tr, reg)

	const k = 8
	a, err := m.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}

	runs := tr.Find("multilevel.partition")
	if len(runs) != 1 {
		t.Fatalf("got %d multilevel.partition spans, want 1", len(runs))
	}
	if got := runs[0].Attr("k"); got != int64(k) {
		t.Fatalf("run span k = %v", got)
	}
	levels, ok := runs[0].Attr("levels").(int64)
	if !ok || levels < 1 {
		t.Fatalf("run span levels = %v, want >= 1", runs[0].Attr("levels"))
	}
	if _, ok := runs[0].Attr("refine_moves").(int64); !ok {
		t.Fatalf("run span refine_moves = %v", runs[0].Attr("refine_moves"))
	}

	coarsens := tr.Find("multilevel.coarsen")
	if len(coarsens) != 1 {
		t.Fatalf("got %d multilevel.coarsen spans, want 1", len(coarsens))
	}
	if got := coarsens[0].Attr("levels"); got != levels {
		t.Fatalf("coarsen span levels = %v, run span says %d", got, levels)
	}
	cv, ok := coarsens[0].Attr("coarsest_vertices").(int64)
	if !ok || cv <= 0 || cv > int64(g.NumVertices()) {
		t.Fatalf("coarsest_vertices = %v (graph has %d)", coarsens[0].Attr("coarsest_vertices"), g.NumVertices())
	}

	inits := tr.Find("multilevel.initial")
	if len(inits) != 1 {
		t.Fatalf("got %d multilevel.initial spans, want 1", len(inits))
	}
	if got := inits[0].Attr("super_vertices"); got != cv {
		t.Fatalf("initial span super_vertices = %v, coarsen says %d", got, cv)
	}

	refines := tr.Find("multilevel.refine")
	if int64(len(refines)) != levels {
		t.Fatalf("got %d multilevel.refine spans, want one per level (%d)", len(refines), levels)
	}
	spanMoves := int64(0)
	for i, sp := range refines {
		// Uncoarsening walks levels coarsest-first.
		if got := sp.Attr("level"); got != levels-1-int64(i) {
			t.Fatalf("refine span %d level attr = %v, want %d", i, got, levels-1-int64(i))
		}
		mv, ok := sp.Attr("moves").(int64)
		if !ok || mv < 0 {
			t.Fatalf("refine span %d moves = %v", i, sp.Attr("moves"))
		}
		spanMoves += mv
	}
	if got := runs[0].Attr("refine_moves"); got != spanMoves {
		t.Fatalf("run span refine_moves = %v, refine spans sum to %d", got, spanMoves)
	}

	if got := reg.Counter("multilevel_partitions_total").Value(); got != 1 {
		t.Fatalf("multilevel_partitions_total = %d, want 1", got)
	}
	if got := reg.Counter("multilevel_levels_total").Value(); got != levels {
		t.Fatalf("multilevel_levels_total = %d, want %d", got, levels)
	}
	if got := reg.Counter("multilevel_refine_moves_total").Value(); got != spanMoves {
		t.Fatalf("multilevel_refine_moves_total = %d, refine spans sum to %d", got, spanMoves)
	}
}

// An uninstrumented Multilevel must behave identically (the telemetry
// default is the no-op tracer), and instrumenting must not change the
// result.
func TestTelemetryDoesNotChangeResult(t *testing.T) {
	g := testGraph(t)
	plain, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := plain.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	traced.SetTelemetry(telemetry.NewMemory(), telemetry.NewRegistry())
	a2, err := traced.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Parts {
		if a1.Parts[v] != a2.Parts[v] {
			t.Fatalf("vertex %d: untraced part %d, traced part %d", v, a1.Parts[v], a2.Parts[v])
		}
	}
}

// Package multilevel implements a simplified offline multilevel graph
// partitioner in the style of Mt-KaHIP (Akhremtsev, Sanders, Schulz; TPDS
// 2020), which §4.2 of the paper uses as the offline baseline:
//
//  1. Coarsening — size-constrained label propagation clusters the graph,
//     clusters are contracted into weighted super-vertices, repeatedly,
//     until the graph is small.
//  2. Initial partitioning — longest-processing-time (LPT) assignment of
//     super-vertices to k parts balances the vertex weight.
//  3. Uncoarsening — labels are projected back level by level, with
//     FM-style local refinement moving boundary vertices to reduce the cut
//     subject to a vertex-balance constraint.
//
// Like the real Mt-KaHIP (and unlike BPart), the balance objective is
// one-dimensional: vertex count. The paper reports vertex bias ≈ 0.03 but
// edge bias up to 2.59 for Mt-KaHIP on its graphs; this implementation
// reproduces that asymmetry.
package multilevel

import (
	"fmt"
	"sort"

	"bpart/internal/graph"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
)

// Config tunes the multilevel partitioner.
type Config struct {
	// Imbalance is the allowed vertex-weight imbalance ε: every part
	// stays ≤ (1+ε)·n/k. Default 0.03 (KaHIP's default).
	Imbalance float64
	// CoarsestPerPart stops coarsening once the graph has at most
	// CoarsestPerPart·k super-vertices. Default 30.
	CoarsestPerPart int
	// LabelIters is the number of label-propagation sweeps per
	// coarsening level. Default 3.
	LabelIters int
	// RefineIters is the number of refinement sweeps per uncoarsening
	// level. Default 2.
	RefineIters int
	// MaxLevels caps the coarsening depth. Default 20.
	MaxLevels int
}

// Normalize fills defaults and validates.
func (c *Config) Normalize() error {
	if c.Imbalance == 0 {
		c.Imbalance = 0.03
	}
	if c.Imbalance < 0 {
		return fmt.Errorf("multilevel: Imbalance = %v, want >= 0", c.Imbalance)
	}
	if c.CoarsestPerPart <= 0 {
		c.CoarsestPerPart = 30
	}
	if c.LabelIters <= 0 {
		c.LabelIters = 3
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 2
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 20
	}
	return nil
}

// Multilevel is the offline partitioner. It implements
// partition.Partitioner and telemetry.Instrumentable.
type Multilevel struct {
	cfg Config
	tr  telemetry.Tracer
	reg *telemetry.Registry
}

// New returns a Multilevel partitioner; a zero Config selects defaults.
func New(cfg Config) (*Multilevel, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return &Multilevel{cfg: cfg, tr: telemetry.Nop()}, nil
}

// SetTelemetry implements telemetry.Instrumentable: tr (may be nil)
// receives one span per Partition call plus per-phase coarsen/initial/
// refine spans; reg (may be nil) accumulates multilevel_* counters.
func (m *Multilevel) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	m.tr = telemetry.Safe(tr)
	m.reg = reg
}

// Name implements partition.Partitioner.
func (*Multilevel) Name() string { return "Multilevel" }

// level is one rung of the coarsening hierarchy.
type level struct {
	g       *graph.Graph
	weight  []int // super-vertex weight = number of original vertices
	cluster []int // cluster id of each vertex, mapping to the next level
}

// Partition implements partition.Partitioner.
func (m *Multilevel) Partition(g *graph.Graph, k int) (*partition.Assignment, error) {
	if g == nil {
		return nil, fmt.Errorf("multilevel: nil graph")
	}
	if k <= 0 {
		return nil, fmt.Errorf("multilevel: k = %d, want > 0", k)
	}
	n := g.NumVertices()
	if n == 0 {
		return &partition.Assignment{Parts: []int{}, K: k}, nil
	}

	tr := telemetry.Safe(m.tr)
	runSpan := tr.Span("multilevel.partition",
		telemetry.Int("k", k),
		telemetry.Int("vertices", n),
		telemetry.Int("edges", g.NumEdges()))

	// --- Coarsening ---
	coarsenSpan := tr.Span("multilevel.coarsen")
	levels := []level{{g: g, weight: ones(n)}}
	clusterCap := n/(4*k) + 1
	for len(levels) < m.cfg.MaxLevels {
		cur := &levels[len(levels)-1]
		if cur.g.NumVertices() <= m.cfg.CoarsestPerPart*k {
			break
		}
		labels := labelPropagation(cur.g, cur.weight, clusterCap, m.cfg.LabelIters)
		next, clusters, reduced := contract(cur.g, cur.weight, labels)
		if !reduced {
			break
		}
		cur.cluster = clusters
		levels = append(levels, next)
	}
	coarse := levels[len(levels)-1]
	coarsenSpan.End(
		telemetry.Int("levels", len(levels)),
		telemetry.Int("coarsest_vertices", coarse.g.NumVertices()),
		telemetry.Int("coarsest_edges", coarse.g.NumEdges()))

	// --- Initial partitioning (LPT on the coarsest level) ---
	initSpan := tr.Span("multilevel.initial",
		telemetry.Int("super_vertices", coarse.g.NumVertices()))
	parts := lptAssign(coarse.weight, k)
	initSpan.End()

	// --- Uncoarsening + refinement ---
	maxWeight := int(float64(n)/float64(k)*(1+m.cfg.Imbalance)) + 1
	totalMoves := 0
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		refineSpan := tr.Span("multilevel.refine",
			telemetry.Int("level", li),
			telemetry.Int("vertices", lv.g.NumVertices()))
		levelMoves := 0
		for it := 0; it < m.cfg.RefineIters; it++ {
			moved := refinePass(lv.g, lv.weight, parts, k, maxWeight)
			levelMoves += moved
			if moved == 0 {
				break
			}
		}
		refineSpan.End(telemetry.Int("moves", levelMoves))
		if m.reg != nil {
			// Per-round (per-level) move counter: refinement activity
			// concentrates on the finest levels, which this exposes.
			m.reg.Counter("multilevel_refine_moves_total").Add(int64(levelMoves))
		}
		totalMoves += levelMoves
		if li > 0 {
			// Project onto the finer level below.
			finer := levels[li-1]
			projected := make([]int, finer.g.NumVertices())
			for v := range projected {
				projected[v] = parts[finer.cluster[v]]
			}
			parts = projected
		}
	}
	a := &partition.Assignment{Parts: parts, K: k}
	if err := a.Validate(g); err != nil {
		runSpan.End(telemetry.String("error", err.Error()))
		return nil, fmt.Errorf("multilevel: internal error: %w", err)
	}
	runSpan.End(
		telemetry.Int("levels", len(levels)),
		telemetry.Int("refine_moves", totalMoves))
	if m.reg != nil {
		m.reg.Counter("multilevel_partitions_total").Inc()
		m.reg.Counter("multilevel_levels_total").Add(int64(len(levels)))
	}
	return a, nil
}

func ones(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// labelPropagation runs size-constrained label propagation: each vertex
// adopts the label most common among its out-neighbors, provided the
// adopting cluster stays within weightCap.
func labelPropagation(g *graph.Graph, weight []int, weightCap, iters int) []int {
	n := g.NumVertices()
	labels := make([]int, n)
	clusterWeight := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = v
		clusterWeight[v] = weight[v]
	}
	counts := map[int]int{}
	for it := 0; it < iters; it++ {
		moved := 0
		for v := 0; v < n; v++ {
			ns := g.Neighbors(graph.VertexID(v))
			if len(ns) == 0 {
				continue
			}
			clear(counts)
			for _, u := range ns {
				counts[labels[u]]++
			}
			cur := labels[v]
			best, bestCount := cur, counts[cur]
			// Map iteration order is randomized; break count ties by
			// smallest label so runs are reproducible.
			for l, c := range counts {
				if l == cur {
					continue
				}
				if (c > bestCount || (c == bestCount && l < best)) &&
					clusterWeight[l]+weight[v] <= weightCap {
					best, bestCount = l, c
				}
			}
			if best != cur {
				clusterWeight[cur] -= weight[v]
				clusterWeight[best] += weight[v]
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return labels
}

// contract merges each cluster into one super-vertex, dropping
// intra-cluster arcs. reduced is false when no shrinkage happened.
func contract(g *graph.Graph, weight, labels []int) (level, []int, bool) {
	n := g.NumVertices()
	dense := make(map[int]int)
	clusters := make([]int, n)
	for v := 0; v < n; v++ {
		id, ok := dense[labels[v]]
		if !ok {
			id = len(dense)
			dense[labels[v]] = id
		}
		clusters[v] = id
	}
	cn := len(dense)
	if cn >= n {
		return level{}, nil, false
	}
	cw := make([]int, cn)
	for v := 0; v < n; v++ {
		cw[clusters[v]] += weight[v]
	}
	b := graph.NewBuilder(cn)
	g.Edges(func(e graph.Edge) bool {
		cu, cv := clusters[e.Src], clusters[e.Dst]
		if cu != cv {
			b.AddEdge(graph.VertexID(cu), graph.VertexID(cv))
		}
		return true
	})
	return level{g: b.Build(), weight: cw}, clusters, true
}

// lptAssign distributes weighted items over k parts, heaviest first onto
// the lightest part — the classic longest-processing-time heuristic.
func lptAssign(weight []int, k int) []int {
	n := len(weight)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by weight descending (stable by index for determinism).
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if weight[a] != weight[b] {
			return weight[a] > weight[b]
		}
		return a < b
	})
	parts := make([]int, n)
	load := make([]int, k)
	for _, v := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		parts[v] = best
		load[best] += weight[v]
	}
	return parts
}

// refinePass moves boundary vertices to the neighboring part with the
// highest arc affinity when that strictly reduces the cut and respects the
// balance cap. It returns the number of vertices moved.
func refinePass(g *graph.Graph, weight, parts []int, k, maxWeight int) int {
	load := make([]int, k)
	for v, p := range parts {
		load[p] += weight[v]
	}
	counts := make([]int, k)
	moved := 0
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.Neighbors(graph.VertexID(v))
		if len(ns) == 0 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		boundary := false
		cur := parts[v]
		for _, u := range ns {
			counts[parts[u]]++
			if parts[u] != cur {
				boundary = true
			}
		}
		if !boundary {
			continue
		}
		best, bestCount := cur, counts[cur]
		for p := 0; p < k; p++ {
			if p == cur || counts[p] <= bestCount {
				continue
			}
			if load[p]+weight[v] <= maxWeight {
				best, bestCount = p, counts[p]
			}
		}
		if best != cur {
			load[cur] -= weight[v]
			load[best] += weight[v]
			parts[v] = best
			moved++
		}
	}
	return moved
}

func init() {
	partition.Register("Multilevel", func() partition.Partitioner {
		m, err := New(Config{})
		if err != nil {
			panic(err) // zero Config always normalizes
		}
		return m
	})
}

package partition

import (
	"testing"

	"bpart/internal/gen"
	"bpart/internal/graph"
)

func isPermutation(order []graph.VertexID, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestOrderByID(t *testing.T) {
	order := OrderByID(5)
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("OrderByID[%d] = %d", i, v)
		}
	}
}

func TestOrderRandomIsPermutation(t *testing.T) {
	order := OrderRandom(100, 7)
	if !isPermutation(order, 100) {
		t.Fatal("not a permutation")
	}
	same := 0
	for i, v := range order {
		if int(v) == i {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("%d fixed points in a 'random' order", same)
	}
	// Deterministic per seed.
	again := OrderRandom(100, 7)
	for i := range order {
		if order[i] != again[i] {
			t.Fatal("OrderRandom not deterministic for fixed seed")
		}
	}
	other := OrderRandom(100, 8)
	diff := 0
	for i := range order {
		if order[i] != other[i] {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("different seeds nearly identical: %d diffs", diff)
	}
}

func TestOrderByDegree(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 500, AvgDegree: 6, Skew: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	desc := OrderByDegree(g, false)
	if !isPermutation(desc, 500) {
		t.Fatal("degree-desc not a permutation")
	}
	for i := 1; i < len(desc); i++ {
		if g.OutDegree(desc[i]) > g.OutDegree(desc[i-1]) {
			t.Fatalf("degree-desc not monotone at %d", i)
		}
	}
	asc := OrderByDegree(g, true)
	for i := 1; i < len(asc); i++ {
		if g.OutDegree(asc[i]) < g.OutDegree(asc[i-1]) {
			t.Fatalf("degree-asc not monotone at %d", i)
		}
	}
}

func TestStreamWithOrdersStillValid(t *testing.T) {
	g := twitterish(t)
	tr := g.Transpose()
	for _, order := range [][]graph.VertexID{
		OrderRandom(g.NumVertices(), 1),
		OrderByDegree(g, false),
		OrderByDegree(g, true),
	} {
		res, err := Stream(g, StreamOptions{K: 8, C: 1, In: tr, Vertices: order})
		if err != nil {
			t.Fatal(err)
		}
		assigned := 0
		for _, p := range res.Parts {
			if p != Unassigned {
				assigned++
			}
		}
		if assigned != g.NumVertices() {
			t.Fatalf("order stream assigned %d of %d", assigned, g.NumVertices())
		}
	}
}

package partition

import (
	"testing"

	"bpart/internal/telemetry"
)

// BenchmarkStream20k is the probe-overhead baseline: the streaming loop
// with no probe attached (the default everywhere).
func BenchmarkStream20k(b *testing.B) {
	g := twitterish(b)
	opt := StreamOptions{K: 8, C: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stream(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStream20kNopProbe is the same loop with a no-op probe attached —
// the worst case for a disabled-but-wired hook site.
func BenchmarkStream20kNopProbe(b *testing.B) {
	g := twitterish(b)
	opt := StreamOptions{K: 8, C: 1, Probe: telemetry.NopProbe()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stream(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIdleProbeOverheadGate is the <5% overhead gate for the resource-probe
// hook sites: the hooks fire per phase (one BeginPhase/EndPhase pair per
// stream), never per vertex, so an idle probe must be indistinguishable
// from no probe. Measured as best-of-N to shed scheduler noise; skipped in
// -short mode where a timing assertion is meaningless.
func TestIdleProbeOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	g := twitterish(t)
	measure := func(opt StreamOptions) float64 {
		const reps = 5
		best := 0.0
		for r := 0; r < reps; r++ {
			sw := telemetry.NewStopwatch()
			for i := 0; i < 3; i++ {
				if _, err := Stream(g, opt); err != nil {
					t.Fatal(err)
				}
			}
			if s := sw.Seconds(); r == 0 || s < best {
				best = s
			}
		}
		return best
	}
	base := measure(StreamOptions{K: 8, C: 1})
	probed := measure(StreamOptions{K: 8, C: 1, Probe: telemetry.NopProbe()})
	overhead := probed/base - 1
	t.Logf("idle-probe overhead: base %.2fms, probed %.2fms, overhead %.2f%%",
		base*1e3, probed*1e3, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("idle probe overhead %.2f%% exceeds the 5%% gate", overhead*100)
	}
}

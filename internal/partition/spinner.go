package partition

import (
	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Spinner is a simplified implementation of Spinner (Martella, Logothetis,
// Loukas, Siganos; ICDE'17), the iterative label-propagation partitioner
// the paper cites in §5. Every vertex starts with a random label in
// [0, k); in each sweep a vertex adopts the label most frequent among its
// (undirected) neighbors, discounted by the target partition's load so
// labels stay balanced in *degree mass* (Spinner's balance unit — a proxy
// for edges per partition). Convergence typically takes a few dozen
// sweeps; the result is edge-balance-leaning with a low cut, but like the
// paper's other baselines it controls only one dimension.
type Spinner struct {
	// Iterations caps the LP sweeps; <= 0 selects 30.
	Iterations int
	// Slack ε bounds each label's degree mass at (1+ε)·2m/k; <= 0
	// selects 0.05.
	Slack float64
	// Seed drives the random initialization.
	Seed uint64
}

// Name implements Partitioner.
func (Spinner) Name() string { return "Spinner" }

// Partition implements Partitioner.
func (s Spinner) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	if s.Iterations <= 0 {
		s.Iterations = 30
	}
	if s.Slack <= 0 {
		s.Slack = 0.05
	}
	n := g.NumVertices()
	in := g.Transpose()
	deg := make([]int, n) // undirected degree = balance weight
	var totalDeg float64
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v)) + in.OutDegree(graph.VertexID(v))
		totalDeg += float64(deg[v])
	}
	capacity := (1 + s.Slack) * totalDeg / float64(k)
	if capacity < 1 {
		capacity = 1
	}

	rng := xrand.New(s.Seed ^ 0x59155E)
	parts := make([]int, n)
	load := make([]float64, k)
	for v := 0; v < n; v++ {
		parts[v] = rng.Intn(k)
		load[parts[v]] += float64(deg[v])
	}

	counts := make([]int, k)
	for it := 0; it < s.Iterations; it++ {
		moved := 0
		for v := 0; v < n; v++ {
			for i := range counts {
				counts[i] = 0
			}
			tally := func(ns []graph.VertexID) {
				for _, u := range ns {
					counts[parts[u]]++
				}
			}
			tally(g.Neighbors(graph.VertexID(v)))
			tally(in.Neighbors(graph.VertexID(v)))
			cur := parts[v]
			w := float64(deg[v])
			best, bestScore := cur, score(counts[cur], load[cur], capacity)
			for l := 0; l < k; l++ {
				if l == cur {
					continue
				}
				if load[l]+w > capacity {
					continue
				}
				if sc := score(counts[l], load[l], capacity); sc > bestScore {
					best, bestScore = l, sc
				}
			}
			if best != cur {
				load[cur] -= w
				load[best] += w
				parts[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// score is Spinner's affinity × remaining-capacity product.
func score(affinity int, load, capacity float64) float64 {
	return float64(affinity) * (1 - load/capacity)
}

func init() {
	Register("Spinner", func() Partitioner { return Spinner{} })
}

package partition

import (
	"fmt"
	"sort"

	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/xrand"
)

// GD is a simplified implementation of the projected-gradient-descent
// partitioner of Avdiukhin, Pupyrev and Yaroslavtsev (VLDB'19), the other
// two-dimensionally balanced scheme the paper discusses in §5. It
// recursively bisects the graph: each bisection relaxes the side
// assignment to x ∈ [−1,1]^n, ascends the smooth co-clustering objective
// Σ_{(u,v)∈E} x_u·x_v (aligned neighbors ⇒ fewer cut edges), projects onto
// the two balance hyperplanes (Σx = 0 for vertices, Σ deg·x = 0 for
// edges), and finally rounds with a greedy two-dimensional packer.
//
// As the paper notes, GD handles only power-of-two part counts and is far
// slower than streaming schemes — both properties are visible in the
// Table 2 / ablation benches.
type GD struct {
	// Iterations per bisection level; <= 0 selects 40.
	Iterations int
	// Step is the gradient step size; <= 0 selects 0.05 (normalized).
	Step float64
	// Epsilon is the per-dimension rounding slack; <= 0 selects 0.05.
	Epsilon float64
	// Seed drives the random initialization.
	Seed uint64
}

// Name implements Partitioner.
func (GD) Name() string { return "GD" }

// Partition implements Partitioner. k must be a power of two.
func (gd GD) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("partition: GD supports only power-of-two part counts, got %d", k)
	}
	if gd.Iterations <= 0 {
		gd.Iterations = 40
	}
	if gd.Step <= 0 {
		gd.Step = 0.05
	}
	if gd.Epsilon <= 0 {
		gd.Epsilon = 0.05
	}
	n := g.NumVertices()
	parts := make([]int, n)
	if k == 1 || n == 0 {
		return &Assignment{Parts: parts, K: k}, nil
	}
	in := g.Transpose()
	rng := xrand.New(gd.Seed ^ 0x6D)
	all := make([]graph.VertexID, n)
	for v := range all {
		all[v] = graph.VertexID(v)
	}
	// Recursive bisection: level ℓ splits each current block in two.
	blocks := [][]graph.VertexID{all}
	for len(blocks) < k {
		var next [][]graph.VertexID
		for _, blk := range blocks {
			a, b := gd.bisect(g, in, blk, rng)
			next = append(next, a, b)
		}
		blocks = next
	}
	for i, blk := range blocks {
		for _, v := range blk {
			parts[v] = i
		}
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// bisect splits one vertex block into two halves balanced in both
// dimensions with few cut edges.
func (gd GD) bisect(g, in *graph.Graph, blk []graph.VertexID, rng *xrand.RNG) (a, b []graph.VertexID) {
	nb := len(blk)
	if nb <= 1 {
		return blk, nil
	}
	inBlk := make(map[graph.VertexID]int, nb) // vertex -> index in blk
	for i, v := range blk {
		inBlk[v] = i
	}
	deg := make([]float64, nb)
	var totalDeg float64
	for i, v := range blk {
		deg[i] = float64(g.OutDegree(v))
		totalDeg += deg[i]
	}
	x := make([]float64, nb)
	for i := range x {
		x[i] = rng.Float64()*0.2 - 0.1
	}
	grad := make([]float64, nb)
	for it := 0; it < gd.Iterations; it++ {
		for i := range grad {
			grad[i] = 0
		}
		// ∂/∂x_v Σ_{(u,w)} x_u x_w = Σ_{u ∈ N(v)} x_u (both directions).
		for i, v := range blk {
			for _, u := range g.Neighbors(v) {
				if j, ok := inBlk[u]; ok {
					grad[i] += x[j]
				}
			}
			for _, u := range in.Neighbors(v) {
				if j, ok := inBlk[u]; ok {
					grad[i] += x[j]
				}
			}
		}
		// Normalized ascent step.
		var norm float64
		for _, gv := range grad {
			if gv > norm {
				norm = gv
			} else if -gv > norm {
				norm = -gv
			}
		}
		if metrics.IsZero(norm) {
			norm = 1
		}
		for i := range x {
			x[i] += gd.Step * grad[i] / norm
		}
		projectBalance(x, deg, totalDeg)
		for i := range x {
			if x[i] > 1 {
				x[i] = 1
			} else if x[i] < -1 {
				x[i] = -1
			}
		}
	}
	// Rounding: split the x-sorted order in half (vertex balance by
	// construction, cut quality from the ordering), then repair the edge
	// dimension with vertex-for-vertex swaps across the boundary, trading
	// a high-degree vertex from the edge-heavy side for a low-degree one
	// from the other, so vertex balance is preserved.
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(p, q int) bool {
		if !metrics.TieEq(x[order[p]], x[order[q]]) {
			return x[order[p]] > x[order[q]]
		}
		return order[p] < order[q]
	})
	mid := (nb + 1) / 2
	sideA := append([]int(nil), order[:mid]...)
	sideB := append([]int(nil), order[mid:]...)
	gd.repairEdges(sideA, sideB, deg, totalDeg)
	a = make([]graph.VertexID, len(sideA))
	for i, idx := range sideA {
		a[i] = blk[idx]
	}
	b = make([]graph.VertexID, len(sideB))
	for i, idx := range sideB {
		b[i] = blk[idx]
	}
	return a, b
}

// repairEdges swaps vertices between the sides until the edge masses are
// within ε of each other (or no swap can make progress).
func (gd GD) repairEdges(sideA, sideB []int, deg []float64, totalDeg float64) {
	sideEdges := func(side []int) float64 {
		var e float64
		for _, i := range side {
			e += deg[i]
		}
		return e
	}
	ea := sideEdges(sideA)
	halfE := totalDeg / 2
	tol := gd.Epsilon * maxF(halfE, 1)
	// heavy: the side currently over half; its vertices sorted by degree
	// descending; the light side ascending.
	for iter := 0; iter < len(sideA)+len(sideB); iter++ {
		delta := ea - halfE // >0: A edge-heavy
		if delta <= tol && delta >= -tol {
			return
		}
		heavy, light := sideA, sideB
		if delta < 0 {
			heavy, light = sideB, sideA
			delta = -delta
		}
		// Best single swap: the largest-degree heavy vertex paired with
		// the smallest-degree light vertex, applied only while it
		// improves the imbalance.
		hi, li := 0, 0
		for i := range heavy {
			if deg[heavy[i]] > deg[heavy[hi]] {
				hi = i
			}
		}
		for i := range light {
			if deg[light[i]] < deg[light[li]] {
				li = i
			}
		}
		gain := deg[heavy[hi]] - deg[light[li]]
		if gain <= 0 || gain > 2*delta {
			// Either no improving swap exists or the smallest available
			// swap overshoots past the tolerance from the other side.
			if gain <= 0 || gain-2*delta > 2*tol {
				return
			}
		}
		if ea-halfE > 0 {
			ea -= gain
		} else {
			ea += gain
		}
		heavy[hi], light[li] = light[li], heavy[hi]
	}
}

// projectBalance removes the components of x along the all-ones vector and
// the degree vector (Gram–Schmidt), keeping Σx ≈ 0 and Σ deg·x ≈ 0 — the
// two balance hyperplanes of the relaxation.
func projectBalance(x, deg []float64, totalDeg float64) {
	if len(x) == 0 {
		return
	}
	n := float64(len(x))
	var sum float64
	for _, v := range x {
		sum += v
	}
	mean := sum / n
	for i := range x {
		x[i] -= mean
	}
	// Degree direction with the ones-component removed.
	meanDeg := totalDeg / n
	var dot, norm2 float64
	for i := range x {
		d := deg[i] - meanDeg
		dot += x[i] * d
		norm2 += d * d
	}
	if norm2 > 0 {
		c := dot / norm2
		for i := range x {
			x[i] -= c * (deg[i] - meanDeg)
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func init() {
	Register("GD", func() Partitioner { return GD{} })
}

package partition

import (
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

func TestLDGBalancesVertices(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, LDG{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	if r.VertexBias > 0.11 {
		t.Fatalf("LDG vertex bias %v exceeds slack", r.VertexBias)
	}
	h := mustPartition(t, Hash{}, g, 8)
	if rc, hc := r.CutRatio, metrics.EdgeCutRatio(g, h.Parts); rc >= hc {
		t.Fatalf("LDG cut %v not below Hash %v", rc, hc)
	}
}

func TestLDGCapacityHard(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, LDG{Slack: 1.02}, g, 4)
	vs, _ := graph.PartSizes(g, a.Parts, 4)
	cap := 1.02 * float64(g.NumVertices()) / 4
	for i, v := range vs {
		if float64(v) > cap+1 {
			t.Fatalf("part %d has %d vertices, cap %v", i, v, cap)
		}
	}
}

func TestLDGRegistered(t *testing.T) {
	p, err := Get("LDG")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "LDG" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestGDTwoDimensionalBalance(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, GD{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	// GD's whole point (§5): balanced in both dimensions.
	if r.VertexBias > 0.2 {
		t.Fatalf("GD vertex bias %v", r.VertexBias)
	}
	if r.EdgeBias > 0.2 {
		t.Fatalf("GD edge bias %v", r.EdgeBias)
	}
	h := mustPartition(t, Hash{}, g, 8)
	if rc, hc := r.CutRatio, metrics.EdgeCutRatio(g, h.Parts); rc >= hc {
		t.Fatalf("GD cut %v not below Hash %v", rc, hc)
	}
}

func TestGDRejectsNonPowerOfTwo(t *testing.T) {
	g := gen.Ring(16)
	for _, k := range []int{3, 5, 6, 7, 12} {
		if _, err := (GD{}).Partition(g, k); err == nil {
			t.Errorf("GD accepted k=%d", k)
		}
	}
	if _, err := (GD{}).Partition(g, 1); err != nil {
		t.Fatalf("GD k=1: %v", err)
	}
}

func TestGDSmallBlocks(t *testing.T) {
	// k = n: every block degenerates to single vertices.
	g := gen.Ring(8)
	a := mustPartition(t, GD{}, g, 8)
	seen := map[int]int{}
	for _, p := range a.Parts {
		seen[p]++
	}
	if len(seen) != 8 {
		t.Fatalf("GD k=n produced %d non-empty parts", len(seen))
	}
}

func TestProjectBalance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	deg := []float64{1, 1, 10, 10}
	projectBalance(x, deg, 22)
	var sum, dsum float64
	for i := range x {
		sum += x[i]
		dsum += x[i] * deg[i]
	}
	if sum > 1e-9 || sum < -1e-9 {
		t.Fatalf("Σx = %v after projection", sum)
	}
	// Σ deg·x = Σ (deg-mean)·x + mean·Σx = 0 + 0.
	if dsum > 1e-6 || dsum < -1e-6 {
		t.Fatalf("Σ deg·x = %v after projection", dsum)
	}
	projectBalance(nil, nil, 0) // must not panic
}

// Property: LDG and GD produce valid assignments on arbitrary graphs.
func TestQuickExtraSchemesValid(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%120) + 4
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 4, Skew: 0.7, Seed: seed})
		if err != nil {
			return false
		}
		kl := int(rawK)%8 + 1
		a, err := (LDG{}).Partition(g, kl)
		if err != nil || a.Validate(g) != nil {
			return false
		}
		kg := 1 << (int(rawK) % 4) // 1,2,4,8
		a, err = (GD{Iterations: 5}).Partition(g, kg)
		if err != nil || a.Validate(g) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLDG20k(b *testing.B) {
	g := twitterish(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (LDG{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGD20k(b *testing.B) {
	g := twitterish(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (GD{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

package partition

import (
	"strings"
	"testing"

	"bpart/internal/gen"
	"bpart/internal/graph"
)

// replayWidths exercises the degenerate single chunk, an even split, an
// uneven split and more chunks than fit cleanly.
var replayWidths = []int{1, 2, 3, 8}

func TestScoreReplayMatchesStream(t *testing.T) {
	g := twitterish(t)
	in := g.Transpose()
	cases := []struct {
		name string
		opt  StreamOptions
	}{
		{"fennel", StreamOptions{K: 8, C: 1, In: in}},
		{"weighted-caps", StreamOptions{
			K: 16, C: 0.5, In: in,
			CapV: int(1.1*float64(g.NumVertices())/16) + 1,
			CapE: int(1.1*float64(g.NumEdges())/16) + 1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Stream(g, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range replayWidths {
				n, err := ScoreReplay(g, tc.opt, res.Parts, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if n != g.NumVertices() {
					t.Fatalf("workers=%d: verified %d placements, want %d", w, n, g.NumVertices())
				}
			}
		})
	}
}

func TestScoreReplaySubsetStream(t *testing.T) {
	g := twitterish(t)
	// A reordered strict subset: pos[] must map stream order, not vertex
	// ID order, and out-of-stream vertices must contribute no affinity.
	var subset []graph.VertexID
	for v := g.NumVertices() - 1; v >= 0; v -= 3 {
		subset = append(subset, graph.VertexID(v))
	}
	opt := StreamOptions{K: 4, C: 0.7, Vertices: subset, In: g.Transpose()}
	res, err := Stream(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range replayWidths {
		n, err := ScoreReplay(g, opt, res.Parts, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if n != len(subset) {
			t.Fatalf("workers=%d: verified %d placements, want %d", w, n, len(subset))
		}
	}
}

func TestScoreReplayDetectsTamperedParts(t *testing.T) {
	g := gen.Ring(1000)
	opt := StreamOptions{K: 4, C: 1}
	res, err := Stream(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	tampered := make([]int, len(res.Parts))
	copy(tampered, res.Parts)
	tampered[500] = (tampered[500] + 1) % 4
	if _, err := ScoreReplay(g, opt, tampered, 2); err == nil {
		t.Fatal("replay accepted a tampered assignment")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("want divergence error, got: %v", err)
	}
	tampered[500] = 99
	if _, err := ScoreReplay(g, opt, tampered, 2); err == nil {
		t.Fatal("replay accepted an out-of-range part")
	}
}

func TestScoreReplayArgValidation(t *testing.T) {
	g := gen.Ring(10)
	opt := StreamOptions{K: 2, C: 1}
	res, err := Stream(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScoreReplay(g, opt, res.Parts, 0); err == nil {
		t.Error("accepted workers=0")
	}
	if _, err := ScoreReplay(g, opt, res.Parts[:5], 1); err == nil {
		t.Error("accepted short parts slice")
	}
	if _, err := ScoreReplay(g, StreamOptions{K: 2, C: 2}, res.Parts, 1); err == nil {
		t.Error("accepted C out of [0,1]")
	}
	// More workers than streamed vertices must clamp, not crash.
	if n, err := ScoreReplay(g, opt, res.Parts, 64); err != nil || n != 10 {
		t.Errorf("workers>ns: got (%d, %v), want (10, nil)", n, err)
	}
}

func TestLDGReplayMatchesPartition(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, &LDG{}, g, 8)
	for _, w := range replayWidths {
		n, err := LDGReplay(g, nil, 0, a.Parts, 8, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if n != g.NumVertices() {
			t.Fatalf("workers=%d: verified %d placements, want %d", w, n, g.NumVertices())
		}
	}
}

func TestLDGReplayDetectsTamperedParts(t *testing.T) {
	g := gen.Ring(600)
	a := mustPartition(t, &LDG{}, g, 3)
	tampered := make([]int, len(a.Parts))
	copy(tampered, a.Parts)
	tampered[300] = (tampered[300] + 1) % 3
	if _, err := LDGReplay(g, nil, 0, tampered, 3, 2); err == nil {
		t.Fatal("replay accepted a tampered assignment")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("want divergence error, got: %v", err)
	}
}

package partition

import (
	"sort"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Stream-order constructors for StreamOptions.Vertices. The order a
// streaming partitioner sees vertices in changes both its balance and its
// cut behaviour substantially (the Ablation-Order experiment quantifies
// this): natural ID order preserves the hub-first, locality-coherent
// structure of social-graph IDs; random order decorrelates hub placement
// (balancing edges in expectation but abandoning ID locality);
// degree-first orders place hubs while parts are empty.

// OrderByID returns 0..n−1 — the natural stream of the paper's Fig 2.
func OrderByID(n int) []graph.VertexID {
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	return order
}

// OrderRandom returns a seeded uniform shuffle.
func OrderRandom(n int, seed uint64) []graph.VertexID {
	order := OrderByID(n)
	rng := xrand.New(seed ^ 0xABCDE5)
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// OrderByDegree returns vertices sorted by out-degree; descending places
// hubs first (BFS-like "high-degree first" streams), ascending last.
func OrderByDegree(g *graph.Graph, ascending bool) []graph.VertexID {
	order := OrderByID(g.NumVertices())
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if ascending {
			return di < dj
		}
		return di > dj
	})
	return order
}

package partition

import (
	"testing"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

func TestSpinnerValidAndEdgeLeaning(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, Spinner{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	// Spinner balances degree mass: the edge dimension must come out
	// far better balanced than Chunk-V's.
	cv := mustPartition(t, ChunkV{}, g, 8)
	rcv := metrics.NewReport(g, cv.Parts, 8, false)
	if r.EdgeBias >= rcv.EdgeBias/2 {
		t.Fatalf("Spinner edge bias %v not well below Chunk-V's %v", r.EdgeBias, rcv.EdgeBias)
	}
	// ... and its cut must beat Hash.
	h := mustPartition(t, Hash{}, g, 8)
	if rc, hc := r.CutRatio, metrics.EdgeCutRatio(g, h.Parts); rc >= hc {
		t.Fatalf("Spinner cut %v not below Hash %v", rc, hc)
	}
}

func TestSpinnerCapacityRespected(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, Spinner{Slack: 0.05}, g, 4)
	in := g.Transpose()
	load := make([]float64, 4)
	var total float64
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.OutDegree(graph.VertexID(v)) + in.OutDegree(graph.VertexID(v)))
		load[a.Parts[v]] += d
		total += d
	}
	cap := 1.05 * total / 4
	for l, ld := range load {
		// Initialization is random and only moves respect capacity, so
		// allow the initial random overshoot margin (~sqrt effects):
		// capacity must hold within a few percent.
		if ld > cap*1.05 {
			t.Fatalf("label %d degree mass %v exceeds capacity %v", l, ld, cap)
		}
	}
}

func TestSpinnerDeterministic(t *testing.T) {
	g := gen.Ring(500)
	a1 := mustPartition(t, Spinner{Seed: 9}, g, 4)
	a2 := mustPartition(t, Spinner{Seed: 9}, g, 4)
	for v := range a1.Parts {
		if a1.Parts[v] != a2.Parts[v] {
			t.Fatal("Spinner not deterministic for fixed seed")
		}
	}
}

func TestSpinnerRegistered(t *testing.T) {
	p, err := Get("Spinner")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Spinner" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestSpinnerArgs(t *testing.T) {
	if _, err := (Spinner{}).Partition(nil, 4); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := (Spinner{}).Partition(gen.Ring(4), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

package partition

import (
	"fmt"
	"math"
	"sync"

	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// This file is the scaling-probe's compute kernel: a parallel re-derivation
// of a finished streaming run's placement decisions.
//
// The streaming loop itself is inherently sequential — every placement
// mutates the part weights the next vertex's score depends on — so the
// embarrassingly-parallel piece is the per-candidate scoring: given the
// state a vertex was scored under, re-deriving its placement is independent
// of every other vertex. ScoreReplay exploits that by splitting the stream
// into contiguous chunks, one per worker; each worker reconstructs the
// exact part-state at its chunk start by replaying the recorded placements
// (three integer adds and one float add per vertex — negligible next to
// scoring, which scans the adjacency and evaluates K candidates), then
// re-scores every vertex of its chunk with the full streaming arithmetic
// and verifies the argmax equals the recorded placement. A divergence is an
// error, so a completed replay is a proof that the parallel scoring is
// bit-identical to the sequential stream — the property ROADMAP item 1's
// real parallelism must preserve, measured here before any partitioner is
// parallelized for real.
//
// Replay does no timing of its own: this package is inside the noclock
// determinism boundary, so the scaling harness (internal/experiments)
// brackets these calls with telemetry.Stopwatch and the resource probe.

// ScoreReplay re-derives every placement of a finished Stream run across
// `workers` goroutines and verifies each against the recorded assignment.
//
// g and opt must be exactly the graph and options of the original Stream
// call (Tracer/Metrics/Audit are ignored), and parts must be the
// StreamResult.Parts it returned. The return value is the number of
// placements re-derived and matched (= the streamed vertex count); any
// divergence — a scored part differing from the recorded one, or a
// recorded part out of range — is an error naming the first offending
// stream position, chunk order, deterministically.
func ScoreReplay(g *graph.Graph, opt StreamOptions, parts []int, workers int) (int, error) {
	if err := checkArgs(g, opt.K); err != nil {
		return 0, err
	}
	if opt.C < 0 || opt.C > 1 {
		return 0, fmt.Errorf("partition: C = %v, want in [0,1]", opt.C)
	}
	if workers < 1 {
		return 0, fmt.Errorf("partition: replay with %d workers, want >= 1", workers)
	}
	if len(parts) != g.NumVertices() {
		return 0, fmt.Errorf("partition: replay: %d recorded parts for %d vertices", len(parts), g.NumVertices())
	}
	if opt.Gamma <= 0 {
		opt.Gamma = 1.5
	}
	if opt.Slack <= 0 {
		opt.Slack = 1.1
	}
	stream := opt.Vertices
	if stream == nil {
		stream = make([]graph.VertexID, g.NumVertices())
		for v := range stream {
			stream[v] = graph.VertexID(v)
		}
	}
	ns := len(stream)
	if ns == 0 {
		return 0, nil
	}
	var ms int
	for _, v := range stream {
		ms += g.OutDegree(v)
	}
	avgDeg := float64(ms) / float64(ns)
	if metrics.IsZero(avgDeg) {
		avgDeg = 1
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = float64(ms) * math.Pow(float64(opt.K), opt.Gamma-1) / math.Pow(float64(ns), opt.Gamma)
		if alpha <= 0 {
			alpha = 1
		}
	}
	capW := opt.Slack * float64(ns) / float64(opt.K)
	if opt.In != nil &&
		(opt.In.NumVertices() != g.NumVertices() || opt.In.NumEdges() != g.NumEdges()) {
		return 0, fmt.Errorf("partition: In graph shape %v does not match %v", opt.In, g)
	}
	// pos[v] is v's stream position, -1 outside the stream set: a neighbor
	// contributed affinity at position i exactly when it was placed at an
	// earlier position.
	pos := make([]int, g.NumVertices())
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range stream {
		pos[v] = i
	}
	if workers > ns {
		workers = ns
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo, hi := wk*ns/workers, (wk+1)*ns/workers
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			counts[wk], errs[wk] = replayStreamChunk(g, &opt, parts, stream, pos, lo, hi, alpha, capW, avgDeg)
		}(wk, lo, hi)
	}
	wg.Wait()
	total := 0
	for wk := range errs {
		if errs[wk] != nil {
			return 0, errs[wk]
		}
		total += counts[wk]
	}
	return total, nil
}

// replayStreamChunk reconstructs the part-state at stream position lo by
// replaying the recorded placements, then re-scores positions [lo, hi)
// with Stream's exact arithmetic and verifies each argmax.
func replayStreamChunk(g *graph.Graph, opt *StreamOptions, parts []int, stream []graph.VertexID, pos []int, lo, hi int, alpha, capW, avgDeg float64) (int, error) {
	vCount := make([]int, opt.K)
	eCount := make([]int, opt.K)
	w := make([]float64, opt.K)
	// Prefix replay: one recorded placement per vertex, accumulated in
	// stream order so the float adds into w happen in the exact sequence
	// the sequential run performed them — bit-identical state.
	for i := 0; i < lo; i++ {
		v := stream[i]
		b := parts[v]
		if b < 0 || b >= opt.K {
			return 0, fmt.Errorf("partition: replay: stream position %d (vertex %d) recorded part %d, want [0,%d)", i, v, b, opt.K)
		}
		d := g.OutDegree(v)
		vCount[b]++
		eCount[b] += d
		w[b] += opt.C + (1-opt.C)*float64(d)/avgDeg
	}
	affinity := make([]int, opt.K)
	gammaPow := powFunc(opt.Gamma - 1)
	for i := lo; i < hi; i++ {
		v := stream[i]
		for j := range affinity {
			affinity[j] = 0
		}
		for _, u := range g.Neighbors(v) {
			if q := pos[u]; q >= 0 && q < i {
				affinity[parts[u]]++
			}
		}
		if opt.In != nil {
			for _, u := range opt.In.Neighbors(v) {
				if q := pos[u]; q >= 0 && q < i {
					affinity[parts[u]]++
				}
			}
		}
		d := g.OutDegree(v)
		best, bestScore := -1, math.Inf(-1)
		for j := 0; j < opt.K; j++ {
			// Same cap gauntlet as Stream, same order.
			if w[j] >= capW {
				continue
			}
			if opt.CapV > 0 && vCount[j]+1 > opt.CapV {
				continue
			}
			if opt.CapE > 0 && eCount[j]+d > opt.CapE {
				continue
			}
			pen := alpha * opt.Gamma * gammaPow(w[j])
			score := float64(affinity[j]) - pen
			if score > bestScore {
				best, bestScore = j, score
			} else if metrics.TieEq(score, bestScore) && best >= 0 && w[j] < w[best] {
				best = j
			}
		}
		if best == -1 {
			best = 0
			for j := 1; j < opt.K; j++ {
				if w[j] < w[best] {
					best = j
				}
			}
		}
		if rec := parts[v]; best != rec {
			return 0, fmt.Errorf("partition: replay diverged at stream position %d (vertex %d): scored part %d, recorded %d", i, v, best, rec)
		}
		vCount[best]++
		eCount[best] += d
		w[best] += opt.C + (1-opt.C)*float64(d)/avgDeg
	}
	return hi - lo, nil
}

// LDGReplay is ScoreReplay's counterpart for the LDG partitioner: it
// re-derives every placement of a finished LDG.Partition run (slack as
// configured there, stream order = vertex ID order) across `workers`
// goroutines and verifies each against the recorded assignment. in must be
// g's transpose (nil builds it, matching LDG.Partition's undirected
// neighborhood); parts must be the returned Assignment.Parts.
func LDGReplay(g *graph.Graph, in *graph.Graph, slack float64, parts []int, k, workers int) (int, error) {
	if err := checkArgs(g, k); err != nil {
		return 0, err
	}
	if workers < 1 {
		return 0, fmt.Errorf("partition: replay with %d workers, want >= 1", workers)
	}
	n := g.NumVertices()
	if len(parts) != n {
		return 0, fmt.Errorf("partition: replay: %d recorded parts for %d vertices", len(parts), n)
	}
	if slack <= 0 {
		slack = 1.1
	}
	capacity := slack * float64(n) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	if in == nil {
		in = g.Transpose()
	}
	if in.NumVertices() != n || in.NumEdges() != g.NumEdges() {
		return 0, fmt.Errorf("partition: In graph shape %v does not match %v", in, g)
	}
	if workers > n {
		workers = n
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo, hi := wk*n/workers, (wk+1)*n/workers
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			counts[wk], errs[wk] = replayLDGChunk(g, in, parts, lo, hi, k, capacity)
		}(wk, lo, hi)
	}
	wg.Wait()
	total := 0
	for wk := range errs {
		if errs[wk] != nil {
			return 0, errs[wk]
		}
		total += counts[wk]
	}
	return total, nil
}

func replayLDGChunk(g, in *graph.Graph, parts []int, lo, hi, k int, capacity float64) (int, error) {
	size := make([]int, k)
	for v := 0; v < lo; v++ {
		b := parts[v]
		if b < 0 || b >= k {
			return 0, fmt.Errorf("partition: replay: vertex %d recorded part %d, want [0,%d)", v, b, k)
		}
		size[b]++
	}
	affinity := make([]int, k)
	for v := lo; v < hi; v++ {
		for j := range affinity {
			affinity[j] = 0
		}
		count := func(ns []graph.VertexID) {
			for _, u := range ns {
				if int(u) < v {
					affinity[parts[u]]++
				}
			}
		}
		count(g.Neighbors(graph.VertexID(v)))
		count(in.Neighbors(graph.VertexID(v)))
		best, bestScore := -1, -1.0
		for j := 0; j < k; j++ {
			if float64(size[j]) >= capacity {
				continue
			}
			score := float64(affinity[j]) * (1 - float64(size[j])/capacity)
			if score > bestScore {
				best, bestScore = j, score
			} else if metrics.TieEq(score, bestScore) && best >= 0 && size[j] < size[best] {
				best, bestScore = j, score
			}
		}
		if best == -1 {
			best = 0
			for j := 1; j < k; j++ {
				if size[j] < size[best] {
					best = j
				}
			}
		}
		if rec := parts[v]; best != rec {
			return 0, fmt.Errorf("partition: replay diverged at vertex %d: scored part %d, recorded %d", v, best, rec)
		}
		size[best]++
	}
	return hi - lo, nil
}

package partition

import (
	"math"
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

func twitterish(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 20000, AvgDegree: 16, Skew: 0.78, Locality: 0.45, Window: 512, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustPartition(t testing.TB, p Partitioner, g *graph.Graph, k int) *Assignment {
	t.Helper()
	a, err := p.Partition(g, k)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatalf("%s: invalid assignment: %v", p.Name(), err)
	}
	return a
}

func TestArgValidation(t *testing.T) {
	g := gen.Ring(4)
	for _, p := range []Partitioner{ChunkV{}, ChunkE{}, Hash{}, Fennel{}} {
		if _, err := p.Partition(g, 0); err == nil {
			t.Errorf("%s accepted k=0", p.Name())
		}
		if _, err := p.Partition(nil, 2); err == nil {
			t.Errorf("%s accepted nil graph", p.Name())
		}
	}
}

func TestChunkVBalancesVertices(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, ChunkV{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	if r.VertexBias > 0.01 {
		t.Fatalf("Chunk-V vertex bias %v, want ≈0", r.VertexBias)
	}
	// On a scale-free, ID-correlated graph the edge dimension must be
	// badly skewed — this is the paper's Fig 6a.
	if r.EdgeBias < 1.0 {
		t.Fatalf("Chunk-V edge bias %v, want ≫ 0 on hub-ordered graph", r.EdgeBias)
	}
	// Contiguity: parts must be intervals of the ID space.
	for v := 1; v < g.NumVertices(); v++ {
		if a.Parts[v] < a.Parts[v-1] {
			t.Fatalf("Chunk-V parts not monotone at %d", v)
		}
	}
}

func TestChunkEBalancesEdges(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, ChunkE{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	// Edge balance is near-perfect up to one vertex's degree granularity.
	if r.EdgeBias > 0.15 {
		t.Fatalf("Chunk-E edge bias %v, want small", r.EdgeBias)
	}
	// Vertex dimension must be skewed (Fig 6b).
	if r.VertexBias < 1.0 {
		t.Fatalf("Chunk-E vertex bias %v, want ≫ 0", r.VertexBias)
	}
}

func TestChunkERegularGraph(t *testing.T) {
	// On a regular graph Chunk-E and Chunk-V coincide.
	g := gen.Ring(100)
	a := mustPartition(t, ChunkE{}, g, 4)
	vs, es := graph.PartSizes(g, a.Parts, 4)
	for i := 0; i < 4; i++ {
		if vs[i] != 25 || es[i] != 25 {
			t.Fatalf("ring chunking uneven: V=%v E=%v", vs, es)
		}
	}
}

func TestHashBalancedBothDimensions(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, Hash{}, g, 8)
	r := metrics.NewReport(g, a.Parts, 8, false)
	if r.VertexBias > 0.05 {
		t.Fatalf("Hash vertex bias %v", r.VertexBias)
	}
	if r.EdgeBias > 0.25 {
		t.Fatalf("Hash edge bias %v", r.EdgeBias)
	}
	// ... but the cut must be ≈ (k−1)/k = 0.875 (Table 3).
	if math.Abs(r.CutRatio-0.875) > 0.02 {
		t.Fatalf("Hash cut ratio %v, want ≈0.875", r.CutRatio)
	}
}

func TestHashSeedChangesAssignment(t *testing.T) {
	g := gen.Ring(1000)
	a1 := mustPartition(t, Hash{Seed: 1}, g, 4)
	a2 := mustPartition(t, Hash{Seed: 2}, g, 4)
	same := 0
	for v := range a1.Parts {
		if a1.Parts[v] == a2.Parts[v] {
			same++
		}
	}
	if same > 400 { // expectation 250 for k=4
		t.Fatalf("different seeds agree on %d/1000 vertices", same)
	}
}

func TestFennelBalancesVerticesCutsFewerEdges(t *testing.T) {
	g := twitterish(t)
	fennel := mustPartition(t, Fennel{}, g, 8)
	hash := mustPartition(t, Hash{}, g, 8)
	rf := metrics.NewReport(g, fennel.Parts, 8, false)
	rh := metrics.NewReport(g, hash.Parts, 8, false)
	if rf.VertexBias > 0.11 {
		t.Fatalf("Fennel vertex bias %v exceeds slack", rf.VertexBias)
	}
	if rf.CutRatio >= rh.CutRatio {
		t.Fatalf("Fennel cut %v not below Hash cut %v", rf.CutRatio, rh.CutRatio)
	}
}

func TestFennelSlackIsHardCap(t *testing.T) {
	g := twitterish(t)
	a := mustPartition(t, Fennel{Slack: 1.05}, g, 4)
	vs, _ := graph.PartSizes(g, a.Parts, 4)
	cap := 1.05 * float64(g.NumVertices()) / 4
	for i, v := range vs {
		// +1: the cap is checked before assignment, so a part may
		// exceed it by at most one vertex.
		if float64(v) > cap+1 {
			t.Fatalf("part %d has %d vertices, cap %v", i, v, cap)
		}
	}
}

func TestStreamSubset(t *testing.T) {
	g := gen.Ring(10)
	subset := []graph.VertexID{0, 1, 2, 3}
	res, err := Stream(g, StreamOptions{K: 2, C: 0.5, Vertices: subset})
	if err != nil {
		t.Fatal(err)
	}
	for v := 4; v < 10; v++ {
		if res.Parts[v] != Unassigned {
			t.Fatalf("vertex %d outside subset got part %d", v, res.Parts[v])
		}
	}
	assigned := 0
	for _, v := range subset {
		if res.Parts[v] == Unassigned {
			t.Fatalf("subset vertex %d unassigned", v)
		}
		assigned++
	}
	if got := res.VertexCount[0] + res.VertexCount[1]; got != assigned {
		t.Fatalf("vertex counts %v sum to %d, want %d", res.VertexCount, got, assigned)
	}
}

func TestStreamEmptySubset(t *testing.T) {
	g := gen.Ring(5)
	res, err := Stream(g, StreamOptions{K: 3, C: 0.5, Vertices: []graph.VertexID{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Parts {
		if p != Unassigned {
			t.Fatal("empty stream assigned a vertex")
		}
	}
}

func TestStreamBadOptions(t *testing.T) {
	g := gen.Ring(5)
	if _, err := Stream(g, StreamOptions{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Stream(g, StreamOptions{K: 2, C: 1.5}); err == nil {
		t.Fatal("C out of range accepted")
	}
	if _, err := Stream(g, StreamOptions{K: 2, C: -0.5}); err == nil {
		t.Fatal("negative C accepted")
	}
}

func TestStreamEdgelessGraph(t *testing.T) {
	g := graph.FromAdjacency([][]graph.VertexID{{}, {}, {}, {}})
	res, err := Stream(g, StreamOptions{K: 2, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.VertexCount[0]+res.VertexCount[1] != 4 {
		t.Fatalf("vertex counts %v", res.VertexCount)
	}
	// With no affinity signal the penalty must still spread vertices.
	if res.VertexCount[0] == 0 || res.VertexCount[1] == 0 {
		t.Fatalf("edgeless spread failed: %v", res.VertexCount)
	}
}

func TestStreamCWeightsShiftBalance(t *testing.T) {
	g := twitterish(t)
	// C=0: pure edge-balance indicator — edge bias should be small.
	e, err := Stream(g, StreamOptions{K: 8, C: 0})
	if err != nil {
		t.Fatal(err)
	}
	// C=1: pure vertex balance — vertex bias small.
	v, err := Stream(g, StreamOptions{K: 8, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eb := metrics.Bias(e.EdgeCount); eb > 0.25 {
		t.Fatalf("C=0 edge bias %v, want small", eb)
	}
	if vb := metrics.Bias(v.VertexCount); vb > 0.11 {
		t.Fatalf("C=1 vertex bias %v, want small", vb)
	}
}

func TestStreamCountsMatchPartSizes(t *testing.T) {
	g := twitterish(t)
	res, err := Stream(g, StreamOptions{K: 6, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	vs, es := graph.PartSizes(g, res.Parts, 6)
	for i := 0; i < 6; i++ {
		if vs[i] != res.VertexCount[i] || es[i] != res.EdgeCount[i] {
			t.Fatalf("part %d: stream counts (%d,%d) vs recomputed (%d,%d)",
				i, res.VertexCount[i], res.EdgeCount[i], vs[i], es[i])
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"Chunk-V", "Chunk-E", "Hash", "Fennel"} {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	names := Names()
	if len(names) < 4 {
		t.Fatalf("Names() = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("Chunk-V", func() Partitioner { return ChunkV{} })
}

func TestPowFunc(t *testing.T) {
	for _, e := range []float64{0, 0.5, 1, 1.7} {
		f := powFunc(e)
		for _, x := range []float64{0, 1, 2.5, 100} {
			if got, want := f(x), math.Pow(x, e); math.Abs(got-want) > 1e-9 {
				t.Fatalf("powFunc(%v)(%v) = %v, want %v", e, x, got, want)
			}
		}
	}
}

// Property: every scheme yields a complete valid assignment on arbitrary
// graphs, and every part index stays in range even for k > n.
func TestQuickAllSchemesValid(t *testing.T) {
	schemes := []Partitioner{ChunkV{}, ChunkE{}, Hash{}, Fennel{}}
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%150) + 2
		k := int(rawK)%12 + 1
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 4, Skew: 0.7, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range schemes {
			a, err := p.Partition(g, k)
			if err != nil {
				return false
			}
			if a.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chunk-V vertex counts never differ by more than 1.
func TestQuickChunkVPerfectBalance(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%500) + 1
		k := int(rawK)%16 + 1
		g := gen.Ring(n)
		a, err := ChunkV{}.Partition(g, k)
		if err != nil {
			return false
		}
		vs, _ := graph.PartSizes(g, a.Parts, k)
		minV, maxV := n, 0
		for _, v := range vs {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		return maxV-minV <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFennel20k(b *testing.B) {
	g := twitterish(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Fennel{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHash20k(b *testing.B) {
	g := twitterish(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Hash{}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

package partition

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scheme names to constructors so that the CLI, the
// experiment harness and the examples can select partitioners by the names
// the paper uses. internal/core registers "BPart" and internal/multilevel
// registers "Multilevel" via init, keeping this package free of upward
// dependencies.

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Partitioner{}
)

// Register makes a scheme available under its name. It panics on duplicate
// registration — that is always a programming error.
func Register(name string, factory func() Partitioner) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("partition: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// Get returns a fresh instance of the named scheme.
func Get(name string) (Partitioner, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("partition: unknown scheme %q (have %v)", name, Names())
	}
	return factory(), nil
}

// Names returns all registered scheme names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("Chunk-V", func() Partitioner { return ChunkV{} })
	Register("Chunk-E", func() Partitioner { return ChunkE{} })
	Register("Hash", func() Partitioner { return Hash{} })
	// Fennel is registered as a pointer so an Auditor can be attached
	// after construction (partaudit.Auditable).
	Register("Fennel", func() Partitioner { return &Fennel{} })
}

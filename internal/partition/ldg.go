package partition

import (
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partaudit"
)

// LDG is the Linear Deterministic Greedy streaming partitioner of Stanton
// and Kliot (KDD'12), the earliest widely used streaming heuristic and a
// common baseline in the streaming-partitioning literature the paper
// surveys (§5). Each vertex goes to the part maximizing
//
//	|V_i ∩ N(v)| · (1 − |V_i|/capacity),
//
// i.e. neighbor affinity with a linear occupancy discount; ties fall to
// the lightest part. Like Fennel it balances only the vertex dimension.
type LDG struct {
	// Slack ν sets the per-part capacity ν·n/k; <= 0 selects 1.1.
	Slack float64

	aud *partaudit.Auditor
}

// Name implements Partitioner.
func (LDG) Name() string { return "LDG" }

// SetAudit implements partaudit.Auditable; nil detaches.
func (l *LDG) SetAudit(a *partaudit.Auditor) { l.aud = a }

// Partition implements Partitioner.
func (l LDG) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	slack := l.Slack
	if slack <= 0 {
		slack = 1.1
	}
	n := g.NumVertices()
	capacity := slack * float64(n) / float64(k)
	if capacity < 1 {
		capacity = 1
	}
	in := g.Transpose()
	l.aud.Begin("LDG", g, k)
	rec := l.aud.Stream(0, g, in, k)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = Unassigned
	}
	size := make([]int, k)
	affinity := make([]int, k)
	for v := 0; v < n; v++ {
		for i := range affinity {
			affinity[i] = 0
		}
		count := func(ns []graph.VertexID) {
			for _, u := range ns {
				if p := parts[u]; p != Unassigned {
					affinity[p]++
				}
			}
		}
		count(g.Neighbors(graph.VertexID(v)))
		count(in.Neighbors(graph.VertexID(v)))
		d := g.OutDegree(graph.VertexID(v))
		dec := rec.SampleDecision(graph.VertexID(v), d)
		cause := partaudit.CauseGreedy
		best, bestScore := -1, -1.0
		for i := 0; i < k; i++ {
			// LDG's multiplicative score decomposes additively as
			// aff·(1−size/cap) = aff − aff·size/cap, so the audit's
			// affinity/penalty split stays meaningful.
			if float64(size[i]) >= capacity {
				pen := float64(affinity[i]) * float64(size[i]) / capacity
				dec.Candidate(i, affinity[i], pen, float64(affinity[i])-pen, partaudit.SkipCapV)
				continue
			}
			score := float64(affinity[i]) * (1 - float64(size[i])/capacity)
			dec.Candidate(i, affinity[i], float64(affinity[i])*float64(size[i])/capacity, score, "")
			if score > bestScore {
				best, bestScore = i, score
				cause = partaudit.CauseGreedy
			} else if metrics.TieEq(score, bestScore) && best >= 0 && size[i] < size[best] {
				best, bestScore = i, score
				cause = partaudit.CauseTieBreak
			}
		}
		if best == -1 {
			cause = partaudit.CauseFallback
			best = 0
			for i := 1; i < k; i++ {
				if size[i] < size[best] {
					best = i
				}
			}
		}
		parts[v] = best
		size[best]++
		rec.Place(graph.VertexID(v), d, best, cause, dec, parts)
	}
	rec.End()
	auditFinal(l.aud, g, parts, k)
	return &Assignment{Parts: parts, K: k}, nil
}

func init() {
	// Registered as a pointer so an Auditor can be attached after
	// construction (partaudit.Auditable).
	Register("LDG", func() Partitioner { return &LDG{} })
}

// Package partition implements the streaming graph partitioners the paper
// compares against (§2.2): Chunk-V, Chunk-E, Hash and Fennel, plus the
// generic weighted streaming engine that both Fennel and BPart's
// partitioning phase (internal/core) are built on.
//
// A partitioning is an edge-cut style vertex assignment: every vertex goes
// to exactly one part, a part owns all out-edges of its vertices
// (|E_i| = Σ_{v∈V_i} outdeg v), and an arc whose endpoints live in
// different parts is a cut edge that costs network traffic at run time.
package partition

import (
	"fmt"

	"bpart/internal/graph"
)

// Unassigned marks a vertex that no part owns (only possible in partial
// streaming results used internally by BPart's combining phase).
const Unassigned = -1

// Assignment maps every vertex to a part in [0, K).
type Assignment struct {
	Parts []int
	K     int
}

// Validate checks that the assignment covers every vertex of g with a part
// in range.
func (a *Assignment) Validate(g *graph.Graph) error {
	if len(a.Parts) != g.NumVertices() {
		return fmt.Errorf("partition: %d entries for %d vertices", len(a.Parts), g.NumVertices())
	}
	if a.K <= 0 {
		return fmt.Errorf("partition: K = %d, want > 0", a.K)
	}
	for v, p := range a.Parts {
		if p < 0 || p >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to part %d, want [0,%d)", v, p, a.K)
		}
	}
	return nil
}

// Partitioner is a graph partitioning scheme.
type Partitioner interface {
	// Name returns the scheme's name as used in the paper ("Chunk-V",
	// "Fennel", "BPart", ...).
	Name() string
	// Partition splits g into k parts.
	Partition(g *graph.Graph, k int) (*Assignment, error)
}

func checkArgs(g *graph.Graph, k int) error {
	if g == nil {
		return fmt.Errorf("partition: nil graph")
	}
	if k <= 0 {
		return fmt.Errorf("partition: k = %d, want > 0", k)
	}
	return nil
}

// ChunkV chunks the vertex stream: contiguous vertex-ID ranges of (nearly)
// equal vertex count, as used by Gemini and GridGraph. Vertices are
// balanced; on scale-free graphs with ID/degree correlation the edge counts
// are heavily skewed (§2.3, Fig 6a).
type ChunkV struct{}

// Name implements Partitioner.
func (ChunkV) Name() string { return "Chunk-V" }

// Partition implements Partitioner.
func (ChunkV) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	parts := make([]int, n)
	for v := 0; v < n; v++ {
		p := v * k / max(n, 1)
		if p >= k {
			p = k - 1
		}
		parts[v] = p
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// ChunkE chunks the edge stream: contiguous vertex-ID ranges of (nearly)
// equal out-edge count, as used by KnightKing and GraphChi. Edges are
// balanced; vertex counts are heavily skewed (§2.3, Fig 6b).
type ChunkE struct{}

// Name implements Partitioner.
func (ChunkE) Name() string { return "Chunk-E" }

// Partition implements Partitioner.
func (ChunkE) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	m := g.NumEdges()
	parts := make([]int, n)
	target := float64(m) / float64(k)
	part, acc := 0, 0
	for v := 0; v < n; v++ {
		// Close the current chunk once it has reached its share; the
		// final part takes whatever remains.
		if part < k-1 && float64(acc) >= target*float64(part+1) {
			part++
		}
		parts[v] = part
		acc += g.OutDegree(graph.VertexID(v))
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// Hash assigns each vertex pseudo-randomly (Giraph/Pregel style). Both
// dimensions are balanced in expectation, but ~(k−1)/k of all edges are cut
// (§2.3 Limitation #2, Table 3).
type Hash struct {
	// Seed varies the hash function; the zero value is a valid scheme.
	Seed uint64
}

// Name implements Partitioner.
func (Hash) Name() string { return "Hash" }

// Partition implements Partitioner.
func (h Hash) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	parts := make([]int, n)
	for v := 0; v < n; v++ {
		parts[v] = int(mix64(uint64(v)+h.Seed*0x9E3779B97F4A7C15) % uint64(k))
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// mix64 is the splitmix64 finalizer, a high-quality integer hash.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

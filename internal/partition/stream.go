package partition

import (
	"fmt"
	"math"

	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partaudit"
	"bpart/internal/telemetry"
)

// StreamOptions configures the weighted greedy streaming engine shared by
// Fennel (C=1) and BPart's partitioning phase (C=½ by default).
//
// Every streamed vertex v is scored against each part i as
//
//	S(v, G_i) = |V_i ∩ N(v)| − α·γ·W_i^{γ−1},
//
// where W_i = C·|V_i| + (1−C)·|E_i|/d̄ is the paper's weighted balance
// indicator (Eq. 1/2). C=1 recovers Fennel's vertex-count penalty; C=0 is a
// pure edge-balance penalty.
type StreamOptions struct {
	// K is the number of parts.
	K int
	// C is the weighting factor c ∈ [0,1] of Eq. 1.
	C float64
	// Alpha is Fennel's α; <= 0 selects the standard
	// α = m·k^{γ−1}/n^γ computed over the streamed vertex set.
	Alpha float64
	// Gamma is Fennel's γ; <= 0 selects the standard 1.5.
	Gamma float64
	// Slack ν bounds each part: W_i may not exceed ν·n_s/k (n_s = number
	// of streamed vertices, which equals Σ W_i at completion). <= 0
	// selects 1.1.
	Slack float64
	// Vertices restricts the stream to a subset, in the given order.
	// nil streams every vertex in ID order.
	Vertices []graph.VertexID
	// CapV and CapE, when positive, are hard per-part ceilings on |V_i|
	// and |E_i|. BPart's partitioning phase uses them to stop any single
	// piece from exceeding its share of either dimension — without the
	// edge ceiling, hub vertices (which the affinity term naturally
	// clusters) can push one piece past the final per-part edge target,
	// which no amount of combining can repair.
	CapV, CapE int
	// In, when non-nil, must be the transpose of the streamed graph; the
	// affinity term then counts in-neighbors as well, matching Fennel's
	// undirected N(v). Without it only out-neighbors count, which halves
	// the clustering signal on directed graphs.
	In *graph.Graph
	// Tracer, when non-nil, receives one "partition.stream" span per call
	// carrying the StreamStats. Per-vertex work stays uninstrumented;
	// stats accumulate in locals and publish once at the end.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, accumulates the StreamStats into
	// stream_*_total counters across calls.
	Metrics *telemetry.Registry
	// Audit, when non-nil, receives sampled per-placement decision
	// records (full score decomposition) and windowed quality snapshots
	// for this stream. The audited run's assignment is byte-identical to
	// an unaudited one: auditing only observes scores, never alters them.
	Audit *partaudit.StreamRecorder
	// Probe, when non-nil, observes one "partition.stream" resource phase
	// per call: wall-clock self-time and runtime alloc/GC deltas over the
	// scoring loop. Like Audit, it is pure observation — the probed run's
	// assignment is byte-identical — and the disabled path costs one nil
	// check per stream, not per vertex.
	Probe telemetry.PhaseProbe
}

// StreamStats counts what the streaming loop did — the introspection knobs
// for tuning caps and slack: how often each capacity dimension rejected the
// greedy choice, how often ties were broken by load, and how often every
// part was full and the lightest-part fallback fired.
type StreamStats struct {
	// Placed is the number of vertices assigned (= len of the stream set).
	Placed int64
	// CapWSkips counts part candidacies rejected by the W_i slack cap.
	CapWSkips int64
	// CapVSkips counts part candidacies rejected by the hard |V_i| cap.
	CapVSkips int64
	// CapESkips counts part candidacies rejected by the hard |E_i| cap.
	CapESkips int64
	// TieBreaks counts score ties resolved by picking the lighter part.
	TieBreaks int64
	// Fallbacks counts vertices placed by the all-parts-full fallback.
	Fallbacks int64
}

// publish pushes the stats to registry counters and, when a span was
// opened for this stream, closes it with the stats as attributes.
func (s *StreamStats) publish(opt *StreamOptions, sp telemetry.Span) {
	if reg := opt.Metrics; reg != nil {
		reg.Counter("stream_placed_total").Add(s.Placed)
		reg.Counter("stream_capw_skips_total").Add(s.CapWSkips)
		reg.Counter("stream_capv_skips_total").Add(s.CapVSkips)
		reg.Counter("stream_cape_skips_total").Add(s.CapESkips)
		reg.Counter("stream_tie_breaks_total").Add(s.TieBreaks)
		reg.Counter("stream_fallbacks_total").Add(s.Fallbacks)
	}
	if sp != nil {
		sp.End(
			telemetry.Int64("placed", s.Placed),
			telemetry.Int64("capw_skips", s.CapWSkips),
			telemetry.Int64("capv_skips", s.CapVSkips),
			telemetry.Int64("cape_skips", s.CapESkips),
			telemetry.Int64("tie_breaks", s.TieBreaks),
			telemetry.Int64("fallbacks", s.Fallbacks),
		)
	}
}

// StreamResult is a partial assignment: Parts[v] is Unassigned for vertices
// outside the streamed set.
type StreamResult struct {
	Parts []int
	K     int
	// VertexCount and EdgeCount are the per-part |V_i| and |E_i|
	// (out-degree mass) over the streamed set.
	VertexCount []int
	EdgeCount   []int
	// Stats counts cap hits, tie-breaks and fallbacks during the stream.
	Stats StreamStats
}

// Stream runs the weighted greedy streaming partitioner over g.
func Stream(g *graph.Graph, opt StreamOptions) (*StreamResult, error) {
	if err := checkArgs(g, opt.K); err != nil {
		return nil, err
	}
	if opt.C < 0 || opt.C > 1 {
		return nil, fmt.Errorf("partition: C = %v, want in [0,1]", opt.C)
	}
	if opt.Gamma <= 0 {
		opt.Gamma = 1.5
	}
	if opt.Slack <= 0 {
		opt.Slack = 1.1
	}
	stream := opt.Vertices
	if stream == nil {
		stream = make([]graph.VertexID, g.NumVertices())
		for v := range stream {
			stream[v] = graph.VertexID(v)
		}
	}
	ns := len(stream)
	if ns == 0 {
		return &StreamResult{
			Parts:       fillUnassigned(g.NumVertices()),
			K:           opt.K,
			VertexCount: make([]int, opt.K),
			EdgeCount:   make([]int, opt.K),
		}, nil
	}
	var ms int
	for _, v := range stream {
		ms += g.OutDegree(v)
	}
	avgDeg := float64(ms) / float64(ns)
	if metrics.IsZero(avgDeg) {
		avgDeg = 1 // edgeless stream set: W_i degenerates to C·|V_i|+(1−C)·0
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = float64(ms) * math.Pow(float64(opt.K), opt.Gamma-1) / math.Pow(float64(ns), opt.Gamma)
		if alpha <= 0 {
			// Edgeless set: any positive constant makes the penalty
			// strictly increasing in W and spreads vertices evenly.
			alpha = 1
		}
	}
	// ΣW_i = C·n_s + (1−C)·m_s/d̄ = n_s, so the per-part cap is in
	// "vertex equivalents" regardless of C.
	capW := opt.Slack * float64(ns) / float64(opt.K)

	parts := fillUnassigned(g.NumVertices())
	vCount := make([]int, opt.K)
	eCount := make([]int, opt.K)
	w := make([]float64, opt.K)    // current W_i
	affinity := make([]int, opt.K) // |V_i ∩ N(v)| scratch
	gammaPow := powFunc(opt.Gamma - 1)

	if opt.In != nil &&
		(opt.In.NumVertices() != g.NumVertices() || opt.In.NumEdges() != g.NumEdges()) {
		return nil, fmt.Errorf("partition: In graph shape %v does not match %v", opt.In, g)
	}
	// Stats accumulate in plain locals — the inner loop pays a handful of
	// integer increments whether or not telemetry is attached — and are
	// published once per stream.
	var capWSkips, capVSkips, capESkips, tieBreaks, fallbacks int64
	var sp telemetry.Span
	if opt.Tracer != nil && opt.Tracer.Enabled() {
		sp = opt.Tracer.Span("partition.stream",
			telemetry.Int("k", opt.K),
			telemetry.Int("streamed", ns),
			telemetry.Int("edges", ms))
	}
	var pe telemetry.PhaseEnd
	if opt.Probe != nil {
		pe = opt.Probe.BeginPhase("partition.stream",
			telemetry.Int("k", opt.K),
			telemetry.Int("streamed", ns))
	}
	for _, v := range stream {
		for i := range affinity {
			affinity[i] = 0
		}
		for _, u := range g.Neighbors(v) {
			if p := parts[u]; p != Unassigned {
				affinity[p]++
			}
		}
		if opt.In != nil {
			for _, u := range opt.In.Neighbors(v) {
				if p := parts[u]; p != Unassigned {
					affinity[p]++
				}
			}
		}
		d := g.OutDegree(v)
		dec := opt.Audit.SampleDecision(v, d)
		cause := partaudit.CauseGreedy
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < opt.K; i++ {
			skip := ""
			switch {
			case w[i] >= capW:
				capWSkips++
				skip = partaudit.SkipCapW
			case opt.CapV > 0 && vCount[i]+1 > opt.CapV:
				capVSkips++
				skip = partaudit.SkipCapV
			case opt.CapE > 0 && eCount[i]+d > opt.CapE:
				capESkips++
				skip = partaudit.SkipCapE
			}
			if skip != "" {
				if dec != nil {
					pen := alpha * opt.Gamma * gammaPow(w[i])
					dec.Candidate(i, affinity[i], pen, float64(affinity[i])-pen, skip)
				}
				continue
			}
			pen := alpha * opt.Gamma * gammaPow(w[i])
			score := float64(affinity[i]) - pen
			if dec != nil {
				dec.Candidate(i, affinity[i], pen, score, "")
			}
			if score > bestScore {
				best, bestScore = i, score
				cause = partaudit.CauseGreedy
			} else if metrics.TieEq(score, bestScore) && best >= 0 && w[i] < w[best] {
				best = i
				tieBreaks++
				cause = partaudit.CauseTieBreak
			}
		}
		if best == -1 {
			// All parts at capacity (possible only through rounding):
			// fall back to the lightest part.
			fallbacks++
			cause = partaudit.CauseFallback
			best = 0
			for i := 1; i < opt.K; i++ {
				if w[i] < w[best] {
					best = i
				}
			}
		}
		parts[v] = best
		vCount[best]++
		eCount[best] += d
		w[best] += opt.C + (1-opt.C)*float64(d)/avgDeg
		opt.Audit.Place(v, d, best, cause, dec, parts)
	}
	opt.Audit.End()
	if pe != nil {
		pe.EndPhase(telemetry.Int("placed", ns))
	}
	stats := StreamStats{
		Placed:    int64(ns),
		CapWSkips: capWSkips,
		CapVSkips: capVSkips,
		CapESkips: capESkips,
		TieBreaks: tieBreaks,
		Fallbacks: fallbacks,
	}
	stats.publish(&opt, sp)
	return &StreamResult{Parts: parts, K: opt.K, VertexCount: vCount, EdgeCount: eCount, Stats: stats}, nil
}

func fillUnassigned(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = Unassigned
	}
	return p
}

// powFunc returns a fast x^e evaluator for the common streaming exponents:
// γ−1 = 0.5 (the default) uses math.Sqrt, e = 1 is the identity, everything
// else falls back to math.Pow. The streaming inner loop evaluates this K
// times per vertex, so this matters for large piece counts.
func powFunc(e float64) func(float64) float64 {
	switch e {
	case 0.5:
		return math.Sqrt
	case 1:
		return func(x float64) float64 { return x }
	case 0:
		return func(float64) float64 { return 1 }
	default:
		return func(x float64) float64 { return math.Pow(x, e) }
	}
}

// Fennel is the streaming partitioner of Tsourakakis et al. (WSDM'14) with
// the standard parameters γ=1.5, α=m·k^{γ−1}/n^γ and slack ν=1.1. It
// balances vertex counts and greedily reduces edge cuts; edge counts remain
// skewed on scale-free graphs (§2.3). Vertices are streamed in natural ID
// order, exactly as the BPart paper's Fig 2(c) depicts ("scan all
// vertices") — a randomized order would incidentally balance edge counts
// on the synthetic datasets and erase the one-dimensionality the paper
// measures.
type Fennel struct {
	// Alpha, Gamma and Slack override the standard parameters when > 0.
	Alpha, Gamma, Slack float64

	aud *partaudit.Auditor
}

// Name implements Partitioner.
func (Fennel) Name() string { return "Fennel" }

// SetAudit implements partaudit.Auditable: the auditor receives sampled
// decision records and the windowed quality timeline of the next
// Partition call. Audit attachment requires a pointer instance (the
// registry hands those out); nil detaches.
func (f *Fennel) SetAudit(a *partaudit.Auditor) { f.aud = a }

// Partition implements Partitioner. Like the original Fennel, the
// neighborhood N(v) is undirected: the transpose is built once so in-edges
// contribute to affinity.
func (f Fennel) Partition(g *graph.Graph, k int) (*Assignment, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	in := g.Transpose()
	f.aud.Begin("Fennel", g, k)
	res, err := Stream(g, StreamOptions{
		K:     k,
		C:     1, // vertex-only balance indicator: classic Fennel
		Alpha: f.Alpha,
		Gamma: f.Gamma,
		Slack: f.Slack,
		In:    in,
		Audit: f.aud.Stream(0, g, in, k),
	})
	if err != nil {
		return nil, err
	}
	auditFinal(f.aud, g, res.Parts, k)
	return &Assignment{Parts: res.Parts, K: k}, nil
}

// auditFinal emits the audit log's closing record: the finished
// assignment's quality report, computed exactly as Evaluate computes it —
// which is what makes the timeline's final numbers and the Report equal
// by construction.
func auditFinal(a *partaudit.Auditor, g *graph.Graph, parts []int, k int) {
	if a == nil {
		return
	}
	rep := metrics.NewReport(g, parts, k, false)
	a.Final(partaudit.Final{
		K: k, V: rep.Vertices, E: rep.Edges,
		VBias: rep.VertexBias, EBias: rep.EdgeBias, CutRatio: rep.CutRatio,
	})
}

package partition

import (
	"testing"

	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// Stream must count placements, cap rejections and fallbacks, publish them
// to the registry, and emit one partition.stream span per call.
func TestStreamStats(t *testing.T) {
	g := twitterish(t)
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	res, err := Stream(g, StreamOptions{
		K:       8,
		C:       0.5,
		Tracer:  tr,
		Metrics: reg,
		In:      g.Transpose(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Placed; got != int64(g.NumVertices()) {
		t.Fatalf("Placed = %d, want %d", got, g.NumVertices())
	}
	spans := tr.Find("partition.stream")
	if len(spans) != 1 {
		t.Fatalf("got %d partition.stream spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Span || sp.Dur < 0 {
		t.Fatalf("stream record is not a closed span: %+v", sp)
	}
	if got := sp.Attr("placed"); got != int64(g.NumVertices()) {
		t.Fatalf("span placed = %v, want %d", got, g.NumVertices())
	}
	if got := sp.Attr("k"); got != int64(8) {
		t.Fatalf("span k = %v", got)
	}
	if got := reg.Counter("stream_placed_total").Value(); got != int64(g.NumVertices()) {
		t.Fatalf("stream_placed_total = %d, want %d", got, g.NumVertices())
	}
}

// Tight hard caps must register as per-dimension cap hits, and a stream
// where every part fills up must count lightest-part fallbacks.
func TestStreamStatsCapHits(t *testing.T) {
	// A 6-vertex path streamed into 2 parts with CapV 2: parts fill and
	// the fallback must fire for the last vertices.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {3}, {4}, {5}, {}})
	res, err := Stream(g, StreamOptions{K: 2, C: 1, CapV: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CapVSkips == 0 {
		t.Fatalf("CapVSkips = 0 with CapV=2 over 6 vertices; stats %+v", res.Stats)
	}
	if res.Stats.Fallbacks == 0 {
		t.Fatalf("Fallbacks = 0 though only 4 of 6 vertices fit the caps; stats %+v", res.Stats)
	}

	// An edge cap of one edge per part forces CapE rejections.
	res, err = Stream(g, StreamOptions{K: 4, C: 0.5, CapE: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CapESkips == 0 {
		t.Fatalf("CapESkips = 0 with CapE=1; stats %+v", res.Stats)
	}
}

// Without telemetry options the stream must not record anything — and the
// stats still come back on the result for callers that want them.
func TestStreamStatsWithoutTelemetry(t *testing.T) {
	g := twitterish(t)
	res, err := Stream(g, StreamOptions{K: 4, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Placed != int64(g.NumVertices()) {
		t.Fatalf("Placed = %d without telemetry", res.Stats.Placed)
	}
}

// Package metrics implements the balance and communication metrics of the
// paper's §4.1:
//
//   - Bias B = (max − mean)/mean — chosen because BSP iteration time is set
//     by the slowest (maximum-load) machine (Fig 10).
//   - Jain's fairness index F = (Σx)²/(n·Σx²) ∈ [1/n, 1] (Fig 11).
//   - Edge-cut ratio — cut arcs over total arcs (Table 3, Fig 5a).
//
// plus the per-partition report type shared by the partitioners, the
// experiment harness and the CLI.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"bpart/internal/graph"
)

// Bias returns (max − mean)/mean of the sample. It returns 0 for an empty
// sample or a zero mean (a fully balanced degenerate case).
func Bias(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxV, sum := xs[0], 0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
		sum += x
	}
	mean := float64(sum) / float64(len(xs))
	if IsZero(mean) {
		return 0
	}
	return (float64(maxV) - mean) / mean
}

// BiasFloat is Bias over float64 samples (used for compute-time loads).
func BiasFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxV, sum := xs[0], 0.0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	if IsZero(mean) {
		return 0
	}
	return (maxV - mean) / mean
}

// Jain returns Jain's fairness index (Σ|x|)² / (n·Σx²). It is 1 when all
// values are equal and 1/n when a single element holds everything. An empty
// or all-zero sample returns 1 (trivially fair).
func Jain(xs []int) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := math.Abs(float64(x))
		sum += v
		sumSq += v * v
	}
	if IsZero(sumSq) {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// EdgeCutRatio returns the fraction of arcs crossing partitions under the
// assignment. An edgeless graph has ratio 0.
func EdgeCutRatio(g *graph.Graph, assignment []int) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(graph.CountCrossEdges(g, assignment)) / float64(g.NumEdges())
}

// Report summarizes the quality of one partitioning of one graph: the two
// per-dimension balance metrics and the communication metric, exactly the
// three quantities the paper's evaluation revolves around.
type Report struct {
	K           int
	Vertices    []int
	Edges       []int
	VertexBias  float64
	EdgeBias    float64
	VertexJain  float64
	EdgeJain    float64
	CutRatio    float64
	MinPairConn int // minimum arcs between any ordered pair of distinct parts
}

// NewReport computes a full Report for the assignment. computePairConn is
// O(|E|) extra work and only needed by the §3.3 connectivity experiment, so
// it is optional.
func NewReport(g *graph.Graph, assignment []int, k int, computePairConn bool) Report {
	vs, es := graph.PartSizes(g, assignment, k)
	r := Report{
		K:          k,
		Vertices:   vs,
		Edges:      es,
		VertexBias: Bias(vs),
		EdgeBias:   Bias(es),
		VertexJain: Jain(vs),
		EdgeJain:   Jain(es),
		CutRatio:   EdgeCutRatio(g, assignment),
	}
	if computePairConn && k > 1 {
		m := graph.PairConnectivity(g, assignment, k)
		minConn := math.MaxInt
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if a != b && m[a][b] < minConn {
					minConn = m[a][b]
				}
			}
		}
		r.MinPairConn = minConn
	}
	return r
}

// String renders a compact multi-line report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d  Vbias=%.4f  Ebias=%.4f  Vjain=%.4f  Ejain=%.4f  cut=%.4f\n",
		r.K, r.VertexBias, r.EdgeBias, r.VertexJain, r.EdgeJain, r.CutRatio)
	fmt.Fprintf(&b, "  |Vi|: %v\n  |Ei|: %v", r.Vertices, r.Edges)
	return b.String()
}

// RatioSeries normalizes integer counts by their total, producing the
// "|Vi|/|V|" style series the paper plots in Figs 3, 6 and 8.
func RatioSeries(xs []int) []float64 {
	total := 0
	for _, x := range xs {
		total += x
	}
	out := make([]float64, len(xs))
	if total == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = float64(x) / float64(total)
	}
	return out
}

// Spread returns max/min of a positive sample (the "gap can reach 8×"
// numbers of §2.3); it returns +Inf when min is zero and 1 for an empty
// sample.
func Spread(xs []int) float64 {
	if len(xs) == 0 {
		return 1
	}
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	if minV == 0 {
		return math.Inf(1)
	}
	return float64(maxV) / float64(minV)
}

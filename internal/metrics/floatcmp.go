// Float comparison helpers: the designated home of every raw float ==/!=
// in the balance-sensitive packages. The floateq analyzer
// (internal/analysis/floateq) forbids the operators elsewhere in
// internal/core, internal/partition and internal/metrics, so each call
// site names its intent — a tolerance, a deterministic tie, an unset
// sentinel — instead of leaving the reviewer to guess whether rounding
// was considered.
package metrics

import "math"

// ApproxEq reports whether a and b agree within eps, measured relative to
// their magnitude for large values and absolutely near zero:
// |a−b| ≤ eps·max(1, |a|, |b|).
func ApproxEq(a, b, eps float64) bool {
	scale := 1.0
	if v := math.Abs(a); v > scale {
		scale = v
	}
	if v := math.Abs(b); v > scale {
		scale = v
	}
	return math.Abs(a-b) <= eps*scale
}

// TieEq reports exact bit-for-bit equality. It is for deterministic
// tie-breaking between scores produced by identical arithmetic on the same
// inputs — the streaming placement loop, sort comparators — where an
// epsilon would *introduce* order dependence rather than remove it.
func TieEq(a, b float64) bool { return a == b }

// IsZero reports exact equality with zero. It is for zero used as an
// "unset" or "degenerate" sentinel (no edges, empty sample, zero mean),
// never for testing whether a computed quantity is small; use ApproxEq
// against 0 with an explicit eps for that.
func IsZero(x float64) bool { return x == 0 }

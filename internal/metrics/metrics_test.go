package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"bpart/internal/graph"
)

func TestBias(t *testing.T) {
	cases := []struct {
		in   []int
		want float64
	}{
		{nil, 0},
		{[]int{5, 5, 5}, 0},
		{[]int{0, 0, 0}, 0},
		{[]int{1, 3}, 0.5},         // mean 2, max 3
		{[]int{0, 4}, 1},           // mean 2, max 4
		{[]int{10, 0, 0, 0, 0}, 4}, // mean 2, max 10
	}
	for _, c := range cases {
		if got := Bias(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Bias(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBiasFloat(t *testing.T) {
	if got := BiasFloat([]float64{1, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("BiasFloat = %v", got)
	}
	if BiasFloat(nil) != 0 || BiasFloat([]float64{0, 0}) != 0 {
		t.Fatal("degenerate BiasFloat not 0")
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]int{7, 7, 7, 7}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform Jain = %v, want 1", got)
	}
	if got := Jain([]int{100, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("concentrated Jain = %v, want 0.25 (=1/n)", got)
	}
	if Jain(nil) != 1 || Jain([]int{0, 0}) != 1 {
		t.Fatal("degenerate Jain not 1")
	}
}

// Property: Jain ∈ [1/n, 1]; Bias >= 0; both invariant under scaling.
func TestQuickMetricBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int, len(raw))
		scaled := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v)
			scaled[i] = int(v) * 3
		}
		j := Jain(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		if Bias(xs) < 0 {
			return false
		}
		return math.Abs(Jain(scaled)-j) < 1e-9 &&
			math.Abs(Bias(scaled)-Bias(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func testGraph() *graph.Graph {
	// 0->1, 1->2, 2->3, 3->0, 0->2
	return graph.FromAdjacency([][]graph.VertexID{{1, 2}, {2}, {3}, {0}})
}

func TestEdgeCutRatio(t *testing.T) {
	g := testGraph()
	if got := EdgeCutRatio(g, []int{0, 0, 0, 0}); got != 0 {
		t.Fatalf("single part cut = %v", got)
	}
	// parts {0,1} and {2,3}: cross arcs 1->2, 3->0, 0->2 => 3/5
	if got := EdgeCutRatio(g, []int{0, 0, 1, 1}); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("cut = %v, want 0.6", got)
	}
	empty := graph.FromAdjacency([][]graph.VertexID{{}, {}})
	if got := EdgeCutRatio(empty, []int{0, 1}); got != 0 {
		t.Fatalf("edgeless cut = %v", got)
	}
}

func TestNewReport(t *testing.T) {
	g := testGraph()
	r := NewReport(g, []int{0, 0, 1, 1}, 2, true)
	if r.K != 2 {
		t.Fatalf("K = %d", r.K)
	}
	if r.Vertices[0] != 2 || r.Vertices[1] != 2 {
		t.Fatalf("vertices = %v", r.Vertices)
	}
	// edges by source: part0 = deg(0)+deg(1) = 3, part1 = deg(2)+deg(3) = 2
	if r.Edges[0] != 3 || r.Edges[1] != 2 {
		t.Fatalf("edges = %v", r.Edges)
	}
	if r.VertexBias != 0 {
		t.Fatalf("VertexBias = %v", r.VertexBias)
	}
	if math.Abs(r.EdgeBias-0.2) > 1e-12 { // mean 2.5 max 3
		t.Fatalf("EdgeBias = %v", r.EdgeBias)
	}
	// pair connectivity: 0->2 and 1->2 go p0->p1 (2 arcs), 3->0 goes p1->p0 (1 arc); min=1
	if r.MinPairConn != 1 {
		t.Fatalf("MinPairConn = %d", r.MinPairConn)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestReportWithoutPairConn(t *testing.T) {
	r := NewReport(testGraph(), []int{0, 0, 1, 1}, 2, false)
	if r.MinPairConn != 0 {
		t.Fatalf("MinPairConn computed without request: %d", r.MinPairConn)
	}
}

func TestRatioSeries(t *testing.T) {
	rs := RatioSeries([]int{1, 3})
	if rs[0] != 0.25 || rs[1] != 0.75 {
		t.Fatalf("RatioSeries = %v", rs)
	}
	zero := RatioSeries([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero RatioSeries = %v", zero)
	}
}

func TestSpread(t *testing.T) {
	if got := Spread([]int{2, 8}); got != 4 {
		t.Fatalf("Spread = %v", got)
	}
	if got := Spread([]int{0, 8}); !math.IsInf(got, 1) {
		t.Fatalf("zero-min Spread = %v", got)
	}
	if got := Spread(nil); got != 1 {
		t.Fatalf("empty Spread = %v", got)
	}
}

// Package embed trains vertex embeddings from random-walk corpora with
// skip-gram and negative sampling (SGNS) — the downstream consumer that
// motivates the paper's DeepWalk and node2vec workloads (§1). The walk
// engine's Config.CollectPaths produces the corpus; Train turns it into
// dense vectors whose cosine similarity reflects graph proximity.
//
// The implementation is the standard word2vec recipe adapted to vertex
// IDs: two parameter matrices (center and context), a unigram^(3/4)
// negative-sampling distribution over corpus frequencies served by an
// alias table, sigmoid via a lookup table, and linearly decaying learning
// rate. Training is sequential and seeded, so results are exactly
// reproducible.
package embed

import (
	"fmt"
	"math"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Config holds SGNS hyperparameters. Zero fields select defaults.
type Config struct {
	// Dim is the embedding dimension. Default 32.
	Dim int
	// Window is the skip-gram context half-window. Default 4.
	Window int
	// Negatives is the number of negative samples per positive pair.
	// Default 5.
	Negatives int
	// LearningRate is the initial SGD step, decaying linearly to 1% over
	// training. Default 0.025.
	LearningRate float64
	// Epochs is the number of passes over the corpus. Default 2.
	Epochs int
	// Seed drives initialization and sampling.
	Seed uint64
}

// Normalize fills defaults and validates.
func (c *Config) Normalize() error {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Dim < 1 {
		return fmt.Errorf("embed: Dim = %d", c.Dim)
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Window < 1 {
		return fmt.Errorf("embed: Window = %d", c.Window)
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.Negatives < 1 {
		return fmt.Errorf("embed: Negatives = %d", c.Negatives)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.025
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("embed: LearningRate = %v", c.LearningRate)
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.Epochs < 1 {
		return fmt.Errorf("embed: Epochs = %d", c.Epochs)
	}
	return nil
}

// Embeddings holds one vector per vertex.
type Embeddings struct {
	Dim  int
	vecs []float32 // n × Dim, row-major
}

// NumVertices returns the vocabulary size.
func (e *Embeddings) NumVertices() int { return len(e.vecs) / e.Dim }

// Vector returns v's embedding as a shared slice (do not modify).
func (e *Embeddings) Vector(v graph.VertexID) []float32 {
	return e.vecs[int(v)*e.Dim : (int(v)+1)*e.Dim]
}

// Cosine returns the cosine similarity of two vertices' embeddings
// (0 when either vector is zero).
func (e *Embeddings) Cosine(a, b graph.VertexID) float64 {
	va, vb := e.Vector(a), e.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
		na += float64(va[i]) * float64(va[i])
		nb += float64(vb[i]) * float64(vb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MostSimilar returns the k vertices most cosine-similar to v (excluding
// v itself), in descending similarity order.
func (e *Embeddings) MostSimilar(v graph.VertexID, k int) []graph.VertexID {
	n := e.NumVertices()
	type cand struct {
		v   graph.VertexID
		sim float64
	}
	// Simple selection: keep the top-k in a small slice (k ≪ n).
	top := make([]cand, 0, k+1)
	for u := 0; u < n; u++ {
		if graph.VertexID(u) == v {
			continue
		}
		sim := e.Cosine(v, graph.VertexID(u))
		pos := len(top)
		for pos > 0 && top[pos-1].sim < sim {
			pos--
		}
		if pos < k {
			top = append(top, cand{})
			copy(top[pos+1:], top[pos:])
			top[pos] = cand{graph.VertexID(u), sim}
			if len(top) > k {
				top = top[:k]
			}
		}
	}
	out := make([]graph.VertexID, len(top))
	for i, c := range top {
		out[i] = c.v
	}
	return out
}

// sigmoidTable precomputes σ(x) over [-6, 6].
const (
	sigTableSize = 512
	sigMax       = 6.0
)

var sigTable = func() [sigTableSize]float32 {
	var t [sigTableSize]float32
	for i := range t {
		x := (float64(i)/sigTableSize*2 - 1) * sigMax
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return t
}()

func sigmoid(x float32) float32 {
	if x >= sigMax {
		return 1
	}
	if x <= -sigMax {
		return 0
	}
	i := int((float64(x)/sigMax + 1) / 2 * sigTableSize)
	if i >= sigTableSize {
		i = sigTableSize - 1
	}
	return sigTable[i]
}

// Train learns embeddings for a graph with n vertices from a walk corpus.
func Train(corpus [][]graph.VertexID, n int, cfg Config) (*Embeddings, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("embed: n = %d", n)
	}
	var tokens int
	freq := make([]float64, n)
	for _, path := range corpus {
		for _, v := range path {
			if int(v) >= n {
				return nil, fmt.Errorf("embed: corpus vertex %d out of range [0,%d)", v, n)
			}
			freq[v]++
			tokens++
		}
	}
	if tokens == 0 {
		return nil, fmt.Errorf("embed: empty corpus")
	}
	// Negative sampling from unigram^(3/4); vertices absent from the
	// corpus get a tiny floor weight so the alias table stays valid.
	for v := range freq {
		if freq[v] == 0 {
			freq[v] = 1e-3
		}
		freq[v] = math.Pow(freq[v], 0.75)
	}
	negDist := xrand.NewAlias(freq)

	rng := xrand.New(cfg.Seed ^ 0xE3BED)
	dim := cfg.Dim
	center := make([]float32, n*dim)
	context := make([]float32, n*dim)
	for i := range center {
		center[i] = float32(rng.Float64()-0.5) / float32(dim)
	}

	totalPairs := cfg.Epochs * tokens
	seen := 0
	grad := make([]float32, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, path := range corpus {
			for i, c := range path {
				seen++
				lr := float32(cfg.LearningRate * math.Max(0.01, 1-float64(seen)/float64(totalPairs+1)))
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(path) {
					hi = len(path) - 1
				}
				cv := center[int(c)*dim : (int(c)+1)*dim]
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					for i2 := range grad {
						grad[i2] = 0
					}
					// Positive pair (c, path[j]) + negatives.
					for s := 0; s <= cfg.Negatives; s++ {
						var target int
						var label float32
						if s == 0 {
							target, label = int(path[j]), 1
						} else {
							target, label = negDist.Sample(rng), 0
							if target == int(c) {
								continue
							}
						}
						tv := context[target*dim : (target+1)*dim]
						var dot float32
						for d := 0; d < dim; d++ {
							dot += cv[d] * tv[d]
						}
						g := (label - sigmoid(dot)) * lr
						for d := 0; d < dim; d++ {
							grad[d] += g * tv[d]
							tv[d] += g * cv[d]
						}
					}
					for d := 0; d < dim; d++ {
						cv[d] += grad[d]
					}
				}
			}
		}
	}
	return &Embeddings{Dim: dim, vecs: center}, nil
}

package embed

import (
	"math"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/graph"
	"bpart/internal/partition"
	"bpart/internal/walk"
)

func TestConfigNormalize(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Dim != 32 || c.Window != 4 || c.Negatives != 5 || c.Epochs != 2 {
		t.Fatalf("defaults: %+v", c)
	}
	for _, bad := range []Config{
		{Dim: -1}, {Window: -1}, {Negatives: -2}, {LearningRate: -1}, {Epochs: -3},
	} {
		cfg := bad
		if err := cfg.Normalize(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 10, Config{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Train([][]graph.VertexID{{0, 1}}, 0, Config{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Train([][]graph.VertexID{{0, 99}}, 10, Config{}); err == nil {
		t.Fatal("out-of-range corpus vertex accepted")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(float64(s)-0.5) > 0.02 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if sigmoid(10) != 1 || sigmoid(-10) != 0 {
		t.Fatal("sigmoid saturation wrong")
	}
	for _, x := range []float32{-5, -1, 0.5, 3} {
		want := 1 / (1 + math.Exp(-float64(x)))
		if got := float64(sigmoid(x)); math.Abs(got-want) > 0.03 {
			t.Fatalf("sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
}

// twoCommunityCorpus builds a graph of two dense communities joined by a
// single bridge and returns a DeepWalk corpus over it.
func twoCommunityCorpus(t *testing.T) ([][]graph.VertexID, int) {
	t.Helper()
	const half = 60
	b := graph.NewBuilder(2 * half)
	// Dense intra-community rings + chords.
	for c := 0; c < 2; c++ {
		base := graph.VertexID(c * half)
		for i := 0; i < half; i++ {
			v := base + graph.VertexID(i)
			b.AddUndirected(v, base+graph.VertexID((i+1)%half))
			b.AddUndirected(v, base+graph.VertexID((i+7)%half))
			b.AddUndirected(v, base+graph.VertexID((i+19)%half))
		}
	}
	b.AddUndirected(0, half) // bridge
	g := b.Build()
	a, err := (partition.ChunkV{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := walk.New(g, a.Parts, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(walk.Config{
		Kind: walk.DeepWalk, WalkersPerVertex: 8, Steps: 12, Seed: 5, CollectPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Paths, g.NumVertices()
}

func TestEmbeddingsSeparateCommunities(t *testing.T) {
	corpus, n := twoCommunityCorpus(t)
	emb, err := Train(corpus, n, Config{Dim: 16, Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if emb.NumVertices() != n {
		t.Fatalf("NumVertices = %d, want %d", emb.NumVertices(), n)
	}
	// Average intra-community similarity must clearly exceed
	// inter-community similarity.
	const half = 60
	var intra, inter float64
	var ni, nx int
	for i := 0; i < 30; i++ {
		a := graph.VertexID(i * 2)
		intra += emb.Cosine(a, graph.VertexID((i*2+11)%half))
		ni++
		inter += emb.Cosine(a, graph.VertexID(half+(i*2+11)%half))
		nx++
	}
	intra /= float64(ni)
	inter /= float64(nx)
	if intra <= inter+0.2 {
		t.Fatalf("communities not separated: intra %v vs inter %v", intra, inter)
	}
}

func TestMostSimilarPrefersOwnCommunity(t *testing.T) {
	corpus, n := twoCommunityCorpus(t)
	emb, err := Train(corpus, n, Config{Dim: 16, Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const half = 60
	top := emb.MostSimilar(10, 10)
	if len(top) != 10 {
		t.Fatalf("MostSimilar returned %d", len(top))
	}
	own := 0
	for _, v := range top {
		if v == 10 {
			t.Fatal("MostSimilar returned the query vertex")
		}
		if int(v) < half {
			own++
		}
	}
	if own < 8 {
		t.Fatalf("only %d of top-10 neighbors in own community", own)
	}
}

func TestTrainDeterministic(t *testing.T) {
	corpus, n := twoCommunityCorpus(t)
	e1, err := Train(corpus, n, Config{Dim: 8, Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Train(corpus, n, Config{Dim: 8, Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		a, b := e1.Vector(graph.VertexID(v)), e2.Vector(graph.VertexID(v))
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("training not deterministic at vertex %d dim %d", v, d)
			}
		}
	}
}

func TestCosineZeroVector(t *testing.T) {
	e := &Embeddings{Dim: 4, vecs: make([]float32, 8)}
	if c := e.Cosine(0, 1); c != 0 {
		t.Fatalf("zero-vector cosine = %v", c)
	}
}

package experiments

import (
	"fmt"

	"bpart/internal/cluster"
	"bpart/internal/commview"
	"bpart/internal/gen"
	"bpart/internal/walk"
)

// commSchemes are the partitioners whose communication topology the comm
// experiment compares: the streaming baselines (Fennel, LDG), the offline
// multilevel stand-in, and BPart.
var commSchemes = []string{"Fennel", "LDG", "Multilevel", "BPart"}

// CommMatrix measures who-talks-to-whom flatness: with matrix capture on,
// it runs a random walk and a PageRank on lj-sim (k=8) under each scheme
// and reports the comm imbalance ratio, the Jain fairness of the pair
// traffic, and the hottest src→dst pair with its share of all messages.
// A flat matrix (imbalance near 1, Jain near 1, hot share near 1/(k²-k))
// means no machine pair is a bandwidth hotspot; edge-cut alone cannot see
// this, because two partitions with the same cut can concentrate it on one
// pair or spread it across all of them.
func CommMatrix(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Comm Matrix",
		Title:  "Communication-topology flatness (lj-sim, k=8, matrix capture on)",
		Header: []string{"workload", "scheme", "messages", "imbalance", "pair-jain", "hot pair", "hot share"},
	}
	for _, workload := range []string{"walk", "pagerank"} {
		for _, scheme := range commSchemes {
			var stats *cluster.RunStats
			switch workload {
			case "walk":
				e, err := walkEngine(gen.LJSim, opt, scheme, k)
				if err != nil {
					return nil, err
				}
				e.Cluster().SetCommMatrix(true)
				res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.appWalkers(), Steps: 4, Seed: 1})
				if err != nil {
					return nil, err
				}
				stats = &res.Stats
			case "pagerank":
				e, err := iterEngine(gen.LJSim, opt, scheme, k)
				if err != nil {
					return nil, err
				}
				e.Cluster().SetCommMatrix(true)
				res, err := e.PageRank(10, 0.85)
				if err != nil {
					return nil, err
				}
				stats = &res.Stats
			}
			s := commview.Summarize(commview.FromRunStats(stats))
			hotShare := 0.0
			if s.Messages > 0 {
				hotShare = float64(s.HotMessages) / float64(s.Messages)
			}
			t.AddRow(workload, scheme, i64(s.Messages), f3(s.ImbalanceRatio), f4(s.PairJain),
				fmt.Sprintf("M%d->M%d", s.HotSrc, s.HotDst), f4(hotShare))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("a perfectly flat matrix has hot share 1/(k²-k) = %s", f4(1.0/float64(k*k-k))))
	return t, nil
}

package experiments

import (
	"bytes"
	"testing"
)

// The serving section must carry one cell per scheme with a full endpoint
// digest, live latencies, and routing-skew columns in their defined ranges.
func TestBenchServingSection(t *testing.T) {
	opt := Options{Scale: testScale}
	a := NewBenchArtifact(opt)
	if err := a.Collect(opt, nil); err != nil {
		t.Fatal(err)
	}
	if len(a.Serving) != len(allSchemes) {
		t.Fatalf("got %d serving cells, want %d", len(a.Serving), len(allSchemes))
	}
	for _, s := range a.Serving {
		if s.K != benchPartitionK || s.Graph == "" || s.Requests != benchServingRequests {
			t.Fatalf("serving cell = %+v", s)
		}
		if s.HotPart < 0 || s.HotPart >= benchPartitionK || s.HotShare <= 0 || s.HotShare > 1 {
			t.Fatalf("%s hot part = %+v", s.Scheme, s)
		}
		// Shares and vertex shares both sum to 1, so some part is at least
		// as hot as its size predicts.
		if s.MaxPressure < 0.99 {
			t.Fatalf("%s max pressure = %v", s.Scheme, s.MaxPressure)
		}
		if len(s.Endpoints) != 3 {
			t.Fatalf("%s endpoints = %+v", s.Scheme, s.Endpoints)
		}
		var total int64
		for _, e := range s.Endpoints {
			total += e.Requests
			if e.Requests <= 0 || e.P50US <= 0 || e.P99US < e.P50US || e.P999US < e.P99US {
				t.Fatalf("%s %s digest = %+v", s.Scheme, e.Endpoint, e)
			}
		}
		if total != s.Requests {
			t.Fatalf("%s endpoint counts sum to %d, cell has %d", s.Scheme, total, s.Requests)
		}
	}
}

// Under StripWallClock the serving section must be byte-identical across
// collections: the seeded stream routes the same way every run, and the
// latency columns are the only live measurements.
func TestBenchServingDeterministicUnderStrip(t *testing.T) {
	opt := Options{Scale: testScale}
	var outs [2]bytes.Buffer
	for i := range outs {
		a := NewBenchArtifact(opt)
		if err := a.Collect(opt, nil); err != nil {
			t.Fatal(err)
		}
		a.StripWallClock()
		for _, s := range a.Serving {
			for _, e := range s.Endpoints {
				if e.P50US != 0 || e.P95US != 0 || e.P99US != 0 || e.P999US != 0 {
					t.Fatalf("stripped cell still carries latency: %+v", e)
				}
			}
		}
		if err := a.WriteJSON(&outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Fatal("two stripped collections differ")
	}
}

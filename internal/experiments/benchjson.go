package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bpart/internal/commview"
	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/metrics"
	"bpart/internal/telemetry"
	"bpart/internal/walk"
)

// BenchSchemaVersion is the BENCH_bpart.json schema version. Bump it on
// any incompatible field change; consumers must check it before trusting
// field meanings. The schema itself is documented in EXPERIMENTS.md.
const BenchSchemaVersion = 1

// BenchExperiment is one experiment's entry in the artifact. Wall-clock
// seconds vary run to run; everything else is deterministic at a fixed
// scale.
type BenchExperiment struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Rows        int     `json:"rows"`
	Error       string  `json:"error,omitempty"`
}

// BenchPartition is one (graph, scheme, k) cell of the artifact's
// canonical comparison workload: partition quality plus the simulated
// runtime of a fixed short walk. All fields are deterministic, so two
// artifacts at the same scale are directly diffable.
type BenchPartition struct {
	Graph      string  `json:"graph"`
	Scheme     string  `json:"scheme"`
	K          int     `json:"k"`
	VertexBias float64 `json:"vertex_bias"`
	EdgeBias   float64 `json:"edge_bias"`
	VertexJain float64 `json:"vertex_jain"`
	EdgeJain   float64 `json:"edge_jain"`
	CutRatio   float64 `json:"cut_ratio"`
	SimTimeUS  float64 `json:"sim_time_us"`
	WaitRatio  float64 `json:"wait_ratio"`
}

// BenchRecovery is one (scheme, policy) cell of the artifact's optional
// fault-recovery section (bench -fault): the canonical PageRank workload
// re-run under a crash schedule, with the recovery overhead broken out.
// All fields are deterministic, so the section diffs like the rest.
type BenchRecovery struct {
	Graph  string `json:"graph"`
	Scheme string `json:"scheme"`
	K      int    `json:"k"`
	Policy string `json:"policy"`
	// SimTimeUS is the faulty run's total simulated time;
	// FaultFreeSimTimeUS is the same workload without the schedule, so
	// the difference is what the faults and their recovery cost.
	SimTimeUS          float64 `json:"sim_time_us"`
	FaultFreeSimTimeUS float64 `json:"fault_free_sim_time_us"`
	fault.RecoveryStats
}

// BenchComm is one (graph, scheme, k) cell of the artifact's
// communication-topology section: the canonical walk workload re-read
// through the src→dst comm matrix (matrix capture on). Capture is
// observation-only, so the Partitions section's numbers are unaffected;
// every field here is deterministic.
type BenchComm struct {
	Graph          string  `json:"graph"`
	Scheme         string  `json:"scheme"`
	K              int     `json:"k"`
	Messages       int64   `json:"messages"`
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	PairJain       float64 `json:"pair_jain"`
	HotSrc         int     `json:"hot_src"`
	HotDst         int     `json:"hot_dst"`
	// HotShare is the hot pair's fraction of all cross-machine messages
	// (1/(k²-k) when perfectly flat).
	HotShare float64 `json:"hot_share"`
}

// BenchResource is one (scheme, workers) point of the artifact's optional
// resources section (bench -resources): the scaling probe's measured wall
// time with its derived speedup and efficiency, plus the number of
// placements the parallel replay re-derived and verified identical to the
// sequential stream. Wall/speedup/efficiency are host wall-clock — the
// artifact's only nondeterministic content besides experiment wall seconds
// — and StripWallClock zeroes them; Verified is deterministic.
type BenchResource struct {
	Scheme     string  `json:"scheme"`
	Workers    int     `json:"workers"`
	WallUS     float64 `json:"wall_us"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Verified   int     `json:"verified"`
}

// BenchParallel is one (engine, scheme, workers) point of the artifact's
// parallel section: the superstep worker-pool sweep on the largest
// reference dataset. Wall/speedup/efficiency are host wall-clock and
// StripWallClock zeroes them; SimTimeUS and Identical are deterministic —
// Identical records that the run's marshaled results and RunStats matched
// the 1-worker reference byte for byte, the artifact-level witness of the
// kernel's determinism contract.
type BenchParallel struct {
	Graph      string  `json:"graph"`
	Engine     string  `json:"engine"`
	Scheme     string  `json:"scheme"`
	K          int     `json:"k"`
	Workers    int     `json:"workers"`
	WallUS     float64 `json:"wall_us"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	SimTimeUS  float64 `json:"sim_time_us"`
	Identical  bool    `json:"identical"`
}

// BenchArtifact is the machine-readable benchmark record cmd/bench writes
// (BENCH_bpart.json). Fields marshal in declaration order, so the output
// is byte-deterministic given identical contents. Recovery is additive
// (schema version 1 either way): it is present exactly when the run
// injected a fault schedule.
type BenchArtifact struct {
	SchemaVersion int                          `json:"schema_version"`
	Scale         float64                      `json:"scale"`
	Walkers       int                          `json:"walkers,omitempty"`
	Experiments   []BenchExperiment            `json:"experiments"`
	Partitions    []BenchPartition             `json:"partitions"`
	Recovery      []BenchRecovery              `json:"recovery,omitempty"`
	Comm          []BenchComm                  `json:"comm"`
	Resources     []BenchResource              `json:"resources,omitempty"`
	Parallel      []BenchParallel              `json:"parallel,omitempty"`
	Serving       []BenchServing               `json:"serving"`
	Histograms    []telemetry.HistogramSummary `json:"histograms"`
}

// NewBenchArtifact starts an artifact for one bench invocation.
func NewBenchArtifact(opt Options) *BenchArtifact {
	return &BenchArtifact{
		SchemaVersion: BenchSchemaVersion,
		Scale:         opt.scale(),
		Walkers:       opt.Walkers,
		Experiments:   []BenchExperiment{},
		Partitions:    []BenchPartition{},
		Comm:          []BenchComm{},
		Serving:       []BenchServing{},
		Histograms:    []telemetry.HistogramSummary{},
	}
}

// RecordExperiment appends one experiment outcome in run order.
func (a *BenchArtifact) RecordExperiment(id string, wallSeconds float64, rows int, runErr error) {
	e := BenchExperiment{ID: id, WallSeconds: wallSeconds, Rows: rows}
	if runErr != nil {
		e.Error = runErr.Error()
	}
	a.Experiments = append(a.Experiments, e)
}

// benchPartitionK is the canonical workload's machine count — the paper's
// default cluster size in Fig 12/13.
const benchPartitionK = 8

// benchWalkConfig is the canonical workload's walk: short, seeded, and
// identical across runs, so its SimTimeUS/WaitRatio columns are
// regression-comparable.
var benchWalkConfig = walk.Config{Kind: walk.Simple, WalkersPerVertex: 1, Steps: 4, Seed: 1}

// Collect fills the deterministic sections: the canonical partition
// comparison (every scheme on the LJ-sim dataset, always fault-free so the
// section stays regression-diffable across runs with and without -fault),
// the fault-recovery comparison when opt.Faults is set, the serving
// comparison (the canonical Zipf request stream replayed per scheme), and,
// when reg is non-nil, the registry's histogram summaries (sorted by name).
func (a *BenchArtifact) Collect(opt Options, reg *telemetry.Registry) error {
	d := gen.LJSim
	g, err := dataset(d, opt)
	if err != nil {
		return err
	}
	base := opt
	base.Faults = nil
	for _, scheme := range allSchemes {
		parts, err := assignment(d, base, scheme, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		rep := metrics.NewReport(g, parts, benchPartitionK, false)
		e, err := walkEngine(d, base, scheme, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		// Capture the comm matrix on the same run: observation-only, so the
		// partition section's timings are unchanged (the comm_* histograms
		// appear additively in the Histograms section).
		e.Cluster().SetCommMatrix(true)
		res, err := e.Run(benchWalkConfig)
		if err != nil {
			return fmt.Errorf("bench artifact: %s walk: %w", scheme, err)
		}
		a.Partitions = append(a.Partitions, BenchPartition{
			Graph:      string(d),
			Scheme:     scheme,
			K:          benchPartitionK,
			VertexBias: rep.VertexBias,
			EdgeBias:   rep.EdgeBias,
			VertexJain: rep.VertexJain,
			EdgeJain:   rep.EdgeJain,
			CutRatio:   rep.CutRatio,
			SimTimeUS:  res.Stats.TotalTime(),
			WaitRatio:  res.Stats.WaitRatio(),
		})
		s := commview.Summarize(commview.FromRunStats(&res.Stats))
		hotShare := 0.0
		if s.Messages > 0 {
			hotShare = float64(s.HotMessages) / float64(s.Messages)
		}
		a.Comm = append(a.Comm, BenchComm{
			Graph:          string(d),
			Scheme:         scheme,
			K:              benchPartitionK,
			Messages:       s.Messages,
			ImbalanceRatio: s.ImbalanceRatio,
			PairJain:       s.PairJain,
			HotSrc:         s.HotSrc,
			HotDst:         s.HotDst,
			HotShare:       hotShare,
		})
	}
	if opt.Faults != nil {
		if err := a.collectRecovery(d, opt); err != nil {
			return err
		}
	}
	if err := a.CollectParallel(base); err != nil {
		return err
	}
	if err := a.collectServing(d, base); err != nil {
		return err
	}
	if reg != nil {
		a.Histograms = reg.HistogramSummaries()
	}
	return nil
}

// collectRecovery runs the canonical PageRank workload per scheme under
// opt.Faults and records RecoveryStats next to the fault-free simulated
// time (the Fault Recovery experiment covers the policy cross-product;
// this section tracks the schedule exactly as supplied).
func (a *BenchArtifact) collectRecovery(d gen.Dataset, opt Options) error {
	spec := opt.Faults.ForMachines(benchPartitionK)
	base := opt
	base.Faults = nil
	for _, scheme := range allSchemes {
		e, err := iterEngine(d, base, scheme, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		free, err := e.PageRank(faultRecoveryIters, 0.85)
		if err != nil {
			return fmt.Errorf("bench artifact: %s pagerank: %w", scheme, err)
		}
		e, err = iterEngine(d, base, scheme, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		ctl, err := fault.NewController(e.Graph(), e.Cluster(), spec.Clone())
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		if err := e.SetFaults(ctl); err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		res, err := e.PageRank(faultRecoveryIters, 0.85)
		if err != nil {
			return fmt.Errorf("bench artifact: %s faulty pagerank: %w", scheme, err)
		}
		rec := res.Recovery
		if rec == nil {
			return fmt.Errorf("bench artifact: %s faulty run reported no RecoveryStats", scheme)
		}
		a.Recovery = append(a.Recovery, BenchRecovery{
			Graph:              string(d),
			Scheme:             scheme,
			K:                  benchPartitionK,
			Policy:             string(ctl.Spec().Policy),
			SimTimeUS:          res.Stats.TotalTime(),
			FaultFreeSimTimeUS: free.Stats.TotalTime(),
			RecoveryStats:      *rec,
		})
	}
	return nil
}

// StripWallClock zeroes every wall-clock field (bench -deterministic):
// experiment wall seconds, resource and parallel wall/speedup columns, and
// serving latency percentiles are the artifact's only nondeterministic
// content, so a stripped artifact is byte-identical across runs with the
// same flags — including across -workers settings, since the parallel
// sweep runs its own ladder and every engine output is worker-invariant.
func (a *BenchArtifact) StripWallClock() {
	for i := range a.Experiments {
		a.Experiments[i].WallSeconds = 0
	}
	for i := range a.Resources {
		a.Resources[i].WallUS = 0
		a.Resources[i].Speedup = 0
		a.Resources[i].Efficiency = 0
	}
	for i := range a.Parallel {
		a.Parallel[i].WallUS = 0
		a.Parallel[i].Speedup = 0
		a.Parallel[i].Efficiency = 0
	}
	for i := range a.Serving {
		for j := range a.Serving[i].Endpoints {
			e := &a.Serving[i].Endpoints[j]
			e.P50US, e.P95US, e.P99US, e.P999US = 0, 0, 0, 0
		}
	}
}

// WriteJSON marshals the artifact (indented, trailing newline).
func (a *BenchArtifact) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the artifact to path.
func (a *BenchArtifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchArtifact parses a BENCH_bpart.json file, rejecting unknown
// schema versions.
func ReadBenchArtifact(r io.Reader) (*BenchArtifact, error) {
	var a BenchArtifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("bench artifact: %w", err)
	}
	if a.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("bench artifact: schema version %d, this reader handles %d", a.SchemaVersion, BenchSchemaVersion)
	}
	return &a, nil
}

package experiments

import (
	"fmt"

	"bpart/internal/gen"
	"bpart/internal/metrics"
	"bpart/internal/walk"
)

// loadWalkers returns the walkers-per-vertex for the load/waiting figures
// (the paper starts 5|V| walks there).
func (o Options) loadWalkers() int {
	if o.Walkers > 0 {
		return o.Walkers
	}
	return 5
}

// appWalkers returns the walkers-per-vertex for the application running
// time figures (the paper starts |V| walks per application).
func (o Options) appWalkers() int {
	if o.Walkers > 0 {
		return o.Walkers
	}
	return 1
}

// Fig4 reproduces Figure 4: per-machine computing load (walk steps) in each
// of the four iterations of a 5|V|-walker, 4-step random walk on
// twitter-sim with four machines. Chunk-V/Fennel start balanced in
// iteration 0 (balanced walker counts) but drift apart as walkers pile onto
// the hub machine; Chunk-E is imbalanced from the start.
func Fig4(opt Options) (*Table, error) {
	const k = 4
	t := &Table{
		ID:     "Fig 4",
		Title:  "Computing load (walk steps) per machine per iteration (twitter-sim, k=4)",
		Header: []string{"scheme", "iter", "M0", "M1", "M2", "M3", "max/mean"},
	}
	for _, scheme := range oneDimSchemes {
		e, err := walkEngine(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.loadWalkers(), Steps: 4, Seed: 1})
		if err != nil {
			return nil, err
		}
		for it, st := range res.Stats.Iterations {
			var total int64
			for _, s := range st.Work.Steps {
				total += s
			}
			mean := float64(total) / k
			maxS := int64(0)
			row := []string{scheme, d0(it)}
			for _, s := range st.Work.Steps {
				row = append(row, i64(s))
				if s > maxS {
					maxS = s
				}
			}
			ratio := 0.0
			if mean > 0 {
				ratio = float64(maxS) / mean
			}
			row = append(row, f2(ratio))
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig5 reproduces Figure 5: (a) the edge-cut ratio and (b) the total
// message walks of a 5|V|-walker, 4-step walk, for Chunk-V, Chunk-E,
// Fennel and Hash at k=8. Chunk-E and Hash cut ~90% of edges and transmit
// over 2× more walks than Fennel.
func Fig5(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Fig 5",
		Title:  "Edge cuts and message walks (twitter-sim, k=8, 5|V| walks × 4 steps)",
		Header: []string{"scheme", "edge-cut ratio", "message walks", "vs Fennel"},
	}
	type rec struct {
		scheme string
		cut    float64
		msgs   int64
	}
	var recs []rec
	for _, scheme := range []string{"Chunk-V", "Chunk-E", "Fennel", "Hash"} {
		g, err := dataset(gen.TwitterSim, opt)
		if err != nil {
			return nil, err
		}
		parts, err := assignment(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		e, err := walkEngine(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.loadWalkers(), Steps: 4, Seed: 1})
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec{scheme, metrics.EdgeCutRatio(g, parts), res.MessageWalks})
	}
	var fennelMsgs int64
	for _, r := range recs {
		if r.scheme == "Fennel" {
			fennelMsgs = r.msgs
		}
	}
	for _, r := range recs {
		rel := 0.0
		if fennelMsgs > 0 {
			rel = float64(r.msgs) / float64(fennelMsgs)
		}
		t.AddRow(r.scheme, f4(r.cut), i64(r.msgs), f2(rel))
	}
	return t, nil
}

// Fig12 reproduces Figure 12: the computation time of each of the eight
// machines in each iteration on friendster-sim. Unbalanced partitions give
// ragged columns; BPart's are level.
func Fig12(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Fig 12",
		Title:  "Computation time (ms) per machine per iteration (friendster-sim, k=8)",
		Header: []string{"scheme", "iter", "M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7", "max/mean"},
	}
	for _, scheme := range compareSchemes {
		e, err := walkEngine(gen.FriendsterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.loadWalkers(), Steps: 4, Seed: 1})
		if err != nil {
			return nil, err
		}
		for it, st := range res.Stats.Iterations {
			row := []string{scheme, d0(it)}
			var total, maxC float64
			for _, c := range st.Compute {
				row = append(row, f2(c/1000))
				total += c
				if c > maxC {
					maxC = c
				}
			}
			ratio := 0.0
			if total > 0 {
				ratio = maxC / (total / k)
			}
			row = append(row, f2(ratio))
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig13 reproduces Figure 13: the ratio of total machine waiting time to
// total running time for 4- and 8-machine clusters across all datasets.
// The paper reports 45–55% average waiting for the one-dimensional schemes
// and 10–20% for BPart.
func Fig13(opt Options) (*Table, error) {
	t := &Table{
		ID:     "Fig 13",
		Title:  "Waiting-time ratio of random walks (5|V| walks × 4 steps)",
		Header: []string{"graph", "machines", "Chunk-V", "Chunk-E", "Fennel", "BPart"},
	}
	for _, d := range gen.Datasets() {
		for _, k := range []int{4, 8} {
			row := []string{string(d), d0(k)}
			for _, scheme := range compareSchemes {
				e, err := walkEngine(d, opt, scheme, k)
				if err != nil {
					return nil, err
				}
				res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.loadWalkers(), Steps: 4, Seed: 1})
				if err != nil {
					return nil, err
				}
				row = append(row, f3(res.Stats.WaitRatio()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// apps are the seven graph applications of §4.1: five random-walk
// algorithms (run on the KnightKing-sim) and two iteration algorithms (run
// on the Gemini-sim).
var apps = []string{"PPR", "RWJ", "RWD", "DeepWalk", "node2vec", "PR", "CC"}

// runApp executes one application under one scheme and returns the total
// simulated running time.
func runApp(app string, d gen.Dataset, opt Options, scheme string, k int) (float64, error) {
	switch app {
	case "PR":
		e, err := iterEngine(d, opt, scheme, k)
		if err != nil {
			return 0, err
		}
		res, err := e.PageRank(10, 0.85)
		if err != nil {
			return 0, err
		}
		return res.Stats.TotalTime(), nil
	case "CC":
		e, err := iterEngine(d, opt, scheme, k)
		if err != nil {
			return 0, err
		}
		res, err := e.ConnectedComponents(0)
		if err != nil {
			return 0, err
		}
		return res.Stats.TotalTime(), nil
	}
	var kind walk.Kind
	switch app {
	case "PPR":
		kind = walk.PPR
	case "RWJ":
		kind = walk.RWJ
	case "RWD":
		kind = walk.RWD
	case "DeepWalk":
		kind = walk.DeepWalk
	case "node2vec":
		kind = walk.Node2Vec
	default:
		return 0, fmt.Errorf("experiments: unknown app %q", app)
	}
	e, err := walkEngine(d, opt, scheme, k)
	if err != nil {
		return 0, err
	}
	res, err := e.Run(walk.Config{Kind: kind, WalkersPerVertex: opt.appWalkers(), Seed: 1})
	if err != nil {
		return 0, err
	}
	return res.Stats.TotalTime(), nil
}

// Fig14 reproduces Figure 14: the running time of all seven applications
// under Chunk-V, Chunk-E, Fennel and BPart, normalized to Chunk-V = 1.
// BPart should be the fastest column nearly everywhere (the paper reports
// 5–70% reductions).
func Fig14(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Fig 14",
		Title:  "Normalized running time of graph applications (k=8, Chunk-V = 1)",
		Header: []string{"graph", "app", "Chunk-V", "Chunk-E", "Fennel", "BPart"},
	}
	for _, d := range gen.Datasets() {
		for _, app := range apps {
			times := make([]float64, len(compareSchemes))
			for i, scheme := range compareSchemes {
				x, err := runApp(app, d, opt, scheme, k)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", d, app, scheme, err)
				}
				times[i] = x
			}
			base := times[0]
			row := []string{string(d), app}
			for _, x := range times {
				row = append(row, f3(x/base))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig15 reproduces Figure 15: Hash vs BPart running time (Hash = 1) on
// twitter-sim and friendster-sim. Both are two-dimensionally balanced, so
// the gap isolates the value of fewer edge cuts: the paper reports 5–20%
// for walk applications and 20–35% for PR/CC.
func Fig15(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Fig 15",
		Title:  "Normalized computation time, Hash vs BPart (k=8, Hash = 1)",
		Header: []string{"graph", "app", "Hash", "BPart"},
	}
	for _, d := range []gen.Dataset{gen.TwitterSim, gen.FriendsterSim} {
		for _, app := range apps {
			hash, err := runApp(app, d, opt, "Hash", k)
			if err != nil {
				return nil, err
			}
			bp, err := runApp(app, d, opt, "BPart", k)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(d), app, "1.000", f3(bp/hash))
		}
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"bpart/internal/core"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/multilevel"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
	"bpart/internal/vcut"
)

// Table1 reports the statistics of the synthetic stand-in datasets, the
// analogue of the paper's Table 1 (graph sizes and average degrees).
func Table1(opt Options) (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Statistics of the (synthetic) graph datasets",
		Header: []string{"graph", "|V|", "|E|", "avg deg", "max deg", "degree gini"},
		Notes: []string{
			"synthetic stand-ins: paper used LiveJournal 7.5M/225M, Twitter 41.39M/1.48B, Friendster 65.6M/3.6B",
		},
	}
	for _, d := range gen.Datasets() {
		g, err := dataset(d, opt)
		if err != nil {
			return nil, err
		}
		s := graph.ComputeStats(g)
		t.AddRow(string(d), d0(s.NumVertices), d0(s.NumEdges), f2(s.AvgDegree), d0(s.MaxDegree), f3(s.GiniDegree))
	}
	return t, nil
}

// Fig3 reproduces Figure 3: the per-subgraph vertex and edge shares when
// partitioning twitter-sim into four subgraphs with the one-dimensional
// schemes. Expected shape: Chunk-V/Fennel have even V rows but wildly
// uneven E rows (the paper reports an up-to-8× edge gap); Chunk-E is the
// reverse (13× vertex gap).
func Fig3(opt Options) (*Table, error) {
	const k = 4
	t := &Table{
		ID:     "Fig 3",
		Title:  "Vertex/edge shares of subgraphs G0–G3 (twitter-sim, k=4)",
		Header: []string{"scheme", "series", "G0", "G1", "G2", "G3", "max/min"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, scheme := range oneDimSchemes {
		parts, err := assignment(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		vs, es := graph.PartSizes(g, parts, k)
		vr := metrics.RatioSeries(vs)
		er := metrics.RatioSeries(es)
		t.AddRow(scheme, "|Vi|/|V|", f3(vr[0]), f3(vr[1]), f3(vr[2]), f3(vr[3]), f2(metrics.Spread(vs)))
		t.AddRow(scheme, "|Ei|/|E|", f3(er[0]), f3(er[1]), f3(er[2]), f3(er[3]), f2(metrics.Spread(es)))
	}
	return t, nil
}

// Fig6 reproduces Figure 6: the distribution of |Vi| and |Ei| over 64
// small subgraphs under Chunk-V and Chunk-E. The balanced dimension is
// flat; the other is heavily skewed.
func Fig6(opt Options) (*Table, error) {
	const k = 64
	t := &Table{
		ID:     "Fig 6",
		Title:  "Distribution of |Vi| and |Ei| over 64 subgraphs (twitter-sim)",
		Header: []string{"scheme", "series", "min ratio", "median", "max ratio", "bias", "jain"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, scheme := range []string{"Chunk-V", "Chunk-E"} {
		parts, err := assignment(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		vs, es := graph.PartSizes(g, parts, k)
		for _, series := range []struct {
			name string
			xs   []int
		}{{"|Vi|/|V|", vs}, {"|Ei|/|E|", es}} {
			minR, medR, maxR := summarizeRatios(series.xs)
			t.AddRow(scheme, series.name, f4(minR), f4(medR), f4(maxR),
				f3(metrics.Bias(series.xs)), f3(metrics.Jain(series.xs)))
		}
	}
	return t, nil
}

// Fig8 reproduces Figure 8: 64 pieces produced by the weighted streaming
// policy (c=½). Sorted by |Vi|, the vertex shares ramp up while the edge
// shares ramp down — the inverse proportionality the combining phase
// exploits — and both skews are far below Fig 6's.
func Fig8(opt Options) (*Table, error) {
	const k = 64
	t := &Table{
		ID:     "Fig 8",
		Title:  "|Vi| and |Ei| shares with the weighted policy, pieces sorted by |Vi| (twitter-sim, 64 pieces)",
		Header: []string{"piece octile", "|Vi|/|V|", "|Ei|/|E|"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	tr, err := transposeOf(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	res, err := partition.Stream(g, partition.StreamOptions{K: k, C: 0.5, In: tr})
	if err != nil {
		return nil, err
	}
	type piece struct{ v, e int }
	pieces := make([]piece, k)
	for i := 0; i < k; i++ {
		pieces[i] = piece{res.VertexCount[i], res.EdgeCount[i]}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].v < pieces[j].v })
	n, m := float64(g.NumVertices()), float64(g.NumEdges())
	// Report octile means of the sorted series — the ramp of the figure.
	const buckets = 8
	for b := 0; b < buckets; b++ {
		lo, hi := b*k/buckets, (b+1)*k/buckets
		var sv, se float64
		for i := lo; i < hi; i++ {
			sv += float64(pieces[i].v)
			se += float64(pieces[i].e)
		}
		cnt := float64(hi - lo)
		t.AddRow(fmt.Sprintf("%d-%d", lo, hi-1), f4(sv/cnt/n), f4(se/cnt/m))
	}
	// Inverse-proportionality statistic: Pearson correlation of piece
	// |V_i| against |E_i| (the paper's Fig 8 shows the two series as
	// mirror images, i.e. strongly negative correlation).
	var sv, se float64
	for _, p := range pieces {
		sv += float64(p.v)
		se += float64(p.e)
	}
	mv, me := sv/float64(k), se/float64(k)
	var cov, varV, varE float64
	for _, p := range pieces {
		dv, de := float64(p.v)-mv, float64(p.e)-me
		cov += dv * de
		varV += dv * dv
		varE += de * de
	}
	r := 0.0
	if varV > 0 && varE > 0 {
		r = cov / (sqrt(varV) * sqrt(varE))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Pearson corr(|Vi|, |Ei|) across pieces = %.3f (negative ⇒ inversely proportional)", r))
	return t, nil
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Fig10 reproduces Figure 10: vertex bias vs edge bias for every scheme,
// dataset and subgraph count. BPart must sit near the origin in both
// dimensions; each one-dimensional scheme hugs one axis.
func Fig10(opt Options) (*Table, error) {
	t := &Table{
		ID:     "Fig 10",
		Title:  "Balanced degree (bias metric) in both dimensions",
		Header: []string{"graph", "scheme", "k", "vertex bias", "edge bias"},
	}
	for _, d := range gen.Datasets() {
		g, err := dataset(d, opt)
		if err != nil {
			return nil, err
		}
		for _, scheme := range compareSchemes {
			for _, k := range []int{4, 8, 16} {
				parts, err := assignment(d, opt, scheme, k)
				if err != nil {
					return nil, err
				}
				vs, es := graph.PartSizes(g, parts, k)
				t.AddRow(string(d), scheme, d0(k), f4(metrics.Bias(vs)), f4(metrics.Bias(es)))
			}
		}
	}
	return t, nil
}

// Fig11 reproduces Figure 11: Jain's fairness index of both dimensions for
// 8–128 subgraphs on twitter-sim. BPart stays ≈1 in both dimensions at
// every scale.
func Fig11(opt Options) (*Table, error) {
	t := &Table{
		ID:     "Fig 11",
		Title:  "Jain's fairness when partitioning into many subgraphs (twitter-sim)",
		Header: []string{"scheme", "k", "vertex fairness", "edge fairness"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, scheme := range compareSchemes {
		for _, k := range []int{8, 16, 32, 64, 128} {
			parts, err := assignment(gen.TwitterSim, opt, scheme, k)
			if err != nil {
				return nil, err
			}
			vs, es := graph.PartSizes(g, parts, k)
			t.AddRow(scheme, d0(k), f4(metrics.Jain(vs)), f4(metrics.Jain(es)))
		}
	}
	return t, nil
}

// Table2 reproduces Table 2: wall-clock partition time for every scheme on
// every dataset (k=8). Expected ordering: Chunk-V ≈ Chunk-E < Hash <
// Fennel < BPart, with Multilevel (the Mt-KaHIP stand-in) slowest.
func Table2(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Table 2",
		Title:  "Time overhead (s) of partition algorithms (k=8)",
		Header: append([]string{"scheme"}, datasetNames()...),
		Notes:  []string{"wall-clock, machine-dependent; orderings are what the paper's Table 2 reports"},
	}
	schemes := append(append([]string{}, allSchemes...), "Multilevel")
	for _, scheme := range schemes {
		row := []string{scheme}
		for _, d := range gen.Datasets() {
			g, err := dataset(d, opt)
			if err != nil {
				return nil, err
			}
			p, err := partition.Get(scheme)
			if err != nil {
				return nil, err
			}
			sw := telemetry.NewStopwatch()
			if _, err := p.Partition(g, k); err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", sw.Seconds()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func datasetNames() []string {
	var out []string
	for _, d := range gen.Datasets() {
		out = append(out, string(d))
	}
	return out
}

// Table3 reproduces Table 3: the edge-cut ratio of every scheme on every
// dataset at k=8. Expected ordering: Fennel < BPart < Chunk-V < Hash ≈
// Chunk-E, with Hash pinned at (k−1)/k ≈ 0.875.
func Table3(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Table 3",
		Title:  "Edge-cut ratio of partition algorithms (k=8)",
		Header: append([]string{"scheme"}, datasetNames()...),
	}
	for _, scheme := range allSchemes {
		row := []string{scheme}
		for _, d := range gen.Datasets() {
			g, err := dataset(d, opt)
			if err != nil {
				return nil, err
			}
			parts, err := assignment(d, opt, scheme, k)
			if err != nil {
				return nil, err
			}
			row = append(row, f4(metrics.EdgeCutRatio(g, parts)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// MtKaHIP reproduces the §4.2 comparison against the offline multilevel
// partitioner: vertex bias tiny (paper: 0.03 on all graphs), edge bias
// large (paper: 2.59 / 2.56 / 0.70), while BPart keeps both below ~0.1.
func MtKaHIP(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "S4.2 Mt-KaHIP",
		Title:  "Offline multilevel partitioning vs BPart (k=8)",
		Header: []string{"graph", "scheme", "vertex bias", "edge bias", "cut ratio"},
	}
	for _, d := range gen.Datasets() {
		g, err := dataset(d, opt)
		if err != nil {
			return nil, err
		}
		for _, scheme := range []string{"Multilevel", "BPart"} {
			parts, err := assignment(d, opt, scheme, k)
			if err != nil {
				return nil, err
			}
			vs, es := graph.PartSizes(g, parts, k)
			t.AddRow(string(d), scheme, f4(metrics.Bias(vs)), f4(metrics.Bias(es)),
				f4(metrics.EdgeCutRatio(g, parts)))
		}
	}
	return t, nil
}

// Connectivity reproduces the §3.3 check: partition friendster-sim into 64
// small pieces with the weighted policy and count edge connections between
// every pair — the minimum must remain large, so combined subgraphs stay
// well connected.
func Connectivity(opt Options) (*Table, error) {
	const k = 64
	t := &Table{
		ID:     "S3.3 Connectivity",
		Title:  "Edge connections between any two of 64 pieces (friendster-sim)",
		Header: []string{"metric", "arcs"},
	}
	g, err := dataset(gen.FriendsterSim, opt)
	if err != nil {
		return nil, err
	}
	res, err := partition.Stream(g, partition.StreamOptions{K: k, C: 0.5})
	if err != nil {
		return nil, err
	}
	m := graph.PairConnectivity(g, res.Parts, k)
	var pairs []int
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a != b {
				pairs = append(pairs, m[a][b])
			}
		}
	}
	sort.Ints(pairs)
	t.AddRow("min pair connectivity", d0(pairs[0]))
	t.AddRow("median pair connectivity", d0(pairs[len(pairs)/2]))
	t.AddRow("max pair connectivity", d0(pairs[len(pairs)-1]))
	t.Notes = append(t.Notes,
		"paper (full-size Friendster): min ≈ 50,000 and typically ≈ 500,000; scales with |E|")
	return t, nil
}

// RelatedWork compares BPart against the additional related-work schemes
// of §5 implemented here: LDG (streaming, vertex-balance-only), GD
// (projected gradient descent, two-dimensionally balanced but slow and
// power-of-two-only) and the offline Multilevel baseline.
func RelatedWork(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "S5 Related",
		Title:  "Related-work partitioners vs BPart (twitter-sim, k=8)",
		Header: []string{"scheme", "vertex bias", "edge bias", "cut ratio", "time (s)"},
		Notes:  []string{"GD is 2D-balanced like BPart but orders of magnitude slower (and k must be a power of two)"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, scheme := range []string{"LDG", "Spinner", "GD", "Multilevel", "BPart"} {
		p, err := partition.Get(scheme)
		if err != nil {
			return nil, err
		}
		sw := telemetry.NewStopwatch()
		a, err := p.Partition(g, k)
		if err != nil {
			return nil, err
		}
		dt := sw.Seconds()
		vs, es := graph.PartSizes(g, a.Parts, k)
		t.AddRow(scheme, f4(metrics.Bias(vs)), f4(metrics.Bias(es)),
			f4(metrics.EdgeCutRatio(g, a.Parts)), fmt.Sprintf("%.3f", dt))
	}
	return t, nil
}

// VertexCut compares the vertex-cut family (§5: PowerGraph-style Greedy,
// DBH, HDRF vs random edge placement) on twitter-sim. Vertex-cut schemes
// balance edges by construction; their communication metric is the
// replication factor.
func VertexCut(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "S5 Vertex-cut",
		Title:  "Vertex-cut partitioners (twitter-sim, k=8)",
		Header: []string{"scheme", "replication factor", "max replicas", "edge bias"},
		Notes:  []string{"edge-cut schemes' equivalent communication metric is the cut ratio of Table 3"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, p := range []vcut.Partitioner{vcut.RandomEdge{}, vcut.DBH{}, vcut.Greedy{}, vcut.HDRF{}} {
		a, err := p.Partition(g, k)
		if err != nil {
			return nil, err
		}
		r := vcut.NewReport(g, a)
		t.AddRow(p.Name(), f3(r.ReplicationFactor), d0(r.MaxReplicas), f4(metrics.Bias(r.EdgeCounts)))
	}
	return t, nil
}

// AblationC sweeps the weighting factor c of Eq. 1 (design default ½).
// c=1 degenerates to vertex-only balance, c=0 to edge-only; the middle
// balances both.
func AblationC(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Ablation C",
		Title:  "BPart weighting factor c sweep (twitter-sim, k=8)",
		Header: []string{"c", "vertex bias", "edge bias", "cut ratio"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b, err := core.New(core.Config{C: c, Epsilon: 0.1, SplitFactor: 2, MaxLayers: 4})
		if err != nil {
			return nil, err
		}
		a, err := b.Partition(g, k)
		if err != nil {
			return nil, err
		}
		vs, es := graph.PartSizes(g, a.Parts, k)
		t.AddRow(f2(c), f4(metrics.Bias(vs)), f4(metrics.Bias(es)), f4(metrics.EdgeCutRatio(g, a.Parts)))
	}
	return t, nil
}

// AblationSplit sweeps the over-split factor (paper: 2× per layer).
func AblationSplit(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Ablation Split",
		Title:  "BPart over-split factor sweep (twitter-sim, k=8)",
		Header: []string{"split", "layers used", "vertex bias", "edge bias", "cut ratio"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, split := range []int{2, 4, 8} {
		b, err := core.New(core.Config{C: 0.5, Epsilon: 0.1, SplitFactor: split, MaxLayers: 4})
		if err != nil {
			return nil, err
		}
		a, tr, err := b.PartitionWithTrace(g, k)
		if err != nil {
			return nil, err
		}
		vs, es := graph.PartSizes(g, a.Parts, k)
		t.AddRow(d0(split), d0(len(tr.Layers)), f4(metrics.Bias(vs)), f4(metrics.Bias(es)),
			f4(metrics.EdgeCutRatio(g, a.Parts)))
	}
	return t, nil
}

// AblationOrder sweeps the stream order of the weighted streaming engine
// (C=1, Fennel-style) on twitter-sim: natural ID order (the paper's Fig 2
// stream), seeded random, and degree-descending/ascending. Order shifts
// both the residual edge skew and the cut.
func AblationOrder(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Ablation Order",
		Title:  "Stream order sweep for Fennel-style streaming (twitter-sim, k=8)",
		Header: []string{"order", "vertex bias", "edge bias", "cut ratio"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	tr, err := transposeOf(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	orders := []struct {
		name string
		vs   []graph.VertexID
	}{
		{"id", partition.OrderByID(g.NumVertices())},
		{"random", partition.OrderRandom(g.NumVertices(), 1)},
		{"degree-desc", partition.OrderByDegree(g, false)},
		{"degree-asc", partition.OrderByDegree(g, true)},
	}
	for _, o := range orders {
		res, err := partition.Stream(g, partition.StreamOptions{K: k, C: 1, In: tr, Vertices: o.vs})
		if err != nil {
			return nil, err
		}
		t.AddRow(o.name, f4(metrics.Bias(res.VertexCount)), f4(metrics.Bias(res.EdgeCount)),
			f4(metrics.EdgeCutRatio(g, res.Parts)))
	}
	return t, nil
}

// AblationRefine compares BPart with and without the final refinement pass
// (the robustness addition over the paper) and across balance thresholds.
func AblationRefine(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Ablation Refine",
		Title:  "BPart refinement pass and threshold sweep (twitter-sim, k=8)",
		Header: []string{"epsilon", "refine", "vertex bias", "edge bias", "vertex jain", "edge jain"},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		for _, refine := range []bool{true, false} {
			b, err := core.New(core.Config{C: 0.5, Epsilon: eps, SplitFactor: 2, MaxLayers: 4, DisableRefine: !refine})
			if err != nil {
				return nil, err
			}
			a, err := b.Partition(g, k)
			if err != nil {
				return nil, err
			}
			vs, es := graph.PartSizes(g, a.Parts, k)
			t.AddRow(f2(eps), fmt.Sprintf("%v", refine),
				f4(metrics.Bias(vs)), f4(metrics.Bias(es)),
				f4(metrics.Jain(vs)), f4(metrics.Jain(es)))
		}
	}
	return t, nil
}

var _ = multilevel.Config{} // Multilevel registers itself via init

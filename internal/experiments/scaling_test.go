package experiments

import (
	"bytes"
	"strconv"
	"testing"

	"bpart/internal/resview"
)

func TestRunScalingProbeVerifiesEveryScheme(t *testing.T) {
	opt := Options{Scale: testScale, Widths: []int{1, 2}}
	ms, err := RunScalingProbe(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3*2 { // schemes × widths
		t.Fatalf("got %d measurements, want 6", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		seen[m.Scheme] = true
		if m.Verified <= 0 {
			t.Fatalf("%s at %d workers verified %d placements", m.Scheme, m.Workers, m.Verified)
		}
		if m.WallUS <= 0 {
			t.Fatalf("%s at %d workers: non-positive wall %v", m.Scheme, m.Workers, m.WallUS)
		}
	}
	for _, s := range []string{"BPart", "Fennel", "LDG"} {
		if !seen[s] {
			t.Errorf("scheme %s missing from probe", s)
		}
	}
}

func TestRunScalingProbeEmitsResourceRecords(t *testing.T) {
	var buf bytes.Buffer
	probe := resview.NewProbe(&buf)
	opt := Options{Scale: testScale, Widths: []int{1, 2}, Probe: probe}
	if _, err := RunScalingProbe(opt); err != nil {
		t.Fatal(err)
	}
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := resview.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// One span per scheme × width × repetition.
	if want := 3 * 2 * scalingReps; len(l.Records) != want {
		t.Fatalf("got %d resource records, want %d", len(l.Records), want)
	}
	curves := resview.Curves(l.Records)
	if len(curves) != 3 {
		t.Fatalf("got %d curves, want 3", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", c.Scheme, len(c.Points))
		}
		if c.Points[0].Workers != 1 || c.Points[0].Speedup != 1 {
			t.Fatalf("%s: bad base point %+v", c.Scheme, c.Points[0])
		}
	}
	for _, r := range l.Records {
		if r.Phase != resview.ScalingPhase {
			t.Fatalf("unexpected phase %q", r.Phase)
		}
		if v, ok := r.Int("verified"); !ok || v <= 0 {
			t.Fatalf("record missing verified attr: %+v", r)
		}
	}
}

func TestRunScalingProbeRejectsBadWidth(t *testing.T) {
	if _, err := RunScalingProbe(Options{Scale: testScale, Widths: []int{0}}); err == nil {
		t.Fatal("accepted width 0")
	}
}

func TestScalingProbeTable(t *testing.T) {
	tbl, err := ScalingProbe(Options{Scale: testScale, Widths: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "Scaling Probe" {
		t.Fatalf("table ID %q", tbl.ID)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
		w, err := strconv.Atoi(row[1])
		if err != nil || w < 1 {
			t.Fatalf("row %v: bad workers", row)
		}
		if w == 1 {
			if row[3] != "1.00" || row[4] != "1.00" {
				t.Fatalf("row %v: 1-worker speedup/efficiency not 1.00", row)
			}
		}
		if n, err := strconv.Atoi(row[5]); err != nil || n <= 0 {
			t.Fatalf("row %v: bad verified count", row)
		}
	}
}

func TestScalingProbeRegistered(t *testing.T) {
	for _, e := range All() {
		if e.ID == "Scaling Probe" {
			return
		}
	}
	t.Fatal("Scaling Probe not in All()")
}

func TestCollectResourcesAndStrip(t *testing.T) {
	opt := Options{Scale: testScale, Widths: []int{1, 2}}
	a := NewBenchArtifact(opt)
	if err := a.CollectResources(opt); err != nil {
		t.Fatal(err)
	}
	if len(a.Resources) != 6 {
		t.Fatalf("got %d resource rows, want 6", len(a.Resources))
	}
	for _, r := range a.Resources {
		if r.WallUS <= 0 || r.Verified <= 0 {
			t.Fatalf("row %+v not measured", r)
		}
		if r.Workers == 1 && r.Speedup != 1 {
			t.Fatalf("row %+v: base speedup not 1", r)
		}
	}
	a.StripWallClock()
	for _, r := range a.Resources {
		if r.WallUS != 0 || r.Speedup != 0 || r.Efficiency != 0 {
			t.Fatalf("strip kept host-dependent fields: %+v", r)
		}
		if r.Verified <= 0 {
			t.Fatalf("strip destroyed the verification count: %+v", r)
		}
	}
}

func TestWidthsDefaultHostIndependent(t *testing.T) {
	got := (Options{}).widths()
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("default widths %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default widths %v, want %v", got, want)
		}
	}
}

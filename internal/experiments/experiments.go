// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.3 motivation plots and §4), plus the ablations called out
// in DESIGN.md. Each experiment is a function from Options to a *Table —
// a plain text table whose rows correspond to the series the paper plots —
// so the same code backs cmd/bench, the testing.B benchmarks in
// bench_test.go, and EXPERIMENTS.md.
//
// Graphs, partitions and transposes are memoized per (dataset, scale) so
// that a full run does not regenerate the synthetic datasets dozens of
// times; everything except the wall-clock timings of Table 2 is
// deterministic.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"bpart/internal/cluster"
	"bpart/internal/engine"
	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
	"bpart/internal/walk"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks (<1) or grows (>1) the preset datasets. The default
	// 0 means 1.0. Tests use small scales; EXPERIMENTS.md records
	// scale 1.0.
	Scale float64
	// Walkers overrides walkers-per-vertex for the runtime experiments
	// (default: the paper's 5 for load/waiting figures, 1 for the
	// application-time figures).
	Walkers int
	// Tracer, when non-nil, is attached to every engine an experiment
	// builds, so a `bench -trace` run captures cluster.superstep records
	// for tracestat to analyze.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, collects the engines' counters and
	// histograms; its summaries feed the BENCH artifact.
	Metrics *telemetry.Registry
	// Faults, when non-nil, injects this fault schedule into every engine
	// an experiment builds (bench -fault): each engine gets its own
	// controller over a clone of the spec, projected onto the engine's
	// machine count. The Fault Recovery experiment and the BENCH
	// artifact's recovery section also honor it.
	Faults *fault.Spec
	// Probe, when non-nil, receives resource phases from everything a run
	// builds (bench -resources): one "cluster.superstep" lap per BSP
	// iteration of every engine, plus the scaling probe's per-replay
	// spans. Observation-only — results are identical with or without it.
	Probe telemetry.PhaseProbe
	// Widths is the scaling probe's worker-count ladder. nil selects the
	// host-independent default {1, 2, 4}; cmd/bench fills the host's
	// power-of-two ladder up to NumCPU. Every width must be >= 1, and the
	// speedup/efficiency columns need width 1 as their baseline.
	Widths []int
	// Workers is the superstep worker-pool size for every iteration engine
	// an experiment builds (cmd/bench -workers). 0 or 1 run supersteps
	// inline on the machine goroutine — today's behavior. The engines'
	// outputs and counters are bit-identical at any setting; only host wall
	// time changes, so every deterministic table and artifact section is
	// unaffected. The Parallel Speedup experiment sweeps its own ladder and
	// ignores this.
	Workers int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// Table is one reproduced table or figure.
type Table struct {
	ID     string // e.g. "Fig 10"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV writes the table in RFC-4180 CSV form (header row first), the
// format plotting scripts consume to regenerate the paper's figures.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func(Options) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"Fig 3", Fig3},
		{"Fig 4", Fig4},
		{"Fig 5", Fig5},
		{"Fig 6", Fig6},
		{"Fig 8", Fig8},
		{"Fig 10", Fig10},
		{"Fig 11", Fig11},
		{"Table 1", Table1},
		{"Table 2", Table2},
		{"S4.2 Mt-KaHIP", MtKaHIP},
		{"S3.3 Connectivity", Connectivity},
		{"Fig 12", Fig12},
		{"Fig 13", Fig13},
		{"Fig 14", Fig14},
		{"Table 3", Table3},
		{"Fig 15", Fig15},
		{"S5 Related", RelatedWork},
		{"S5 Vertex-cut", VertexCut},
		{"Ablation C", AblationC},
		{"Ablation Split", AblationSplit},
		{"Ablation Refine", AblationRefine},
		{"Ablation Order", AblationOrder},
		{"Ablation Hetero", AblationHetero},
		{"Fault Recovery", FaultRecovery},
		{"Comm Matrix", CommMatrix},
		{"Scaling Probe", ScalingProbe},
		{"Parallel Speedup", ParallelSpeedup},
	}
}

// ---- memoization ----

type graphKey struct {
	d     gen.Dataset
	scale float64
}

type partKey struct {
	g      graphKey
	scheme string
	k      int
}

var (
	memoMu     sync.Mutex
	graphMemo  = map[graphKey]*graph.Graph{}
	transMemo  = map[graphKey]*graph.Graph{}
	assignMemo = map[partKey][]int{}
)

// dataset returns the memoized synthetic graph for d at the option scale.
func dataset(d gen.Dataset, opt Options) (*graph.Graph, error) {
	key := graphKey{d, opt.scale()}
	memoMu.Lock()
	g, ok := graphMemo[key]
	memoMu.Unlock()
	if ok {
		return g, nil
	}
	g, err := gen.Preset(d, opt.scale())
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	graphMemo[key] = g
	memoMu.Unlock()
	return g, nil
}

func transposeOf(d gen.Dataset, opt Options) (*graph.Graph, error) {
	key := graphKey{d, opt.scale()}
	memoMu.Lock()
	tr, ok := transMemo[key]
	memoMu.Unlock()
	if ok {
		return tr, nil
	}
	g, err := dataset(d, opt)
	if err != nil {
		return nil, err
	}
	tr = g.Transpose()
	memoMu.Lock()
	transMemo[key] = tr
	memoMu.Unlock()
	return tr, nil
}

// assignment returns the memoized partition of dataset d by the named
// scheme into k parts.
func assignment(d gen.Dataset, opt Options, scheme string, k int) ([]int, error) {
	key := partKey{graphKey{d, opt.scale()}, scheme, k}
	memoMu.Lock()
	parts, ok := assignMemo[key]
	memoMu.Unlock()
	if ok {
		return parts, nil
	}
	g, err := dataset(d, opt)
	if err != nil {
		return nil, err
	}
	p, err := partition.Get(scheme)
	if err != nil {
		return nil, err
	}
	a, err := p.Partition(g, k)
	if err != nil {
		return nil, fmt.Errorf("%s on %s (k=%d): %w", scheme, d, k, err)
	}
	memoMu.Lock()
	assignMemo[key] = a.Parts
	memoMu.Unlock()
	return a.Parts, nil
}

// ResetMemo clears the memoization caches (used by benchmarks that want to
// time cold runs).
func ResetMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	graphMemo = map[graphKey]*graph.Graph{}
	transMemo = map[graphKey]*graph.Graph{}
	assignMemo = map[partKey][]int{}
}

// ---- shared runners ----

// oneDimSchemes are the three schemes of the motivation figures.
var oneDimSchemes = []string{"Chunk-V", "Chunk-E", "Fennel"}

// compareSchemes are the four schemes the running-time figures compare
// against BPart's baseline Chunk-V.
var compareSchemes = []string{"Chunk-V", "Chunk-E", "Fennel", "BPart"}

// allSchemes adds Hash (Table 3).
var allSchemes = []string{"Chunk-V", "Chunk-E", "Fennel", "Hash", "BPart"}

func walkEngine(d gen.Dataset, opt Options, scheme string, k int) (*walk.Engine, error) {
	g, err := dataset(d, opt)
	if err != nil {
		return nil, err
	}
	parts, err := assignment(d, opt, scheme, k)
	if err != nil {
		return nil, err
	}
	e, err := walk.New(g, parts, k, cluster.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	if opt.Tracer != nil || opt.Metrics != nil {
		e.SetTelemetry(opt.Tracer, opt.Metrics)
	}
	if opt.Probe != nil {
		e.SetResourceProbe(opt.Probe)
	}
	if err := attachFaults(opt, g, e, k); err != nil {
		return nil, err
	}
	return e, nil
}

// faultable is the engine-side surface attachFaults needs; both the
// iteration and walk engines satisfy it.
type faultable interface {
	Cluster() *cluster.Cluster
	SetFaults(*fault.Controller) error
}

// attachFaults wires Options.Faults (when set) into a freshly built engine:
// its own controller over a clone of the schedule projected onto k
// machines. Clusters too small to lose a machine run fault-free.
func attachFaults(opt Options, g *graph.Graph, e faultable, k int) error {
	if opt.Faults == nil || k < 2 {
		return nil
	}
	ctl, err := fault.NewController(g, e.Cluster(), opt.Faults.ForMachines(k))
	if err != nil {
		return err
	}
	if opt.Tracer != nil || opt.Metrics != nil {
		ctl.SetTelemetry(opt.Tracer, opt.Metrics)
	}
	return e.SetFaults(ctl)
}

func iterEngine(d gen.Dataset, opt Options, scheme string, k int) (*engine.Engine, error) {
	g, err := dataset(d, opt)
	if err != nil {
		return nil, err
	}
	parts, err := assignment(d, opt, scheme, k)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(g, parts, k, cluster.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	e.Cluster().SetWorkers(opt.Workers)
	tr, err := transposeOf(d, opt)
	if err != nil {
		return nil, err
	}
	if err := e.SetTranspose(tr); err != nil {
		return nil, err
	}
	if opt.Tracer != nil || opt.Metrics != nil {
		e.SetTelemetry(opt.Tracer, opt.Metrics)
	}
	if opt.Probe != nil {
		e.SetResourceProbe(opt.Probe)
	}
	if err := attachFaults(opt, g, e, k); err != nil {
		return nil, err
	}
	return e, nil
}

// ---- formatting helpers ----

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d0(x int) string     { return fmt.Sprintf("%d", x) }
func i64(x int64) string  { return fmt.Sprintf("%d", x) }

// summarizeRatios reports min/median/max of a ratio series.
func summarizeRatios(xs []int) (minR, medR, maxR float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	t := float64(total)
	if t == 0 {
		return 0, 0, 0
	}
	return float64(s[0]) / t, float64(s[len(s)/2]) / t, float64(s[len(s)-1]) / t
}

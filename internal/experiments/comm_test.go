package experiments

import (
	"strconv"
	"testing"
)

func TestCommMatrixShape(t *testing.T) {
	opt := Options{Scale: testScale}
	tbl, err := CommMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(commSchemes) { // workloads × schemes
		t.Fatalf("CommMatrix rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		msgs, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil || msgs <= 0 {
			t.Fatalf("row %v: bad message count", row)
		}
		imb, err := strconv.ParseFloat(row[3], 64)
		if err != nil || imb < 1 {
			t.Fatalf("row %v: imbalance ratio below 1", row)
		}
		jain, err := strconv.ParseFloat(row[4], 64)
		if err != nil || jain <= 0 || jain > 1.000001 {
			t.Fatalf("row %v: Jain index out of range", row)
		}
	}
}

// The experiment must not leak capture into the memoized shared state:
// a later experiment reusing the memoized graph/partition builds its own
// engines, and fresh clusters default to capture off.
func TestCommMatrixDoesNotPerturbOthers(t *testing.T) {
	opt := Options{Scale: testScale}
	before, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CommMatrix(opt); err != nil {
		t.Fatal(err)
	}
	after, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range before.Rows {
		for j, cell := range row {
			if after.Rows[i][j] != cell {
				t.Fatalf("Fig13 cell [%d][%d] changed after CommMatrix: %q -> %q", i, j, cell, after.Rows[i][j])
			}
		}
	}
}

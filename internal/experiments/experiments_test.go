package experiments

import (
	"strings"
	"testing"

	"bpart/internal/gen"
)

const testScale = 0.02

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	for _, want := range []string{"== X: demo ==", "long-header", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// header + separator + 2 rows + note + title
	if len(lines) != 6 {
		t.Fatalf("rendering has %d lines:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		Header: []string{"a", "b"},
	}
	tbl.AddRow("1", "x,y") // embedded comma must be quoted
	tbl.AddRow("2", "z")
	var buf strings.Builder
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestAllUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"Fig 3", "Fig 14", "Table 2", "Table 3", "Fig 15"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 1.0 {
		t.Fatalf("default scale %v", o.scale())
	}
	if o.loadWalkers() != 5 || o.appWalkers() != 1 {
		t.Fatalf("default walkers %d/%d", o.loadWalkers(), o.appWalkers())
	}
	o = Options{Scale: 0.5, Walkers: 3}
	if o.scale() != 0.5 || o.loadWalkers() != 3 || o.appWalkers() != 3 {
		t.Fatalf("explicit options ignored: %+v", o)
	}
}

func TestMemoizationReturnsSameGraph(t *testing.T) {
	ResetMemo()
	opt := Options{Scale: testScale}
	g1, err := dataset(gen.LJSim, opt)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := dataset(gen.LJSim, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("dataset not memoized")
	}
	a1, err := assignment(gen.LJSim, opt, "Chunk-V", 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := assignment(gen.LJSim, opt, "Chunk-V", 4)
	if err != nil {
		t.Fatal(err)
	}
	if &a1[0] != &a2[0] {
		t.Fatal("assignment not memoized")
	}
	ResetMemo()
	g3, err := dataset(gen.LJSim, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g3 {
		t.Fatal("ResetMemo did not clear the cache")
	}
}

func TestAssignmentUnknownScheme(t *testing.T) {
	if _, err := assignment(gen.LJSim, Options{Scale: testScale}, "bogus", 4); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSummarizeRatios(t *testing.T) {
	minR, medR, maxR := summarizeRatios([]int{1, 2, 7})
	if minR != 0.1 || maxR != 0.7 {
		t.Fatalf("min/max = %v/%v", minR, maxR)
	}
	if medR != 0.2 {
		t.Fatalf("median = %v", medR)
	}
	if a, b, c := summarizeRatios(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty summarize not zero")
	}
	if a, _, _ := summarizeRatios([]int{0, 0}); a != 0 {
		t.Fatal("zero-total summarize not zero")
	}
}

func TestRunAppUnknown(t *testing.T) {
	if _, err := runApp("bogus", gen.LJSim, Options{Scale: testScale}, "Chunk-V", 2); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestAllExperimentsTinyScale exercises every registered experiment at a
// minuscule dataset scale — the harness must complete and yield rows.
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test skipped in -short mode")
	}
	opt := Options{Scale: testScale}
	for _, ex := range All() {
		ex := ex
		t.Run(strings.ReplaceAll(ex.ID, " ", "_"), func(t *testing.T) {
			tbl, err := ex.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			if tbl.ID != ex.ID {
				t.Fatalf("table ID %q != experiment ID %q", tbl.ID, ex.ID)
			}
		})
	}
}

// The balance experiments at tiny scale: every row present and parsable.
func TestBalanceExperimentShapes(t *testing.T) {
	opt := Options{Scale: testScale}
	tbl, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 schemes × 2 series
		t.Fatalf("Fig3 rows = %d", len(tbl.Rows))
	}
	tbl, err = Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*4*3 { // graphs × schemes × k
		t.Fatalf("Fig10 rows = %d", len(tbl.Rows))
	}
	tbl, err = Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("Table3 rows = %d", len(tbl.Rows))
	}
}

func TestRuntimeExperimentShapes(t *testing.T) {
	opt := Options{Scale: testScale, Walkers: 1}
	tbl, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*4 { // schemes × iterations
		t.Fatalf("Fig4 rows = %d", len(tbl.Rows))
	}
	tbl, err = Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*2 { // graphs × machine counts
		t.Fatalf("Fig13 rows = %d", len(tbl.Rows))
	}
	tbl, err = Fig15(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*7 { // graphs × apps
		t.Fatalf("Fig15 rows = %d", len(tbl.Rows))
	}
}

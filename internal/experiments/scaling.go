package experiments

import (
	"fmt"

	"bpart/internal/gen"
	"bpart/internal/partition"
	"bpart/internal/resview"
	"bpart/internal/telemetry"
)

// The scaling probe measures the repo's first real (host wall-clock)
// speedup curve: the per-candidate scoring loop of the streaming
// partitioners run across 1..W workers via partition.ScoreReplay /
// LDGReplay. The replay verifies every placement against the sequential
// run, so each measured point doubles as a bit-identity proof — the
// parallelism is observation-grade, not a change to any partitioner.
// Timing goes through telemetry.Stopwatch (the sanctioned wall-clock
// route inside the noclock boundary) and is inherently nondeterministic:
// nothing from this file feeds a deterministic artifact unstripped.

// scalingReps is the per-width repetition count; the recorded wall time is
// the fastest repetition (conventional best-of-N timing).
const scalingReps = 2

// ScalingMeasurement is one (scheme, workers) point of the probe:
// best-of-N wall microseconds and the number of placements re-derived and
// verified identical to the sequential stream.
type ScalingMeasurement struct {
	Scheme   string
	Workers  int
	WallUS   float64
	Verified int
}

// widths returns the scaling ladder, defaulting to a host-independent
// {1, 2, 4} so tests and baselines never depend on the machine's core
// count. cmd/bench fills the host ladder for real measurements.
func (o Options) widths() []int {
	if len(o.Widths) > 0 {
		return o.Widths
	}
	return []int{1, 2, 4}
}

// replaySpec is one scheme's prepared replay: the sequential run has
// already happened, so run only re-scores (and verifies) at a width.
type replaySpec struct {
	scheme string
	run    func(workers int) (int, error)
}

// prepareReplays runs each scheme's sequential partitioner once on the
// canonical lj-sim workload and returns the verification replays.
func prepareReplays(opt Options) ([]replaySpec, error) {
	const k = benchPartitionK
	d := gen.LJSim
	g, err := dataset(d, opt)
	if err != nil {
		return nil, err
	}
	in, err := transposeOf(d, opt)
	if err != nil {
		return nil, err
	}
	n, m := g.NumVertices(), g.NumEdges()

	// Fennel: the classic vertex-balance stream (c=1).
	fenOpt := partition.StreamOptions{K: k, C: 1, In: in}
	fenRes, err := partition.Stream(g, fenOpt)
	if err != nil {
		return nil, fmt.Errorf("scaling probe: fennel stream: %w", err)
	}

	// BPart: the layer-1 weighted stream (c=½, hard two-dimensional caps,
	// 2× over-split) — the dominant cost of a full BPart run, with exactly
	// the cap gauntlet core.BPart configures.
	pieces := k * 2
	bpOpt := partition.StreamOptions{
		K:    pieces,
		C:    0.5,
		CapV: int(1.1*float64(n)/float64(pieces)) + 1,
		CapE: int(1.1*float64(m)/float64(pieces)) + 1,
		In:   in,
	}
	bpRes, err := partition.Stream(g, bpOpt)
	if err != nil {
		return nil, fmt.Errorf("scaling probe: bpart stream: %w", err)
	}

	// LDG: default slack, natural ID order.
	ldgRes, err := (partition.LDG{}).Partition(g, k)
	if err != nil {
		return nil, fmt.Errorf("scaling probe: ldg: %w", err)
	}

	return []replaySpec{
		{"BPart", func(w int) (int, error) { return partition.ScoreReplay(g, bpOpt, bpRes.Parts, w) }},
		{"Fennel", func(w int) (int, error) { return partition.ScoreReplay(g, fenOpt, fenRes.Parts, w) }},
		{"LDG", func(w int) (int, error) { return partition.LDGReplay(g, in, 0, ldgRes.Parts, k, w) }},
	}, nil
}

// RunScalingProbe measures every scheme at every width of opt.widths().
// When opt.Probe is attached, each repetition emits one resview
// ScalingPhase span with scheme/workers attrs, which is what `tracestat
// resources` turns into speedup curves.
func RunScalingProbe(opt Options) ([]ScalingMeasurement, error) {
	specs, err := prepareReplays(opt)
	if err != nil {
		return nil, err
	}
	var out []ScalingMeasurement
	for _, spec := range specs {
		for _, wk := range opt.widths() {
			if wk < 1 {
				return nil, fmt.Errorf("scaling probe: width %d, want >= 1", wk)
			}
			best := -1.0
			verified := 0
			for rep := 0; rep < scalingReps; rep++ {
				var pe telemetry.PhaseEnd
				if opt.Probe != nil {
					pe = opt.Probe.BeginPhase(resview.ScalingPhase,
						telemetry.String("scheme", spec.scheme),
						telemetry.Int("workers", wk))
				}
				sw := telemetry.NewStopwatch()
				nv, err := spec.run(wk)
				us := sw.Seconds() * 1e6
				if pe != nil {
					pe.EndPhase(telemetry.Int("verified", nv))
				}
				if err != nil {
					return nil, fmt.Errorf("scaling probe: %s at %d workers: %w", spec.scheme, wk, err)
				}
				verified = nv
				if best < 0 || us < best {
					best = us
				}
			}
			out = append(out, ScalingMeasurement{Scheme: spec.scheme, Workers: wk, WallUS: best, Verified: verified})
		}
	}
	return out, nil
}

// ScalingProbe is the experiment wrapper: the measured speedup curve as a
// table. Wall columns are host-dependent; the verified column — every
// placement re-derived in parallel equals the sequential one — is the
// point.
func ScalingProbe(opt Options) (*Table, error) {
	ms, err := RunScalingProbe(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Scaling Probe",
		Title:  "Parallel score-replay scaling (lj-sim, host wall-clock, placements verified bit-identical)",
		Header: []string{"scheme", "workers", "wall", "speedup", "efficiency", "verified"},
	}
	base := map[string]float64{}
	for _, m := range ms {
		if m.Workers == 1 {
			base[m.Scheme] = m.WallUS
		}
	}
	for _, m := range ms {
		speedup, eff := 0.0, 0.0
		if b := base[m.Scheme]; b > 0 && m.WallUS > 0 {
			speedup = b / m.WallUS
			eff = speedup / float64(m.Workers)
		}
		t.AddRow(m.Scheme, d0(m.Workers), fmt.Sprintf("%.2fms", m.WallUS/1e3),
			f2(speedup), f2(eff), d0(m.Verified))
	}
	t.Notes = append(t.Notes,
		"wall-clock timings vary by host; the verified column proves the parallel scoring matched the sequential stream at every width",
		"the BPart rows replay its layer-1 weighted stream (c=½, hard caps), the dominant cost of a full run")
	return t, nil
}

// CollectResources fills the artifact's resources section from one
// scaling-probe run (bench -resources). The section is additive
// (omitempty), so artifacts written without the flag are byte-identical to
// pre-resources ones; with -deterministic, StripWallClock zeroes the
// host-dependent columns and leaves the verification counts.
func (a *BenchArtifact) CollectResources(opt Options) error {
	ms, err := RunScalingProbe(opt)
	if err != nil {
		return err
	}
	base := map[string]float64{}
	for _, m := range ms {
		if m.Workers == 1 {
			base[m.Scheme] = m.WallUS
		}
	}
	for _, m := range ms {
		r := BenchResource{Scheme: m.Scheme, Workers: m.Workers, WallUS: m.WallUS, Verified: m.Verified}
		if b := base[m.Scheme]; b > 0 && m.WallUS > 0 {
			r.Speedup = b / m.WallUS
			r.Efficiency = r.Speedup / float64(m.Workers)
		}
		a.Resources = append(a.Resources, r)
	}
	return nil
}

package experiments

import (
	"fmt"

	"bpart/internal/fault"
	"bpart/internal/gen"
)

// faultRecoveryIters is the canonical PageRank depth of the recovery
// comparison — long enough that a mid-run crash has checkpoints behind it
// and supersteps ahead of it.
const faultRecoveryIters = 10

// defaultFaultSpec is the schedule the Fault Recovery experiment injects
// when the caller did not supply one (bench -fault): one crash at
// superstep 5 with checkpoints every 2 supersteps — the README walkthrough
// scenario, mirroring internal/fault/testdata/crash5.json.
func defaultFaultSpec() *fault.Spec {
	return &fault.Spec{
		CheckpointEvery: 2,
		Events:          []fault.Event{{Kind: fault.Crash, Step: 5, Machine: 1}},
	}
}

// FaultRecovery is an extension beyond the paper: it reruns the canonical
// PageRank workload under a crash schedule and compares what recovery
// costs per partitioning scheme and policy. Rollback replays from the last
// checkpoint on the full cluster; restream additionally Fennel-streams the
// dead machine's vertices onto the survivors and finishes degraded. The
// overhead column is simulated time relative to the scheme's fault-free
// run — the fault-attributable slice of the paper's Fig 13 waiting
// argument.
func FaultRecovery(opt Options) (*Table, error) {
	d := gen.LJSim
	k := benchPartitionK
	spec := opt.Faults
	if spec == nil {
		spec = defaultFaultSpec()
	}
	spec = spec.ForMachines(k)
	// Engines are built fault-free here; each policy row attaches its own
	// controller, so the baseline row is a true no-fault run even under
	// bench -fault.
	base := opt
	base.Faults = nil

	t := &Table{
		ID:     "Fault Recovery",
		Title:  fmt.Sprintf("PageRank(%d) under a crash schedule on %s, k=%d (extension)", faultRecoveryIters, d, k),
		Header: []string{"scheme", "policy", "sim time (us)", "overhead", "ckpts", "replayed", "restreamed", "added wait"},
	}
	for _, scheme := range compareSchemes {
		e, err := iterEngine(d, base, scheme, k)
		if err != nil {
			return nil, err
		}
		res, err := e.PageRank(faultRecoveryIters, 0.85)
		if err != nil {
			return nil, err
		}
		faultFree := res.Stats.TotalTime()
		t.AddRow(scheme, "none", f2(faultFree), "-", "-", "-", "-", "-")
		for _, policy := range []fault.Policy{fault.Rollback, fault.Restream} {
			ps := spec.Clone()
			ps.Policy = policy
			e, err := iterEngine(d, base, scheme, k)
			if err != nil {
				return nil, err
			}
			ctl, err := fault.NewController(e.Graph(), e.Cluster(), ps)
			if err != nil {
				return nil, err
			}
			if opt.Tracer != nil || opt.Metrics != nil {
				ctl.SetTelemetry(opt.Tracer, opt.Metrics)
			}
			if err := e.SetFaults(ctl); err != nil {
				return nil, err
			}
			res, err := e.PageRank(faultRecoveryIters, 0.85)
			if err != nil {
				return nil, err
			}
			rec := res.Recovery
			if rec == nil {
				return nil, fmt.Errorf("fault recovery: %s/%s run reported no RecoveryStats", scheme, policy)
			}
			simTime := res.Stats.TotalTime()
			overhead := "-"
			if faultFree > 0 {
				overhead = fmt.Sprintf("%.1f%%", 100*(simTime-faultFree)/faultFree)
			}
			t.AddRow(scheme, string(policy), f2(simTime), overhead,
				d0(rec.Checkpoints), d0(rec.SuperstepsReplayed), d0(rec.RestreamedVertices), f4(rec.AddedWaitRatio))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("schedule: %d event(s), checkpoint every %d supersteps", len(spec.Events), spec.CheckpointEvery),
		"rollback replays from the last checkpoint; restream retires the dead machine and Fennel-streams its vertices onto survivors")
	return t, nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"bpart/internal/engine"
	"bpart/internal/gen"
	"bpart/internal/resview"
	"bpart/internal/telemetry"
)

// The parallel speedup harness measures the engine-side half of ROADMAP
// item 1: real shared-memory parallel supersteps. Each iteration engine is
// run at every width of the worker ladder on the largest reference dataset
// and timed with telemetry.Stopwatch (the sanctioned wall-clock route
// inside the noclock boundary); every measured run is also marshaled and
// compared byte for byte against a 1-worker reference run, so each point
// doubles as a bit-identity proof. Wall columns are the only
// nondeterministic output: simulated times, counters and results are
// identical at every width by the kernel's determinism contract.

// parallelDataset is the speedup workload: friendster-sim, the largest
// reference preset (the acceptance dataset for the >1.5×-at-4-workers
// criterion).
const parallelDataset = gen.FriendsterSim

// parallelPRIters matches the paper's ten PageRank iterations.
const parallelPRIters = 10

// benchParallelSchemes is the always-collected BENCH subset: the baseline
// scheme and BPart. The experiment table sweeps all of compareSchemes.
var benchParallelSchemes = []string{"Chunk-V", "BPart"}

// benchParallelWidths is the artifact section's fixed ladder. Unlike the
// experiment table (which honors -widths), the BENCH section keeps a
// host-independent ladder so the artifact's row set — and under
// -deterministic its bytes — never depends on -widths, -resources or
// -workers.
var benchParallelWidths = []int{1, 2, 4}

// parallelEngineSpec is one engine workload of the sweep: run executes the
// algorithm and returns the marshaled result (outputs + RunStats, the
// byte-identity evidence) plus the run's simulated time.
type parallelEngineSpec struct {
	name string
	run  func(e *engine.Engine) ([]byte, float64, error)
}

func parallelEngineSpecs() []parallelEngineSpec {
	return []parallelEngineSpec{
		{"PageRank", func(e *engine.Engine) ([]byte, float64, error) {
			r, err := e.PageRank(parallelPRIters, 0.85)
			if err != nil {
				return nil, 0, err
			}
			b, err := json.Marshal(r)
			return b, r.Stats.TotalTime(), err
		}},
		{"CC", func(e *engine.Engine) ([]byte, float64, error) {
			r, err := e.ConnectedComponents(0)
			if err != nil {
				return nil, 0, err
			}
			b, err := json.Marshal(r)
			return b, r.Stats.TotalTime(), err
		}},
	}
}

// ParallelMeasurement is one (engine, scheme, workers) point of the sweep.
type ParallelMeasurement struct {
	Engine  string
	Scheme  string
	Workers int
	// WallUS is the best-of-N host wall time; nondeterministic.
	WallUS float64
	// SimTimeUS is the run's simulated time — identical at every width.
	SimTimeUS float64
	// Identical reports that every repetition's marshaled results and
	// RunStats matched the 1-worker reference byte for byte.
	Identical bool
}

// runParallel sweeps engines × schemes × widths on parallelDataset.
// Engines are built quiet (no tracer, metrics, probe, or faults): the
// sweep re-runs each workload many times, and feeding those repetitions
// into the run's trace or histograms would make every observability
// artifact depend on the ladder. The harness instead emits one resview
// ScalingPhase span per repetition through opt.Probe, exactly like the
// scaling probe.
func runParallel(opt Options, schemes []string, widths []int) ([]ParallelMeasurement, error) {
	quiet := opt
	quiet.Tracer, quiet.Metrics, quiet.Probe, quiet.Faults = nil, nil, nil, nil
	quiet.Workers = 0
	var out []ParallelMeasurement
	for _, scheme := range schemes {
		e, err := iterEngine(parallelDataset, quiet, scheme, benchPartitionK)
		if err != nil {
			return nil, fmt.Errorf("parallel speedup: %w", err)
		}
		for _, spec := range parallelEngineSpecs() {
			// The 1-worker reference run: its bytes are the identity oracle
			// for every width (and it warms the graph/partition memos).
			e.Cluster().SetWorkers(1)
			ref, _, err := spec.run(e)
			if err != nil {
				return nil, fmt.Errorf("parallel speedup: %s/%s reference: %w", spec.name, scheme, err)
			}
			for _, wk := range widths {
				if wk < 1 {
					return nil, fmt.Errorf("parallel speedup: width %d, want >= 1", wk)
				}
				e.Cluster().SetWorkers(wk)
				m := ParallelMeasurement{Engine: spec.name, Scheme: scheme, Workers: wk, WallUS: -1, Identical: true}
				for rep := 0; rep < scalingReps; rep++ {
					var pe telemetry.PhaseEnd
					if opt.Probe != nil {
						pe = opt.Probe.BeginPhase(resview.ScalingPhase,
							telemetry.String("scheme", spec.name+"/"+scheme),
							telemetry.Int("workers", wk))
					}
					sw := telemetry.NewStopwatch()
					b, sim, err := spec.run(e)
					us := sw.Seconds() * 1e6
					if pe != nil {
						pe.EndPhase()
					}
					if err != nil {
						return nil, fmt.Errorf("parallel speedup: %s/%s at %d workers: %w", spec.name, scheme, wk, err)
					}
					m.SimTimeUS = sim
					m.Identical = m.Identical && bytes.Equal(b, ref)
					if m.WallUS < 0 || us < m.WallUS {
						m.WallUS = us
					}
				}
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// RunParallelSpeedup measures every compare scheme's engines at every
// width of opt.widths().
func RunParallelSpeedup(opt Options) ([]ParallelMeasurement, error) {
	return runParallel(opt, compareSchemes, opt.widths())
}

// ParallelSpeedup is the experiment wrapper: the measured superstep
// speedup curve as a table, every point verified bit-identical to the
// sequential run.
func ParallelSpeedup(opt Options) (*Table, error) {
	ms, err := RunParallelSpeedup(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Parallel Speedup",
		Title:  "Parallel superstep scaling (friendster-sim, host wall-clock, outputs verified bit-identical)",
		Header: []string{"engine", "scheme", "workers", "wall", "speedup", "efficiency", "sim_time_us", "identical"},
	}
	type curve struct{ eng, scheme string }
	base := map[curve]float64{}
	for _, m := range ms {
		if m.Workers == 1 {
			base[curve{m.Engine, m.Scheme}] = m.WallUS
		}
	}
	for _, m := range ms {
		speedup, eff := 0.0, 0.0
		if b := base[curve{m.Engine, m.Scheme}]; b > 0 && m.WallUS > 0 {
			speedup = b / m.WallUS
			eff = speedup / float64(m.Workers)
		}
		t.AddRow(m.Engine, m.Scheme, d0(m.Workers), fmt.Sprintf("%.2fms", m.WallUS/1e3),
			f2(speedup), f2(eff), f2(m.SimTimeUS), fmt.Sprintf("%t", m.Identical))
	}
	t.Notes = append(t.Notes,
		"wall-clock timings vary by host; the identical column proves every width's results and RunStats matched the 1-worker run byte for byte",
		"sim_time_us is the cost model's verdict and is identical at every width by construction",
		"acceptance tracks PageRank at 4 workers on this dataset against the >1.5x bar (meaningful only on hosts with >= 4 CPUs)")
	return t, nil
}

// CollectParallel fills the artifact's parallel section from one sweep
// over the BENCH scheme subset. The section is additive (omitempty) and —
// like resources — its wall/speedup columns are the only nondeterministic
// fields; StripWallClock zeroes them, leaving the simulated times and the
// identity verdicts, which are independent of the ladder and of
// Options.Workers.
func (a *BenchArtifact) CollectParallel(opt Options) error {
	// The section's sweep is an internal fixed ladder; the resource log's
	// scaling spans reflect the user-requested -widths ladder only, so the
	// probe stays out of this run (the Parallel Speedup experiment emits
	// the observable spans).
	opt.Probe = nil
	ms, err := runParallel(opt, benchParallelSchemes, benchParallelWidths)
	if err != nil {
		return err
	}
	type curve struct{ eng, scheme string }
	base := map[curve]float64{}
	for _, m := range ms {
		if m.Workers == 1 {
			base[curve{m.Engine, m.Scheme}] = m.WallUS
		}
	}
	for _, m := range ms {
		p := BenchParallel{
			Graph:     string(parallelDataset),
			Engine:    m.Engine,
			Scheme:    m.Scheme,
			K:         benchPartitionK,
			Workers:   m.Workers,
			WallUS:    m.WallUS,
			SimTimeUS: m.SimTimeUS,
			Identical: m.Identical,
		}
		if b := base[curve{m.Engine, m.Scheme}]; b > 0 && m.WallUS > 0 {
			p.Speedup = b / m.WallUS
			p.Efficiency = p.Speedup / float64(m.Workers)
		}
		a.Parallel = append(a.Parallel, p)
	}
	return nil
}

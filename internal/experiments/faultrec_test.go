package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bpart/internal/fault"
	"bpart/internal/telemetry"
)

// The Fault Recovery experiment compares every scheme under no-fault,
// rollback and restream; the faulty rows must carry real recovery
// accounting.
func TestFaultRecoveryExperiment(t *testing.T) {
	tbl, err := FaultRecovery(Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*len(compareSchemes) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), 3*len(compareSchemes))
	}
	policies := map[string]int{}
	for _, row := range tbl.Rows {
		policies[row[1]]++
		if row[1] == "none" {
			continue
		}
		// Crash at superstep 5 of 10 with checkpoints: something must have
		// been checkpointed and replayed.
		if row[4] == "0" || row[5] == "0" {
			t.Fatalf("faulty row has no recovery work: %v", row)
		}
		if row[1] == string(fault.Restream) && row[6] == "0" {
			t.Fatalf("restream row moved no vertices: %v", row)
		}
	}
	for _, p := range []string{"none", "rollback", "restream"} {
		if policies[p] != len(compareSchemes) {
			t.Fatalf("policy %s has %d rows: %v", p, policies[p], policies)
		}
	}
}

// Options.Faults must reach the engines an experiment builds: a faulted
// Fig 13 run emits fault events through the shared tracer and registry.
func TestOptionsFaultsReachEngines(t *testing.T) {
	mem := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	spec := &fault.Spec{CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 2, Machine: 1}}}
	opt := Options{Scale: testScale, Tracer: mem, Metrics: reg, Faults: spec}
	if _, err := Fig13(opt); err != nil {
		t.Fatal(err)
	}
	if len(mem.Find("fault.crash")) == 0 {
		t.Fatal("faulted Fig 13 run emitted no fault.crash events")
	}
	if reg.Counter("fault_crashes_total").Value() == 0 {
		t.Fatal("faulted Fig 13 run counted no crashes")
	}
}

// With -fault, the artifact grows a recovery section: one row per scheme,
// each with the fault-free comparison time; without it, the key is absent
// (additive schema).
func TestBenchArtifactRecoverySection(t *testing.T) {
	spec := &fault.Spec{CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 3, Machine: 1}}}
	opt := Options{Scale: testScale, Faults: spec}
	a := NewBenchArtifact(opt)
	if err := a.Collect(opt, nil); err != nil {
		t.Fatal(err)
	}
	if len(a.Recovery) != len(allSchemes) {
		t.Fatalf("got %d recovery rows, want %d", len(a.Recovery), len(allSchemes))
	}
	for _, r := range a.Recovery {
		if r.Crashes != 1 || r.Checkpoints == 0 || r.SuperstepsReplayed == 0 {
			t.Fatalf("%s recovery row = %+v", r.Scheme, r)
		}
		if r.SimTimeUS <= r.FaultFreeSimTimeUS {
			t.Fatalf("%s faulty run not slower: %v <= %v", r.Scheme, r.SimTimeUS, r.FaultFreeSimTimeUS)
		}
		if r.Policy != string(fault.Rollback) {
			t.Fatalf("%s policy = %q", r.Scheme, r.Policy)
		}
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"recovery"`) || !strings.Contains(buf.String(), `"supersteps_replayed"`) {
		t.Fatalf("recovery section missing from JSON:\n%.300s", buf.String())
	}
	got, err := ReadBenchArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Recovery) != len(a.Recovery) || got.Recovery[0] != a.Recovery[0] {
		t.Fatalf("recovery section did not round-trip: %+v", got.Recovery)
	}

	plain := NewBenchArtifact(Options{Scale: testScale})
	if err := plain.Collect(Options{Scale: testScale}, nil); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"recovery"`) {
		t.Fatal("fault-free artifact still carries a recovery key")
	}
}

// StripWallClock must zero exactly the nondeterministic fields.
func TestStripWallClock(t *testing.T) {
	a := NewBenchArtifact(Options{Scale: testScale})
	a.RecordExperiment("Fig 13", 1.5, 4, nil)
	a.RecordExperiment("Fig 14", 0.25, 2, nil)
	a.StripWallClock()
	for _, e := range a.Experiments {
		if e.WallSeconds != 0 {
			t.Fatalf("wall clock survived strip: %+v", e)
		}
		if e.Rows == 0 {
			t.Fatalf("strip clobbered rows: %+v", e)
		}
	}
}

package experiments

import (
	"bytes"
	"fmt"

	"bpart/internal/gen"
	"bpart/internal/servestats"
)

// The canonical serving workload: a fixed seeded Zipf request stream
// (lookup-heavy with k-hop and walk traffic mixed in) replayed in-process
// through the full HTTP surface per scheme. The stream is identical across
// runs and schemes, so the routing columns are regression-diffable; only
// the latency columns are wall-clock.
const (
	benchServingSeed     = 1
	benchServingRequests = 1200
	benchServingZipf     = 1.1
)

// BenchServingEndpoint is one endpoint's latency digest in a serving cell.
// The percentile fields are wall-clock (StripWallClock zeroes them); the
// request count is deterministic.
type BenchServingEndpoint struct {
	Endpoint string  `json:"endpoint"`
	Requests int64   `json:"requests"`
	P50US    float64 `json:"p50_us"`
	P95US    float64 `json:"p95_us"`
	P99US    float64 `json:"p99_us"`
	P999US   float64 `json:"p999_us"`
}

// BenchServing is one (graph, scheme, k) cell of the artifact's serving
// section: the canonical Zipf stream served by that scheme's assignment,
// with per-endpoint tail latencies and the routing-skew columns that tie
// serving pressure back to partition balance. HotPart/HotShare/MaxPressure
// derive purely from the seeded stream and the assignment, so they are
// deterministic at a fixed scale.
type BenchServing struct {
	Graph    string `json:"graph"`
	Scheme   string `json:"scheme"`
	K        int    `json:"k"`
	Requests int64  `json:"requests"`
	// HotPart absorbed the largest request share (HotShare of routed
	// requests); MaxPressure is the worst part's request-share over
	// vertex-share ratio (1.0 = load exactly proportional to size).
	HotPart     int                    `json:"hot_part"`
	HotShare    float64                `json:"hot_share"`
	MaxPressure float64                `json:"max_pressure"`
	Endpoints   []BenchServingEndpoint `json:"endpoints"`
}

// collectServing fills the serving section: every scheme serves the same
// seeded request stream through servestats' in-process player, and the
// resulting request log is digested with the exact same reader and
// attribution path `tracestat serve` uses on a live bpartd's -reqlog.
func (a *BenchArtifact) collectServing(d gen.Dataset, opt Options) error {
	g, err := dataset(d, opt)
	if err != nil {
		return err
	}
	reqs, err := servestats.Workload{
		Seed:     benchServingSeed,
		Vertices: g.NumVertices(),
		Requests: benchServingRequests,
		ZipfS:    benchServingZipf,
		LookupW:  2, KHopW: 1, WalkW: 1,
	}.Generate()
	if err != nil {
		return fmt.Errorf("bench artifact: serving workload: %w", err)
	}
	for _, scheme := range allSchemes {
		parts, err := assignment(d, opt, scheme, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
		b, err := servestats.NewBackend(g, parts, benchPartitionK)
		if err != nil {
			return fmt.Errorf("bench artifact: %s serving backend: %w", scheme, err)
		}
		var buf bytes.Buffer
		rec := servestats.NewRecorder(benchPartitionK, &buf, nil)
		srv := &servestats.Server{B: b, R: rec}
		if err := srv.Play(reqs); err != nil {
			return fmt.Errorf("bench artifact: %s: %w", scheme, err)
		}
		if err := rec.Close(); err != nil {
			return fmt.Errorf("bench artifact: %s: %w", scheme, err)
		}
		l, err := servestats.Read(&buf)
		if err != nil {
			return fmt.Errorf("bench artifact: %s serving log: %w", scheme, err)
		}
		rep := servestats.Summarize(l)
		attrib, err := servestats.Attribute(l, parts, benchPartitionK, 1)
		if err != nil {
			return fmt.Errorf("bench artifact: %s serving attribution: %w", scheme, err)
		}
		cell := BenchServing{
			Graph:    string(d),
			Scheme:   scheme,
			K:        benchPartitionK,
			Requests: rep.Total,
			HotPart:  -1,
		}
		for _, at := range attrib {
			if at.Share > cell.HotShare {
				cell.HotPart, cell.HotShare = at.Part, at.Share
			}
			if at.Pressure > cell.MaxPressure {
				cell.MaxPressure = at.Pressure
			}
		}
		for _, e := range rep.Endpoints {
			cell.Endpoints = append(cell.Endpoints, BenchServingEndpoint{
				Endpoint: e.Endpoint,
				Requests: e.Count,
				P50US:    e.P50,
				P95US:    e.P95,
				P99US:    e.P99,
				P999US:   e.P999,
			})
		}
		a.Serving = append(a.Serving, cell)
	}
	return nil
}

package experiments

import (
	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/walk"
)

// AblationHetero probes a limitation the paper leaves implicit: BPart (and
// every balance-driven scheme) targets *uniform* loads, which is optimal
// only for homogeneous clusters. On a cluster whose machine 0 runs at half
// speed, a uniformly balanced partition makes machine 0 the permanent
// straggler; the waiting advantage over Hash narrows and everyone's wait
// ratio floor rises.
func AblationHetero(opt Options) (*Table, error) {
	const k = 8
	t := &Table{
		ID:     "Ablation Hetero",
		Title:  "Waiting ratio on homogeneous vs heterogeneous clusters (twitter-sim, k=8)",
		Header: []string{"scheme", "homogeneous", "machine0 at half speed"},
		Notes: []string{
			"uniform 2D balance is the optimum only for equal machines; heterogeneity-aware targets are future work",
		},
	}
	g, err := dataset(gen.TwitterSim, opt)
	if err != nil {
		return nil, err
	}
	slow := cluster.DefaultCostModel()
	slow.Speeds = make([]float64, k)
	for i := range slow.Speeds {
		slow.Speeds[i] = 1
	}
	slow.Speeds[0] = 0.5

	for _, scheme := range []string{"Chunk-V", "Hash", "BPart"} {
		parts, err := assignment(gen.TwitterSim, opt, scheme, k)
		if err != nil {
			return nil, err
		}
		row := []string{scheme}
		for _, model := range []cluster.CostModel{cluster.DefaultCostModel(), slow} {
			e, err := walk.New(g, parts, k, model)
			if err != nil {
				return nil, err
			}
			res, err := e.Run(walk.Config{Kind: walk.Simple, WalkersPerVertex: opt.loadWalkers(), Steps: 4, Seed: 1})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(res.Stats.WaitRatio()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

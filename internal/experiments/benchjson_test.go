package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"bpart/internal/telemetry"
)

// The artifact must round-trip through its own reader and carry the full
// canonical comparison: every scheme, with sane metric ranges.
func TestBenchArtifactRoundTrip(t *testing.T) {
	opt := Options{Scale: testScale, Metrics: telemetry.NewRegistry()}
	a := NewBenchArtifact(opt)
	a.RecordExperiment("Fig 13", 1.25, 4, nil)
	a.RecordExperiment("Fig 14", 0.5, 0, errors.New("boom"))
	if err := a.Collect(opt, opt.Metrics); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != BenchSchemaVersion || got.Scale != testScale {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Experiments) != 2 || got.Experiments[1].Error != "boom" {
		t.Fatalf("experiments = %+v", got.Experiments)
	}
	if len(got.Partitions) != len(allSchemes) {
		t.Fatalf("got %d partitions, want %d", len(got.Partitions), len(allSchemes))
	}
	seen := map[string]bool{}
	for _, p := range got.Partitions {
		seen[p.Scheme] = true
		if p.K != benchPartitionK || p.Graph == "" {
			t.Fatalf("partition cell = %+v", p)
		}
		if p.SimTimeUS <= 0 || p.WaitRatio < 0 || p.WaitRatio > 1 {
			t.Fatalf("%s runtime columns = %+v", p.Scheme, p)
		}
		if p.VertexJain <= 0 || p.VertexJain > 1.000001 || p.CutRatio < 0 || p.CutRatio > 1 {
			t.Fatalf("%s quality columns = %+v", p.Scheme, p)
		}
	}
	for _, s := range allSchemes {
		if !seen[s] {
			t.Fatalf("scheme %s missing from partitions", s)
		}
	}
	// The comm section mirrors the canonical walk through the matrix: one
	// cell per scheme, with metrics in their defined ranges.
	if len(got.Comm) != len(allSchemes) {
		t.Fatalf("got %d comm cells, want %d", len(got.Comm), len(allSchemes))
	}
	for _, c := range got.Comm {
		if c.K != benchPartitionK || c.Graph == "" || c.Messages <= 0 {
			t.Fatalf("comm cell = %+v", c)
		}
		if c.ImbalanceRatio < 1 || c.PairJain <= 0 || c.PairJain > 1.000001 {
			t.Fatalf("%s comm metrics = %+v", c.Scheme, c)
		}
		if c.HotSrc == c.HotDst || c.HotShare <= 0 || c.HotShare > 1 {
			t.Fatalf("%s hot pair = %+v", c.Scheme, c)
		}
	}
	// The canonical walk ran through the registry-instrumented engine, so
	// the histogram section must be populated — including the comm_*
	// histograms from the capture-enabled walk.
	if len(got.Histograms) == 0 {
		t.Fatal("no histogram summaries collected")
	}
	foundComm := false
	for _, h := range got.Histograms {
		if h.Name == "comm_pair_batch_messages" {
			foundComm = true
		}
	}
	if !foundComm {
		t.Fatal("comm_pair_batch_messages histogram missing from artifact")
	}
}

// Byte-determinism: identical contents must marshal identically, with the
// schema version leading so consumers can dispatch on it.
func TestBenchArtifactDeterministicEncoding(t *testing.T) {
	opt := Options{Scale: testScale}
	a := NewBenchArtifact(opt)
	a.RecordExperiment("Fig 13", 1, 4, nil)
	if err := a.Collect(opt, nil); err != nil {
		t.Fatal(err)
	}
	var one, two bytes.Buffer
	if err := a.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("two marshals of the same artifact differ")
	}
	head := one.String()[:strings.Index(one.String(), "\n")+1]
	rest := one.String()[len(head):]
	if !strings.Contains(rest[:strings.Index(rest, "\n")], "schema_version") {
		t.Fatalf("schema_version is not the first field:\n%s", one.String()[:200])
	}
	// Empty sections marshal as [] rather than null, so jq-style consumers
	// can iterate unconditionally.
	if strings.Contains(one.String(), "null") {
		t.Fatalf("artifact contains null sections:\n%s", one.String())
	}
}

func TestReadBenchArtifactRejectsWrongVersion(t *testing.T) {
	_, err := ReadBenchArtifact(strings.NewReader(`{"schema_version": 999}`))
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
	if _, err := ReadBenchArtifact(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Threading Tracer/Metrics through Options must reach the engines: a
// traced experiment run emits superstep events and histogram samples.
func TestOptionsTelemetryReachesEngines(t *testing.T) {
	mem := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	opt := Options{Scale: testScale, Tracer: mem, Metrics: reg}
	if _, err := Fig13(opt); err != nil {
		t.Fatal(err)
	}
	if got := len(mem.Find("cluster.superstep")); got == 0 {
		t.Fatal("traced Fig 13 run emitted no cluster.superstep records")
	}
	if reg.Histogram("cluster_superstep_time_us").Count() == 0 {
		t.Fatal("traced Fig 13 run observed no superstep-time histogram samples")
	}
}

// json.Marshal of the artifact must stay a flat, versioned object — guard
// the wire shape a consumer greps for.
func TestBenchArtifactWireShape(t *testing.T) {
	a := NewBenchArtifact(Options{Scale: 1})
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "scale", "experiments", "partitions", "comm", "serving", "histograms"} {
		if _, ok := m[key]; !ok {
			t.Errorf("artifact missing %q key", key)
		}
	}
}

package servestats

import (
	"math"
	"strings"
	"testing"
)

// syntheticLog builds a log routed exactly per parts: vertex v goes to
// parts[v], round-robin over endpoints, latency proportional to the part
// id so per-part percentiles are distinguishable.
func syntheticLog(parts []int, requests int, version int) *Log {
	l := &Log{}
	for i := 0; i < requests; i++ {
		v := i % len(parts)
		l.Records = append(l.Records, Record{
			Seq:       int64(i + 1),
			Endpoint:  Endpoints[i%len(Endpoints)],
			Vertex:    int64(v),
			Part:      parts[v],
			Version:   version,
			Status:    200,
			LatencyUS: float64(100 * (parts[v] + 1)),
		})
	}
	return l
}

func TestSummarize(t *testing.T) {
	parts := []int{0, 0, 0, 1}
	l := syntheticLog(parts, 400, 1)
	rep := Summarize(l)
	if rep.Total != 400 || rep.Routed != 400 {
		t.Fatalf("total=%d routed=%d", rep.Total, rep.Routed)
	}
	if len(rep.Endpoints) != 3 {
		t.Fatalf("endpoints = %+v", rep.Endpoints)
	}
	for _, e := range rep.Endpoints {
		if e.Count == 0 || e.P50 <= 0 || e.P999 < e.P50 {
			t.Fatalf("endpoint digest %+v", e)
		}
	}
	if len(rep.Parts) != 2 {
		t.Fatalf("parts = %+v", rep.Parts)
	}
	// Vertices 0..2 are part 0 → 3/4 of traffic.
	if math.Abs(rep.Parts[0].Share-0.75) > 1e-9 {
		t.Fatalf("part 0 share = %g, want 0.75", rep.Parts[0].Share)
	}
	// Part 1 latencies (200µs) are strictly above part 0's (100µs).
	if rep.Parts[1].P50 <= rep.Parts[0].P50 {
		t.Fatalf("part latencies not separated: %+v", rep.Parts)
	}
	if len(rep.Versions) != 1 || rep.Versions[0].Version != 1 || rep.Versions[0].Count != 400 {
		t.Fatalf("versions = %+v", rep.Versions)
	}
}

func TestSummarizeCountsErrorsAndUnrouted(t *testing.T) {
	l := &Log{Records: []Record{
		{Seq: 1, Endpoint: EndpointLookup, Vertex: 1, Part: 0, Version: 1, Status: 200, LatencyUS: 10},
		{Seq: 2, Endpoint: EndpointLookup, Vertex: 999, Part: -1, Version: 1, Status: 400, LatencyUS: 5},
	}}
	rep := Summarize(l)
	if rep.Total != 2 || rep.Routed != 1 {
		t.Fatalf("total=%d routed=%d", rep.Total, rep.Routed)
	}
	if rep.Endpoints[0].Errors != 1 {
		t.Fatalf("errors = %d", rep.Endpoints[0].Errors)
	}
}

func TestAttributeReconcilesExactly(t *testing.T) {
	parts := []int{0, 0, 0, 0, 0, 0, 1, 1, 2, 2} // 6/2/2 split over k=3
	l := syntheticLog(parts, 1000, 1)
	attrib, err := Attribute(l, parts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrib) != 3 {
		t.Fatalf("attribution rows = %d", len(attrib))
	}
	var total int64
	for _, a := range attrib {
		total += a.Requests
	}
	if total != 1000 {
		t.Fatalf("per-part requests sum to %d, want 1000", total)
	}
	// Round-robin over 10 vertices: each vertex gets exactly 100 requests,
	// so part shares reconcile exactly against vertex shares.
	if attrib[0].Requests != 600 || attrib[1].Requests != 200 || attrib[2].Requests != 200 {
		t.Fatalf("requests = %+v", attrib)
	}
	for _, a := range attrib {
		if math.Abs(a.Share-a.VShare) > 1e-9 {
			t.Fatalf("part %d share %g != vertex share %g under uniform traffic", a.Part, a.Share, a.VShare)
		}
		if math.Abs(a.Pressure-1) > 1e-9 {
			t.Fatalf("part %d pressure = %g, want 1", a.Part, a.Pressure)
		}
		if a.P99 <= 0 {
			t.Fatalf("part %d missing latency digest", a.Part)
		}
	}
}

func TestAttributeSkewedPressure(t *testing.T) {
	parts := []int{0, 1, 1, 1} // part 0 holds 25% of vertices
	l := &Log{}
	for i := 0; i < 100; i++ {
		// All traffic hammers vertex 0 → part 0 absorbs 100% on 25% size.
		l.Records = append(l.Records, Record{
			Seq: int64(i + 1), Endpoint: EndpointLookup, Vertex: 0, Part: 0,
			Version: 1, Status: 200, LatencyUS: 50,
		})
	}
	attrib, err := Attribute(l, parts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(attrib[0].Pressure-4) > 1e-9 {
		t.Fatalf("hot part pressure = %g, want 4", attrib[0].Pressure)
	}
	if attrib[1].Requests != 0 || attrib[1].Pressure != 0 {
		t.Fatalf("cold part = %+v", attrib[1])
	}
}

func TestAttributeRejectsMisrouting(t *testing.T) {
	parts := []int{0, 1}
	l := &Log{Records: []Record{
		{Seq: 1, Endpoint: EndpointLookup, Vertex: 0, Part: 1, Version: 1, Status: 200},
	}}
	if _, err := Attribute(l, parts, 2, 1); err == nil || !strings.Contains(err.Error(), "assignment says") {
		t.Fatalf("misrouted record accepted: %v", err)
	}
	// Out-of-range vertex and part are also hard errors.
	l.Records[0] = Record{Seq: 1, Endpoint: EndpointLookup, Vertex: 9, Part: 0, Version: 1}
	if _, err := Attribute(l, parts, 2, 1); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	l.Records[0] = Record{Seq: 1, Endpoint: EndpointLookup, Vertex: 0, Part: 5, Version: 1}
	if _, err := Attribute(l, parts, 2, 1); err == nil {
		t.Fatal("out-of-range part accepted")
	}
}

func TestAttributeFiltersVersions(t *testing.T) {
	parts := []int{0, 1}
	l := &Log{Records: []Record{
		{Seq: 1, Endpoint: EndpointLookup, Vertex: 0, Part: 0, Version: 1, Status: 200},
		// A v2 record routed differently must not break v1 attribution.
		{Seq: 2, Endpoint: EndpointLookup, Vertex: 0, Part: 1, Version: 2, Status: 200},
		// Unrouted records are skipped regardless of version.
		{Seq: 3, Endpoint: EndpointLookup, Vertex: 0, Part: -1, Version: 1, Status: 400},
	}}
	attrib, err := Attribute(l, parts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if attrib[0].Requests != 1 || attrib[1].Requests != 0 {
		t.Fatalf("v1 attribution = %+v", attrib)
	}
}

package servestats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bpart/internal/gio"
)

func newTestServer(t *testing.T, n, k int, logSink *bytes.Buffer) (*Server, *Backend) {
	t.Helper()
	g := ringGraph(n)
	b, err := NewBackend(g, blockAssignment(n, k), k)
	if err != nil {
		t.Fatal(err)
	}
	var rec *Recorder
	if logSink != nil {
		rec = NewRecorder(k, logSink, nil)
	}
	return &Server{B: b, R: rec}, b
}

func getJSON(t *testing.T, mux *http.ServeMux, path string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if out != nil && rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: bad JSON %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestServerEndpoints(t *testing.T) {
	var buf bytes.Buffer
	s, _ := newTestServer(t, 16, 4, &buf)
	mux := s.Mux()

	var lr LookupResponse
	if code := getJSON(t, mux, "/v1/lookup?v=5", &lr); code != 200 {
		t.Fatalf("lookup = %d", code)
	}
	if lr.Vertex != 5 || lr.Part != 1 || lr.Version != 1 {
		t.Fatalf("lookup = %+v", lr)
	}

	var kr KHopResponse
	if code := getJSON(t, mux, "/v1/khop?v=0&hops=2&limit=2", &kr); code != 200 {
		t.Fatalf("khop = %d", code)
	}
	if kr.Count != 4 || len(kr.Sample) != 2 || kr.Version != 1 {
		t.Fatalf("khop = %+v", kr)
	}

	var wr WalkResponse
	if code := getJSON(t, mux, "/v1/walk?v=3&steps=20&alpha=0.1&seed=9", &wr); code != 200 {
		t.Fatalf("walk = %d", code)
	}
	if wr.Visited != 20 || wr.Version != 1 || wr.Part != 0 {
		t.Fatalf("walk = %+v", wr)
	}
	var wr2 WalkResponse
	getJSON(t, mux, "/v1/walk?v=3&steps=20&alpha=0.1&seed=9", &wr2)
	if wr2.End != wr.End {
		t.Fatalf("seeded walk not reproducible over HTTP: %d vs %d", wr2.End, wr.End)
	}

	for _, path := range []string{
		"/v1/lookup", "/v1/lookup?v=banana", "/v1/lookup?v=99",
		"/v1/khop?v=0&hops=0", "/v1/khop?v=0&limit=-1",
		"/v1/walk?v=0&steps=0", "/v1/walk?v=0&alpha=2", "/v1/walk?v=0&seed=x",
	} {
		if code := getJSON(t, mux, path, nil); code != 400 {
			t.Errorf("%s = %d, want 400", path, code)
		}
	}

	var st StatzResponse
	if code := getJSON(t, mux, "/v1/statz", &st); code != 200 {
		t.Fatalf("statz = %d", code)
	}
	if st.Version != 1 || st.K != 4 || st.Inflight != 0 || len(st.Window) != len(Endpoints) {
		t.Fatalf("statz = %+v", st)
	}

	if err := s.R.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4 good + 8 bad requests recorded (statz is not a serving endpoint).
	if len(l.Records) != 12 {
		t.Fatalf("recorded %d requests, want 12", len(l.Records))
	}
}

func TestServerSwapByBodyAndScheme(t *testing.T) {
	s, b := newTestServer(t, 12, 2, nil)
	mux := s.Mux()

	// Upload an assignment body in the gio text format.
	var body bytes.Buffer
	if err := gio.WriteAssignment(&body, blockAssignment(12, 3), 3); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/swapz", &body))
	if rec.Code != 200 {
		t.Fatalf("swap by body = %d: %s", rec.Code, rec.Body.String())
	}
	var sr SwapResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Version != 2 || sr.K != 3 || b.View().K() != 3 {
		t.Fatalf("swap = %+v, backend k=%d", sr, b.View().K())
	}

	// Repartition callback path.
	s.Repartition = func(scheme string, k int) ([]int, error) {
		if scheme == "fail" {
			return nil, fmt.Errorf("scheme exploded")
		}
		return blockAssignment(12, k), nil
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/swapz?scheme=Hash&k=4", nil))
	if rec.Code != 200 {
		t.Fatalf("swap by scheme = %d: %s", rec.Code, rec.Body.String())
	}
	if v := b.View(); v.Version() != 3 || v.K() != 4 {
		t.Fatalf("backend after scheme swap = v%d k%d", v.Version(), v.K())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/swapz?scheme=fail", nil))
	if rec.Code != 422 {
		t.Fatalf("failing repartition = %d", rec.Code)
	}
	// GET is rejected; a bad body is rejected.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/swapz", nil))
	if rec.Code != 405 {
		t.Fatalf("GET swap = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/swapz", strings.NewReader("junk")))
	if rec.Code != 400 {
		t.Fatalf("junk swap body = %d", rec.Code)
	}
}

// TestSeededRunDeterministicRouting is the acceptance criterion: the same
// seeded workload against the same assignment produces the same request
// stream and per-part routing — the wall-clock-stripped logs are
// identical, record for record.
func TestSeededRunDeterministicRouting(t *testing.T) {
	run := func() []Record {
		var buf bytes.Buffer
		s, _ := newTestServer(t, 64, 4, &buf)
		reqs, err := Workload{
			Seed: 1234, Vertices: 64, Requests: 300, ZipfS: 1.0,
			LookupW: 2, KHopW: 1, WalkW: 1,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Play(reqs); err != nil {
			t.Fatal(err)
		}
		if err := s.R.Close(); err != nil {
			t.Fatal(err)
		}
		l, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		l.StripWallClock()
		return l.Records
	}
	a, b := run(), run()
	if len(a) != 300 {
		t.Fatalf("run recorded %d requests, want 300", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("seeded runs produced different routing traces")
	}
	// And the trace reconciles exactly against the assignment.
	attrib, err := Attribute(&Log{Records: a}, blockAssignment(64, 4), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, row := range attrib {
		total += row.Requests
	}
	if total != 300 {
		t.Fatalf("attribution covers %d of 300 requests", total)
	}
}

// TestHotSwapUnderLoad is the hot-swap acceptance criterion: an atomic
// flip under concurrent load completes with zero failed requests, and
// every response is attributable to exactly one assignment version — its
// reported part matches that version's assignment, never a mix.
func TestHotSwapUnderLoad(t *testing.T) {
	const n = 64
	partsV1 := blockAssignment(n, 2)
	partsV2 := make([]int, n) // reversed blocks, different k
	for i := range partsV2 {
		partsV2[i] = (n - 1 - i) * 4 / n
	}

	var buf bytes.Buffer
	g := ringGraph(n)
	b, err := NewBackend(g, partsV1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(2, &buf, nil)
	s := &Server{B: b, R: rec}
	mux := s.Mux()

	type obs struct {
		vertex  int64
		part    int
		version int
		code    int
	}
	const workers, perWorker = 8, 200
	results := make([][]obs, workers)
	var start sync.WaitGroup
	start.Add(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 {
					// Mid-stream, one worker triggers the swap so load
					// genuinely straddles the flip.
					if _, err := b.Swap(partsV2, 4); err != nil {
						t.Errorf("swap: %v", err)
					}
				}
				v := (w*perWorker + i) % n
				r := httptest.NewRecorder()
				mux.ServeHTTP(r, httptest.NewRequest("GET", fmt.Sprintf("/v1/lookup?v=%d", v), nil))
				var lr LookupResponse
				if r.Code == 200 {
					if err := json.Unmarshal(r.Body.Bytes(), &lr); err != nil {
						t.Errorf("bad lookup body: %v", err)
					}
				}
				results[w] = append(results[w], obs{int64(v), lr.Part, lr.Version, r.Code})
			}
		}(w)
	}
	start.Done()
	wg.Wait()

	var v1, v2 int
	for _, rs := range results {
		for _, o := range rs {
			if o.code != 200 {
				t.Fatalf("request failed with %d during swap", o.code)
			}
			switch o.version {
			case 1:
				v1++
				if want := partsV1[o.vertex]; o.part != want {
					t.Fatalf("v1 response routed vertex %d to part %d, assignment says %d", o.vertex, o.part, want)
				}
			case 2:
				v2++
				if want := partsV2[o.vertex]; o.part != want {
					t.Fatalf("v2 response routed vertex %d to part %d, assignment says %d", o.vertex, o.part, want)
				}
			default:
				t.Fatalf("response attributed to version %d", o.version)
			}
		}
	}
	if v1+v2 != workers*perWorker {
		t.Fatalf("version census %d+%d covers %d of %d responses", v1, v2, v1+v2, workers*perWorker)
	}
	if v2 == 0 {
		t.Fatal("no response observed the new version; swap never took effect under load")
	}

	// The request log reconciles per version too: each version's records
	// attribute cleanly against that version's assignment.
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != workers*perWorker {
		t.Fatalf("log has %d records, want %d", len(l.Records), workers*perWorker)
	}
	if _, err := Attribute(l, partsV1, 2, 1); err != nil {
		t.Fatalf("v1 attribution: %v", err)
	}
	if _, err := Attribute(l, partsV2, 4, 2); err != nil {
		t.Fatalf("v2 attribution: %v", err)
	}
	rep := Summarize(l)
	if len(rep.Versions) != 2 {
		t.Fatalf("version census = %+v", rep.Versions)
	}
}

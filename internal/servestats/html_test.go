package servestats

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteHTML(t *testing.T) {
	parts := []int{0, 0, 0, 1}
	l := syntheticLog(parts, 200, 1)
	l.Truncated = true
	rep := Summarize(l)
	attrib, err := Attribute(l, parts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, rep, attrib); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "lookup", "khop", "walk",
		"p99", "torn final line", "pressure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 2 {
		t.Errorf("want 2 SVG charts, got %d", strings.Count(out, "<svg"))
	}
	// No attribution: the part chart still renders, without pressure rows.
	buf.Reset()
	if err := WriteHTML(&buf, rep, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("attribution-less HTML lost its charts")
	}
}

func TestGateCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gate.json")
	writeFile(t, path, `{"v":1,"max_p99_us":{"lookup":1000,"khop":5000}}`)
	g, err := ReadGateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Endpoints: []EndpointStats{
		{Endpoint: EndpointLookup, P99: 900},
		{Endpoint: EndpointWalk, P99: 1e9}, // no ceiling → passes
	}}
	if err := g.Check(rep); err != nil {
		t.Fatalf("passing report failed gate: %v", err)
	}
	rep.Endpoints[0].P99 = 1500
	if err := g.Check(rep); err == nil || !strings.Contains(err.Error(), "exceeds gate") {
		t.Fatalf("regression passed gate: %v", err)
	}

	for name, content := range map[string]string{
		"bad json":    "{",
		"bad version": `{"v":9,"max_p99_us":{"lookup":1}}`,
		"empty":       `{"v":1,"max_p99_us":{}}`,
	} {
		p := filepath.Join(dir, "bad.json")
		writeFile(t, p, content)
		if _, err := ReadGateFile(p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := ReadGateFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing gate file accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package servestats

import (
	"fmt"
	"io"
)

// WriteText renders the report as the terminal tables `tracestat serve`
// prints: per-endpoint percentiles, per-part share/tail, the version
// census, and (when attribution is available) the pressure table tying
// request share to part size. Errors from w are returned — the report may
// be piped somewhere that matters.
func WriteText(w io.Writer, rep *Report, attrib []Attribution) error {
	if _, err := fmt.Fprintf(w, "Serving report: %d requests, %d routed", rep.Total, rep.Routed); err != nil {
		return err
	}
	if rep.Truncated {
		if _, err := io.WriteString(w, "  [log truncated: torn final line]"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n\nPer endpoint:\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-8s %8s %6s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "p50", "p95", "p99", "p999"); err != nil {
		return err
	}
	for _, e := range rep.Endpoints {
		if _, err := fmt.Fprintf(w, "  %-8s %8d %6d %10s %10s %10s %10s\n",
			e.Endpoint, e.Count, e.Errors,
			fmtUS(e.P50), fmtUS(e.P95), fmtUS(e.P99), fmtUS(e.P999)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\nPer part:\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-5s %8s %7s %10s %10s %10s\n",
		"part", "requests", "share", "p50", "p99", "p999"); err != nil {
		return err
	}
	for _, p := range rep.Parts {
		if _, err := fmt.Fprintf(w, "  %-5d %8d %6.1f%% %10s %10s %10s\n",
			p.Part, p.Count, 100*p.Share,
			fmtUS(p.P50), fmtUS(p.P99), fmtUS(p.P999)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\nVersions:\n"); err != nil {
		return err
	}
	for _, v := range rep.Versions {
		if _, err := fmt.Fprintf(w, "  v%-3d %8d requests\n", v.Version, v.Count); err != nil {
			return err
		}
	}
	if len(attrib) > 0 {
		if _, err := io.WriteString(w, "\nTail attribution (request share vs part size):\n"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-5s %8s %7s %8s %9s %10s\n",
			"part", "requests", "share", "v-share", "pressure", "p99"); err != nil {
			return err
		}
		for _, a := range attrib {
			if _, err := fmt.Fprintf(w, "  %-5d %8d %6.1f%% %7.1f%% %8.2fx %10s\n",
				a.Part, a.Requests, 100*a.Share, 100*a.VShare, a.Pressure, fmtUS(a.P99)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fmtUS renders a microsecond latency human-first.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

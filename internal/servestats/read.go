package servestats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one parsed request record.
type Record struct {
	// Seq is the recorder's monotone emission index (1-based).
	Seq int64
	// Endpoint is the request class: "lookup", "khop" or "walk".
	Endpoint string
	// Vertex is the requested vertex id.
	Vertex int64
	// Part is the part the request routed to under the serving view, -1
	// when the request never resolved (bad vertex).
	Part int
	// Version is the assignment view version that answered the request, 0
	// when no view was consulted.
	Version int
	// Status is the HTTP status returned.
	Status int
	// LatencyUS is the request's wall-clock service time in microseconds.
	LatencyUS float64
}

// Log is a fully parsed request log.
type Log struct {
	Records []Record
	// Truncated reports that the final line was torn — the serving process
	// died mid-write (the Recorder writes whole lines, so only the last
	// line of a crashed run can be damaged). The parsed prefix is complete
	// and usable.
	Truncated bool
}

// StripWallClock zeroes every host-dependent field — only LatencyUS —
// leaving the deterministic structure (seq, endpoint, vertex, routing,
// version, status). Two seeded runs of the same workload strip to
// identical logs; that is the routing-trace determinism CI pins.
func (l *Log) StripWallClock() {
	for i := range l.Records {
		l.Records[i].LatencyUS = 0
	}
}

// jsonRecord is the wire shape of one request line. Fields marshal in
// declaration order, so recorder output is layout-stable.
type jsonRecord struct {
	V         int     `json:"v"`
	Type      string  `json:"type"`
	Seq       int64   `json:"seq"`
	Endpoint  string  `json:"endpoint"`
	Vertex    int64   `json:"vertex"`
	Part      int     `json:"part"`
	Version   int     `json:"version"`
	Status    int     `json:"status"`
	LatencyUS float64 `json:"latency_us"`
}

// maxLine bounds one JSONL line, matching the traceview/resview readers.
const maxLine = 16 << 20

// Read parses a JSONL request log. It follows traceview.Read's tolerance
// contract exactly: only a torn final line is tolerated (flagged via
// Log.Truncated), interior damage or an all-garbage first line is a hard
// error, and unknown schema versions are rejected.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	l := &Log{}
	type bad struct {
		line int
		err  error
	}
	var pending *bad
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pending != nil {
			return nil, fmt.Errorf("servestats: line %d: %w (not the final line, refusing to skip)", pending.line, pending.err)
		}
		rec, err := parseLine(line)
		if err != nil {
			pending = &bad{lineNo, err}
			continue
		}
		l.Records = append(l.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("servestats: read: %w", err)
	}
	if pending != nil {
		// A torn tail is only tolerable when it follows a usable prefix; if
		// the very first line is garbage the file is not a request log at
		// all, and "empty but truncated" would hide that from callers.
		if len(l.Records) == 0 {
			return nil, fmt.Errorf("servestats: line %d: %w (no valid request records precede it)", pending.line, pending.err)
		}
		l.Truncated = true
	}
	return l, nil
}

// ReadFile parses the JSONL request log at path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

func parseLine(line string) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal([]byte(line), &jr); err != nil {
		return Record{}, err
	}
	if jr.Type != "request" {
		return Record{}, fmt.Errorf("record type %q, want \"request\"", jr.Type)
	}
	if jr.V != SchemaVersion {
		return Record{}, fmt.Errorf("request record schema v%d, this reader handles v%d", jr.V, SchemaVersion)
	}
	switch jr.Endpoint {
	case EndpointLookup, EndpointKHop, EndpointWalk:
	default:
		return Record{}, fmt.Errorf("unknown endpoint %q", jr.Endpoint)
	}
	if jr.LatencyUS < 0 {
		return Record{}, fmt.Errorf("negative latency_us %v", jr.LatencyUS)
	}
	if jr.Part < -1 {
		return Record{}, fmt.Errorf("part %d, want >= -1", jr.Part)
	}
	return Record{
		Seq:       jr.Seq,
		Endpoint:  jr.Endpoint,
		Vertex:    jr.Vertex,
		Part:      jr.Part,
		Version:   jr.Version,
		Status:    jr.Status,
		LatencyUS: jr.LatencyUS,
	}, nil
}

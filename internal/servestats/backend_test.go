package servestats

import (
	"reflect"
	"testing"

	"bpart/internal/graph"
)

func ringGraph(n int) *graph.Graph {
	adj := make([][]graph.VertexID, n)
	for i := range adj {
		adj[i] = []graph.VertexID{graph.VertexID((i + 1) % n), graph.VertexID((i + n - 1) % n)}
	}
	return graph.FromAdjacency(adj)
}

func blockAssignment(n, k int) []int {
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i * k / n
	}
	return parts
}

func TestBackendValidation(t *testing.T) {
	g := ringGraph(10)
	if _, err := NewBackend(g, blockAssignment(10, 2), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBackend(g, blockAssignment(8, 2), 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := NewBackend(g, []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}, 2); err == nil {
		t.Error("out-of-range part accepted")
	}
	b, err := NewBackend(g, blockAssignment(10, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := b.View(); v.Version() != 1 || v.K() != 2 {
		t.Fatalf("initial view = v%d k%d", v.Version(), v.K())
	}
}

func TestViewDefensiveCopy(t *testing.T) {
	g := ringGraph(4)
	parts := []int{0, 0, 1, 1}
	b, err := NewBackend(g, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	parts[0] = 1 // caller mutates its slice after handing it over
	if got := b.View().Part(0); got != 0 {
		t.Fatalf("view aliased the caller's slice: part(0) = %d", got)
	}
	cp := b.View().Parts()
	cp[1] = 1
	if got := b.View().Part(1); got != 0 {
		t.Fatalf("Parts() aliased the view: part(1) = %d", got)
	}
}

func TestSwapVersions(t *testing.T) {
	g := ringGraph(6)
	b, err := NewBackend(g, blockAssignment(6, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	old := b.View()
	v2, err := b.Swap(blockAssignment(6, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version() != 2 || v2.K() != 3 {
		t.Fatalf("swapped view = v%d k%d", v2.Version(), v2.K())
	}
	// The old view stays usable for requests that already hold it.
	if old.Version() != 1 || old.Part(5) != 1 {
		t.Fatalf("old view mutated by swap: v%d part(5)=%d", old.Version(), old.Part(5))
	}
	if _, err := b.Swap(blockAssignment(6, 2), 0); err == nil {
		t.Error("invalid swap accepted")
	}
	if got := b.View().Version(); got != 2 {
		t.Fatalf("failed swap changed the view to v%d", got)
	}
}

func TestKHopDeterministicAndBounded(t *testing.T) {
	g := ringGraph(16)
	b, err := NewBackend(g, blockAssignment(16, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	count, sample := b.KHop(0, 2, 10)
	// Ring: 1 hop reaches {1,15}, 2 hops adds {2,14}.
	if count != 4 {
		t.Fatalf("2-hop count = %d, want 4", count)
	}
	want := []graph.VertexID{1, 15, 2, 14}
	if !reflect.DeepEqual(sample, want) {
		t.Fatalf("sample = %v, want %v", sample, want)
	}
	count2, sample2 := b.KHop(0, 2, 10)
	if count2 != count || !reflect.DeepEqual(sample2, sample) {
		t.Fatal("KHop not deterministic")
	}
	_, limited := b.KHop(0, 2, 2)
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %v", limited)
	}
	if c, s := b.KHop(99, 2, 10); c != 0 || s != nil {
		t.Fatalf("out-of-range khop = %d %v", c, s)
	}
}

func TestWalkDeterministicPerSeed(t *testing.T) {
	g := ringGraph(32)
	b, err := NewBackend(g, blockAssignment(32, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	end1, n1 := b.Walk(3, 50, 0.1, 7)
	end2, n2 := b.Walk(3, 50, 0.1, 7)
	if end1 != end2 || n1 != n2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", end1, n1, end2, n2)
	}
	if n1 != 50 {
		t.Fatalf("walk on a ring took %d steps, want 50", n1)
	}
	// Different seeds should disagree somewhere over a few tries.
	same := true
	for seed := uint64(0); seed < 8 && same; seed++ {
		e, _ := b.Walk(3, 50, 0.1, seed)
		same = e == end1
	}
	if same {
		t.Fatal("walk ignores its seed")
	}
	// Sink without restart stops early; with restart it keeps going.
	sink := graph.FromAdjacency([][]graph.VertexID{{1}, {}})
	sb, err := NewBackend(sink, []int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := sb.Walk(0, 10, 0, 1); n != 1 {
		t.Fatalf("sink walk visited %d, want 1", n)
	}
	if _, n := sb.Walk(0, 10, 0.5, 1); n != 10 {
		t.Fatalf("sink walk with restart visited %d, want 10", n)
	}
}

package servestats

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

func TestRecorderWritesParseableLog(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	rec := NewRecorder(2, &buf, reg)
	for i := 0; i < 5; i++ {
		start := rec.Start()
		rec.End(start, EndpointLookup, 7, i%2, 1, 200)
	}
	start := rec.Start()
	rec.End(start, EndpointWalk, 3, -1, 1, 400)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != 6 || l.Truncated {
		t.Fatalf("parsed %d records, truncated=%v", len(l.Records), l.Truncated)
	}
	for i, r := range l.Records {
		if r.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if l.Records[5].Part != -1 || l.Records[5].Status != 400 {
		t.Fatalf("error record = %+v", l.Records[5])
	}
	if got := reg.Counter("serving_requests_total").Value(); got != 6 {
		t.Fatalf("serving_requests_total = %d", got)
	}
	if got := reg.Counter("serving_errors_total").Value(); got != 1 {
		t.Fatalf("serving_errors_total = %d", got)
	}
	if rec.Inflight() != 0 {
		t.Fatalf("inflight = %d after all Ends", rec.Inflight())
	}
}

func TestRecorderWindowsReset(t *testing.T) {
	rec := NewRecorder(2, nil, nil)
	start := rec.Start()
	rec.End(start, EndpointLookup, 1, 0, 1, 200)
	w1 := rec.WindowSnapshot()
	if w1[0].Endpoint != EndpointLookup || w1[0].Count != 1 {
		t.Fatalf("first window = %+v", w1)
	}
	w2 := rec.WindowSnapshot()
	if w2[0].Count != 0 {
		t.Fatalf("window did not reset: %+v", w2)
	}
	// Cumulative histograms survive the window reset.
	if rec.EndpointQuantile(EndpointLookup, 1) <= 0 {
		t.Fatal("cumulative endpoint histogram lost the observation")
	}
	if rec.PartQuantile(0, 1) <= 0 {
		t.Fatal("cumulative part histogram lost the observation")
	}
	if rec.PartQuantile(99, 0.5) != 0 {
		t.Fatal("unseen part reported a quantile")
	}
}

func TestRecorderGrowsForSwappedParts(t *testing.T) {
	rec := NewRecorder(2, nil, nil)
	start := rec.Start()
	rec.End(start, EndpointLookup, 1, 7, 2, 200) // part beyond initial k
	if rec.PartQuantile(7, 1) <= 0 {
		t.Fatal("recorder dropped an observation for a post-swap part")
	}
}

func TestRecorderStickyWriteError(t *testing.T) {
	rec := NewRecorder(1, failWriter{}, nil)
	start := rec.Start()
	rec.End(start, EndpointLookup, 1, 0, 1, 200)
	if err := rec.Flush(); err == nil || !strings.Contains(err.Error(), "request log") {
		t.Fatalf("sticky write error not surfaced: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errShort }

var errShort = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *Recorder
	start := rec.Start()
	if !start.IsZero() {
		t.Fatal("nil recorder read the clock")
	}
	rec.End(start, EndpointLookup, 1, 0, 1, 200)
	if rec.Inflight() != 0 || rec.WindowSnapshot() != nil {
		t.Fatal("nil recorder accumulated state")
	}
	if rec.Flush() != nil || rec.Close() != nil {
		t.Fatal("nil recorder errored")
	}
	if rec.EndpointQuantile(EndpointLookup, 0.5) != 0 || rec.PartQuantile(0, 0.5) != 0 {
		t.Fatal("nil recorder reported quantiles")
	}
}

// TestDisabledPathAllocatesNothing is the disabled-path guarantee from the
// issue: with serving stats off (nil recorder), the per-request hook sites
// allocate no stats records.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		start := rec.Start()
		rec.End(start, EndpointLookup, 1, 0, 1, 200)
		_ = rec.Inflight()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f objects per request, want 0", allocs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(4, &buf, nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				start := rec.Start()
				rec.End(start, Endpoints[i%len(Endpoints)], graph.VertexID(i), i%4, 1, 200)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != 1600 {
		t.Fatalf("parsed %d records, want 1600", len(l.Records))
	}
	seen := map[int64]bool{}
	for _, r := range l.Records {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestRecorderLatencyIsPlausible(t *testing.T) {
	rec := NewRecorder(1, nil, nil)
	start := rec.Start()
	time.Sleep(2 * time.Millisecond)
	rec.End(start, EndpointLookup, 1, 0, 1, 200)
	if p := rec.EndpointQuantile(EndpointLookup, 1); p < 1000 {
		t.Fatalf("2ms request recorded as %.0fµs", p)
	}
}

package servestats

import (
	"strings"
	"testing"
)

const goodLine = `{"v":1,"type":"request","seq":1,"endpoint":"lookup","vertex":7,"part":0,"version":1,"status":200,"latency_us":12.5}`

func TestReadTornFinalLine(t *testing.T) {
	l, err := Read(strings.NewReader(goodLine + "\n" + `{"v":1,"type":"requ`))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Truncated || len(l.Records) != 1 {
		t.Fatalf("truncated=%v records=%d", l.Truncated, len(l.Records))
	}
}

func TestReadInteriorDamageIsHardError(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage\n" + goodLine + "\n")); err == nil {
		t.Fatal("interior damage tolerated")
	}
}

func TestReadAllGarbageIsHardError(t *testing.T) {
	for _, in := range []string{
		"not a request log\n",
		`{"v":1,"type":"wormhole"}` + "\n",
		`{"v":99,"type":"request","endpoint":"lookup"}` + "\n",
		`{"v":1,"type":"request","endpoint":"teleport"}` + "\n",
		`{"v":1,"type":"request","endpoint":"lookup","latency_us":-3}` + "\n",
		`{"v":1,"type":"request","endpoint":"lookup","part":-2}` + "\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadEmptyAndBlank(t *testing.T) {
	for _, in := range []string{"", "\n\n  \n"} {
		l, err := Read(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(l.Records) != 0 || l.Truncated {
			t.Fatalf("%q parsed to %+v", in, l)
		}
	}
}

func TestStripWallClock(t *testing.T) {
	l, err := Read(strings.NewReader(goodLine + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	l.StripWallClock()
	r := l.Records[0]
	if r.LatencyUS != 0 {
		t.Fatalf("latency survived strip: %+v", r)
	}
	if r.Endpoint != EndpointLookup || r.Vertex != 7 || r.Part != 0 || r.Version != 1 || r.Status != 200 {
		t.Fatalf("strip damaged deterministic fields: %+v", r)
	}
}

package servestats

import (
	"encoding/json"
	"fmt"
	"os"
)

// Gate is a committed serving-latency ceiling (baselines/SERVING_gate.json):
// per-endpoint p99 upper bounds in microseconds. CI fails a smoke run whose
// report exceeds any ceiling, the serving analogue of the BENCH byte
// comparison — loose enough to survive shared runners, tight enough to
// catch a serving-path regression measured in milliseconds.
type Gate struct {
	V        int                `json:"v"`
	MaxP99US map[string]float64 `json:"max_p99_us"`
}

// GateSchemaVersion is the gate file schema.
const GateSchemaVersion = 1

// ReadGateFile parses a gate file.
func ReadGateFile(path string) (*Gate, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Gate
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if g.V != GateSchemaVersion {
		return nil, fmt.Errorf("%s: gate schema v%d, this reader handles v%d", path, g.V, GateSchemaVersion)
	}
	if len(g.MaxP99US) == 0 {
		return nil, fmt.Errorf("%s: gate has no ceilings", path)
	}
	return &g, nil
}

// Check compares a report against the gate: every endpoint present in both
// must sit at or under its ceiling. Endpoints in the report without a
// ceiling pass (new endpoints should not fail old gates); ceilings without
// traffic pass (a smoke run need not exercise everything).
func (g *Gate) Check(rep *Report) error {
	for _, e := range rep.Endpoints {
		max, ok := g.MaxP99US[e.Endpoint]
		if !ok {
			continue
		}
		if e.P99 > max {
			return fmt.Errorf("servestats: %s p99 %.0fµs exceeds gate %.0fµs", e.Endpoint, e.P99, max)
		}
	}
	return nil
}

package servestats

import (
	"reflect"
	"testing"
)

func TestWorkloadDeterministic(t *testing.T) {
	w := Workload{Seed: 42, Vertices: 100, Requests: 500, ZipfS: 1.1, LookupW: 2, KHopW: 1, WalkW: 1}
	a, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different streams")
	}
	if len(a) != 500 {
		t.Fatalf("generated %d requests, want 500", len(a))
	}
	w2 := w
	w2.Seed = 43
	c, err := w2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical streams")
	}
}

func TestWorkloadMixAndDefaults(t *testing.T) {
	w := Workload{Seed: 1, Vertices: 50, Requests: 2000, LookupW: 1, KHopW: 1, WalkW: 2}
	reqs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Endpoint]++
		switch r.Endpoint {
		case EndpointKHop:
			if r.Hops != 2 {
				t.Fatalf("khop hops = %d, want default 2", r.Hops)
			}
		case EndpointWalk:
			if r.Steps != 16 {
				t.Fatalf("walk steps = %d, want default 16", r.Steps)
			}
		}
	}
	// Walk weight is half the mass; expect roughly 1000 of 2000.
	if counts[EndpointWalk] < 800 || counts[EndpointWalk] > 1200 {
		t.Fatalf("walk count = %d, want ~1000", counts[EndpointWalk])
	}
	// Zero mix defaults to lookups only.
	onlyLookups, err := Workload{Seed: 1, Vertices: 10, Requests: 20}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range onlyLookups {
		if r.Endpoint != EndpointLookup {
			t.Fatalf("zero mix produced %q", r.Endpoint)
		}
	}
}

func TestWorkloadZipfSkew(t *testing.T) {
	uniform := Workload{Seed: 9, Vertices: 1000, Requests: 5000}
	skewed := uniform
	skewed.ZipfS = 1.5
	ur, err := uniform.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := skewed.Generate()
	if err != nil {
		t.Fatal(err)
	}
	top := func(reqs []Request) int {
		counts := map[int64]int{}
		best := 0
		for _, r := range reqs {
			counts[int64(r.Vertex)]++
			if counts[int64(r.Vertex)] > best {
				best = counts[int64(r.Vertex)]
			}
		}
		return best
	}
	// Under s=1.5 the head vertex dominates; under uniform it barely repeats.
	if hu, hs := top(ur), top(sr); hs < 4*hu {
		t.Fatalf("zipf head %d not clearly hotter than uniform head %d", hs, hu)
	}
	// Skewed is not degenerate: the stream must still spread over a real
	// tail, not collapse onto the head (the (r+0)^-s infinite-weight trap).
	distinct := map[int64]bool{}
	for _, r := range sr {
		distinct[int64(r.Vertex)] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("skewed stream touched only %d distinct vertices of 1000", len(distinct))
	}
}

func TestWorkloadValidation(t *testing.T) {
	for _, w := range []Workload{
		{Vertices: 0, Requests: 1},
		{Vertices: 10, Requests: -1},
		{Vertices: 10, Requests: 1, ZipfS: -1},
		{Vertices: 10, Requests: 1, Alpha: 1},
		{Vertices: 10, Requests: 1, LookupW: -1},
	} {
		if _, err := w.Generate(); err == nil {
			t.Errorf("workload %+v accepted", w)
		}
	}
}

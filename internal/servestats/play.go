package servestats

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
)

// RequestPath renders a generated request as the serving path + query the
// HTTP surface understands — the single encoding shared by the in-process
// player and cmd/loadgen's network client, so both drive byte-identical
// request streams.
func RequestPath(r Request) string {
	q := url.Values{}
	q.Set("v", strconv.FormatInt(int64(r.Vertex), 10))
	switch r.Endpoint {
	case EndpointKHop:
		q.Set("hops", strconv.Itoa(r.Hops))
		return "/v1/khop?" + q.Encode()
	case EndpointWalk:
		q.Set("steps", strconv.Itoa(r.Steps))
		if r.Alpha > 0 {
			q.Set("alpha", strconv.FormatFloat(r.Alpha, 'g', -1, 64))
		}
		q.Set("seed", strconv.FormatUint(r.Seed, 10))
		return "/v1/walk?" + q.Encode()
	default:
		return "/v1/lookup?" + q.Encode()
	}
}

// Play drives a request stream through the server's handlers in-process —
// no sockets, but the full HTTP surface (mux routing, parameter parsing,
// JSON encoding), so what cmd/bench measures is what bpartd serves. It
// stops at the first non-2xx response; a generated workload is in-range by
// construction, so any error is a harness bug worth surfacing.
func (s *Server) Play(reqs []Request) error {
	mux := s.Mux()
	for i, r := range reqs {
		req := httptest.NewRequest(http.MethodGet, RequestPath(r), nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 299 {
			return fmt.Errorf("servestats: request %d (%s) failed with %d: %s", i, RequestPath(r), rec.Code, rec.Body.String())
		}
	}
	return nil
}

// Package servestats is the serving-layer half of the repo's observability
// story: cmd/bpartd answers placement lookups, k-hop neighborhood queries
// and seeded random-walk requests against a loaded graph + assignment, and
// this package records what serving actually cost — per-endpoint and
// per-part log-bucketed latency histograms (telemetry.Histogram), windowed
// p50/p95/p99/p999 snapshots, in-flight gauges, and a versioned JSONL
// request log whose reader tolerates exactly one torn final line (the
// resview/traceview contract). The per-part report ties tail latency back
// to the partition's size/cut balance, which is the paper's serving-side
// claim made measurable.
//
// Like resview, everything here lives outside the determinism boundary:
// core/partition/cluster/engine/walk never import it, wall-clock use is
// confined to the Recorder, and with recording disabled (a nil *Recorder)
// the serving hot path allocates no per-request stats records. What *is*
// deterministic is the request stream itself: a seeded Workload produces
// the same requests and per-part routing on every run, so CI can pin the
// routing trace while latencies float.
package servestats

import (
	"fmt"
	"sync/atomic"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// View is one immutable assignment version. Handlers grab the current view
// once per request and answer entirely against it, which is what makes
// every response attributable to exactly one version across a hot-swap.
type View struct {
	version int
	k       int
	parts   []int
}

// Version is the view's monotone swap index (1 for the assignment the
// backend was built with).
func (v *View) Version() int { return v.version }

// K is the view's part count.
func (v *View) K() int { return v.k }

// Part returns the part owning vertex id, or -1 if id is out of range.
func (v *View) Part(id graph.VertexID) int {
	if int(id) >= len(v.parts) {
		return -1
	}
	return v.parts[id]
}

// Parts returns a copy of the view's assignment vector.
func (v *View) Parts() []int {
	return append([]int(nil), v.parts...)
}

// Backend owns the graph and the atomically swappable assignment view, and
// answers the three request classes bpartd serves. All query methods are
// safe for concurrent use; Swap publishes a new view without blocking
// in-flight readers.
type Backend struct {
	g    *graph.Graph
	view atomic.Pointer[View]
}

// NewBackend wraps g with assignment parts over k parts (version 1). The
// assignment is copied, must cover every vertex, and every entry must lie
// in [0, k).
func NewBackend(g *graph.Graph, parts []int, k int) (*Backend, error) {
	v, err := newView(g, parts, k, 1)
	if err != nil {
		return nil, err
	}
	b := &Backend{g: g}
	b.view.Store(v)
	return b, nil
}

func newView(g *graph.Graph, parts []int, k int, version int) (*View, error) {
	if k <= 0 {
		return nil, fmt.Errorf("servestats: k = %d, want > 0", k)
	}
	if len(parts) != g.NumVertices() {
		return nil, fmt.Errorf("servestats: assignment covers %d vertices, graph has %d", len(parts), g.NumVertices())
	}
	cp := append([]int(nil), parts...)
	for i, p := range cp {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("servestats: vertex %d assigned to part %d, want [0,%d)", i, p, k)
		}
	}
	return &View{version: version, k: k, parts: cp}, nil
}

// Graph returns the served graph.
func (b *Backend) Graph() *graph.Graph { return b.g }

// View returns the current assignment view.
func (b *Backend) View() *View { return b.view.Load() }

// Swap atomically publishes a new assignment, returning the new view. The
// old view stays valid for requests that already hold it; nothing is
// dropped or rerouted mid-flight.
func (b *Backend) Swap(parts []int, k int) (*View, error) {
	for {
		old := b.view.Load()
		v, err := newView(b.g, parts, k, old.version+1)
		if err != nil {
			return nil, err
		}
		if b.view.CompareAndSwap(old, v) {
			return v, nil
		}
	}
}

// KHop runs a bounded BFS from src and reports the number of vertices
// within hops hops (src excluded) plus up to limit of them in
// deterministic CSR discovery order. The per-request visited map keeps the
// backend state read-only and therefore swap- and race-safe.
func (b *Backend) KHop(src graph.VertexID, hops, limit int) (count int, sample []graph.VertexID) {
	if int(src) >= b.g.NumVertices() || hops <= 0 {
		return 0, nil
	}
	visited := map[graph.VertexID]bool{src: true}
	frontier := []graph.VertexID{src}
	for d := 0; d < hops && len(frontier) > 0; d++ {
		var next []graph.VertexID
		for _, u := range frontier {
			for _, w := range b.g.Neighbors(u) {
				if visited[w] {
					continue
				}
				visited[w] = true
				next = append(next, w)
				count++
				if len(sample) < limit {
					sample = append(sample, w)
				}
			}
		}
		frontier = next
	}
	return count, sample
}

// Walk runs a seeded random walk of steps steps from src: uniform neighbor
// choice, with restart probability alpha back to src (alpha 0 is a plain
// walk, alpha > 0 the PPR-style variant). A walker stuck on a sink vertex
// restarts when alpha > 0 and otherwise stops. The walk is a pure function
// of (graph, src, steps, alpha, seed) — the backend holds no walker state —
// so the same request replays identically regardless of concurrency.
func (b *Backend) Walk(src graph.VertexID, steps int, alpha float64, seed uint64) (end graph.VertexID, visited int) {
	if int(src) >= b.g.NumVertices() {
		return src, 0
	}
	rng := xrand.New(seed ^ (uint64(src)+1)*0x9E3779B97F4A7C15)
	cur := src
	for i := 0; i < steps; i++ {
		if alpha > 0 && rng.Float64() < alpha {
			cur = src
			visited++
			continue
		}
		ns := b.g.Neighbors(cur)
		if len(ns) == 0 {
			if alpha <= 0 {
				break
			}
			cur = src
			visited++
			continue
		}
		cur = ns[rng.Intn(len(ns))]
		visited++
	}
	return cur, visited
}

package servestats

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"bpart/internal/gio"
	"bpart/internal/graph"
)

// Server wires a Backend and an optional Recorder into HTTP handlers —
// the serving surface cmd/bpartd exposes and the in-process surface the
// tests and cmd/bench drive through httptest. Handlers grab the assignment
// view exactly once per request and answer entirely against it, so every
// response carries exactly one version even mid-swap.
type Server struct {
	B *Backend
	R *Recorder // nil disables per-request stats
	// Repartition, when set, backs POST /v1/swapz?scheme=S&k=N: it computes
	// a fresh assignment (typically by running a partitioning scheme over
	// the served graph) which the server then atomically publishes. The
	// callback runs outside any lock; only the flip is atomic.
	Repartition func(scheme string, k int) ([]int, error)
}

// Register mounts the serving endpoints on mux:
//
//	GET  /v1/lookup?v=ID                       placement lookup
//	GET  /v1/khop?v=ID&hops=H&limit=L          k-hop neighborhood size
//	GET  /v1/walk?v=ID&steps=S&alpha=A&seed=X  seeded random walk / PPR
//	POST /v1/swapz                             assignment hot-swap
//	GET  /v1/statz                             recorder window + totals
//
// Swap accepts either an uploaded assignment in the gio text format (the
// request body) or, with a Repartition callback installed,
// ?scheme=S&k=N to recompute in-process.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/lookup", s.handleLookup)
	mux.HandleFunc("/v1/khop", s.handleKHop)
	mux.HandleFunc("/v1/walk", s.handleWalk)
	mux.HandleFunc("/v1/swapz", s.handleSwap)
	mux.HandleFunc("/v1/statz", s.handleStatz)
}

// Mux returns a fresh mux with the serving endpoints mounted.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// LookupResponse is the /v1/lookup reply.
type LookupResponse struct {
	Vertex  int64 `json:"vertex"`
	Part    int   `json:"part"`
	Version int   `json:"version"`
}

// KHopResponse is the /v1/khop reply. Sample is the first vertices
// discovered, in deterministic CSR BFS order.
type KHopResponse struct {
	Vertex  int64   `json:"vertex"`
	Hops    int     `json:"hops"`
	Count   int     `json:"count"`
	Sample  []int64 `json:"sample,omitempty"`
	Part    int     `json:"part"`
	Version int     `json:"version"`
}

// WalkResponse is the /v1/walk reply.
type WalkResponse struct {
	Vertex  int64  `json:"vertex"`
	Steps   int    `json:"steps"`
	Seed    uint64 `json:"seed"`
	End     int64  `json:"end"`
	EndPart int    `json:"end_part"`
	Visited int    `json:"visited"`
	Part    int    `json:"part"`
	Version int    `json:"version"`
}

// SwapResponse is the /v1/swapz reply.
type SwapResponse struct {
	Version int `json:"version"`
	K       int `json:"k"`
}

// StatzResponse is the /v1/statz reply: the window since the last statz
// call plus running totals.
type StatzResponse struct {
	Version  int              `json:"version"`
	K        int              `json:"k"`
	Inflight int64            `json:"inflight"`
	Window   []EndpointWindow `json:"window"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// vertexParam parses ?v= against the backend's vertex range.
func (s *Server) vertexParam(r *http.Request) (graph.VertexID, error) {
	raw := r.URL.Query().Get("v")
	if raw == "" {
		return 0, fmt.Errorf("missing vertex parameter v")
	}
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", raw, err)
	}
	if int(id) >= s.B.Graph().NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range (graph has %d)", id, s.B.Graph().NumVertices())
	}
	return graph.VertexID(id), nil
}

func intParam(r *http.Request, name string, def, min, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: %v", name, raw, err)
	}
	if n < min || n > max {
		return 0, fmt.Errorf("%s = %d, want [%d,%d]", name, n, min, max)
	}
	return n, nil
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	start := s.R.Start()
	view := s.B.View()
	v, err := s.vertexParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		s.R.End(start, EndpointLookup, badVertex(r), -1, view.Version(), http.StatusBadRequest)
		return
	}
	part := view.Part(v)
	writeJSON(w, http.StatusOK, LookupResponse{Vertex: int64(v), Part: part, Version: view.Version()})
	s.R.End(start, EndpointLookup, v, part, view.Version(), http.StatusOK)
}

func (s *Server) handleKHop(w http.ResponseWriter, r *http.Request) {
	start := s.R.Start()
	view := s.B.View()
	v, err := s.vertexParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		s.R.End(start, EndpointKHop, badVertex(r), -1, view.Version(), http.StatusBadRequest)
		return
	}
	hops, err := intParam(r, "hops", 2, 1, 8)
	if err == nil {
		var limit int
		limit, err = intParam(r, "limit", 0, 0, 1024)
		if err == nil {
			count, sample := s.B.KHop(v, hops, limit)
			part := view.Part(v)
			resp := KHopResponse{Vertex: int64(v), Hops: hops, Count: count, Part: part, Version: view.Version()}
			for _, u := range sample {
				resp.Sample = append(resp.Sample, int64(u))
			}
			writeJSON(w, http.StatusOK, resp)
			s.R.End(start, EndpointKHop, v, part, view.Version(), http.StatusOK)
			return
		}
	}
	httpError(w, http.StatusBadRequest, "%v", err)
	s.R.End(start, EndpointKHop, v, -1, view.Version(), http.StatusBadRequest)
}

func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) {
	start := s.R.Start()
	view := s.B.View()
	v, err := s.vertexParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		s.R.End(start, EndpointWalk, badVertex(r), -1, view.Version(), http.StatusBadRequest)
		return
	}
	steps, err := intParam(r, "steps", 16, 1, 1<<20)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		s.R.End(start, EndpointWalk, v, -1, view.Version(), http.StatusBadRequest)
		return
	}
	alpha := 0.0
	if raw := r.URL.Query().Get("alpha"); raw != "" {
		alpha, err = strconv.ParseFloat(raw, 64)
		if err != nil || alpha < 0 || alpha >= 1 {
			httpError(w, http.StatusBadRequest, "bad alpha %q, want [0,1)", raw)
			s.R.End(start, EndpointWalk, v, -1, view.Version(), http.StatusBadRequest)
			return
		}
	}
	var seed uint64
	if raw := r.URL.Query().Get("seed"); raw != "" {
		seed, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q: %v", raw, err)
			s.R.End(start, EndpointWalk, v, -1, view.Version(), http.StatusBadRequest)
			return
		}
	}
	end, visited := s.B.Walk(v, steps, alpha, seed)
	part := view.Part(v)
	writeJSON(w, http.StatusOK, WalkResponse{
		Vertex: int64(v), Steps: steps, Seed: seed,
		End: int64(end), EndPart: view.Part(end), Visited: visited,
		Part: part, Version: view.Version(),
	})
	s.R.End(start, EndpointWalk, v, part, view.Version(), http.StatusOK)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "swap is POST-only")
		return
	}
	q := r.URL.Query()
	var parts []int
	var k int
	var err error
	if scheme := q.Get("scheme"); scheme != "" {
		if s.Repartition == nil {
			httpError(w, http.StatusBadRequest, "no repartitioner installed; upload an assignment body instead")
			return
		}
		k, err = intParam(r, "k", s.B.View().K(), 1, 1<<20)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		parts, err = s.Repartition(scheme, k)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "repartition: %v", err)
			return
		}
	} else {
		parts, k, err = gio.ReadAssignment(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "assignment body: %v", err)
			return
		}
	}
	view, err := s.B.Swap(parts, k)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SwapResponse{Version: view.Version(), K: view.K()})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	view := s.B.View()
	writeJSON(w, http.StatusOK, StatzResponse{
		Version:  view.Version(),
		K:        view.K(),
		Inflight: s.R.Inflight(),
		Window:   s.R.WindowSnapshot(),
	})
}

// badVertex best-effort parses the vertex parameter for error-path
// logging; -1 when absent or unparseable.
func badVertex(r *http.Request) graph.VertexID {
	if id, err := strconv.ParseUint(r.URL.Query().Get("v"), 10, 32); err == nil {
		return graph.VertexID(id)
	}
	return graph.VertexID(^uint32(0))
}

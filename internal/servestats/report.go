package servestats

import (
	"fmt"
	"sort"

	"bpart/internal/telemetry"
)

// EndpointStats is one endpoint's cumulative latency digest over a log.
type EndpointStats struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	P50      float64 `json:"p50_us"`
	P95      float64 `json:"p95_us"`
	P99      float64 `json:"p99_us"`
	P999     float64 `json:"p999_us"`
}

// PartStats is one part's latency digest over a log.
type PartStats struct {
	Part  int     `json:"part"`
	Count int64   `json:"count"`
	Share float64 `json:"share"` // fraction of routed requests
	P50   float64 `json:"p50_us"`
	P95   float64 `json:"p95_us"`
	P99   float64 `json:"p99_us"`
	P999  float64 `json:"p999_us"`
}

// VersionCount counts the responses answered by one assignment version.
type VersionCount struct {
	Version int   `json:"version"`
	Count   int64 `json:"count"`
}

// Report is the digest of a request log: per-endpoint and per-part
// percentiles plus the version census the hot-swap test leans on.
type Report struct {
	Total     int64           `json:"total"`
	Routed    int64           `json:"routed"` // records with part >= 0
	Truncated bool            `json:"truncated,omitempty"`
	Endpoints []EndpointStats `json:"endpoints"`
	Parts     []PartStats     `json:"parts"`
	Versions  []VersionCount  `json:"versions"`
}

// Summarize digests a log. Percentiles come from replaying latencies into
// telemetry.Histogram, so the report and the live /statz window agree on
// estimator semantics.
func Summarize(l *Log) *Report {
	rep := &Report{Total: int64(len(l.Records)), Truncated: l.Truncated}
	epHist := map[string]*telemetry.Histogram{}
	epErrs := map[string]int64{}
	partHist := map[int]*telemetry.Histogram{}
	versions := map[int]int64{}
	for _, r := range l.Records {
		h := epHist[r.Endpoint]
		if h == nil {
			h = &telemetry.Histogram{}
			epHist[r.Endpoint] = h
		}
		h.Observe(r.LatencyUS)
		if r.Status >= 400 {
			epErrs[r.Endpoint]++
		}
		if r.Part >= 0 {
			rep.Routed++
			ph := partHist[r.Part]
			if ph == nil {
				ph = &telemetry.Histogram{}
				partHist[r.Part] = ph
			}
			ph.Observe(r.LatencyUS)
		}
		versions[r.Version]++
	}
	for _, ep := range Endpoints {
		h := epHist[ep]
		if h == nil {
			continue
		}
		rep.Endpoints = append(rep.Endpoints, EndpointStats{
			Endpoint: ep,
			Count:    h.Count(),
			Errors:   epErrs[ep],
			P50:      h.Quantile(0.50),
			P95:      h.Quantile(0.95),
			P99:      h.Quantile(0.99),
			P999:     h.Quantile(0.999),
		})
	}
	parts := make([]int, 0, len(partHist))
	for p := range partHist {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		h := partHist[p]
		rep.Parts = append(rep.Parts, PartStats{
			Part:  p,
			Count: h.Count(),
			Share: float64(h.Count()) / float64(rep.Routed),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		})
	}
	vs := make([]int, 0, len(versions))
	for v := range versions {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		rep.Versions = append(rep.Versions, VersionCount{Version: v, Count: versions[v]})
	}
	return rep
}

// Attribution is one part's row in the tail-attribution report: the
// request load the part actually absorbed next to the share its size says
// it should absorb under uniform vertex popularity. Pressure > 1 means
// the part is hotter than its size predicts (skewed popularity or
// imbalance); combined with P99 it answers "is the tail coming from big
// parts or hot parts" — the serving-side face of the paper's 2D-balance
// argument.
type Attribution struct {
	Part     int     `json:"part"`
	Requests int64   `json:"requests"`
	Share    float64 `json:"share"`    // Requests / total attributed
	SizeV    int     `json:"size_v"`   // vertices assigned to the part
	VShare   float64 `json:"v_share"`  // SizeV / total vertices
	Pressure float64 `json:"pressure"` // Share / VShare
	P50      float64 `json:"p50_us"`
	P99      float64 `json:"p99_us"`
}

// Attribute builds the per-part tail-attribution report for one assignment
// version, reconciling the log against the assignment exactly: every
// version-matching record with a routed part must agree with
// parts[vertex], per-part request counts must sum to the version's routed
// total, and each part's vertex share comes from the assignment (the same
// sizes partaudit's final record carries). Any disagreement is an error —
// attribution that does not reconcile is worse than none.
func Attribute(l *Log, parts []int, k int, version int) ([]Attribution, error) {
	if k <= 0 {
		return nil, fmt.Errorf("servestats: attribute with k = %d", k)
	}
	sizeV := make([]int, k)
	for i, p := range parts {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("servestats: assignment vertex %d in part %d, want [0,%d)", i, p, k)
		}
		sizeV[p]++
	}
	counts := make([]int64, k)
	hists := make([]*telemetry.Histogram, k)
	for i := range hists {
		hists[i] = &telemetry.Histogram{}
	}
	var total int64
	for _, r := range l.Records {
		if r.Version != version || r.Part < 0 {
			continue
		}
		if r.Part >= k {
			return nil, fmt.Errorf("servestats: record seq %d routed to part %d, assignment has k=%d", r.Seq, r.Part, k)
		}
		if r.Vertex < 0 || r.Vertex >= int64(len(parts)) {
			return nil, fmt.Errorf("servestats: record seq %d vertex %d outside assignment (%d vertices)", r.Seq, r.Vertex, len(parts))
		}
		if want := parts[r.Vertex]; r.Part != want {
			return nil, fmt.Errorf("servestats: record seq %d routed vertex %d to part %d, assignment says %d", r.Seq, r.Vertex, r.Part, want)
		}
		counts[r.Part]++
		hists[r.Part].Observe(r.LatencyUS)
		total++
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		// Unreachable by construction, but the reconciliation claim is the
		// report's contract, so check it rather than assume it.
		return nil, fmt.Errorf("servestats: per-part counts sum to %d, version total is %d", sum, total)
	}
	out := make([]Attribution, k)
	for p := 0; p < k; p++ {
		a := Attribution{
			Part:     p,
			Requests: counts[p],
			SizeV:    sizeV[p],
			VShare:   float64(sizeV[p]) / float64(len(parts)),
		}
		if total > 0 {
			a.Share = float64(counts[p]) / float64(total)
		}
		if a.VShare > 0 {
			a.Pressure = a.Share / a.VShare
		}
		a.P50 = hists[p].Quantile(0.50)
		a.P99 = hists[p].Quantile(0.99)
		out[p] = a
	}
	return out, nil
}

package servestats

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary byte streams at the JSONL request-log reader,
// mirroring traceview.FuzzRead and partaudit.FuzzReadLog. The reader faces
// logs written by a server that may have been killed mid-line, so it must
// never panic, and its tolerance contract is precise: only the final line
// may be damaged — and only when a usable prefix precedes it (flagged via
// Truncated); damage anywhere earlier, or a file with no usable records at
// all, is a hard error. Anything that parses cleanly must survive a second
// pass over the same bytes with identical results.
func FuzzRead(f *testing.F) {
	f.Add([]byte(goodLine + "\n"))
	f.Add([]byte(goodLine + "\n" + `{"v":1,"type":"request","seq":2,"endpoint":"walk","vertex":3,"part":1,"version":2,"status":200,"latency_us":99}` + "\n"))
	// Torn final line after a usable prefix: the only damage Read tolerates.
	f.Add([]byte(goodLine + "\n" + `{"v":1,"type":"requ`))
	// Interior damage: must be a hard error.
	f.Add([]byte("garbage\n" + goodLine + "\n"))
	// Whole-file garbage: must be a hard error, not Truncated+empty.
	f.Add([]byte("not a request log\n"))
	f.Add([]byte(`{"v":1,"type":"wormhole"}` + "\n"))
	f.Add([]byte(`{"v":99,"type":"request","endpoint":"lookup"}` + "\n"))
	f.Add([]byte(`{"v":1,"type":"request","endpoint":"lookup","latency_us":-1}` + "\n"))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l == nil {
			t.Fatal("Read returned nil log with nil error")
		}
		// A truncated-but-empty log would hide a non-log file from callers;
		// the reader promises never to produce one.
		if l.Truncated && len(l.Records) == 0 {
			t.Fatal("Read produced Truncated with no usable records")
		}
		l2, err2 := Read(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second Read of identical bytes failed: %v", err2)
		}
		if l2.Truncated != l.Truncated || len(l2.Records) != len(l.Records) {
			t.Fatal("non-deterministic parse of identical bytes")
		}
		for _, r := range l.Records {
			if r.LatencyUS < 0 || r.Part < -1 {
				t.Fatalf("invalid record escaped validation: %+v", r)
			}
			switch r.Endpoint {
			case EndpointLookup, EndpointKHop, EndpointWalk:
			default:
				t.Fatalf("unknown endpoint escaped validation: %+v", r)
			}
		}
	})
}

package servestats

import (
	"testing"

	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// servingWork is the measured unit: a lookup plus a walk against the
// backend with the recorder hooks wired exactly as the handlers wire them
// (a nil rec is the disabled path).
func servingWork(b *Backend, rec *Recorder, v int) {
	start := rec.Start()
	view := b.View()
	part := view.Part(graph.VertexID(v))
	_, _ = b.Walk(graph.VertexID(v), 32, 0, uint64(v))
	rec.End(start, EndpointLookup, graph.VertexID(v), part, view.Version(), 200)
}

// servingWorkBare is servingWork with the hook sites deleted — the
// overhead gate's baseline, kept structurally identical otherwise.
func servingWorkBare(b *Backend, v int) {
	view := b.View()
	_ = view.Part(graph.VertexID(v))
	_, _ = b.Walk(graph.VertexID(v), 32, 0, uint64(v))
}

// BenchmarkServeNoStats is the disabled-path baseline: backend work with a
// nil recorder (the default when bpartd runs without -reqlog or stats).
func BenchmarkServeNoStats(b *testing.B) {
	back, err := NewBackend(ringGraph(1024), blockAssignment(1024, 8), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servingWork(back, nil, i%1024)
	}
}

// BenchmarkServeWithStats is the same work with a live recorder (no log
// sink) — what the <5% claim is measured against in BENCH runs.
func BenchmarkServeWithStats(b *testing.B) {
	back, err := NewBackend(ringGraph(1024), blockAssignment(1024, 8), 8)
	if err != nil {
		b.Fatal(err)
	}
	rec := NewRecorder(8, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servingWork(back, rec, i%1024)
	}
}

// TestDisabledStatsOverheadGate is the <5% overhead gate for the serving
// hook sites, matching the probe/audit gates: with stats disabled (nil
// recorder) the per-request hooks are two nil checks and must be
// indistinguishable from no hooks at all. Measured as best-of-N to shed
// scheduler noise; skipped in -short mode where a timing assertion is
// meaningless.
func TestDisabledStatsOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	back, err := NewBackend(ringGraph(1024), blockAssignment(1024, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 100000
	const reps = 7
	run := func(withHooks bool) float64 {
		sw := telemetry.NewStopwatch()
		for i := 0; i < iters; i++ {
			if withHooks {
				servingWork(back, nil, i%1024)
			} else {
				servingWorkBare(back, i%1024)
			}
		}
		return sw.Seconds()
	}
	// Interleave the two variants so scheduler drift hits both equally;
	// best-of-N per variant sheds the noise.
	var base, hooked float64
	for r := 0; r < reps; r++ {
		if s := run(false); r == 0 || s < base {
			base = s
		}
		if s := run(true); r == 0 || s < hooked {
			hooked = s
		}
	}
	overhead := hooked/base - 1
	t.Logf("disabled-stats overhead: base %.2fms, hooked %.2fms, overhead %.2f%%",
		base*1e3, hooked*1e3, overhead*100)
	if overhead > 0.05 {
		t.Fatalf("disabled serving stats overhead %.2f%% exceeds the 5%% gate", overhead*100)
	}
}

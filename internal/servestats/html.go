package servestats

import (
	"fmt"
	"io"
	"math"

	"bpart/internal/htmlpage"
)

// WriteHTML renders the report as a self-contained HTML page (htmlpage
// chrome, inline SVG, no external assets): a per-endpoint latency
// percentile chart and a per-part request-share/p99 heatmap — the visual
// answer to "which parts carry the tail". attrib may be nil when no
// assignment was available to attribute against.
func WriteHTML(w io.Writer, rep *Report, attrib []Attribution) error {
	if err := htmlpage.Start(w, "bpart serving latency"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "<p class=\"meta\">%d requests, %d routed to parts", rep.Total, rep.Routed); err != nil {
		return err
	}
	if rep.Truncated {
		if _, err := io.WriteString(w, " <span class=\"warn\">(log truncated: torn final line)</span>"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "</p>\n"); err != nil {
		return err
	}
	if err := writeEndpointSVG(w, rep); err != nil {
		return err
	}
	if err := writePartSVG(w, rep, attrib); err != nil {
		return err
	}
	return htmlpage.End(w)
}

// logScale maps a latency (µs) onto [0, width] with a log axis topping out
// at max.
func logScale(us, max float64, width int) float64 {
	if us <= 1 || max <= 1 {
		return 0
	}
	f := math.Log(us) / math.Log(max)
	if f > 1 {
		f = 1
	}
	return f * float64(width)
}

func writeEndpointSVG(w io.Writer, rep *Report) error {
	if _, err := io.WriteString(w, "<h2>Latency percentiles per endpoint</h2>\n"); err != nil {
		return err
	}
	const rowH, width = 26, 640
	max := 1.0
	for _, e := range rep.Endpoints {
		max = math.Max(max, e.P999)
	}
	h := len(rep.Endpoints)*rowH + 24
	if _, err := fmt.Fprintf(w, "<svg width=\"%d\" height=\"%d\">\n", width+160, h); err != nil {
		return err
	}
	for i, e := range rep.Endpoints {
		y := i*rowH + 16
		// Bar to p99; ticks at p50/p95/p999.
		if _, err := fmt.Fprintf(w, "<text class=\"lbl\" x=\"4\" y=\"%d\">%s (n=%d)</text>\n", y+12, e.Endpoint, e.Count); err != nil {
			return err
		}
		x0 := 140.0
		if _, err := fmt.Fprintf(w, "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"14\" fill=\"#4a90d9\"/>\n",
			x0, y, logScale(e.P99, max, width)); err != nil {
			return err
		}
		for _, tick := range []struct {
			us    float64
			color string
		}{{e.P50, "#222"}, {e.P95, "#a60"}, {e.P999, "#b00"}} {
			if _, err := fmt.Fprintf(w, "<rect x=\"%.1f\" y=\"%d\" width=\"2\" height=\"14\" fill=\"%s\"/>\n",
				x0+logScale(tick.us, max, width), y, tick.color); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "<text class=\"lbl\" x=\"%.1f\" y=\"%d\">p50 %.0fµs · p95 %.0fµs · p99 %.0fµs · p999 %.0fµs</text>\n",
			x0+4, y-2, e.P50, e.P95, e.P99, e.P999); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

func writePartSVG(w io.Writer, rep *Report, attrib []Attribution) error {
	if len(rep.Parts) == 0 {
		return nil
	}
	if _, err := io.WriteString(w, "<h2>Per-part request share and tail</h2>\n"); err != nil {
		return err
	}
	const cellW, cellH = 56, 44
	maxP99 := 1.0
	for _, p := range rep.Parts {
		maxP99 = math.Max(maxP99, p.P99)
	}
	pressure := map[int]float64{}
	for _, a := range attrib {
		pressure[a.Part] = a.Pressure
	}
	if _, err := fmt.Fprintf(w, "<svg width=\"%d\" height=\"%d\">\n", len(rep.Parts)*cellW+8, cellH+40); err != nil {
		return err
	}
	for i, p := range rep.Parts {
		x := i*cellW + 4
		// Heat: p99 relative to the hottest part.
		heat := int(200 * p.P99 / maxP99)
		if _, err := fmt.Fprintf(w, "<rect x=\"%d\" y=\"4\" width=\"%d\" height=\"%d\" fill=\"rgb(%d,%d,%d)\"/>\n",
			x, cellW-4, cellH, 55+heat, 80, 235-heat); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "<text class=\"lbl\" x=\"%d\" y=\"%d\" fill=\"#fff\">p%d</text>\n", x+4, 20, p.Part); err != nil {
			return err
		}
		label := fmt.Sprintf("%.1f%% · p99 %.0fµs", 100*p.Share, p.P99)
		if pr, ok := pressure[p.Part]; ok {
			label += fmt.Sprintf(" · ×%.2f", pr)
		}
		if _, err := fmt.Fprintf(w, "<text class=\"lbl\" x=\"%d\" y=\"%d\">%s</text>\n", x, cellH+20, label); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "</svg>\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, "<p class=\"meta\">×N is request pressure: the part's request share over its vertex share (1.00 = load exactly proportional to size).</p>\n")
	return err
}

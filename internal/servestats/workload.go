package servestats

import (
	"fmt"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Endpoint names, shared by the server, the recorder, the workload
// generator and the reports. They are the request-log vocabulary, so keep
// them stable.
const (
	EndpointLookup = "lookup"
	EndpointKHop   = "khop"
	EndpointWalk   = "walk"
)

// Endpoints lists the serving endpoints in report order.
var Endpoints = []string{EndpointLookup, EndpointKHop, EndpointWalk}

// Request is one generated serving request. The stream a Workload expands
// to is a pure function of its config, so the same seed yields the same
// vertices, kinds and (given the same assignment) the same per-part
// routing — that is the determinism CI pins.
type Request struct {
	Endpoint string
	Vertex   graph.VertexID
	Hops     int // khop only
	Steps    int // walk only
	Alpha    float64
	Seed     uint64 // walk only: per-request walk seed
}

// Workload describes a reproducible request stream: n requests over a
// vertex universe, vertex popularity Zipf-distributed (xrand.PowerLawWeights
// over a seeded vertex permutation, so vertex 0 is not always the head),
// request kinds drawn from the Mix weights.
type Workload struct {
	Seed     uint64
	Vertices int     // vertex universe size (graph order)
	Requests int     // number of requests to generate
	ZipfS    float64 // popularity skew exponent (0 = uniform)
	Hops     int     // hops for khop requests (default 2)
	Steps    int     // steps for walk requests (default 16)
	Alpha    float64 // walk restart probability
	// Mix weights for lookup/khop/walk; all zero means lookups only.
	LookupW, KHopW, WalkW float64
}

// Normalize fills defaults and validates.
func (w *Workload) Normalize() error {
	if w.Vertices <= 0 {
		return fmt.Errorf("servestats: workload over %d vertices", w.Vertices)
	}
	if w.Requests < 0 {
		return fmt.Errorf("servestats: %d requests", w.Requests)
	}
	if w.ZipfS < 0 {
		return fmt.Errorf("servestats: zipf s = %g, want >= 0", w.ZipfS)
	}
	if w.Hops == 0 {
		w.Hops = 2
	}
	if w.Steps == 0 {
		w.Steps = 16
	}
	if w.Alpha < 0 || w.Alpha >= 1 {
		return fmt.Errorf("servestats: alpha = %g, want [0,1)", w.Alpha)
	}
	if w.LookupW < 0 || w.KHopW < 0 || w.WalkW < 0 {
		return fmt.Errorf("servestats: negative mix weight")
	}
	if w.LookupW == 0 && w.KHopW == 0 && w.WalkW == 0 {
		w.LookupW = 1
	}
	return nil
}

// Generate expands the workload into its request stream. Two calls with
// the same config return identical streams.
func (w Workload) Generate() ([]Request, error) {
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	rng := xrand.New(w.Seed)
	// Popularity: rank-r weight (r+shift)^-s over a seeded permutation, so
	// the hot set is a reproducible but arbitrary subset of the vertex IDs.
	perm := rng.Perm(w.Vertices)
	var vertexAlias *xrand.Alias
	if w.ZipfS > 0 {
		// Shift 1 gives the classic Zipf profile (r+1)^-s; shift 0 would
		// make rank 0's weight infinite and collapse the whole stream onto
		// one vertex.
		vertexAlias = xrand.NewAlias(xrand.PowerLawWeights(w.Vertices, w.ZipfS, 1))
	}
	kindAlias := xrand.NewAlias([]float64{w.LookupW, w.KHopW, w.WalkW})
	reqs := make([]Request, w.Requests)
	for i := range reqs {
		var rank int
		if vertexAlias != nil {
			rank = vertexAlias.Sample(rng)
		} else {
			rank = rng.Intn(w.Vertices)
		}
		r := Request{Vertex: graph.VertexID(perm[rank])}
		switch kindAlias.Sample(rng) {
		case 0:
			r.Endpoint = EndpointLookup
		case 1:
			r.Endpoint = EndpointKHop
			r.Hops = w.Hops
		default:
			r.Endpoint = EndpointWalk
			r.Steps = w.Steps
			r.Alpha = w.Alpha
			r.Seed = rng.Uint64()
		}
		reqs[i] = r
	}
	return reqs, nil
}

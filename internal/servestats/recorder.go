package servestats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// SchemaVersion is the request-record schema version. Bump it on any
// incompatible field change; the reader rejects versions it does not
// handle. The schema is documented in EXPERIMENTS.md.
const SchemaVersion = 1

// Registry metric names the recorder maintains next to its own
// histograms. Per-endpoint and per-part latency distributions are held as
// raw telemetry.Histogram values on the recorder itself (their identity is
// positional, not a minted metric name), so the registry surface stays a
// fixed set of compile-time names.
const (
	metricServingRequestsTotal = "serving_requests_total"
	metricServingErrorsTotal   = "serving_errors_total"
	metricServingInflight      = "serving_inflight"
	metricServingLatencyUS     = "serving_latency_us"
)

// Recorder captures per-request serving observations: cumulative and
// windowed per-endpoint latency histograms, per-part latency histograms,
// an in-flight gauge, and (when given a sink) one versioned JSONL
// `request` record per request, written as a whole line so a crashed
// server leaves at worst a torn final line — exactly what Read tolerates.
// Write and flush errors are sticky and surfaced by Flush/Close.
//
// A nil *Recorder is the disabled path: every method is a no-op, Start
// performs no clock read, and the serving hot path allocates no
// per-request stats records. Recording being on or off never changes
// responses — the recorder only observes.
type Recorder struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	werr error // first write failure, surfaced by Flush/Close
	seq  int64

	inflight atomic.Int64

	// byEndpoint / windows are keyed by endpoint name; byPart is indexed by
	// part id and sized to the largest k seen (swaps may grow it).
	byEndpoint map[string]*telemetry.Histogram
	windows    map[string]*telemetry.Histogram
	byPart     []*telemetry.Histogram

	reg *telemetry.Registry
}

// NewRecorder returns a recorder for k parts. logSink may be nil (no
// request log); reg may be nil (no registry metrics). The caller owns
// logSink; call Close (or Flush) before reading the log back.
func NewRecorder(k int, logSink io.Writer, reg *telemetry.Registry) *Recorder {
	r := &Recorder{
		byEndpoint: make(map[string]*telemetry.Histogram, len(Endpoints)),
		windows:    make(map[string]*telemetry.Histogram, len(Endpoints)),
		byPart:     make([]*telemetry.Histogram, k),
		reg:        reg,
	}
	for _, ep := range Endpoints {
		r.byEndpoint[ep] = &telemetry.Histogram{}
		r.windows[ep] = &telemetry.Histogram{}
	}
	for i := range r.byPart {
		r.byPart[i] = &telemetry.Histogram{}
	}
	if logSink != nil {
		r.bw = bufio.NewWriter(logSink)
	}
	return r
}

// Start marks a request's arrival: it bumps the in-flight gauge and
// returns the wall-clock start. On a nil recorder it returns the zero time
// without touching the clock.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	n := r.inflight.Add(1)
	r.reg.Gauge(metricServingInflight).Set(float64(n))
	return time.Now()
}

// End records one completed request: latency into the endpoint's
// cumulative and windowed histograms and the part's histogram, counters,
// and (when a sink is attached) one JSONL record. part may be -1 when the
// request never resolved to a part (bad vertex); version likewise 0 when
// no view was consulted.
func (r *Recorder) End(start time.Time, endpoint string, vertex graph.VertexID, part, version, status int) {
	if r == nil {
		return
	}
	us := float64(time.Since(start)) / float64(time.Microsecond)
	n := r.inflight.Add(-1)
	r.reg.Gauge(metricServingInflight).Set(float64(n))
	r.reg.Counter(metricServingRequestsTotal).Inc()
	if status >= 400 {
		r.reg.Counter(metricServingErrorsTotal).Inc()
	}
	r.reg.Histogram(metricServingLatencyUS).Observe(us)

	r.mu.Lock()
	if h := r.byEndpoint[endpoint]; h != nil {
		h.Observe(us)
	}
	if h := r.windows[endpoint]; h != nil {
		h.Observe(us)
	}
	if part >= 0 {
		for part >= len(r.byPart) {
			r.byPart = append(r.byPart, &telemetry.Histogram{})
		}
		r.byPart[part].Observe(us)
	}
	if r.bw != nil && r.werr == nil {
		r.seq++
		line, err := json.Marshal(jsonRecord{
			V:         SchemaVersion,
			Type:      "request",
			Seq:       r.seq,
			Endpoint:  endpoint,
			Vertex:    int64(vertex),
			Part:      part,
			Version:   version,
			Status:    status,
			LatencyUS: us,
		})
		if err == nil {
			_, err = r.bw.Write(append(line, '\n'))
		}
		if err == nil {
			err = r.bw.Flush()
		}
		if err != nil {
			r.werr = err
		}
	}
	r.mu.Unlock()
}

// Inflight returns the number of requests currently between Start and End.
func (r *Recorder) Inflight() int64 {
	if r == nil {
		return 0
	}
	return r.inflight.Load()
}

// EndpointWindow is one endpoint's digest over the current window.
type EndpointWindow struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	P50      float64 `json:"p50_us"`
	P95      float64 `json:"p95_us"`
	P99      float64 `json:"p99_us"`
	P999     float64 `json:"p999_us"`
}

// WindowSnapshot digests and resets the windowed histograms: each call
// covers the traffic since the previous call, in Endpoints order.
func (r *Recorder) WindowSnapshot() []EndpointWindow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EndpointWindow, 0, len(Endpoints))
	for _, ep := range Endpoints {
		h := r.windows[ep]
		out = append(out, EndpointWindow{
			Endpoint: ep,
			Count:    h.Count(),
			P50:      h.Quantile(0.50),
			P95:      h.Quantile(0.95),
			P99:      h.Quantile(0.99),
			P999:     h.Quantile(0.999),
		})
		r.windows[ep] = &telemetry.Histogram{}
	}
	return out
}

// EndpointQuantile reads the cumulative per-endpoint distribution.
func (r *Recorder) EndpointQuantile(endpoint string, q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byEndpoint[endpoint].Quantile(q)
}

// PartQuantile reads the cumulative per-part distribution (0 for a part
// the recorder has never seen).
func (r *Recorder) PartQuantile(part int, q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if part < 0 || part >= len(r.byPart) {
		return 0
	}
	return r.byPart[part].Quantile(q)
}

// Flush flushes the request log and reports the first write error, if any.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bw != nil && r.werr == nil {
		r.werr = r.bw.Flush()
	}
	if r.werr != nil {
		return fmt.Errorf("servestats: request log: %w", r.werr)
	}
	return nil
}

// Close flushes and surfaces any sticky write error. The underlying sink
// is the caller's to close.
func (r *Recorder) Close() error { return r.Flush() }

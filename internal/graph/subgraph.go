package graph

// InducedSubgraph extracts the subgraph induced by the given vertex set:
// its vertices are renumbered 0..len(vs)-1 in the order given, and an arc is
// kept iff both endpoints are in the set. The second return value maps new
// IDs back to the original ones.
//
// The BPart combining phase conceptually re-partitions the "remaining graph"
// formed by the not-yet-balanced subgraphs (§3.3); the streaming partitioner
// does this with a vertex filter, but the induced subgraph is needed by the
// multilevel baseline's coarsening and by tests.
func InducedSubgraph(g *Graph, vs []VertexID) (*Graph, []VertexID) {
	newID := make(map[VertexID]VertexID, len(vs))
	back := make([]VertexID, len(vs))
	for i, v := range vs {
		newID[v] = VertexID(i)
		back[i] = v
	}
	b := NewBuilder(len(vs))
	for i, v := range vs {
		for _, u := range g.Neighbors(v) {
			if nu, ok := newID[u]; ok {
				b.AddEdge(VertexID(i), nu)
			}
		}
	}
	return b.Build(), back
}

// CountCrossEdges returns, for a vertex→part assignment, the number of arcs
// whose endpoints live in different parts. assignment must have one entry
// per vertex. This is the raw quantity behind the paper's edge-cut ratio
// (Table 3, Fig 5a).
func CountCrossEdges(g *Graph, assignment []int) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		pv := assignment[v]
		for _, u := range g.Neighbors(VertexID(v)) {
			if assignment[u] != pv {
				cut++
			}
		}
	}
	return cut
}

// PairConnectivity returns a k×k matrix m where m[a][b] counts arcs from
// part a to part b (a != b contributions only are meaningful for
// connectivity; the diagonal counts internal arcs). Used to reproduce the
// §3.3 connectivity claim that any two of the 64 small pieces share many
// thousands of edge connections.
func PairConnectivity(g *Graph, assignment []int, k int) [][]int {
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for v := 0; v < g.NumVertices(); v++ {
		pv := assignment[v]
		for _, u := range g.Neighbors(VertexID(v)) {
			m[pv][assignment[u]]++
		}
	}
	return m
}

// PartSizes returns per-part vertex and edge counts (edges owned by source
// vertex, i.e. |E_i| = Σ_{v∈V_i} outdeg(v)), the two quantities whose
// balance BPart targets.
func PartSizes(g *Graph, assignment []int, k int) (vertices, edges []int) {
	vertices = make([]int, k)
	edges = make([]int, k)
	for v := 0; v < g.NumVertices(); v++ {
		p := assignment[v]
		vertices[p]++
		edges[p] += g.OutDegree(VertexID(v))
	}
	return vertices, edges
}

package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph.
//
// Build uses a two-pass counting-sort layout, so construction is O(|V|+|E|)
// plus the per-vertex adjacency sort. A Builder may be reused after Build;
// the built graph does not alias the builder's buffers.
type Builder struct {
	numVertices int
	srcs        []VertexID
	dsts        []VertexID
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{numVertices: n}
}

// NumVertices returns the declared vertex count.
func (b *Builder) NumVertices() int { return b.numVertices }

// NumEdges returns the number of arcs added so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// Grow raises the vertex count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.numVertices {
		b.numVertices = n
	}
}

// AddEdge records the directed arc (src, dst). Both endpoints must be below
// the declared vertex count.
func (b *Builder) AddEdge(src, dst VertexID) {
	if int(src) >= b.numVertices || int(dst) >= b.numVertices {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.numVertices))
	}
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
}

// AddUndirected records both arcs (src,dst) and (dst,src).
func (b *Builder) AddUndirected(src, dst VertexID) {
	b.AddEdge(src, dst)
	b.AddEdge(dst, src)
}

// Build produces the immutable graph. Adjacency lists are sorted by target;
// parallel arcs are kept (multigraphs are legal inputs for the partitioners,
// which only ever count arcs).
func (b *Builder) Build() *Graph {
	n := b.numVertices
	offsets := make([]uint64, n+1)
	for _, s := range b.srcs {
		offsets[s+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]VertexID, len(b.srcs))
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for i, s := range b.srcs {
		targets[cursor[s]] = b.dsts[i]
		cursor[s]++
	}
	g := &Graph{offsets: offsets, targets: targets}
	for v := 0; v < n; v++ {
		ns := g.targets[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return g
}

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// FromAdjacency builds a graph from an adjacency-list description; adj[v]
// holds the out-neighbors of v. Handy for table-driven tests.
func FromAdjacency(adj [][]VertexID) *Graph {
	b := NewBuilder(len(adj))
	for v, ns := range adj {
		for _, u := range ns {
			b.AddEdge(VertexID(v), u)
		}
	}
	return b.Build()
}

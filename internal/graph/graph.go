// Package graph provides an immutable, compressed-sparse-row (CSR) directed
// graph representation used by every other package in this repository: the
// streaming partitioners, the BPart combiner, the Gemini-like BSP engine and
// the KnightKing-like random-walk engine.
//
// Vertices are dense uint32 identifiers in [0, NumVertices()). Edges are
// directed; an undirected graph is represented by storing both arcs. The
// edge count NumEdges() counts directed arcs, matching how the paper's
// systems (Gemini, KnightKing) account subgraph size: the number of edges of
// a partition is the sum of out-degrees of its vertices.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Dense, zero-based.
type VertexID = uint32

// Edge is a directed arc from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is an immutable directed graph in CSR form.
//
// The zero value is an empty graph with no vertices. Construct non-empty
// graphs with a Builder or FromEdges. All methods are safe for concurrent
// use because the structure is never mutated after construction.
type Graph struct {
	offsets []uint64 // len = numVertices+1
	targets []VertexID
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed arcs.
func (g *Graph) NumEdges() int { return len(g.targets) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v as a shared slice.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// AvgDegree returns the average out-degree, the d̄ of the paper's weighted
// balance indicator W_i = c·|V_i| + (1−c)·|E_i|/d̄.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// HasEdge reports whether the arc (src, dst) exists. The adjacency list of
// src is scanned with binary search when sorted, linearly otherwise; graphs
// built by Builder.Build always have sorted adjacency.
func (g *Graph) HasEdge(src, dst VertexID) bool {
	ns := g.Neighbors(src)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= dst })
	if i < len(ns) && ns[i] == dst {
		return true
	}
	// Fall back to a linear scan in case the adjacency is unsorted
	// (e.g. a graph assembled by tests via FromEdgesUnsorted).
	for _, u := range ns {
		if u == dst {
			return true
		}
	}
	return false
}

// Edges calls fn for every arc in vertex order. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if !fn(Edge{Src: VertexID(v), Dst: u}) {
				return
			}
		}
	}
}

// EdgeList materializes all arcs. Intended for tests and small graphs.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Transpose returns the graph with every arc reversed. Used by pull-style
// computations and by tests that need in-neighbor access.
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices()
	b := NewBuilder(n)
	g.Edges(func(e Edge) bool {
		b.AddEdge(e.Dst, e.Src)
		return true
	})
	return b.Build()
}

// Degrees returns a freshly allocated slice of out-degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.NumVertices())
	for v := range d {
		d[v] = g.OutDegree(VertexID(v))
	}
	return d
}

// Validate checks structural invariants: monotone offsets and in-range
// targets. It returns nil for a well-formed graph.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		if len(g.targets) != 0 {
			return fmt.Errorf("graph: %d targets but no vertices", len(g.targets))
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != uint64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.targets))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	for i, t := range g.targets {
		if int(t) >= n {
			return fmt.Errorf("graph: target %d of arc %d out of range [0,%d)", t, i, n)
		}
	}
	return nil
}

// String returns a short summary such as "graph(|V|=5, |E|=7)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d)", g.NumVertices(), g.NumEdges())
}

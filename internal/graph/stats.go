package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the degree structure of a graph. The paper's Table 1
// reports |V|, |E| and average degree for each dataset; MaxDegree and the
// power-law tail diagnostics are used to check that the synthetic graphs in
// internal/gen are scale-free like the originals.
type Stats struct {
	NumVertices int
	NumEdges    int
	AvgDegree   float64
	MaxDegree   int
	// DegreeP50/P90/P99 are out-degree percentiles.
	DegreeP50 int
	DegreeP90 int
	DegreeP99 int
	// GiniDegree is the Gini coefficient of the out-degree distribution
	// (0 = perfectly uniform degrees, →1 = extremely skewed). Scale-free
	// social graphs sit well above 0.5.
	GiniDegree float64
	// ZeroDegree counts vertices with no out-edges.
	ZeroDegree int
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{NumVertices: n, NumEdges: g.NumEdges(), AvgDegree: g.AvgDegree()}
	if n == 0 {
		return s
	}
	deg := g.Degrees()
	sort.Ints(deg)
	s.MaxDegree = deg[n-1]
	s.DegreeP50 = deg[percentileIndex(n, 0.50)]
	s.DegreeP90 = deg[percentileIndex(n, 0.90)]
	s.DegreeP99 = deg[percentileIndex(n, 0.99)]
	for _, d := range deg {
		if d == 0 {
			s.ZeroDegree++
		}
	}
	s.GiniDegree = giniSorted(deg)
	return s
}

func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// giniSorted computes the Gini coefficient of a non-decreasing sample.
func giniSorted(xs []int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var sum, weighted float64
	for i, x := range xs {
		sum += float64(x)
		weighted += float64(i+1) * float64(x)
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// DegreeHistogram returns log2-bucketed out-degree counts: bucket[i] counts
// vertices with degree in [2^i, 2^(i+1)), bucket "-1" (index 0 of the
// returned slice via Zero field) is exposed through Stats.ZeroDegree.
func DegreeHistogram(g *Graph) []int {
	var buckets []int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(VertexID(v))
		if d == 0 {
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avg=%.2f max=%d p50=%d p90=%d p99=%d gini=%.3f zero=%d",
		s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxDegree,
		s.DegreeP50, s.DegreeP90, s.DegreeP99, s.GiniDegree, s.ZeroDegree)
}

package graph

import (
	"bpart/internal/xrand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func diamond() *Graph {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero graph not empty: %v", g.String())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("zero graph invalid: %v", err)
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("AvgDegree of empty graph = %v, want 0", g.AvgDegree())
	}
}

func TestBuilderBasic(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantDeg := []int{2, 1, 1, 1}
	if got := g.Degrees(); !reflect.DeepEqual(got, wantDeg) {
		t.Fatalf("Degrees = %v, want %v", got, wantDeg)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	ns := g.Neighbors(0)
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
		t.Fatalf("adjacency not sorted: %v", ns)
	}
	if len(ns) != 3 {
		t.Fatalf("parallel arcs must be preserved, got %v", ns)
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	cases := []struct {
		s, d VertexID
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, false},
		{1, 3, true}, {3, 0, true}, {1, 0, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.s, c.d); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.s, c.d, got, c.want)
		}
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	b.AddUndirected(0, 1)
	g := b.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("undirected arc missing: %v", g.EdgeList())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(1)
	b.Grow(5)
	b.AddEdge(4, 0)
	g := b.Build()
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	b.Grow(2) // shrinking is a no-op
	if b.NumVertices() != 5 {
		t.Fatalf("Grow shrank the builder to %d", b.NumVertices())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestNewBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestTranspose(t *testing.T) {
	g := diamond()
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edge count %d != %d", tr.NumEdges(), g.NumEdges())
	}
	g.Edges(func(e Edge) bool {
		if !tr.HasEdge(e.Dst, e.Src) {
			t.Errorf("transpose missing reversed arc of %v", e)
		}
		return true
	})
	// Double transpose must be the original edge multiset.
	back := tr.Transpose()
	a, b := g.EdgeList(), back.EdgeList()
	sortEdges(a)
	sortEdges(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("double transpose changed edges")
	}
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

func TestEdgesEarlyStop(t *testing.T) {
	g := diamond()
	count := 0
	g.Edges(func(e Edge) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d edges, want 2", count)
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]VertexID{{1, 2}, {2}, {}})
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("unexpected shape %v", g)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 2) {
		t.Fatalf("edges missing")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond()
	sub, back := InducedSubgraph(g, []VertexID{0, 1, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", sub.NumVertices())
	}
	// Kept arcs: 0->1, 1->3, 3->0 (0->2 and 2->3 dropped).
	if sub.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3: %v", sub.NumEdges(), sub.EdgeList())
	}
	if !reflect.DeepEqual(back, []VertexID{0, 1, 3}) {
		t.Fatalf("back map = %v", back)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(2, 0) {
		t.Fatalf("renumbered arcs wrong: %v", sub.EdgeList())
	}
}

func TestCountCrossEdges(t *testing.T) {
	g := diamond()
	all := CountCrossEdges(g, []int{0, 1, 1, 0})
	// cross arcs: 0->1, 0->2, 2->3 ... check by hand:
	// 0(p0)->1(p1) cross, 0->2(p1) cross, 1(p1)->3(p0) cross, 2(p1)->3(p0) cross, 3(p0)->0(p0) internal
	if all != 4 {
		t.Fatalf("cross = %d, want 4", all)
	}
	if c := CountCrossEdges(g, []int{0, 0, 0, 0}); c != 0 {
		t.Fatalf("single part cross = %d, want 0", c)
	}
}

func TestPartSizes(t *testing.T) {
	g := diamond()
	vs, es := PartSizes(g, []int{0, 1, 1, 0}, 2)
	if !reflect.DeepEqual(vs, []int{2, 2}) {
		t.Fatalf("vertex sizes = %v", vs)
	}
	// part0 owns v0(deg2)+v3(deg1)=3, part1 owns v1+v2 = 2
	if !reflect.DeepEqual(es, []int{3, 2}) {
		t.Fatalf("edge sizes = %v", es)
	}
}

func TestPairConnectivity(t *testing.T) {
	g := diamond()
	m := PairConnectivity(g, []int{0, 1, 1, 0}, 2)
	if m[0][1] != 2 { // 0->1, 0->2
		t.Fatalf("m[0][1] = %d, want 2", m[0][1])
	}
	if m[1][0] != 2 { // 1->3, 2->3
		t.Fatalf("m[1][0] = %d, want 2", m[1][0])
	}
	if m[0][0] != 1 { // 3->0
		t.Fatalf("m[0][0] = %d, want 1", m[0][0])
	}
	total := m[0][0] + m[0][1] + m[1][0] + m[1][1]
	if total != g.NumEdges() {
		t.Fatalf("connectivity total %d != |E| %d", total, g.NumEdges())
	}
}

func TestStatsSmall(t *testing.T) {
	g := diamond()
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 5 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.MaxDegree != 2 {
		t.Fatalf("MaxDegree = %d, want 2", s.MaxDegree)
	}
	if s.AvgDegree != 1.25 {
		t.Fatalf("AvgDegree = %v, want 1.25", s.AvgDegree)
	}
	if s.ZeroDegree != 0 {
		t.Fatalf("ZeroDegree = %d", s.ZeroDegree)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestStatsEmpty(t *testing.T) {
	s := ComputeStats(&Graph{})
	if s.NumVertices != 0 || s.GiniDegree != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestGini(t *testing.T) {
	if g := giniSorted([]int{5, 5, 5, 5}); g != 0 {
		t.Fatalf("uniform gini = %v, want 0", g)
	}
	// One vertex holds everything: gini = (n-1)/n = 0.75 for n=4.
	if g := giniSorted([]int{0, 0, 0, 100}); g != 0.75 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
	if g := giniSorted(nil); g != 0 {
		t.Fatalf("nil gini = %v", g)
	}
	if g := giniSorted([]int{0, 0}); g != 0 {
		t.Fatalf("all-zero gini = %v", g)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// degrees: 2,1,1,1 -> bucket0 ([1,2)) = 3, bucket1 ([2,4)) = 1
	h := DegreeHistogram(diamond())
	if len(h) != 2 || h[0] != 3 || h[1] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestPercentileIndex(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{10, 0.5, 4}, {10, 0.99, 9}, {10, 0.0, 0}, {1, 0.9, 0}, {100, 1.0, 99},
	}
	for _, c := range cases {
		if got := percentileIndex(c.n, c.p); got != c.want {
			t.Errorf("percentileIndex(%d,%v) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// Property: for any random edge set, Build produces a validating graph whose
// edge multiset equals the input.
func TestQuickBuildRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint16) bool {
		n := int(rawN)%64 + 1
		m := int(rawM) % 512
		rng := xrand.New(uint64(seed))
		in := make([]Edge, m)
		for i := range in {
			in[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
		}
		g := FromEdges(n, in)
		if err := g.Validate(); err != nil {
			t.Logf("invalid graph: %v", err)
			return false
		}
		if g.NumEdges() != m || g.NumVertices() != n {
			return false
		}
		out := g.EdgeList()
		sortEdges(in)
		sortEdges(out)
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of out-degrees equals the edge count; per-part sizes always
// sum to the totals.
func TestQuickDegreeSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(uint64(seed))
		n := rng.Intn(100) + 2
		m := rng.Intn(500)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		if sum != g.NumEdges() {
			return false
		}
		k := rng.Intn(8) + 1
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		vs, es := PartSizes(g, assign, k)
		var tv, te int
		for i := 0; i < k; i++ {
			tv += vs[i]
			te += es[i]
		}
		return tv == n && te == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cross edges + internal edges = all edges, and the pair
// connectivity matrix is consistent with CountCrossEdges.
func TestQuickCutConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(uint64(seed))
		n := rng.Intn(80) + 2
		m := rng.Intn(400)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		k := rng.Intn(6) + 2
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		cut := CountCrossEdges(g, assign)
		mat := PairConnectivity(g, assign, k)
		var off, diag int
		for a := 0; a < k; a++ {
			for c := 0; c < k; c++ {
				if a == c {
					diag += mat[a][c]
				} else {
					off += mat[a][c]
				}
			}
		}
		return off == cut && off+diag == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := xrand.New(1)
	const n, m = 10000, 100000
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromEdges(n, edges)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// skewedAssignment puts the first frac of vertices in part 0 and spreads
// the rest round-robin over the remaining parts.
func skewedAssignment(n, k int, frac float64) []int {
	parts := make([]int, n)
	cut := int(float64(n) * frac)
	for v := 0; v < n; v++ {
		if v < cut {
			parts[v] = 0
		} else {
			parts[v] = 1 + v%(k-1)
		}
	}
	return parts
}

func TestRebalanceFixesVertexOverage(t *testing.T) {
	g := gen.Ring(1000)
	// Part 0 holds 40% of all vertices.
	parts := skewedAssignment(1000, 4, 0.4)
	rebalance(g, parts, 4, 0.05)
	vs, es := graph.PartSizes(g, parts, 4)
	if b := metrics.Bias(vs); b > 0.06 {
		t.Fatalf("vertex bias %v after rebalance, want ≤ ~ε", b)
	}
	if b := metrics.Bias(es); b > 0.06 {
		t.Fatalf("edge bias %v after rebalance (ring: E tracks V)", b)
	}
}

func TestRebalanceFixesEdgeOverage(t *testing.T) {
	// Scale-free graph, vertex-balanced but edge-skewed split (Chunk-V
	// style): part 0 gets the hubs.
	g, err := gen.ChungLu(gen.Config{NumVertices: 4000, AvgDegree: 10, Skew: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int, 4000)
	for v := range parts {
		parts[v] = v * 4 / 4000
	}
	before := metrics.NewReport(g, parts, 4, false)
	if before.EdgeBias < 0.5 {
		t.Fatalf("precondition: edge bias %v not skewed", before.EdgeBias)
	}
	rebalance(g, parts, 4, 0.1)
	after := metrics.NewReport(g, parts, 4, false)
	if after.EdgeBias > 0.12 {
		t.Fatalf("edge bias %v after rebalance, want ≤ ~ε", after.EdgeBias)
	}
	if after.VertexBias > 0.12 {
		t.Fatalf("vertex bias %v after rebalance", after.VertexBias)
	}
}

func TestRebalanceNoopWhenBalanced(t *testing.T) {
	g := gen.Ring(100)
	parts := make([]int, 100)
	for v := range parts {
		parts[v] = v % 4
	}
	orig := append([]int(nil), parts...)
	rebalance(g, parts, 4, 0.1)
	for v := range parts {
		if parts[v] != orig[v] {
			t.Fatalf("balanced assignment modified at vertex %d", v)
		}
	}
}

func TestRebalanceDegenerate(t *testing.T) {
	// k=1 and empty graphs must be no-ops, not panics.
	g := gen.Ring(10)
	parts := make([]int, 10)
	rebalance(g, parts, 1, 0.1)
	empty := graph.FromAdjacency(nil)
	rebalance(empty, nil, 3, 0.1)
}

func TestRebalanceNeverEmptiesAPart(t *testing.T) {
	g := gen.Ring(20)
	// Part 3 holds a single vertex; heavily unbalanced elsewhere.
	parts := make([]int, 20)
	for v := 0; v < 19; v++ {
		parts[v] = v % 3
	}
	parts[19] = 3
	rebalance(g, parts, 4, 0.01)
	count := 0
	for _, p := range parts {
		if p == 3 {
			count++
		}
	}
	if count == 0 {
		t.Fatal("rebalance emptied part 3")
	}
}

// Property: rebalance preserves totals, keeps parts in range, and never
// increases the worst normalized overage.
func TestQuickRebalanceInvariants(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%300) + 20
		k := int(rawK)%6 + 2
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 6, Skew: 0.75, Seed: seed})
		if err != nil {
			return false
		}
		parts := make([]int, n)
		for v := range parts {
			parts[v] = int((seed + uint64(v)*2654435761) % uint64(k))
		}
		vsB, esB := graph.PartSizes(g, parts, k)
		worstBefore := metrics.Bias(vsB)
		if eb := metrics.Bias(esB); eb > worstBefore {
			worstBefore = eb
		}
		rebalance(g, parts, k, 0.1)
		for _, p := range parts {
			if p < 0 || p >= k {
				return false
			}
		}
		vs, es := graph.PartSizes(g, parts, k)
		tv, te := 0, 0
		for i := 0; i < k; i++ {
			tv += vs[i]
			te += es[i]
		}
		if tv != n || te != g.NumEdges() {
			return false
		}
		worstAfter := metrics.Bias(vs)
		if eb := metrics.Bias(es); eb > worstAfter {
			worstAfter = eb
		}
		return worstAfter <= worstBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"testing"

	"bpart/internal/telemetry"
)

// A traced BPart run must emit one bpart.partition span, one bpart.layer
// span per combining layer (with frozen counts and residual bias), one
// partition.stream span per layer, and a bpart.refine span, and fill the
// metrics registry.
func TestPartitionTelemetry(t *testing.T) {
	g := twitterish(t)
	b := defaultBPart(t)
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	b.SetTelemetry(tr, reg)

	const k = 8
	_, trace, err := b.PartitionWithTrace(g, k)
	if err != nil {
		t.Fatal(err)
	}

	runs := tr.Find("bpart.partition")
	if len(runs) != 1 {
		t.Fatalf("got %d bpart.partition spans, want 1", len(runs))
	}
	if got := runs[0].Attr("k"); got != int64(k) {
		t.Fatalf("run span k = %v", got)
	}
	if got := runs[0].Attr("layers"); got != int64(len(trace.Layers)) {
		t.Fatalf("run span layers = %v, trace has %d", got, len(trace.Layers))
	}

	layers := tr.Find("bpart.layer")
	if len(layers) != len(trace.Layers) {
		t.Fatalf("got %d bpart.layer spans, trace has %d layers", len(layers), len(trace.Layers))
	}
	totalFrozen := int64(0)
	for i, sp := range layers {
		lt := trace.Layers[i]
		if got := sp.Attr("layer"); got != int64(lt.Layer) {
			t.Fatalf("layer %d span layer attr = %v", i, got)
		}
		if got := sp.Attr("pieces"); got != int64(lt.Pieces) {
			t.Fatalf("layer %d span pieces = %v, want %d", i, got, lt.Pieces)
		}
		if got := sp.Attr("groups_frozen"); got != int64(lt.Finalized) {
			t.Fatalf("layer %d span groups_frozen = %v, want %d", i, got, lt.Finalized)
		}
		if got := sp.Attr("parts_remaining"); got != int64(lt.RemainingNr) {
			t.Fatalf("layer %d span parts_remaining = %v, want %d", i, got, lt.RemainingNr)
		}
		vBias, okV := sp.Attr("residual_v_bias").(float64)
		eBias, okE := sp.Attr("residual_e_bias").(float64)
		if !okV || !okE || vBias < 0 || eBias < 0 {
			t.Fatalf("layer %d residual bias attrs = %v / %v",
				i, sp.Attr("residual_v_bias"), sp.Attr("residual_e_bias"))
		}
		pf, ok := sp.Attr("pieces_frozen").(int64)
		if !ok || pf < 0 || pf > int64(lt.Pieces) {
			t.Fatalf("layer %d pieces_frozen = %v (pieces %d)", i, sp.Attr("pieces_frozen"), lt.Pieces)
		}
		totalFrozen += int64(lt.Finalized)
	}
	if totalFrozen != k {
		t.Fatalf("layer spans froze %d groups total, want %d", totalFrozen, k)
	}

	if streams := tr.Find("partition.stream"); len(streams) != len(trace.Layers) {
		t.Fatalf("got %d partition.stream spans, want %d", len(streams), len(trace.Layers))
	}
	if refines := tr.Find("bpart.refine"); len(refines) != 1 {
		t.Fatalf("got %d bpart.refine spans, want 1", len(refines))
	}

	if got := reg.Counter("bpart_layers_total").Value(); got != int64(len(trace.Layers)) {
		t.Fatalf("bpart_layers_total = %d, want %d", got, len(trace.Layers))
	}
	if got := reg.Counter("bpart_groups_frozen_total").Value(); got != int64(k) {
		t.Fatalf("bpart_groups_frozen_total = %d, want %d", got, k)
	}
	if got := reg.Counter("bpart_partitions_total").Value(); got != 1 {
		t.Fatalf("bpart_partitions_total = %d, want 1", got)
	}
	if got := reg.Counter("stream_placed_total").Value(); got < int64(g.NumVertices()) {
		t.Fatalf("stream_placed_total = %d, want >= %d (every vertex streams at least once)",
			got, g.NumVertices())
	}
}

// An uninstrumented BPart must behave identically (the telemetry default is
// the no-op tracer), and instrumenting must not change the result.
func TestTelemetryDoesNotChangeResult(t *testing.T) {
	g := twitterish(t)
	plain := defaultBPart(t)
	a1, err := plain.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	traced := defaultBPart(t)
	traced.SetTelemetry(telemetry.NewMemory(), telemetry.NewRegistry())
	a2, err := traced.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Parts {
		if a1.Parts[v] != a2.Parts[v] {
			t.Fatalf("vertex %d: untraced part %d, traced part %d", v, a1.Parts[v], a2.Parts[v])
		}
	}
}

package core

import (
	"sort"

	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// refineMoves counts what the refinement pass did, for telemetry: Shed is
// phase 1 (moving vertices out of over-threshold parts), Pulled is phase 2
// (filling under-threshold parts).
type refineMoves struct {
	Shed   int
	Pulled int
}

// rebalance is the final repair pass of BPart (an addition over the paper,
// see Config.DisableRefine). It greedily moves vertices out of parts whose
// |V_i| or |E_i| exceeds (1+ε) of the per-part mean into parts with
// headroom, until no part is over the threshold or no further move is
// possible. It returns the number of moves made by each phase.
//
// Move selection: to shed edge mass, move the highest-degree vertex that
// fits the receiver's edge headroom; to shed vertex count, move the
// lowest-degree vertex (cheapest in edge mass). The receiver is the part
// lightest in the violated dimension that stays within (1+ε) in both
// dimensions after the move, so a move never creates a new violation and
// the total overage strictly decreases — the loop terminates.
func rebalance(g *graph.Graph, parts []int, k int, eps float64) refineMoves {
	var done refineMoves
	n := g.NumVertices()
	if n == 0 || k <= 1 {
		return done
	}
	targetV := float64(n) / float64(k)
	targetE := float64(g.NumEdges()) / float64(k)

	vCount := make([]int, k)
	eCount := make([]int, k)
	members := make([][]graph.VertexID, k) // sorted by out-degree ascending
	for v := 0; v < n; v++ {
		p := parts[v]
		vCount[p]++
		eCount[p] += g.OutDegree(graph.VertexID(v))
		members[p] = append(members[p], graph.VertexID(v))
	}
	for p := range members {
		ms := members[p]
		sort.Slice(ms, func(i, j int) bool {
			di, dj := g.OutDegree(ms[i]), g.OutDegree(ms[j])
			if di != dj {
				return di < dj
			}
			return ms[i] < ms[j]
		})
	}

	overV := func(p int) float64 { return float64(vCount[p]) - targetV }
	overE := func(p int) float64 {
		if metrics.IsZero(targetE) {
			return 0
		}
		return float64(eCount[p]) - targetE
	}
	capV := (1 + eps) * targetV
	capE := (1 + eps) * targetE

	// Phase 1: shed overages.
	stuck := make([]bool, k)
	for moves := 0; moves < n; moves++ {
		// Worst violator by normalized overage.
		worst, worstScore, worstDim := -1, eps, 'V'
		for p := 0; p < k; p++ {
			if stuck[p] {
				continue
			}
			nv := overV(p) / targetV
			var ne float64
			if targetE > 0 {
				ne = overE(p) / targetE
			}
			if nv > worstScore {
				worst, worstScore, worstDim = p, nv, 'V'
			}
			if ne > worstScore {
				worst, worstScore, worstDim = p, ne, 'E'
			}
		}
		if worst == -1 {
			break
		}
		if !moveOne(g, parts, worst, worstDim, vCount, eCount, members, capV, capE) {
			stuck[worst] = true
			continue
		}
		done.Shed++
		// A successful move may unstick other parts (their receivers
		// gained headroom indirectly); re-examine everything.
		for p := range stuck {
			stuck[p] = false
		}
	}

	// Phase 2: fill deficits. Bias only punishes maxima, but Jain's
	// fairness (Fig 11) and the per-machine load plots (Fig 12) expect
	// every part near the mean, so pull mass into parts below (1−ε).
	floorV := (1 - eps) * targetV
	floorE := (1 - eps) * targetE
	for p := range stuck {
		stuck[p] = false
	}
	for moves := 0; moves < n; moves++ {
		worst, worstScore, worstDim := -1, eps, 'V'
		for p := 0; p < k; p++ {
			if stuck[p] {
				continue
			}
			nv := -overV(p) / targetV
			var ne float64
			if targetE > 0 {
				ne = -overE(p) / targetE
			}
			if nv > worstScore {
				worst, worstScore, worstDim = p, nv, 'V'
			}
			if ne > worstScore {
				worst, worstScore, worstDim = p, ne, 'E'
			}
		}
		if worst == -1 {
			return done
		}
		if !pullOne(g, parts, worst, worstDim, vCount, eCount, members, capV, capE, floorV, floorE) {
			stuck[worst] = true
			continue
		}
		done.Pulled++
		for p := range stuck {
			stuck[p] = false
		}
	}
	return done
}

// pullOne moves a single vertex from the heaviest suitable donor into the
// deficient part p. A donor is suitable when it stays at or above the
// (1−ε) floors after the move, so pulling never creates a new deficit; the
// receiver is capped at (1+ε) so it cannot become a violator either.
func pullOne(g *graph.Graph, parts []int, p int, dim rune,
	vCount, eCount []int, members [][]graph.VertexID, capV, capE, floorV, floorE float64) bool {
	k := len(vCount)
	if float64(vCount[p]+1) > capV {
		return false
	}
	order := make([]int, 0, k-1)
	for q := 0; q < k; q++ {
		if q != p {
			order = append(order, q)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if dim == 'E' {
			if eCount[a] != eCount[b] {
				return eCount[a] > eCount[b]
			}
			return vCount[a] > vCount[b]
		}
		if vCount[a] != vCount[b] {
			return vCount[a] > vCount[b]
		}
		return eCount[a] > eCount[b]
	})
	headroomE := int(capE) - eCount[p]
	for _, q := range order {
		if len(members[q]) <= 1 || float64(vCount[q]-1) < floorV {
			continue
		}
		ms := members[q]
		var idx int
		if dim == 'E' {
			// Largest donor vertex that fits p and keeps q above its
			// edge floor.
			budget := headroomE
			if keep := eCount[q] - int(floorE); keep < budget {
				budget = keep
			}
			idx = sort.Search(len(ms), func(i int) bool {
				return g.OutDegree(ms[i]) > budget
			}) - 1
		} else {
			idx = 0
			d := g.OutDegree(ms[0])
			if d > headroomE || float64(eCount[q]-d) < floorE {
				idx = -1
			}
		}
		if idx < 0 {
			continue
		}
		v := ms[idx]
		d := g.OutDegree(v)
		members[q] = append(ms[:idx], ms[idx+1:]...)
		ins := sort.Search(len(members[p]), func(i int) bool {
			di := g.OutDegree(members[p][i])
			if di != d {
				return di > d
			}
			return members[p][i] >= v
		})
		members[p] = append(members[p], 0)
		copy(members[p][ins+1:], members[p][ins:])
		members[p][ins] = v
		parts[v] = p
		vCount[q]--
		vCount[p]++
		eCount[q] -= d
		eCount[p] += d
		return true
	}
	return false
}

// moveOne moves a single vertex out of part p to relieve dimension dim.
// It reports whether a move happened.
func moveOne(g *graph.Graph, parts []int, p int, dim rune,
	vCount, eCount []int, members [][]graph.VertexID, capV, capE float64) bool {
	if len(members[p]) <= 1 {
		return false // never empty a part
	}
	k := len(vCount)
	// Candidate receivers ordered by load in the violated dimension.
	order := make([]int, 0, k-1)
	for q := 0; q < k; q++ {
		if q != p {
			order = append(order, q)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if dim == 'E' {
			if eCount[a] != eCount[b] {
				return eCount[a] < eCount[b]
			}
			return vCount[a] < vCount[b]
		}
		if vCount[a] != vCount[b] {
			return vCount[a] < vCount[b]
		}
		return eCount[a] < eCount[b]
	})
	for _, q := range order {
		if float64(vCount[q]+1) > capV {
			continue
		}
		headroomE := int(capE) - eCount[q]
		ms := members[p]
		var idx int
		if dim == 'E' {
			// Largest-degree vertex whose degree fits the receiver.
			idx = sort.Search(len(ms), func(i int) bool {
				return g.OutDegree(ms[i]) > headroomE
			}) - 1
		} else {
			// Smallest-degree vertex; it must still fit the receiver.
			idx = 0
			if g.OutDegree(ms[0]) > headroomE {
				idx = -1
			}
		}
		if idx < 0 {
			continue
		}
		v := ms[idx]
		d := g.OutDegree(v)
		// Execute the move.
		members[p] = append(ms[:idx], ms[idx+1:]...)
		ins := sort.Search(len(members[q]), func(i int) bool {
			di := g.OutDegree(members[q][i])
			if di != d {
				return di > d
			}
			return members[q][i] >= v
		})
		members[q] = append(members[q], 0)
		copy(members[q][ins+1:], members[q][ins:])
		members[q][ins] = v
		parts[v] = q
		vCount[p]--
		vCount[q]++
		eCount[p] -= d
		eCount[q] += d
		return true
	}
	return false
}

package core

import (
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partition"
)

func twitterish(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 20000, AvgDegree: 16, Skew: 0.78, Locality: 0.45, Window: 512, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func defaultBPart(t testing.TB) *BPart {
	t.Helper()
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.C != 0.5 || c.Epsilon != 0.1 || c.SplitFactor != 2 || c.MaxLayers != 4 {
		t.Fatalf("zero config did not pick defaults: %+v", c)
	}
	bad := []Config{
		{C: -0.1, Epsilon: 0.1},
		{C: 1.1, Epsilon: 0.1},
		{C: 0.5, SplitFactor: 3},
		{C: 0.5, SplitFactor: 1},
		{C: 0.5, SplitFactor: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Normalize(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	// Explicit C=0 (edge-only) with another field set must be kept, not
	// replaced by defaults.
	c = Config{C: 0, Epsilon: 0.2}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.C != 0 || c.Epsilon != 0.2 {
		t.Fatalf("explicit config overwritten: %+v", c)
	}
}

func TestPartitionArgs(t *testing.T) {
	b := defaultBPart(t)
	if _, err := b.Partition(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := b.Partition(gen.Ring(4), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPartitionK1(t *testing.T) {
	b := defaultBPart(t)
	g := gen.Ring(10)
	a, err := b.Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range a.Parts {
		if p != 0 {
			t.Fatalf("vertex %d in part %d", v, p)
		}
	}
}

func TestTwoDimensionalBalance(t *testing.T) {
	g := twitterish(t)
	b := defaultBPart(t)
	for _, k := range []int{4, 8, 16} {
		a, err := b.Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		r := metrics.NewReport(g, a.Parts, k, false)
		// The paper's headline claim: bias below ~0.1 in BOTH
		// dimensions (Fig 10); we allow a small margin for the
		// synthetic graphs.
		if r.VertexBias > 0.15 {
			t.Errorf("k=%d: vertex bias %v, want ≤ 0.15", k, r.VertexBias)
		}
		if r.EdgeBias > 0.15 {
			t.Errorf("k=%d: edge bias %v, want ≤ 0.15", k, r.EdgeBias)
		}
		if r.VertexJain < 0.98 || r.EdgeJain < 0.98 {
			t.Errorf("k=%d: Jain fairness V=%v E=%v, want ≈1", k, r.VertexJain, r.EdgeJain)
		}
	}
}

func TestBeatsOneDimensionalSchemes(t *testing.T) {
	g := twitterish(t)
	k := 8
	b := defaultBPart(t)
	ab, err := b.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	rb := metrics.NewReport(g, ab.Parts, k, false)

	av, _ := partition.ChunkV{}.Partition(g, k)
	rv := metrics.NewReport(g, av.Parts, k, false)
	ae, _ := partition.ChunkE{}.Partition(g, k)
	re := metrics.NewReport(g, ae.Parts, k, false)

	if rb.EdgeBias >= rv.EdgeBias {
		t.Errorf("BPart edge bias %v not below Chunk-V's %v", rb.EdgeBias, rv.EdgeBias)
	}
	if rb.VertexBias >= re.VertexBias {
		t.Errorf("BPart vertex bias %v not below Chunk-E's %v", rb.VertexBias, re.VertexBias)
	}
}

func TestCutsFewerEdgesThanHash(t *testing.T) {
	g := twitterish(t)
	k := 8
	b := defaultBPart(t)
	ab, err := b.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	ah, _ := partition.Hash{}.Partition(g, k)
	cutB := metrics.EdgeCutRatio(g, ab.Parts)
	cutH := metrics.EdgeCutRatio(g, ah.Parts)
	if cutB >= cutH {
		t.Fatalf("BPart cut %v not below Hash cut %v (Table 3 shape)", cutB, cutH)
	}
}

func TestTraceStructure(t *testing.T) {
	g := twitterish(t)
	b := defaultBPart(t)
	k := 8
	a, tr, err := b.PartitionWithTrace(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Layers) == 0 {
		t.Fatal("no layers traced")
	}
	l1 := tr.Layers[0]
	if l1.Pieces != 2*k {
		t.Fatalf("layer 1 pieces = %d, want %d", l1.Pieces, 2*k)
	}
	if len(l1.PieceV) != l1.Pieces || len(l1.PieceE) != l1.Pieces {
		t.Fatalf("trace arrays wrong length")
	}
	if len(l1.CombinedV) != k {
		t.Fatalf("layer 1 combined groups = %d, want %d", len(l1.CombinedV), k)
	}
	totalFinal := 0
	for _, l := range tr.Layers {
		totalFinal += l.Finalized
	}
	if totalFinal != k {
		t.Fatalf("finalized %d groups across layers, want %d", totalFinal, k)
	}
	// The paper: convergence within 2–3 layers.
	if len(tr.Layers) > b.Config().MaxLayers {
		t.Fatalf("%d layers exceeds MaxLayers", len(tr.Layers))
	}
	if a.K != k {
		t.Fatalf("K = %d", a.K)
	}
}

func TestInverseProportionality(t *testing.T) {
	// After phase 1 with c=½, pieces with fewer vertices must tend to have
	// more edges (Fig 8). Check rank correlation is clearly negative.
	g := twitterish(t)
	b := defaultBPart(t)
	_, tr, err := b.PartitionWithTrace(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	l1 := tr.Layers[0]
	neg, pos := 0, 0
	for i := 0; i < len(l1.PieceV); i++ {
		for j := i + 1; j < len(l1.PieceV); j++ {
			dv := l1.PieceV[i] - l1.PieceV[j]
			de := l1.PieceE[i] - l1.PieceE[j]
			switch {
			case dv*de < 0:
				neg++
			case dv*de > 0:
				pos++
			}
		}
	}
	if neg <= pos {
		t.Fatalf("piece V/E not inversely related: %d concordant vs %d discordant pairs", pos, neg)
	}
}

func TestSplitFactor4(t *testing.T) {
	g := twitterish(t)
	b, err := New(Config{C: 0.5, SplitFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, tr, err := b.PartitionWithTrace(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if tr.Layers[0].Pieces != 16 {
		t.Fatalf("layer 1 pieces = %d, want 16", tr.Layers[0].Pieces)
	}
}

func TestKLargerThanVertices(t *testing.T) {
	g := gen.Ring(6)
	b := defaultBPart(t)
	a, err := b.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if a.K != 8 {
		t.Fatalf("K = %d", a.K)
	}
}

func TestRegularGraphTrivial(t *testing.T) {
	// On a ring every scheme is trivially 2D-balanced; BPart must not
	// make it worse.
	g := gen.Ring(1000)
	b := defaultBPart(t)
	a, err := b.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.NewReport(g, a.Parts, 4, false)
	if r.VertexBias > 0.11 || r.EdgeBias > 0.11 {
		t.Fatalf("ring partition unbalanced: %+v", r)
	}
}

func TestRegistryHasBPart(t *testing.T) {
	p, err := partition.Get("BPart")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "BPart" {
		t.Fatalf("Name = %q", p.Name())
	}
	g := gen.Ring(64)
	a, err := p.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCombineRound(t *testing.T) {
	groups := []group{
		{v: 1, e: 40, pieces: []int{0}},
		{v: 4, e: 10, pieces: []int{1}},
		{v: 2, e: 30, pieces: []int{2}},
		{v: 3, e: 20, pieces: []int{3}},
	}
	out := combineRound(groups, 2, nil)
	if len(out) != 2 {
		t.Fatalf("got %d groups", len(out))
	}
	// lightest (v=1) merges with heaviest (v=4); v=2 with v=3.
	for _, g := range out {
		if g.v != 5 || g.e != 50 {
			t.Fatalf("unbalanced merge: %+v", out)
		}
	}
	// target >= len is the identity.
	same := combineRound(groups, 9, nil)
	if len(same) != 4 {
		t.Fatalf("identity round changed group count")
	}
	// Odd count: 3 groups → 2 (one merge, one passthrough).
	odd := combineRound(groups[:3], 2, nil)
	if len(odd) != 2 {
		t.Fatalf("odd merge gave %d groups", len(odd))
	}
}

// Property: for arbitrary scale-free graphs and part counts, BPart yields a
// valid complete assignment with exactly k parts and preserves totals.
func TestQuickBPartValid(t *testing.T) {
	f := func(seed uint64, rawK uint8) bool {
		n := int(seed%400) + 20
		k := int(rawK)%8 + 2
		g, err := gen.ChungLu(gen.Config{NumVertices: n, AvgDegree: 6, Skew: 0.75, Seed: seed})
		if err != nil {
			return false
		}
		b, err := New(Config{})
		if err != nil {
			return false
		}
		a, err := b.Partition(g, k)
		if err != nil {
			return false
		}
		if a.Validate(g) != nil {
			return false
		}
		vs, es := graph.PartSizes(g, a.Parts, k)
		tv, te := 0, 0
		for i := 0; i < k; i++ {
			tv += vs[i]
			te += es[i]
		}
		return tv == n && te == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: on reasonably sized scale-free graphs the two biases stay low
// — the paper's core claim, fuzzed across seeds.
func TestQuickBPartBalance(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ChungLu(gen.Config{
			NumVertices: 4000, AvgDegree: 12, Skew: 0.75, Locality: 0.4, Seed: seed,
		})
		if err != nil {
			return false
		}
		b, err := New(Config{})
		if err != nil {
			return false
		}
		a, err := b.Partition(g, 8)
		if err != nil {
			return false
		}
		r := metrics.NewReport(g, a.Parts, 8, false)
		return r.VertexBias < 0.25 && r.EdgeBias < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBPart20k(b *testing.B) {
	g := twitterish(b)
	p := defaultBPart(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Package core implements BPart, the paper's contribution: a
// two-dimensional balanced graph partitioner (§3).
//
// BPart runs in two phases. The partitioning phase over-splits the graph
// into more pieces than the requested part count using the weighted
// streaming engine of internal/partition with the balance indicator
//
//	W_i = c·|V_i| + (1−c)·|E_i|/d̄            (Eq. 1, c = ½ by default)
//
// so that no piece is extreme in either dimension and — because equal W
// forces a trade-off — pieces with fewer vertices carry more edges and vice
// versa (Fig 8). The combining phase sorts pieces by vertex count and pairs
// the vertex-lightest (edge-heaviest) with the vertex-heaviest
// (edge-lightest), repeatedly, until the requested number of subgraphs
// remains. Combined subgraphs within the balance threshold in BOTH
// dimensions are frozen; the rest are dissolved and re-partitioned at the
// next layer with a doubled over-split factor (Fig 9), typically converging
// in two or three layers.
package core

import (
	"fmt"
	"math"
	"sort"

	"bpart/internal/graph"
	"bpart/internal/metrics"
	"bpart/internal/partaudit"
	"bpart/internal/partition"
	"bpart/internal/telemetry"
)

// Config holds BPart's tuning knobs. The zero value selects the paper's
// defaults via Normalize.
type Config struct {
	// C is the weighting factor c of Eq. 1 in [0,1]. Default 0.5.
	C float64
	// Alpha, Gamma, Slack tune the streaming score (Eq. 2); non-positive
	// values select the Fennel standards (auto α, γ=1.5, ν=1.1).
	Alpha, Gamma, Slack float64
	// Epsilon is the per-dimension balance threshold: a combined subgraph
	// is final when both |V_i| and |E_i| are within (1±ε) of the global
	// per-part mean. Default 0.1 (matching the paper's "bias always
	// below 0.1").
	Epsilon float64
	// SplitFactor is the over-split base: layer ℓ splits the remaining
	// graph into SplitFactor^ℓ · N_r pieces. Must be a power of two ≥ 2.
	// Default 2 (the paper's 2N, then 4N_r, ...).
	SplitFactor int
	// MaxLayers caps the number of combining layers; the final layer
	// accepts its result unconditionally. Default 4.
	MaxLayers int
	// DisableRefine turns off the final move-based refinement pass.
	// The pass (see refine.go) is an addition over the paper: it repairs
	// the residual imbalance left when the combining recursion hits
	// MaxLayers, which happens when hub mass is too concentrated for
	// pairwise combining alone. Off, BPart is exactly the paper's
	// two-phase algorithm.
	DisableRefine bool
}

// Normalize fills defaults and validates the configuration.
func (c *Config) Normalize() error {
	if metrics.IsZero(c.C) && metrics.IsZero(c.Alpha) && metrics.IsZero(c.Gamma) &&
		metrics.IsZero(c.Slack) && metrics.IsZero(c.Epsilon) && c.SplitFactor == 0 && c.MaxLayers == 0 {
		*c = Default()
		return nil
	}
	if c.C < 0 || c.C > 1 {
		return fmt.Errorf("core: C = %v, want in [0,1]", c.C)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.SplitFactor == 0 {
		c.SplitFactor = 2
	}
	if c.SplitFactor < 2 || c.SplitFactor&(c.SplitFactor-1) != 0 {
		return fmt.Errorf("core: SplitFactor = %d, want a power of two ≥ 2", c.SplitFactor)
	}
	if c.MaxLayers <= 0 {
		c.MaxLayers = 4
	}
	return nil
}

// Default returns the paper's default configuration: c=½, ε=0.1, 2× split,
// up to 4 layers, standard Fennel streaming parameters.
func Default() Config {
	return Config{C: 0.5, Epsilon: 0.1, SplitFactor: 2, MaxLayers: 4}
}

// BPart is the two-dimensional balanced partitioner. It implements
// partition.Partitioner and telemetry.Instrumentable.
type BPart struct {
	cfg   Config
	tr    telemetry.Tracer
	reg   *telemetry.Registry
	aud   *partaudit.Auditor
	probe telemetry.PhaseProbe
}

// New returns a BPart with the given configuration. An all-zero Config
// selects the defaults.
func New(cfg Config) (*BPart, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return &BPart{cfg: cfg, tr: telemetry.Nop()}, nil
}

// SetTelemetry implements telemetry.Instrumentable: tr (may be nil)
// receives one span per Partition call, per combining layer and per refine
// pass; reg (may be nil) accumulates bpart_* counters and the streaming
// engine's stream_* counters.
func (b *BPart) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	b.tr = telemetry.Safe(tr)
	b.reg = reg
}

// SetAudit implements partaudit.Auditable: a (may be nil, detaching)
// receives the decision log, streaming quality timeline and combining
// audit tree of every subsequent Partition call. Auditing is pure
// observation — the audited assignment is identical to an unaudited one.
func (b *BPart) SetAudit(a *partaudit.Auditor) { b.aud = a }

// SetResourceProbe implements telemetry.Probeable: p (may be nil,
// detaching) observes wall-clock and runtime alloc/GC deltas of every
// subsequent Partition call — the whole run ("bpart.partition"), each
// layer, each combining round and the refine pass. Like auditing, probing
// is pure observation: the probed assignment is byte-identical to an
// unprobed one.
func (b *BPart) SetResourceProbe(p telemetry.PhaseProbe) { b.probe = p }

// Name implements partition.Partitioner.
func (*BPart) Name() string { return "BPart" }

// Config returns the normalized configuration.
func (b *BPart) Config() Config { return b.cfg }

// LayerTrace records what one layer of the two-phase process did; the
// experiment harness uses it for Fig 8 (piece-level distributions) and the
// convergence ablation.
type LayerTrace struct {
	Layer       int
	Pieces      int
	PieceV      []int // per-piece |V_i| after the partitioning phase
	PieceE      []int // per-piece |E_i|
	CombinedV   []int // per-group |V_i| after this layer's combining rounds
	CombinedE   []int
	Finalized   int // groups frozen at this layer
	RemainingNr int // groups dissolved into the next layer
}

// Trace is the full history of a PartitionWithTrace call.
type Trace struct {
	Layers []LayerTrace
}

// Partition implements partition.Partitioner.
func (b *BPart) Partition(g *graph.Graph, k int) (*partition.Assignment, error) {
	a, _, err := b.PartitionWithTrace(g, k)
	return a, err
}

// PartitionWithTrace partitions g into k two-dimensionally balanced
// subgraphs and returns the per-layer trace.
func (b *BPart) PartitionWithTrace(g *graph.Graph, k int) (*partition.Assignment, *Trace, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("core: nil graph")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("core: k = %d, want > 0", k)
	}
	n := g.NumVertices()
	final := make([]int, n)
	for i := range final {
		final[i] = partition.Unassigned
	}
	if k == 1 {
		for i := range final {
			final[i] = 0
		}
		return &partition.Assignment{Parts: final, K: 1}, &Trace{}, nil
	}

	targetV := float64(n) / float64(k)
	targetE := float64(g.NumEdges()) / float64(k)
	trace := &Trace{}
	tr := telemetry.Safe(b.tr)
	runSpan := tr.Span("bpart.partition",
		telemetry.Int("k", k),
		telemetry.Int("vertices", n),
		telemetry.Int("edges", g.NumEdges()))
	pr := telemetry.SafeProbe(b.probe)
	runEnd := pr.BeginPhase("bpart.partition", telemetry.Int("k", k))
	defer runEnd.EndPhase()
	// Undirected affinity (Fennel's N(v)) needs the reversed adjacency;
	// build it once and reuse it across every layer's stream.
	in := g.Transpose()
	b.aud.Begin("BPart", g, k)
	// Per-part sizes predicted at combining freeze time, for the audit's
	// predicted-vs-actual comparison (the gap is what refine repaired).
	var predV, predE []int
	if b.aud != nil {
		predV = make([]int, k)
		predE = make([]int, k)
	}

	remaining := make([]graph.VertexID, n)
	for v := range remaining {
		remaining[v] = graph.VertexID(v)
	}
	nr := k        // parts still to produce
	nextFinal := 0 // next final part id

	for layer := 1; nr > 0; layer++ {
		if len(remaining) == 0 {
			err := fmt.Errorf("core: %d parts still to produce but no vertices remain", nr)
			runSpan.End(telemetry.String("error", err.Error()))
			return nil, nil, err
		}
		last := layer >= b.cfg.MaxLayers || nr == 1
		pieces := nr * pow(b.cfg.SplitFactor, layer)
		// Never use more pieces than remaining vertices.
		if pieces > len(remaining) {
			pieces = len(remaining)
		}
		if pieces < nr {
			pieces = nr
		}
		slack := b.cfg.Slack
		if slack <= 0 {
			slack = 1.1
		}
		var ms int
		for _, v := range remaining {
			ms += g.OutDegree(v)
		}
		layerSpan := tr.Span("bpart.layer",
			telemetry.Int("layer", layer),
			telemetry.Int("pieces", pieces),
			telemetry.Int("oversplit", pieces/nr),
			telemetry.Int("remaining_vertices", len(remaining)),
			telemetry.Int("parts_wanted", nr))
		layerEnd := pr.BeginPhase("bpart.layer",
			telemetry.Int("layer", layer),
			telemetry.Int("pieces", pieces))
		res, err := partition.Stream(g, partition.StreamOptions{
			K:        pieces,
			C:        b.cfg.C,
			Alpha:    b.cfg.Alpha,
			Gamma:    b.cfg.Gamma,
			Slack:    b.cfg.Slack,
			Vertices: remaining,
			CapV:     int(slack*float64(len(remaining))/float64(pieces)) + 1,
			CapE:     int(slack*float64(ms)/float64(pieces)) + 1,
			In:       in,
			Tracer:   b.tr,
			Metrics:  b.reg,
			Audit:    b.aud.Stream(layer, g, in, pieces),
			Probe:    b.probe,
		})
		if err != nil {
			layerEnd.EndPhase()
			layerSpan.End(telemetry.String("error", err.Error()))
			runSpan.End(telemetry.String("error", err.Error()))
			return nil, nil, fmt.Errorf("core: layer %d stream: %w", layer, err)
		}
		lt := LayerTrace{
			Layer:  layer,
			Pieces: pieces,
			PieceV: append([]int(nil), res.VertexCount...),
			PieceE: append([]int(nil), res.EdgeCount...),
		}

		groups := make([]group, pieces)
		for i := range groups {
			groups[i] = group{v: res.VertexCount[i], e: res.EdgeCount[i], pieces: []int{i}}
		}
		// Combining rounds (Fig 9): each round at most halves the group
		// count, pairing vertex-lightest with vertex-heaviest, until
		// exactly nr groups remain. With the unclamped piece count this
		// takes layer·log2(SplitFactor) rounds.
		round := 0
		for len(groups) > nr {
			roundEnd := pr.BeginPhase("bpart.combine.round",
				telemetry.Int("layer", layer),
				telemetry.Int("round", round))
			target := (len(groups) + 1) / 2
			if target < nr {
				target = nr
			}
			var emit func(a, b group)
			if b.aud != nil {
				r := round
				emit = func(x, y group) {
					b.aud.Combine(partaudit.Merge{
						Layer:   layer,
						Round:   r,
						APieces: append([]int(nil), x.pieces...),
						AV:      x.v, AE: x.e,
						BPieces: append([]int(nil), y.pieces...),
						BV:      y.v, BE: y.e,
					})
				}
			}
			groups = combineRound(groups, target, emit)
			roundEnd.EndPhase(telemetry.Int("groups", len(groups)))
			round++
		}

		// Freeze balanced groups; dissolve the rest.
		pieceToFinal := make([]int, pieces)
		for i := range pieceToFinal {
			pieceToFinal[i] = partition.Unassigned
		}
		var nextRemainingGroups []group
		var auditGroups []partaudit.LayerGroup
		for _, grp := range groups {
			lt.CombinedV = append(lt.CombinedV, grp.v)
			lt.CombinedE = append(lt.CombinedE, grp.e)
			froze := last || b.balanced(grp, targetV, targetE)
			if froze {
				for _, p := range grp.pieces {
					pieceToFinal[p] = nextFinal
				}
				if b.aud != nil {
					predV[nextFinal] = grp.v
					predE[nextFinal] = grp.e
				}
				nextFinal++
				lt.Finalized++
			} else {
				nextRemainingGroups = append(nextRemainingGroups, grp)
			}
			if b.aud != nil {
				ag := partaudit.LayerGroup{
					Pieces: append([]int(nil), grp.pieces...),
					V:      grp.v,
					E:      grp.e,
					Final:  -1,
				}
				if froze {
					ag.Final = nextFinal - 1
				}
				if targetV > 0 {
					ag.VDev = math.Abs(float64(grp.v)-targetV) / targetV
				}
				if targetE > 0 {
					ag.EDev = math.Abs(float64(grp.e)-targetE) / targetE
				}
				auditGroups = append(auditGroups, ag)
			}
		}
		if b.aud != nil {
			b.aud.Layer(partaudit.LayerRecord{
				Layer:   layer,
				Pieces:  pieces,
				TargetV: targetV,
				TargetE: targetE,
				Epsilon: b.cfg.Epsilon,
				Groups:  auditGroups,
			})
		}
		// Map vertices of frozen groups to their final part; collect the
		// rest for the next layer, preserving ID order for stream
		// locality.
		var nextRemaining []graph.VertexID
		for _, v := range remaining {
			p := res.Parts[v]
			if f := pieceToFinal[p]; f != partition.Unassigned {
				final[v] = f
			} else {
				nextRemaining = append(nextRemaining, v)
			}
		}
		nr -= lt.Finalized
		lt.RemainingNr = nr
		trace.Layers = append(trace.Layers, lt)
		remaining = nextRemaining
		// Residual bias of this layer's combined groups against the
		// global per-part means: the quantity that decides which groups
		// froze (Fig 9's convergence criterion).
		vBias, eBias := residualBias(lt.CombinedV, lt.CombinedE, targetV, targetE)
		layerEnd.EndPhase(telemetry.Int("groups_frozen", lt.Finalized))
		layerSpan.End(
			telemetry.Int("pieces_frozen", pieces-pieceCount(nextRemainingGroups)),
			telemetry.Int("groups_frozen", lt.Finalized),
			telemetry.Int("parts_remaining", nr),
			telemetry.Float("residual_v_bias", vBias),
			telemetry.Float("residual_e_bias", eBias))
		if b.reg != nil {
			b.reg.Counter("bpart_layers_total").Inc()
			b.reg.Counter("bpart_groups_frozen_total").Add(int64(lt.Finalized))
			b.reg.Gauge("bpart_last_residual_v_bias").Set(vBias)
			b.reg.Gauge("bpart_last_residual_e_bias").Set(eBias)
		}
	}
	if nextFinal != k {
		runSpan.End(telemetry.String("error", "part count mismatch"))
		return nil, nil, fmt.Errorf("core: produced %d parts, want %d", nextFinal, k)
	}
	var moves refineMoves
	if !b.cfg.DisableRefine {
		refineSpan := tr.Span("bpart.refine", telemetry.Int("k", k))
		refineEnd := pr.BeginPhase("bpart.refine", telemetry.Int("k", k))
		moves = rebalance(g, final, k, b.cfg.Epsilon)
		refineEnd.EndPhase(telemetry.Int("moves", moves.Shed+moves.Pulled))
		refineSpan.End(
			telemetry.Int("shed_moves", moves.Shed),
			telemetry.Int("pull_moves", moves.Pulled))
		if b.reg != nil {
			b.reg.Counter("bpart_refine_moves_total").Add(int64(moves.Shed + moves.Pulled))
		}
	}
	a := &partition.Assignment{Parts: final, K: k}
	if err := a.Validate(g); err != nil {
		runSpan.End(telemetry.String("error", err.Error()))
		return nil, nil, fmt.Errorf("core: internal error: %w", err)
	}
	runSpan.End(
		telemetry.Int("layers", len(trace.Layers)),
		telemetry.Int("refine_moves", moves.Shed+moves.Pulled))
	if b.reg != nil {
		b.reg.Counter("bpart_partitions_total").Inc()
	}
	if b.aud != nil {
		// The closing record is computed exactly as Evaluate computes its
		// Report, so the audit timeline ends on the numbers the evaluation
		// reports.
		rep := metrics.NewReport(g, final, k, false)
		b.aud.Final(partaudit.Final{
			K: k, V: rep.Vertices, E: rep.Edges,
			VBias: rep.VertexBias, EBias: rep.EdgeBias, CutRatio: rep.CutRatio,
			PredictedV: predV, PredictedE: predE,
			RefineMoves: moves.Shed + moves.Pulled,
		})
	}
	return a, trace, nil
}

// group is a set of pieces destined for one final subgraph.
type group struct {
	v, e   int
	pieces []int
}

// pieceCount sums the streamed pieces held by the groups.
func pieceCount(groups []group) int {
	total := 0
	for _, g := range groups {
		total += len(g.pieces)
	}
	return total
}

// residualBias returns the worst per-group deviation from the global
// per-part |V| and |E| targets, as a fraction of the target.
func residualBias(vs, es []int, targetV, targetE float64) (vBias, eBias float64) {
	for _, v := range vs {
		if d := math.Abs(float64(v)-targetV) / targetV; d > vBias {
			vBias = d
		}
	}
	if targetE > 0 {
		for _, e := range es {
			if d := math.Abs(float64(e)-targetE) / targetE; d > eBias {
				eBias = d
			}
		}
	}
	return vBias, eBias
}

// combineRound sorts groups by vertex count and merges the lightest with
// the heaviest (the paper's pairing rule exploiting the inverse
// proportionality of |V_i| and |E_i|), merging just enough pairs to reach
// target groups. Unpaired middle groups pass through unchanged. onMerge,
// when non-nil, observes each pairing (vertex-lightest side first) for
// the combining audit tree.
func combineRound(groups []group, target int, onMerge func(a, b group)) []group {
	if target >= len(groups) {
		return groups
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].v != groups[j].v {
			return groups[i].v < groups[j].v
		}
		return groups[i].e > groups[j].e
	})
	merges := len(groups) - target
	out := make([]group, 0, target)
	for i := 0; i < merges; i++ {
		a, b := groups[i], groups[len(groups)-1-i]
		if onMerge != nil {
			onMerge(a, b)
		}
		out = append(out, group{
			v:      a.v + b.v,
			e:      a.e + b.e,
			pieces: append(append([]int(nil), a.pieces...), b.pieces...),
		})
	}
	out = append(out, groups[merges:len(groups)-merges]...)
	return out
}

// balanced reports whether a group is within (1±ε) of both per-part means.
func (b *BPart) balanced(grp group, targetV, targetE float64) bool {
	eps := b.cfg.Epsilon
	if math.Abs(float64(grp.v)-targetV) > eps*targetV {
		return false
	}
	if metrics.IsZero(targetE) {
		return true
	}
	return math.Abs(float64(grp.e)-targetE) <= eps*targetE
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out > 1<<30 {
			return 1 << 30
		}
	}
	return out
}

func init() {
	partition.Register("BPart", func() partition.Partitioner {
		b, err := New(Default())
		if err != nil {
			panic(err) // Default() always normalizes
		}
		return b
	})
}

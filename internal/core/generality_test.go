package core

import (
	"testing"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// BPart's guarantees must not depend on the Chung–Lu generator: verify 2D
// balance on the other graph families in internal/gen.

func checkBalanced(t *testing.T, name string, g *graph.Graph, k int) {
	t.Helper()
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.Partition(g, k)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	r := metrics.NewReport(g, a.Parts, k, false)
	if r.VertexBias > 0.15 {
		t.Errorf("%s: vertex bias %v", name, r.VertexBias)
	}
	if r.EdgeBias > 0.15 {
		t.Errorf("%s: edge bias %v", name, r.EdgeBias)
	}
}

func TestBPartOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 13, EdgeFactor: 12, A: 0.57, B: 0.19, C: 0.19, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, "rmat", g, 8)
}

func TestBPartOnBarabasiAlbert(t *testing.T) {
	g, err := gen.BarabasiAlbert(8000, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, "ba", g, 8)
}

func TestBPartOnErdosRenyi(t *testing.T) {
	g, err := gen.ErdosRenyi(8000, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, "er", g, 8)
}

func TestBPartOnShuffledGraph(t *testing.T) {
	// No ID/degree correlation at all: BPart must still balance.
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 8000, AvgDegree: 12, Skew: 0.8, Seed: 17, Shuffle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, "shuffled", g, 8)
}

func TestBPartManyParts(t *testing.T) {
	// Fig 11 regime: large k relative to graph size.
	g, err := gen.ChungLu(gen.Config{NumVertices: 20000, AvgDegree: 12, Skew: 0.75, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{32, 64, 128} {
		a, err := b.Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		vs, es := graph.PartSizes(g, a.Parts, k)
		if j := metrics.Jain(vs); j < 0.97 {
			t.Errorf("k=%d: vertex Jain %v", k, j)
		}
		if j := metrics.Jain(es); j < 0.97 {
			t.Errorf("k=%d: edge Jain %v", k, j)
		}
	}
}

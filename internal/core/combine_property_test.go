package core

import (
	"fmt"
	"testing"

	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/metrics"
)

// combineCase is one random-graph family the combine invariants are fuzzed
// across. The generator is a pure function of the seed, so every failure
// reported below replays from the seed in the subtest name alone.
type combineCase struct {
	family string
	build  func(seed uint64) (*graph.Graph, error)
}

func combineFamilies() []combineCase {
	return []combineCase{
		{"chung-lu", func(seed uint64) (*graph.Graph, error) {
			return gen.ChungLu(gen.Config{
				NumVertices: 2500, AvgDegree: 10, Skew: 0.75, Locality: 0.4, Seed: seed,
			})
		}},
		{"rmat", func(seed uint64) (*graph.Graph, error) {
			return gen.RMAT(gen.RMATConfig{
				Scale: 11, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Seed: seed,
			})
		}},
	}
}

// Property: across random Chung-Lu and R-MAT graphs × seeds, the combining
// recursion conserves the vertex and edge totals EXACTLY at every layer
// (pairwise merging can move mass between groups, never create or drop
// it), the finalized group counts add up to k, and the final partition
// keeps both biases bounded — the paper's two-dimensional balance claim.
func TestCombineInvariantsProperty(t *testing.T) {
	const (
		k         = 8
		biasBound = 0.25
	)
	seeds := []uint64{1, 2, 3, 17, 42, 1002}
	for _, fam := range combineFamilies() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", fam.family, seed), func(t *testing.T) {
				g, err := fam.build(seed)
				if err != nil {
					t.Fatalf("seed %d: generator: %v", seed, err)
				}
				b, err := New(Config{})
				if err != nil {
					t.Fatal(err)
				}
				a, tr, err := b.PartitionWithTrace(g, k)
				if err != nil {
					t.Fatalf("seed %d: partition: %v", seed, err)
				}
				if err := a.Validate(g); err != nil {
					t.Fatalf("seed %d: invalid assignment: %v", seed, err)
				}

				// Exact conservation through every combining layer: layer 0
				// splits the whole graph, and within a layer the combined
				// groups hold precisely the vertices and edges of the
				// pieces that entered it — pairwise merging moves mass
				// between groups, never creates or drops it.
				totalFinalized := 0
				for i, l := range tr.Layers {
					pv, pe := sumInts(l.PieceV), sumInts(l.PieceE)
					cv, ce := sumInts(l.CombinedV), sumInts(l.CombinedE)
					if i == 0 && (pv != g.NumVertices() || pe != g.NumEdges()) {
						t.Fatalf("seed %d: layer 0 pieces hold %d/%d vertices and %d/%d edges",
							seed, pv, g.NumVertices(), pe, g.NumEdges())
					}
					if cv != pv || ce != pe {
						t.Fatalf("seed %d: layer %d combining changed totals: pieces %d/%d, groups %d/%d",
							seed, l.Layer, pv, pe, cv, ce)
					}
					if l.Finalized+l.RemainingNr != len(l.CombinedV) {
						t.Fatalf("seed %d: layer %d finalized %d + dissolved %d != %d groups",
							seed, l.Layer, l.Finalized, l.RemainingNr, len(l.CombinedV))
					}
					totalFinalized += l.Finalized
					// A later layer re-partitions only the dissolved mass,
					// so its piece totals can never exceed this layer's —
					// and match exactly when nothing froze.
					if i+1 < len(tr.Layers) {
						nv := sumInts(tr.Layers[i+1].PieceV)
						if nv > pv {
							t.Fatalf("seed %d: layer %d pieces hold %d vertices, more than the %d that remained",
								seed, l.Layer+1, nv, pv)
						}
						if l.Finalized == 0 && nv != pv {
							t.Fatalf("seed %d: layer %d froze nothing yet vertex mass changed %d -> %d",
								seed, l.Layer, pv, nv)
						}
					}
				}
				if totalFinalized != k {
					t.Fatalf("seed %d: %d groups finalized across layers, want %d", seed, totalFinalized, k)
				}

				// The final assignment conserves the graph exactly.
				vs, es := graph.PartSizes(g, a.Parts, k)
				if tv, te := sumInts(vs), sumInts(es); tv != g.NumVertices() || te != g.NumEdges() {
					t.Fatalf("seed %d: assignment holds %d/%d vertices and %d/%d edges",
						seed, tv, g.NumVertices(), te, g.NumEdges())
				}

				// And both biases stay bounded.
				r := metrics.NewReport(g, a.Parts, k, false)
				if r.VertexBias > biasBound {
					t.Errorf("seed %d: vertex bias %v exceeds %v", seed, r.VertexBias, biasBound)
				}
				if r.EdgeBias > biasBound {
					t.Errorf("seed %d: edge bias %v exceeds %v", seed, r.EdgeBias, biasBound)
				}
			})
		}
	}
}

func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

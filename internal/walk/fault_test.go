package walk

import (
	"reflect"
	"sort"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/graph"
)

func faultWalkEngine(t *testing.T, g *graph.Graph, k int, spec *fault.Spec) *Engine {
	t.Helper()
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % k
	}
	e, err := New(g, assign, k, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		ctl, err := fault.NewController(g, e.Cluster(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetFaults(ctl); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func sortPaths(ps [][]graph.VertexID) {
	sort.Slice(ps, func(a, b int) bool {
		pa, pb := ps[a], ps[b]
		for i := 0; i < len(pa) && i < len(pb); i++ {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		return len(pa) < len(pb)
	})
}

// TestWalkRollbackIdenticalResults: a crashed-and-recovered walk run must
// reproduce the fault-free visits, paths and traffic exactly — walker
// state and each machine's RNG stream position are checkpointed together,
// so replayed supersteps redraw the very same random numbers.
func TestWalkRollbackIdenticalResults(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 300, AvgDegree: 6, Skew: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Kind: Simple, WalkersPerVertex: 2, Steps: 8, Seed: 3, TrackVisits: true, CollectPaths: true}
	base, err := faultWalkEngine(t, g, 4, nil).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 5, Machine: 1}}}
	got, err := faultWalkEngine(t, g, 4, spec).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery == nil || got.Recovery.Crashes != 1 {
		t.Fatalf("Recovery = %+v", got.Recovery)
	}
	if !reflect.DeepEqual(base.Visits, got.Visits) {
		t.Fatal("visit counts differ after recovery")
	}
	sortPaths(base.Paths)
	sortPaths(got.Paths)
	if !reflect.DeepEqual(base.Paths, got.Paths) {
		t.Fatalf("paths differ after recovery: %d vs %d paths", len(base.Paths), len(got.Paths))
	}
	if base.Finished != got.Finished {
		t.Fatalf("Finished differs: %d vs %d", base.Finished, got.Finished)
	}
	// Replayed supersteps re-execute real work, so the recovered run's
	// step count strictly exceeds the baseline's.
	if got.TotalSteps <= base.TotalSteps {
		t.Fatalf("TotalSteps %d not > baseline %d", got.TotalSteps, base.TotalSteps)
	}
}

// TestWalkRestreamCompletes: permanent loss mid-walk migrates stranded
// walkers to the survivors and the run still finishes every walker.
func TestWalkRestreamCompletes(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 300, AvgDegree: 6, Skew: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{
		Policy:          fault.Restream,
		CheckpointEvery: 2,
		Events:          []fault.Event{{Kind: fault.Crash, Step: 3, Machine: 2}},
	}
	e := faultWalkEngine(t, g, 4, spec)
	cfg := Config{Kind: Simple, WalkersPerVertex: 1, Steps: 8, Seed: 3, TrackVisits: true}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil || res.Recovery.RestreamedVertices == 0 {
		t.Fatalf("Recovery = %+v", res.Recovery)
	}
	if e.Cluster().LiveMachines() != 3 {
		t.Fatalf("LiveMachines = %d", e.Cluster().LiveMachines())
	}
	if res.Finished != int64(g.NumVertices()) {
		t.Fatalf("Finished = %d, want %d", res.Finished, g.NumVertices())
	}
	// Every executed step lands somewhere: total visits == total steps
	// that moved a walker is hard to assert across replays, but visit
	// counts must at least cover every walker's full walk once.
	var visits int64
	for _, v := range res.Visits {
		visits += v
	}
	if visits == 0 {
		t.Fatal("no visits recorded in degraded mode")
	}
}

// TestWalkFaultDeterministic: same spec, same seed, twice — identical
// everything, including RecoveryStats.
func TestWalkFaultDeterministic(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 200, AvgDegree: 5, Skew: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *fault.Spec {
		s, err := fault.RandomSpec(fault.RandomConfig{
			Seed: 17, Machines: 3, Horizon: 8,
			CrashProb: 0.3, SlowProb: 0.5, LossProb: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cfg := Config{Kind: PPR, WalkersPerVertex: 1, Steps: 10, Seed: 6, TrackVisits: true}
	a, err := faultWalkEngine(t, g, 3, mk()).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultWalkEngine(t, g, 3, mk()).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Visits, b.Visits) {
		t.Fatal("visits differ across identical fault runs")
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("RecoveryStats differ:\n%+v\n%+v", a.Recovery, b.Recovery)
	}
	if a.TotalSteps != b.TotalSteps || a.MessageWalks != b.MessageWalks {
		t.Fatalf("traffic differs: %d/%d vs %d/%d", a.TotalSteps, a.MessageWalks, b.TotalSteps, b.MessageWalks)
	}
}

func TestWalkSetFaultsValidation(t *testing.T) {
	g := gen.Ring(12)
	e1 := faultWalkEngine(t, g, 2, nil)
	e2 := faultWalkEngine(t, g, 2, nil)
	ctl, err := fault.NewController(g, e2.Cluster(), &fault.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.SetFaults(ctl); err == nil {
		t.Fatal("controller for a different cluster accepted")
	}
}

package walk

import (
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
)

func TestCollectPathsCountAndValidity(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 800, AvgDegree: 8, Skew: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	const wpv, steps = 2, 5
	res, err := e.Run(Config{
		Kind: DeepWalk, WalkersPerVertex: wpv, Steps: steps, Seed: 3, CollectPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 800*wpv {
		t.Fatalf("collected %d paths, want %d", len(res.Paths), 800*wpv)
	}
	starts := make(map[graph.VertexID]int)
	for _, p := range res.Paths {
		if len(p) == 0 || len(p) > steps+1 {
			t.Fatalf("path length %d out of [1,%d]", len(p), steps+1)
		}
		starts[p[0]]++
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("path hop %d→%d is not an edge", p[i-1], p[i])
			}
		}
	}
	for v := graph.VertexID(0); v < 800; v++ {
		if starts[v] != wpv {
			t.Fatalf("vertex %d started %d walks, want %d", v, starts[v], wpv)
		}
	}
	// Total steps must equal total hops plus termination events; at
	// minimum every hop is a step.
	var hops int64
	for _, p := range res.Paths {
		hops += int64(len(p) - 1)
	}
	if hops > res.TotalSteps {
		t.Fatalf("hops %d exceed steps %d", hops, res.TotalSteps)
	}
}

func TestCollectPathsCrossMachine(t *testing.T) {
	// Deterministic 2-cycle across machines: paths must follow walkers
	// through migrations intact.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {0}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 3, Seed: 1, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	for _, p := range res.Paths {
		want := []graph.VertexID{p[0], 1 - p[0], p[0], 1 - p[0]}
		if len(p) != 4 {
			t.Fatalf("path %v, want length 4", p)
		}
		for i := range want {
			if p[i] != want[i] {
				t.Fatalf("path %v, want %v", p, want)
			}
		}
	}
}

func TestCollectPathsOffByDefault(t *testing.T) {
	g := gen.Ring(10)
	a, _ := (partition.ChunkV{}).Partition(g, 2)
	e, err := New(g, a.Parts, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != nil {
		t.Fatalf("paths collected without CollectPaths: %d", len(res.Paths))
	}
}

func TestCollectPathsEarlyTermination(t *testing.T) {
	// Sink graph: paths end where the walk dies.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 5, Seed: 1, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	for _, p := range res.Paths {
		switch p[0] {
		case 0:
			if len(p) != 2 || p[1] != 1 {
				t.Fatalf("path from 0: %v", p)
			}
		case 1:
			if len(p) != 1 {
				t.Fatalf("path from sink: %v", p)
			}
		}
	}
}

package walk

import (
	"sync"

	"bpart/internal/graph"
	"bpart/internal/xrand"
)

// Static edge-weighted ("biased") walks are KnightKing's bread and butter:
// each outgoing edge carries a static weight and the walker picks the next
// hop proportionally. KnightKing pre-builds per-vertex alias tables so a
// biased step stays O(1); this implementation does the same, building
// tables lazily per vertex (hubs are hit constantly, cold vertices maybe
// never) and sharing them across machines — they are immutable once built.
//
// Weights are synthetic and deterministic, mirroring internal/engine's
// SSSP weights: weight(u,v) = 1 + hash(u,v) mod 8.

// BiasedWalk selects static-weight transitions; configure it through
// Config.Kind.
const BiasedWalk Kind = Node2Vec + 1

// StepWeight returns the deterministic synthetic weight of arc (u,v) in
// [1, 8].
func StepWeight(u, v graph.VertexID) float64 {
	z := (uint64(u) << 32) | uint64(v)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return float64((z^(z>>31))%8) + 1
}

// aliasCache lazily builds and shares per-vertex alias tables.
type aliasCache struct {
	g      *graph.Graph
	mu     sync.Mutex
	tables []*xrand.Alias
}

func newAliasCache(g *graph.Graph) *aliasCache {
	return &aliasCache{g: g, tables: make([]*xrand.Alias, g.NumVertices())}
}

// table returns v's alias table, building it on first use. The double-
// checked lock keeps the hot path (hub vertices) uncontended after the
// first build.
func (c *aliasCache) table(v graph.VertexID) *xrand.Alias {
	c.mu.Lock()
	t := c.tables[v]
	if t == nil {
		ns := c.g.Neighbors(v)
		if len(ns) > 0 {
			ws := make([]float64, len(ns))
			for i, u := range ns {
				ws[i] = StepWeight(v, u)
			}
			t = xrand.NewAlias(ws)
			c.tables[v] = t
		}
	}
	c.mu.Unlock()
	return t
}

// biasedStep draws the next hop of a biased walk.
func (e *Engine) biasedStep(wk *walker, rng *xrand.RNG) (graph.VertexID, bool) {
	ns := e.g.Neighbors(wk.cur)
	if len(ns) == 0 {
		return 0, true
	}
	t := e.alias.table(wk.cur)
	return ns[t.Sample(rng)], false
}

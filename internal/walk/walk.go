// Package walk is the KnightKing-like distributed random-walk engine of the
// reproduction (§4.1): walker-centric, bulk-synchronous, running over the
// simulated cluster of internal/cluster.
//
// Walkers live on the machine that owns their current vertex. Every BSP
// iteration moves each active walker one step: steps executed on a machine
// are its computation load (the quantity plotted per machine in Figs 4 and
// 12), and a walker whose next vertex is owned by another machine is
// transferred — a "message walk", the communication metric of Fig 5(b).
// Machines run as concurrent goroutines with machine-private state and
// outboxes, and each machine draws from its own deterministic RNG stream,
// so results are reproducible regardless of scheduling.
//
// The five walk applications of the paper are supported: simple random
// walks, personalized PageRank (terminate with fixed probability per
// step), random walk with jump (teleport with fixed probability), random
// walk with domination (walk with per-step domination marking), DeepWalk
// (fixed-length uniform walks) and node2vec (second-order walks sampled by
// KnightKing-style rejection sampling).
package walk

import (
	"fmt"

	"bpart/internal/cluster"
	"bpart/internal/fault"
	"bpart/internal/graph"
	"bpart/internal/telemetry"
	"bpart/internal/xrand"
)

// Kind selects the walk application.
type Kind int

// The walk applications of §4.1.
const (
	Simple Kind = iota
	PPR
	RWJ
	RWD
	DeepWalk
	Node2Vec
)

// String returns the paper's name for the application.
func (k Kind) String() string {
	switch k {
	case Simple:
		return "SimpleWalk"
	case PPR:
		return "PPR"
	case RWJ:
		return "RWJ"
	case RWD:
		return "RWD"
	case DeepWalk:
		return "DeepWalk"
	case Node2Vec:
		return "node2vec"
	case BiasedWalk:
		return "BiasedWalk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes a walk run. Zero fields select per-Kind defaults in
// Normalize (PPR stop probability 0.1 and RWJ jump probability 0.2 follow
// §4.1; DeepWalk/node2vec default to longer walks than SimpleWalk).
type Config struct {
	Kind Kind
	// WalkersPerVertex starts this many walkers on every vertex
	// (the paper starts |V| or 5|V| walks). Default 1.
	WalkersPerVertex int
	// Steps is the walk length for fixed-length kinds and the step cap
	// for probabilistic ones. Default 4 (Simple/RWJ/RWD), 10
	// (DeepWalk/Node2Vec), 40 cap (PPR).
	Steps int
	// StopProb is PPR's per-step termination probability. Default 0.1.
	StopProb float64
	// JumpProb is RWJ's per-step teleport probability. Default 0.2.
	JumpProb float64
	// P and Q are node2vec's return and in-out parameters. Default 2.0
	// and 0.5.
	P, Q float64
	// Seed drives all walker randomness.
	Seed uint64
	// TrackVisits records per-vertex visit counts (needed by the PPR
	// distribution tests; RWD always tracks because domination marking
	// is its purpose).
	TrackVisits bool
	// CollectPaths records every walker's full vertex sequence (starting
	// vertex included) in Result.Paths — the walk corpus DeepWalk and
	// node2vec feed to skip-gram training.
	CollectPaths bool
	// Sources restricts walker starts to these vertices (each gets
	// WalkersPerVertex walkers). nil starts walkers on every vertex —
	// the paper's |V|-walks setting. A single-source PPR run with
	// TrackVisits yields that source's personalized PageRank estimate.
	Sources []graph.VertexID
}

// Normalize fills defaults and validates.
func (c *Config) Normalize() error {
	if c.Kind < Simple || c.Kind > BiasedWalk {
		return fmt.Errorf("walk: unknown kind %d", int(c.Kind))
	}
	if c.WalkersPerVertex == 0 {
		c.WalkersPerVertex = 1
	}
	if c.WalkersPerVertex < 0 {
		return fmt.Errorf("walk: WalkersPerVertex = %d", c.WalkersPerVertex)
	}
	if c.Steps == 0 {
		switch c.Kind {
		case DeepWalk, Node2Vec:
			c.Steps = 10
		case PPR:
			c.Steps = 40
		default:
			c.Steps = 4
		}
	}
	if c.Steps < 0 {
		return fmt.Errorf("walk: Steps = %d", c.Steps)
	}
	if c.StopProb == 0 {
		c.StopProb = 0.1
	}
	if c.StopProb < 0 || c.StopProb > 1 {
		return fmt.Errorf("walk: StopProb = %v", c.StopProb)
	}
	if c.JumpProb == 0 {
		c.JumpProb = 0.2
	}
	if c.JumpProb < 0 || c.JumpProb > 1 {
		return fmt.Errorf("walk: JumpProb = %v", c.JumpProb)
	}
	if c.P == 0 {
		c.P = 2.0
	}
	if c.Q == 0 {
		c.Q = 0.5
	}
	if c.P < 0 || c.Q < 0 {
		return fmt.Errorf("walk: P = %v, Q = %v, want > 0", c.P, c.Q)
	}
	if c.Kind == RWD {
		c.TrackVisits = true
	}
	return nil
}

// Engine binds a graph and a placement.
type Engine struct {
	g     *graph.Graph
	cl    *cluster.Cluster
	owned [][]graph.VertexID
	alias *aliasCache         // per-vertex transition tables for BiasedWalk
	tel   telemetry.Tracer    // run-level spans; supersteps come from cl
	reg   *telemetry.Registry // run-level histograms; superstep metrics come from cl
	flt   *fault.Controller   // nil = fault injection disabled
}

// New builds a walk engine for g with the given vertex→machine assignment.
func New(g *graph.Graph, assignment []int, machines int, model cluster.CostModel) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("walk: nil graph")
	}
	if len(assignment) != g.NumVertices() {
		return nil, fmt.Errorf("walk: %d assignments for %d vertices", len(assignment), g.NumVertices())
	}
	cl, err := cluster.New(assignment, machines, model)
	if err != nil {
		return nil, err
	}
	owned := make([][]graph.VertexID, machines)
	for v := 0; v < g.NumVertices(); v++ {
		owned[assignment[v]] = append(owned[assignment[v]], graph.VertexID(v))
	}
	return &Engine{g: g, cl: cl, owned: owned, alias: newAliasCache(g), tel: telemetry.Nop()}, nil
}

// Cluster exposes the underlying simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Graph returns the graph the engine walks over.
func (e *Engine) Graph() *graph.Graph { return e.g }

// SetFaults attaches (or with nil detaches) a fault controller built on
// this engine's cluster. Subsequent Runs execute under its schedule.
func (e *Engine) SetFaults(ctl *fault.Controller) error {
	if ctl != nil && ctl.Cluster() != e.cl {
		return fmt.Errorf("walk: fault controller bound to a different cluster")
	}
	e.flt = ctl
	return nil
}

// SetTelemetry implements telemetry.Instrumentable: the tracer receives one
// "walk.run" span per Run and — via the underlying cluster — one
// "cluster.superstep" record per BSP iteration, so a DeepWalk run produces
// the full machine-level timeline of Figs 12/13.
func (e *Engine) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	e.tel = telemetry.Safe(tr)
	e.reg = reg
	e.cl.SetTelemetry(tr, reg)
}

// SetResourceProbe implements telemetry.Probeable by forwarding to the
// underlying cluster: every walk superstep then emits one
// "cluster.superstep" resource lap (real host time and alloc/GC activity,
// not simulated time).
func (e *Engine) SetResourceProbe(p telemetry.PhaseProbe) { e.cl.SetResourceProbe(p) }

// walker is one active random walk.
type walker struct {
	cur       graph.VertexID
	prev      graph.VertexID // node2vec second-order state
	remaining int32
	hasPrev   bool
	path      []graph.VertexID // nil unless Config.CollectPaths
}

// Result is the outcome of a walk run.
type Result struct {
	Stats cluster.RunStats
	// TotalSteps is the total number of walk steps executed.
	TotalSteps int64
	// MessageWalks counts walker transfers between machines (Fig 5b).
	MessageWalks int64
	// Visits[v] counts arrivals at v (nil unless tracked).
	Visits []int64
	// Paths holds every walker's vertex sequence when
	// Config.CollectPaths is set (order unspecified).
	Paths [][]graph.VertexID
	// Traffic[from][to] counts walker transfers between each ordered
	// machine pair — the communication pattern behind MessageWalks.
	Traffic [][]int64
	// Finished counts walkers that terminated (all of them, at the end).
	Finished int64
	// Recovery is set when the run executed under a fault controller.
	// TotalSteps and Stats then include replayed supersteps — recovery
	// re-executes real work, and the run pays for it.
	Recovery *fault.RecoveryStats
}

// walkSnap is a deep checkpoint of a walk run's mutable state. Walker
// paths and finished-path lists are cloned because walkers append to them
// in place after the snapshot; RNGs are plain value structs, so copying
// them freezes each machine's stream position exactly.
type walkSnap struct {
	active   [][]walker
	finished [][][]graph.VertexID
	rngs     []xrand.RNG
	visits   []int64
	paths    [][]graph.VertexID
	traffic  [][]int64
	iter     int
}

func clonePath(p []graph.VertexID) []graph.VertexID {
	if p == nil {
		return nil
	}
	return append(make([]graph.VertexID, 0, len(p)), p...)
}

func cloneWalkers(ws [][]walker) [][]walker {
	out := make([][]walker, len(ws))
	for m, list := range ws {
		cp := make([]walker, len(list))
		copy(cp, list)
		for i := range cp {
			cp[i].path = clonePath(cp[i].path)
		}
		out[m] = cp
	}
	return out
}

func clonePaths(ps [][]graph.VertexID) [][]graph.VertexID {
	if ps == nil {
		return nil
	}
	out := make([][]graph.VertexID, len(ps))
	for i, p := range ps {
		out[i] = clonePath(p)
	}
	return out
}

func clonePathLists(fs [][][]graph.VertexID) [][][]graph.VertexID {
	out := make([][][]graph.VertexID, len(fs))
	for m, list := range fs {
		out[m] = clonePaths(list)
	}
	return out
}

func cloneTraffic(t [][]int64) [][]int64 {
	out := make([][]int64, len(t))
	for i, row := range t {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// Run executes the configured walk to completion.
func (e *Engine) Run(cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()

	// Per-machine state.
	active := make([][]walker, k)
	rngs := make([]*xrand.RNG, k)
	base := xrand.New(cfg.Seed)
	var sourceSet []bool
	if cfg.Sources != nil {
		sourceSet = make([]bool, n)
		for _, v := range cfg.Sources {
			if int(v) >= n {
				return nil, fmt.Errorf("walk: source %d out of range [0,%d)", v, n)
			}
			sourceSet[v] = true
		}
	}
	totalWalkers := 0
	for m := 0; m < k; m++ {
		rngs[m] = base.Fork()
		for _, v := range e.owned[m] {
			if sourceSet != nil && !sourceSet[v] {
				continue
			}
			for i := 0; i < cfg.WalkersPerVertex; i++ {
				wk := walker{cur: v, remaining: int32(cfg.Steps)}
				if cfg.CollectPaths {
					wk.path = append(make([]graph.VertexID, 0, cfg.Steps+1), v)
				}
				active[m] = append(active[m], wk)
				totalWalkers++
			}
		}
	}
	// finished[m] collects completed paths machine-locally; merge-phase
	// completions go straight to res.Paths.
	finished := make([][][]graph.VertexID, k)
	var visits []int64
	if cfg.TrackVisits {
		visits = make([]int64, n)
	}
	// outbox[from][to] carries migrating walkers; inboxes are merged
	// between supersteps, so machines never touch shared state.
	outbox := make([][][]walker, k)
	for m := range outbox {
		outbox[m] = make([][]walker, k)
	}

	res := &Result{Visits: visits, Traffic: make([][]int64, k)}
	for m := range res.Traffic {
		res.Traffic[m] = make([]int64, k)
	}
	iter := -1
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				sn := &walkSnap{
					active:   cloneWalkers(active),
					finished: clonePathLists(finished),
					rngs:     make([]xrand.RNG, k),
					paths:    clonePaths(res.Paths),
					traffic:  cloneTraffic(res.Traffic),
					iter:     iter,
				}
				for m := range rngs {
					sn.rngs[m] = *rngs[m]
				}
				if visits != nil {
					sn.visits = append([]int64(nil), visits...)
				}
				return sn
			},
			Restore: func(s any) {
				sn := s.(*walkSnap)
				active = cloneWalkers(sn.active)
				finished = clonePathLists(sn.finished)
				for m := range rngs {
					*rngs[m] = sn.rngs[m]
				}
				if visits != nil {
					copy(visits, sn.visits)
				}
				res.Paths = clonePaths(sn.paths)
				for i := range res.Traffic {
					copy(res.Traffic[i], sn.traffic[i])
				}
				iter = sn.iter
			},
			Reassign: func(dead int, assignment []int) {
				// Rebuild ownership and migrate stranded walkers onto
				// their vertices' new owners, machine by machine in
				// order, so the re-bucketing is deterministic.
				owned := make([][]graph.VertexID, k)
				for v, m := range assignment {
					owned[m] = append(owned[m], graph.VertexID(v))
				}
				e.owned = owned
				rebucketed := make([][]walker, k)
				for m := 0; m < k; m++ {
					for _, wk := range active[m] {
						rebucketed[e.cl.Owner(wk.cur)] = append(rebucketed[e.cl.Owner(wk.cur)], wk)
					}
				}
				active = rebucketed
			},
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("walk.run",
		telemetry.String("kind", cfg.Kind.String()),
		telemetry.Int("walkers", totalWalkers),
		telemetry.Int("steps", cfg.Steps))
	for iter = 0; ; iter++ {
		total := 0
		for m := 0; m < k; m++ {
			total += len(active[m])
		}
		if total == 0 {
			break
		}
		w := e.cl.NewCounters()
		e.cl.Parallel(func(m int) {
			rng := rngs[m]
			out := outbox[m]
			var steps, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			kept := active[m][:0]
			for _, wk := range active[m] {
				next, done := e.step(&wk, cfg, rng)
				steps++
				if cfg.Kind == RWD {
					// Domination marking is an extra vertex update.
					verts++
				}
				if done {
					// Termination event (PPR stop, dead end): the step
					// is consumed but the walker moves nowhere.
					if cfg.CollectPaths {
						finished[m] = append(finished[m], wk.path)
					}
					continue
				}
				wk.prev, wk.hasPrev = wk.cur, true
				wk.cur = next
				wk.remaining--
				if cfg.CollectPaths {
					wk.path = append(wk.path, next)
				}
				dst := e.cl.Owner(next)
				if dst == m {
					// visits[next] is safe to write here: only next's
					// owner ever touches it during a superstep.
					if cfg.TrackVisits {
						visits[next]++
					}
					if wk.remaining > 0 {
						kept = append(kept, wk)
					} else if cfg.CollectPaths {
						finished[m] = append(finished[m], wk.path)
					}
				} else {
					// Migration: a message walk. Visit counting and
					// (if steps remain) re-activation happen at
					// delivery in the sequential merge phase.
					msgs++
					if prow != nil {
						prow[dst]++
					}
					out[dst] = append(out[dst], wk)
				}
			}
			active[m] = kept
			w.Steps[m] = steps
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		// Merge phase: deliver outboxes.
		batchH := e.reg.Histogram("walk_transfer_batch_walkers")
		for from := 0; from < k; from++ {
			for to := 0; to < k; to++ {
				if n := len(outbox[from][to]); n > 0 {
					// One machine-pair batch per superstep — the unit a
					// real system would pack into one network message.
					batchH.Observe(float64(n))
				}
				res.Traffic[from][to] += int64(len(outbox[from][to]))
				for _, wk := range outbox[from][to] {
					if cfg.TrackVisits {
						visits[wk.cur]++
					}
					if wk.remaining > 0 {
						active[to] = append(active[to], wk)
					} else if cfg.CollectPaths {
						res.Paths = append(res.Paths, wk.path)
					}
				}
				outbox[from][to] = outbox[from][to][:0]
			}
		}
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	if cfg.CollectPaths {
		for m := 0; m < k; m++ {
			res.Paths = append(res.Paths, finished[m]...)
		}
	}
	for _, it := range res.Stats.Iterations {
		for _, s := range it.Work.Steps {
			res.TotalSteps += s
		}
		for _, msg := range it.Work.Messages {
			res.MessageWalks += msg
		}
	}
	res.Finished = int64(totalWalkers)
	e.reg.Histogram("walk_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Int64("total_steps", res.TotalSteps),
		telemetry.Int64("message_walks", res.MessageWalks),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()))
	return res, nil
}

// step advances one walker by one step. It returns the next vertex and
// whether the walk terminated on this step (termination consumes the step
// but produces no movement).
func (e *Engine) step(wk *walker, cfg Config, rng *xrand.RNG) (graph.VertexID, bool) {
	switch cfg.Kind {
	case PPR:
		if rng.Bool(cfg.StopProb) {
			return 0, true
		}
	case RWJ:
		if rng.Bool(cfg.JumpProb) {
			return graph.VertexID(rng.Intn(e.g.NumVertices())), false
		}
	}
	ns := e.g.Neighbors(wk.cur)
	if len(ns) == 0 {
		// Dead end: RWJ teleports, everything else terminates.
		if cfg.Kind == RWJ {
			return graph.VertexID(rng.Intn(e.g.NumVertices())), false
		}
		return 0, true
	}
	switch {
	case cfg.Kind == Node2Vec && wk.hasPrev:
		return e.node2vecStep(wk, cfg, rng, ns), false
	case cfg.Kind == BiasedWalk:
		return e.biasedStep(wk, rng)
	}
	return ns[rng.Intn(len(ns))], false
}

// node2vecStep samples the second-order transition with KnightKing-style
// rejection sampling: propose a uniform out-neighbor x of cur, accept with
// probability w(x)/M where w(x) is 1/P when x is the previous vertex, 1
// when x is a neighbor of the previous vertex, and 1/Q otherwise, and M is
// the maximum of the three weights.
func (e *Engine) node2vecStep(wk *walker, cfg Config, rng *xrand.RNG, ns []graph.VertexID) graph.VertexID {
	maxW := 1.0
	if 1/cfg.P > maxW {
		maxW = 1 / cfg.P
	}
	if 1/cfg.Q > maxW {
		maxW = 1 / cfg.Q
	}
	for attempt := 0; attempt < 64; attempt++ {
		x := ns[rng.Intn(len(ns))]
		var w float64
		switch {
		case x == wk.prev:
			w = 1 / cfg.P
		case e.g.HasEdge(wk.prev, x):
			w = 1
		default:
			w = 1 / cfg.Q
		}
		if rng.Float64()*maxW < w {
			return x
		}
	}
	// Pathological rejection streak: fall back to first-order.
	return ns[rng.Intn(len(ns))]
}

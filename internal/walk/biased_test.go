package walk

import (
	"math"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/xrand"
)

func TestStepWeightBoundedDeterministic(t *testing.T) {
	for u := graph.VertexID(0); u < 30; u++ {
		for v := graph.VertexID(0); v < 30; v++ {
			w := StepWeight(u, v)
			if w < 1 || w > 8 {
				t.Fatalf("weight(%d,%d) = %v", u, v, w)
			}
			if w != StepWeight(u, v) {
				t.Fatal("StepWeight not deterministic")
			}
		}
	}
}

func TestBiasedStepFollowsWeights(t *testing.T) {
	// Vertex 0 has three out-neighbors; sampled frequencies must match
	// the synthetic weights.
	g := graph.FromAdjacency([][]graph.VertexID{{1, 2, 3}, {}, {}, {}})
	e, err := New(g, []int{0, 0, 0, 0}, 1, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	counts := map[graph.VertexID]int{}
	const draws = 300000
	wk := walker{cur: 0}
	for i := 0; i < draws; i++ {
		next, done := e.biasedStep(&wk, rng)
		if done {
			t.Fatal("biased step terminated with neighbors present")
		}
		counts[next]++
	}
	total := StepWeight(0, 1) + StepWeight(0, 2) + StepWeight(0, 3)
	for _, v := range []graph.VertexID{1, 2, 3} {
		want := StepWeight(0, v) / total
		got := float64(counts[v]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(next=%d) = %v, want %v", v, got, want)
		}
	}
}

func TestBiasedStepDeadEnd(t *testing.T) {
	g := graph.FromAdjacency([][]graph.VertexID{{}})
	e, err := New(g, []int{0}, 1, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	wk := walker{cur: 0}
	if _, done := e.biasedStep(&wk, xrand.New(1)); !done {
		t.Fatal("dead end did not terminate")
	}
}

func TestBiasedWalkRuns(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1500, AvgDegree: 8, Skew: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: BiasedWalk, WalkersPerVertex: 2, Steps: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 1500*2*6 {
		t.Fatalf("TotalSteps = %d (MinOutDegree=1 graphs never dead-end)", res.TotalSteps)
	}
	if BiasedWalk.String() != "BiasedWalk" {
		t.Fatalf("String = %q", BiasedWalk.String())
	}
	// Determinism across runs with shared alias cache warm/cold.
	res2, err := e.Run(Config{Kind: BiasedWalk, WalkersPerVertex: 2, Steps: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageWalks != res2.MessageWalks {
		t.Fatal("biased walk not deterministic")
	}
}

func TestAliasCacheSharedAcrossCalls(t *testing.T) {
	g := graph.FromAdjacency([][]graph.VertexID{{1, 2}, {}, {}})
	c := newAliasCache(g)
	t1 := c.table(0)
	t2 := c.table(0)
	if t1 != t2 {
		t.Fatal("alias table rebuilt")
	}
	if c.table(1) != nil {
		t.Fatal("edgeless vertex got a table")
	}
}

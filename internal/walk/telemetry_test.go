package walk

import (
	"testing"

	"bpart/internal/gen"
	"bpart/internal/telemetry"
)

// A traced walk run must emit one walk.run span whose attrs match the
// Result, plus one cluster.superstep record per BSP iteration.
func TestRunTelemetry(t *testing.T) {
	g := gen.Ring(200)
	e := newEngine(t, g, 4)
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	e.SetTelemetry(tr, reg)

	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 2, Steps: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	runs := tr.Find("walk.run")
	if len(runs) != 1 {
		t.Fatalf("got %d walk.run spans, want 1", len(runs))
	}
	sp := runs[0]
	if got := sp.Attr("kind"); got != "SimpleWalk" {
		t.Fatalf("walk.run kind = %v", got)
	}
	if got := sp.Attr("total_steps"); got != res.TotalSteps {
		t.Fatalf("walk.run total_steps = %v, want %d", got, res.TotalSteps)
	}
	if got := sp.Attr("message_walks"); got != res.MessageWalks {
		t.Fatalf("walk.run message_walks = %v, want %d", got, res.MessageWalks)
	}
	if got := sp.Attr("iterations"); got != int64(len(res.Stats.Iterations)) {
		t.Fatalf("walk.run iterations = %v, want %d", got, len(res.Stats.Iterations))
	}
	if got := sp.Attr("sim_time_us"); got != res.Stats.TotalTime() {
		t.Fatalf("walk.run sim_time_us = %v, want %v", got, res.Stats.TotalTime())
	}

	steps := tr.Find("cluster.superstep")
	if len(steps) != len(res.Stats.Iterations) {
		t.Fatalf("got %d superstep records, want %d", len(steps), len(res.Stats.Iterations))
	}
	if got := reg.Counter("cluster_supersteps_total").Value(); got != int64(len(steps)) {
		t.Fatalf("cluster_supersteps_total = %d, want %d", got, len(steps))
	}
}

// Histograms: a traced run records per-pair transfer batch sizes and the
// run's simulated time; batch observations must sum to MessageWalks.
func TestRunHistograms(t *testing.T) {
	g := gen.Ring(200)
	e := newEngine(t, g, 4)
	reg := telemetry.NewRegistry()
	e.SetTelemetry(nil, reg)

	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 2, Steps: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bh := reg.Histogram("walk_transfer_batch_walkers")
	if got := int64(bh.Sum()); got != res.MessageWalks {
		t.Fatalf("batch sum = %d, want MessageWalks %d", got, res.MessageWalks)
	}
	if res.MessageWalks > 0 && bh.Count() == 0 {
		t.Fatal("transfers happened but no batch observed")
	}
	rh := reg.Histogram("walk_run_sim_time_us")
	if rh.Count() != 1 || rh.Sum() != res.Stats.TotalTime() {
		t.Fatalf("run time histogram = (%d, %v), want (1, %v)", rh.Count(), rh.Sum(), res.Stats.TotalTime())
	}
}

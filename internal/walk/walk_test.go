package walk

import (
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
	"bpart/internal/xrand"
)

func newEngine(t testing.TB, g *graph.Graph, k int) *Engine {
	t.Helper()
	a, err := (partition.ChunkV{}).Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, a.Parts, k, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	g := gen.Ring(4)
	if _, err := New(nil, nil, 2, cluster.DefaultCostModel()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, []int{0}, 2, cluster.DefaultCostModel()); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{Kind: PPR}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.StopProb != 0.1 || c.Steps != 40 || c.WalkersPerVertex != 1 {
		t.Fatalf("PPR defaults wrong: %+v", c)
	}
	c = Config{Kind: DeepWalk}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Steps != 10 {
		t.Fatalf("DeepWalk default steps = %d", c.Steps)
	}
	c = Config{Kind: RWD}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !c.TrackVisits {
		t.Fatal("RWD must track visits")
	}
	for _, bad := range []Config{
		{Kind: Kind(99)},
		{Kind: Simple, WalkersPerVertex: -1},
		{Kind: Simple, Steps: -1},
		{Kind: PPR, StopProb: 1.5},
		{Kind: RWJ, JumpProb: -0.5},
		{Kind: Node2Vec, P: -1},
	} {
		cfg := bad
		if err := cfg.Normalize(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Simple: "SimpleWalk", PPR: "PPR", RWJ: "RWJ",
		RWD: "RWD", DeepWalk: "DeepWalk", Node2Vec: "node2vec",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind has empty String")
	}
}

func TestSimpleWalkStepCount(t *testing.T) {
	// On a ring nobody terminates early: total steps must be exactly
	// walkers × steps, and iterations must equal the step count (Fig 4's
	// one-step-per-iteration model).
	g := gen.Ring(100)
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 5, Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(100 * 5 * 4); res.TotalSteps != want {
		t.Fatalf("TotalSteps = %d, want %d", res.TotalSteps, want)
	}
	if len(res.Stats.Iterations) != 4 {
		t.Fatalf("iterations = %d, want 4", len(res.Stats.Iterations))
	}
}

func TestRingMessageWalksMatchCutCrossings(t *testing.T) {
	// Deterministic ring: each walker moves +1 per step. With 4
	// contiguous parts of 25, a walker crosses a boundary iff its path
	// [v+1, v+4] passes a multiple of 25 — exactly 4 boundaries × 4
	// start offsets = 16 crossing walkers, one message each.
	g := gen.Ring(100)
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageWalks != 16 {
		t.Fatalf("MessageWalks = %d, want 16", res.MessageWalks)
	}
}

func TestDeterminism(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 8, Skew: 0.75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	cfg := Config{Kind: Simple, WalkersPerVertex: 2, Steps: 5, Seed: 42, TrackVisits: true}
	r1, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalSteps != r2.TotalSteps || r1.MessageWalks != r2.MessageWalks {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)",
			r1.TotalSteps, r1.MessageWalks, r2.TotalSteps, r2.MessageWalks)
	}
	for v := range r1.Visits {
		if r1.Visits[v] != r2.Visits[v] {
			t.Fatalf("visit counts differ at %d", v)
		}
	}
}

func TestPPRTerminatesEarly(t *testing.T) {
	g := gen.Ring(1000)
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: PPR, WalkersPerVertex: 1, Steps: 40, StopProb: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Expected walk length with stop 0.5 is 2; must be far below the cap.
	mean := float64(res.TotalSteps) / 1000
	if mean > 4 || mean < 1 {
		t.Fatalf("mean PPR steps %v, want ≈2", mean)
	}
}

func TestRWJJumpsLeaveDeadEnds(t *testing.T) {
	// Star sinks: vertices 1..n-1 have no out-edges; only 0 points out.
	adj := make([][]graph.VertexID, 50)
	adj[0] = []graph.VertexID{1, 2, 3}
	g := graph.FromAdjacency(adj)
	a, _ := (partition.ChunkV{}).Partition(g, 2)
	e, err := New(g, a.Parts, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: RWJ, WalkersPerVertex: 1, Steps: 6, JumpProb: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Simple walks would die instantly at the 49 sinks (49 + a few
	// steps); RWJ teleports out of them, so every walker runs all 6 steps.
	if want := int64(50 * 6); res.TotalSteps != want {
		t.Fatalf("TotalSteps = %d, want %d (jumps must rescue dead ends)", res.TotalSteps, want)
	}
}

func TestSimpleWalkDiesAtDeadEnd(t *testing.T) {
	// 0 -> 1, 1 is a sink: the walker from 0 takes 2 steps (move + die),
	// the walker from 1 takes 1 (die immediately).
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 3 {
		t.Fatalf("TotalSteps = %d, want 3", res.TotalSteps)
	}
}

func TestVisitsCountArrivals(t *testing.T) {
	// Deterministic 2-cycle: walker from 0 visits 1 then 0; walker from 1
	// visits 0 then 1. Each vertex is arrived at exactly twice.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {0}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 1, Steps: 2, Seed: 1, TrackVisits: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visits[0] != 2 || res.Visits[1] != 2 {
		t.Fatalf("Visits = %v, want [2 2]", res.Visits)
	}
	// Every arrival crossed machines: 4 message walks.
	if res.MessageWalks != 4 {
		t.Fatalf("MessageWalks = %d, want 4", res.MessageWalks)
	}
}

func TestHubsAttractWalkers(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 3000, AvgDegree: 10, Skew: 0.8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: DeepWalk, WalkersPerVertex: 2, Steps: 8, Seed: 13, TrackVisits: true})
	if err != nil {
		t.Fatal(err)
	}
	meanVisits := float64(res.TotalSteps) / 3000
	if float64(res.Visits[0]) < 3*meanVisits {
		t.Fatalf("hub visits %d not above mean %v", res.Visits[0], meanVisits)
	}
}

func TestNode2VecRuns(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1000, AvgDegree: 10, Skew: 0.7, Locality: 0.5, Window: 32, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: Node2Vec, WalkersPerVertex: 1, Steps: 8, P: 4, Q: 0.25, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps < 1000*6 {
		t.Fatalf("node2vec total steps %d suspiciously low", res.TotalSteps)
	}
}

func TestNode2VecStepDistribution(t *testing.T) {
	// Walker sits at v=1 with prev=t=0. Its three choices are the
	// return vertex 0 (weight 1/P), vertex 2 which is a neighbor of t
	// (weight 1), and vertex 3 which is not (weight 1/Q). The rejection
	// sampler must reproduce those relative frequencies.
	g := graph.FromAdjacency([][]graph.VertexID{
		{1, 2},    // t=0: edge to v and to x=2
		{0, 2, 3}, // v=1: the three choices
		{},
		{},
	})
	e, err := New(g, []int{0, 0, 0, 0}, 1, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	const p, q = 4.0, 0.25
	cfg := Config{Kind: Node2Vec, P: p, Q: q}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)
	counts := map[graph.VertexID]int{}
	const draws = 200000
	wk := walker{cur: 1, prev: 0, hasPrev: true}
	for i := 0; i < draws; i++ {
		counts[e.node2vecStep(&wk, cfg, rng, g.Neighbors(1))]++
	}
	total := 1/p + 1 + 1/q // unnormalized mass
	wants := map[graph.VertexID]float64{
		0: (1 / p) / total,
		2: 1 / total,
		3: (1 / q) / total,
	}
	for v, want := range wants {
		got := float64(counts[v]) / draws
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("P(next=%d) = %v, want %v", v, got, want)
		}
	}
}

func TestChunkVImbalanceShowsInWaiting(t *testing.T) {
	// The headline Fig 13 effect: on a skewed graph, Chunk-V placement
	// yields a much higher wait ratio than a balanced placement.
	g, err := gen.ChungLu(gen.Config{NumVertices: 8000, AvgDegree: 12, Skew: 0.8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Kind: Simple, WalkersPerVertex: 5, Steps: 4, Seed: 29}

	cv, _ := (partition.ChunkV{}).Partition(g, 8)
	e1, err := New(g, cv.Parts, 8, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	h, _ := (partition.Hash{}).Partition(g, 8)
	e2, err := New(g, h.Parts, 8, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.WaitRatio() <= r2.Stats.WaitRatio() {
		t.Fatalf("Chunk-V wait ratio %v not above Hash %v",
			r1.Stats.WaitRatio(), r2.Stats.WaitRatio())
	}
}

func TestTrafficMatrixConsistent(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 8, Skew: 0.75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 3, Steps: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traffic) != 4 {
		t.Fatalf("traffic matrix dimension %d", len(res.Traffic))
	}
	var total int64
	for from := range res.Traffic {
		for to, c := range res.Traffic[from] {
			if from == to && c != 0 {
				t.Fatalf("self traffic [%d][%d] = %d", from, to, c)
			}
			if c < 0 {
				t.Fatalf("negative traffic [%d][%d]", from, to)
			}
			total += c
		}
	}
	if total != res.MessageWalks {
		t.Fatalf("traffic matrix sum %d != MessageWalks %d", total, res.MessageWalks)
	}
}

func TestSourcesRestrictStarts(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1000, AvgDegree: 8, Skew: 0.7, Locality: 0.6, Window: 32, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.Run(Config{
		Kind: PPR, WalkersPerVertex: 50, Steps: 20, StopProb: 0.2,
		Sources: []graph.VertexID{123}, Seed: 43, TrackVisits: true, CollectPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 50 {
		t.Fatalf("Finished = %d, want 50", res.Finished)
	}
	if len(res.Paths) != 50 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	for _, p := range res.Paths {
		if p[0] != 123 {
			t.Fatalf("walk started at %d, want 123", p[0])
		}
	}
	// Personalized PageRank locality: vertices near the source get
	// visited; a random far vertex usually does not. At least the source
	// neighborhood must dominate visits.
	var near, total int64
	for v, c := range res.Visits {
		total += c
		if v > 23 && v < 223 { // locality window around 123
			near += c
		}
	}
	if total == 0 {
		t.Fatal("no visits recorded")
	}
	if _, err := e.Run(Config{Kind: PPR, Sources: []graph.VertexID{99999}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestWalkerConservation(t *testing.T) {
	// Steps per walker never exceed the cap; walkers never duplicate:
	// total steps ≤ walkers × steps for every kind.
	g, err := gen.ChungLu(gen.Config{NumVertices: 500, AvgDegree: 6, Skew: 0.7, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 3)
	for _, kind := range []Kind{Simple, PPR, RWJ, RWD, DeepWalk, Node2Vec} {
		res, err := e.Run(Config{Kind: kind, WalkersPerVertex: 2, Seed: 37})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cfg := Config{Kind: kind, WalkersPerVertex: 2}
		if err := cfg.Normalize(); err != nil {
			t.Fatal(err)
		}
		maxSteps := int64(500 * 2 * cfg.Steps)
		if res.TotalSteps > maxSteps || res.TotalSteps <= 0 {
			t.Fatalf("%v: TotalSteps = %d, want in (0, %d]", kind, res.TotalSteps, maxSteps)
		}
	}
}

func BenchmarkSimpleWalk(b *testing.B) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 20000, AvgDegree: 16, Skew: 0.75, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	a, _ := (partition.ChunkV{}).Partition(g, 8)
	e, err := New(g, a.Parts, 8, cluster.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(Config{Kind: Simple, WalkersPerVertex: 5, Steps: 4, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

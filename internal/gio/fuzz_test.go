package gio

import (
	"bytes"
	"testing"
)

// Fuzz targets for the two parsers: arbitrary input must never panic, and
// anything that parses must re-serialize and re-parse to the same graph.

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("a b\n"))
	f.Add([]byte("0\t1\n 2  3 \n%x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, back)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("BPG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
	})
}

func FuzzReadAssignment(f *testing.F) {
	f.Add([]byte("# bpart assignment k=2 n=2\n0\n1\n"))
	f.Add([]byte("# bpart assignment k=1 n=0\n"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, k, err := ReadAssignment(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("accepted out-of-range part %d (k=%d)", p, k)
			}
		}
	})
}

package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Partition assignments are persisted as plain text: a header line
// "# bpart assignment k=<K> n=<N>" followed by one part id per vertex in
// vertex order. Systems integrating a precomputed partition (the paper's
// workflow: partition once in preprocessing, reuse for every analytics
// job) read this file at load time.

// WriteAssignment writes a vertex→part assignment.
func WriteAssignment(w io.Writer, parts []int, k int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# bpart assignment k=%d n=%d\n", k, len(parts)); err != nil {
		return err
	}
	for _, p := range parts {
		if p < 0 || p >= k {
			return fmt.Errorf("gio: part %d out of range [0,%d)", p, k)
		}
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignment parses an assignment stream, returning the parts and k.
func ReadAssignment(r io.Reader) ([]int, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("gio: empty assignment file")
	}
	header := sc.Text()
	var k, n int
	if _, err := fmt.Sscanf(header, "# bpart assignment k=%d n=%d", &k, &n); err != nil {
		return nil, 0, fmt.Errorf("gio: bad assignment header %q: %v", header, err)
	}
	if k <= 0 || n < 0 {
		return nil, 0, fmt.Errorf("gio: bad assignment header values k=%d n=%d", k, n)
	}
	parts := make([]int, 0, n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		p, err := strconv.Atoi(line)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: bad part id %q: %v", line, err)
		}
		if p < 0 || p >= k {
			return nil, 0, fmt.Errorf("gio: part %d out of range [0,%d)", p, k)
		}
		parts = append(parts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(parts) != n {
		return nil, 0, fmt.Errorf("gio: header says %d vertices, file has %d", n, len(parts))
	}
	return parts, k, nil
}

// WriteAssignmentFile writes the assignment to path.
func WriteAssignmentFile(path string, parts []int, k int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteAssignment(f, parts, k); err != nil {
		return err
	}
	return f.Close()
}

// ReadAssignmentFile reads an assignment from path.
func ReadAssignmentFile(path string) ([]int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadAssignment(f)
}

package gio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"bpart/internal/gen"
	"bpart/internal/graph"
)

func sample() *graph.Graph {
	return graph.FromAdjacency([][]graph.VertexID{{1, 2}, {3}, {}, {0}})
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	return reflect.DeepEqual(a.EdgeList(), b.EdgeList())
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, back) {
		t.Fatalf("round trip changed graph:\n%v\nvs\n%v", g.EdgeList(), back.EdgeList())
	}
}

func TestEdgeListCommentsAndWhitespace(t *testing.T) {
	in := "# comment\n% konect comment\n\n 0\t1 \n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("edges wrong: %v", g.EdgeList())
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // one field
		"a b\n",                    // bad src
		"0 b\n",                    // bad dst
		"0 -1\n",                   // negative
		"99999999999999999999 0\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input produced %v", g)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, back) {
		t.Fatal("binary round trip changed graph")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("BPG1"), // truncated header
		append([]byte("BPG1"), make([]byte, 16)...), // n=0 m=0 is fine, so append a degree overflow variant below
	}
	for i, in := range cases[:3] {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// n=0, m=0 must parse to the empty graph.
	g, err := ReadBinary(bytes.NewReader(cases[3]))
	if err != nil {
		t.Fatalf("empty binary graph rejected: %v", err)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("got %v", g)
	}
}

func TestBinaryRejectsInconsistentDegreeSum(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the edge count in the header.
	data[4+8] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted edge count accepted")
	}
}

func TestBinaryRejectsOutOfRangeTarget(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Last 4 bytes are the final target; make it huge.
	for i := len(data) - 4; i < len(data); i++ {
		data[i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestFileRoundTripBothFormats(t *testing.T) {
	g := sample()
	dir := t.TempDir()
	for _, name := range []string{"g.el", "g.bg", "g.el.gz", "g.bg.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalGraphs(g, back) {
			t.Fatalf("%s: round trip changed graph", name)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.el")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadFileBadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.el.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 10, Skew: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "g.el")
	zipped := filepath.Join(dir, "g.el.gz")
	if err := WriteFile(plain, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, g); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size() >= ps.Size() {
		t.Fatalf("gzip file (%d) not smaller than plain (%d)", zs.Size(), ps.Size())
	}
}

// Property: any generated graph round-trips through both formats.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ChungLu(gen.Config{
			NumVertices: int(seed%100) + 5,
			AvgDegree:   3,
			Skew:        0.7,
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		var tb, eb bytes.Buffer
		if WriteBinary(&tb, g) != nil || WriteEdgeList(&eb, g) != nil {
			return false
		}
		b1, err1 := ReadBinary(&tb)
		b2, err2 := ReadEdgeList(&eb)
		if err1 != nil || err2 != nil {
			return false
		}
		return equalGraphs(g, b1) && equalGraphs(g, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 20000, AvgDegree: 16, Skew: 0.75, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

package gio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestAssignmentRoundTrip(t *testing.T) {
	parts := []int{0, 3, 1, 2, 0, 0, 3}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, parts, 4); err != nil {
		t.Fatal(err)
	}
	got, k, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 || !reflect.DeepEqual(got, parts) {
		t.Fatalf("round trip: k=%d parts=%v", k, got)
	}
}

func TestAssignmentFileRoundTrip(t *testing.T) {
	parts := []int{1, 0, 1}
	path := filepath.Join(t.TempDir(), "a.parts")
	if err := WriteAssignmentFile(path, parts, 2); err != nil {
		t.Fatal(err)
	}
	got, k, err := ReadAssignmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || !reflect.DeepEqual(got, parts) {
		t.Fatalf("file round trip: k=%d parts=%v", k, got)
	}
	if _, _, err := ReadAssignmentFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteAssignmentRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	if err := WriteAssignment(&buf, []int{-1}, 2); err == nil {
		t.Fatal("negative part accepted")
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"garbage\n0\n",                    // bad header
		"# bpart assignment k=0 n=1\n0\n", // k=0
		"# bpart assignment k=2 n=2\n0\n", // count mismatch
		"# bpart assignment k=2 n=1\nx\n", // bad id
		"# bpart assignment k=2 n=1\n7\n", // out of range
		"# bpart assignment k=2 n=-1\n",   // negative n
	}
	for _, in := range cases {
		if _, _, err := ReadAssignment(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadAssignmentSkipsCommentsAndBlanks(t *testing.T) {
	in := "# bpart assignment k=2 n=2\n\n# comment\n0\n1\n"
	parts, k, err := ReadAssignment(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || len(parts) != 2 {
		t.Fatalf("parsed k=%d parts=%v", k, parts)
	}
}

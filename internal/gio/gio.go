// Package gio reads and writes graphs in two formats:
//
//   - Edge-list text ("src dst" per line, '#' comments, blank lines ignored)
//     — the format the paper's datasets (SNAP/KONECT dumps) ship in, so a
//     user with the real Twitter/Friendster files can feed them in directly.
//   - A compact little-endian binary format (magic "BPG1") storing the CSR
//     degree and target arrays, used by cmd/gengraph to cache synthetic
//     datasets between experiment runs.
package gio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bpart/internal/graph"
)

const binaryMagic = "BPG1"

// WriteEdgeList writes g as "src dst" lines.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# bpart edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var err error
	g.Edges(func(e graph.Edge) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge-list text stream. Vertex IDs may be sparse;
// the graph is sized to max ID + 1. Lines starting with '#' or '%' are
// comments; fields may be separated by spaces or tabs.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := graph.NewBuilder(0)
	var srcs, dsts []graph.VertexID
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want 2 fields, got %q", lineNo, line)
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad dst %q: %v", lineNo, fields[1], err)
		}
		srcs = append(srcs, graph.VertexID(s))
		dsts = append(dsts, graph.VertexID(d))
		if int(s) > maxID {
			maxID = int(s)
		}
		if int(d) > maxID {
			maxID = int(d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: scan: %w", err)
	}
	b.Grow(maxID + 1)
	for i := range srcs {
		b.AddEdge(srcs[i], dsts[i])
	}
	return b.Build(), nil
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	n, m := g.NumVertices(), g.NumEdges()
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint32(buf, uint32(g.OutDegree(graph.VertexID(v))))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	var err error
	g.Edges(func(e graph.Edge) bool {
		binary.LittleEndian.PutUint32(buf, e.Dst)
		_, err = bw.Write(buf)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("gio: bad magic %q, want %q", magic, binaryMagic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("gio: header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	const maxReasonable = 1 << 31
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("gio: implausible sizes n=%d m=%d", n, m)
	}
	// Grow incrementally instead of trusting the header's n: a forged
	// header must be backed by actual stream bytes before memory is
	// committed (found by FuzzReadBinary).
	degrees := make([]uint32, 0, minU64(n, 1<<20))
	buf := make([]byte, 4)
	for v := uint64(0); v < n; v++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("gio: degree of %d: %w", v, err)
		}
		degrees = append(degrees, binary.LittleEndian.Uint32(buf))
	}
	var sum uint64
	for _, d := range degrees {
		sum += uint64(d)
	}
	if sum != m {
		return nil, fmt.Errorf("gio: degree sum %d != edge count %d", sum, m)
	}
	b := graph.NewBuilder(int(n))
	for v, d := range degrees {
		for i := uint32(0); i < d; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("gio: targets of %d: %w", v, err)
			}
			dst := binary.LittleEndian.Uint32(buf)
			if uint64(dst) >= n {
				return nil, fmt.Errorf("gio: target %d out of range [0,%d)", dst, n)
			}
			b.AddEdge(graph.VertexID(v), dst)
		}
	}
	return b.Build(), nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteFile writes g to path, choosing the format by extension:
// ".bg" binary, anything else edge-list text; a trailing ".gz" adds gzip
// compression (e.g. "graph.el.gz", "graph.bg.gz" — SNAP/KONECT dumps ship
// gzipped).
func WriteFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	inner := path
	var gz *gzip.Writer
	if filepath.Ext(path) == ".gz" {
		gz = gzip.NewWriter(f)
		w = gz
		inner = strings.TrimSuffix(path, ".gz")
	}
	if filepath.Ext(inner) == ".bg" {
		err = WriteBinary(w, g)
	} else {
		err = WriteEdgeList(w, g)
	}
	if err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// ReadFile reads a graph from path, choosing the format by extension
// (".gz" suffix selects gzip decompression of the inner format).
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	inner := path
	if filepath.Ext(path) == ".gz" {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("gio: gzip: %w", err)
		}
		defer gz.Close()
		r = gz
		inner = strings.TrimSuffix(path, ".gz")
	}
	if filepath.Ext(inner) == ".bg" {
		return ReadBinary(r)
	}
	return ReadEdgeList(r)
}

// Package htmlpage holds the shared chrome of every bpart HTML artifact —
// the trace timeline (internal/traceview) and the audit timeline
// (internal/partaudit) use the same self-contained style so the artifacts
// read as one family: no server, no external assets.
package htmlpage

import (
	"fmt"
	"html"
	"io"
)

const style = `<style>
body{font:13px/1.4 system-ui,sans-serif;margin:24px;color:#222}
h1{font-size:18px}h2{font-size:15px;margin-top:28px}
.meta{color:#666}
svg{background:#fafafa;border:1px solid #ddd}
.lbl{font-size:10px;fill:#333}
.warn{color:#b00;font-weight:bold}
.legend span{display:inline-block;padding:1px 6px;margin-right:8px;color:#fff;border-radius:2px}
</style>`

// Start writes the document head and the page heading.
func Start(w io.Writer, title string) error {
	_, err := fmt.Fprintf(w, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n%s</head><body>\n<h1>%s</h1>\n",
		html.EscapeString(title), style, html.EscapeString(title))
	return err
}

// End closes a document opened by Start.
func End(w io.Writer) error {
	_, err := io.WriteString(w, "</body></html>\n")
	return err
}

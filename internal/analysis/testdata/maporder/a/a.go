// Package a seeds maporder violations: map ranges whose iteration order
// escapes through each of the modeled channels, next to the clean idioms
// the pass must stay silent on.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// KeysUnsorted returns keys in iteration order: nondeterministic.
func KeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order escapes via a slice "keys" used without a sort`
		keys = append(keys, k)
	}
	return keys
}

// KeysSorted is the canonical clean idiom: collect, sort, then use.
func KeysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysSortedInHelper hides the sort in a helper the pass cannot see
// through: the loop is (correctly, conservatively) still flagged —
// callers should sort inline or waive with a reason.
func KeysSortedInHelper(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order escapes via a slice "keys" used without a sort`
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// KeysSortedOnOnePath sorts only under a flag: the other path leaks.
func KeysSortedOnOnePath(m map[string]int, deterministic bool) []string {
	var keys []string
	for k := range m { // want `map iteration order escapes via a slice "keys" used without a sort`
		keys = append(keys, k)
	}
	if deterministic {
		sort.Strings(keys)
	}
	return keys
}

// KeysCollectedUnused never touches the slice again: order cannot escape.
func KeysCollectedUnused(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
}

// PrintEach emits one line per entry in iteration order.
func PrintEach(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order escapes via fmt output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// WriteEach uses a writer method instead of fmt; same leak.
func WriteEach(w io.Writer, m map[string][]byte) {
	for _, v := range m { // want `map iteration order escapes via a writer call`
		w.Write(v)
	}
}

// FloatSum accumulates floats: summation order changes the rounding.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order escapes via float accumulation`
		sum += v
	}
	return sum
}

// FloatSumSpelledOut writes the accumulation as x = x + v; same leak.
func FloatSumSpelledOut(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order escapes via float accumulation`
		sum = sum + v
	}
	return sum
}

// IntSum is exact and commutative: order-insensitive, no finding.
func IntSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// StringConcat glues values in iteration order.
func StringConcat(m map[string]string) string {
	var out string
	for _, v := range m { // want `map iteration order escapes via string concatenation`
		out += v
	}
	return out
}

// SendEach exposes the order to whoever drains the channel.
func SendEach(ch chan string, m map[string]int) {
	for k := range m { // want `map iteration order escapes via a channel send`
		ch <- k
	}
}

// CountAndTransfer only counts and redistributes into another map:
// order-insensitive, no finding.
func CountAndTransfer(m map[string]int, dst map[string]int) int {
	n := 0
	for k, v := range m {
		dst[k] = v
		n++
	}
	return n
}

// MaxValue scans for a maximum over values: commutative, no finding.
func MaxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// InsideClosure anchors the loop in a function literal's own graph.
func InsideClosure(m map[string]int) func() []string {
	return func() []string {
		var keys []string
		for k := range m { // want `map iteration order escapes via a slice "keys" used without a sort`
			keys = append(keys, k)
		}
		return keys
	}
}

// InsideClosureSorted is the clean variant of the same shape.
func InsideClosureSorted(m map[string]int) func() []string {
	return func() []string {
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
}

// TwoPhaseCollect appends from two map ranges into one slice and sorts
// once at the end: the second loop's self-append extends the slice without
// observing its order, so the sort obligation carries past it cleanly.
func TwoPhaseCollect(a, b map[string]int) []string {
	var names []string
	for k := range a {
		names = append(names, k)
	}
	for k := range b {
		names = append(names, "b:"+k)
	}
	sort.Strings(names)
	return names
}

// TwoPhaseCollectUnsorted is the leaking variant: two collection phases
// and no sort before the return.
func TwoPhaseCollectUnsorted(a, b map[string]int) []string {
	var names []string
	for k := range a { // want `map iteration order escapes via a slice "names" used without a sort`
		names = append(names, k)
	}
	for k := range b { // want `map iteration order escapes via a slice "names" used without a sort`
		names = append(names, "b:"+k)
	}
	return names
}

// PerIterationBuffer formats into a buffer declared inside the loop: the
// write stays within one iteration, and the collected blocks are sorted
// before they escape. Clean on every channel.
func PerIterationBuffer(w io.Writer, m map[string]int) {
	var blocks []string
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d\n", k, v)
		blocks = append(blocks, b.String())
	}
	sort.Strings(blocks)
	for _, bl := range blocks {
		io.WriteString(w, bl)
	}
}

// GuardedBySize checks only the length before sorting and using: len sees
// the size, not the order, so the guard is not a use, and the emitting
// path inside it sorts first. Clean.
func GuardedBySize(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		fmt.Fprint(w, strings.Join(keys, ","))
	}
}

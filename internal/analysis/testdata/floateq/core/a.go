// Package core seeds floateq violations; its path ends in /core so it is
// in the analyzer's balance-sensitive scope, like bpart/internal/core.
package core

// Compare exercises the comparison rules.
func Compare(a, b float64, f32 float32, i, j int, done bool) bool {
	if a == b { // want `floating-point == depends on rounding`
		return true
	}
	if a != 0 { // want `floating-point != depends on rounding`
		return false
	}
	if f32 == 1.5 { // want `floating-point == depends on rounding`
		return true
	}
	if 1.0 == 2.0 { // constants fold exactly: no diagnostic
		return true
	}
	if i == j || done == true { // integers and bools are not floats
		return true
	}
	if a == b { //bpartlint:ignore floateq waived deliberately for this fixture
		return true
	}
	return a < b // ordered comparisons are legitimate
}

// floatcmp.go is the designated helper file: raw comparisons here
// implement the helpers and are exempt, mirroring
// internal/metrics/floatcmp.go.
package core

// TieEq is the designated exact comparison.
func TieEq(a, b float64) bool { return a == b }

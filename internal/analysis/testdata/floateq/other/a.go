// Package other is outside the balance-sensitive scope (not core,
// partition or metrics): raw float comparisons are tolerated here.
package other

// Eq compares exactly and is not reported.
func Eq(a, b float64) bool { return a == b }

// Package resview mirrors bpart/internal/resview: the runtime-resource
// observer whose entire job is reading the host clock and runtime. Like
// telemetry, it sits outside the deterministic set — wall-clock reads here
// are the feature, not a leak — so nothing may be flagged. The boundary
// holds in the other direction: the deterministic packages never import
// resview, they only hold telemetry.PhaseProbe.
package resview

import "time"

// PhaseStart stamps a phase begin; the observability side may read the
// clock freely.
func PhaseStart() time.Time { return time.Now() }

// PhaseWallUS measures a phase's wall-clock self-time.
func PhaseWallUS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds())
}

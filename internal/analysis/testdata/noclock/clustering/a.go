// Package clustering shares a prefix with the deterministic package
// cluster but is not it: scope matching compares whole path segments, so
// nothing here may be flagged by name coincidence.
package clustering

import "time"

// Stamp may read the clock freely here.
func Stamp() time.Time { return time.Now() }

// Nap too.
func Nap() { time.Sleep(time.Millisecond) }

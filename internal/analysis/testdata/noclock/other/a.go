// Package other sits outside the deterministic set: wall-clock reads are
// its own business and must not be flagged.
package other

import "time"

// Uptime may read the clock freely here.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp too.
func Stamp() time.Time { return time.Now() }

// Package experiments mirrors bpart/internal/experiments: a deterministic
// package that nonetheless publishes wall-clock columns (scaling curves,
// the parallel speedup table). Raw time reads are flagged like in any
// deterministic package; the sanctioned route is telemetry.NewStopwatch —
// the observability boundary owns the clock, the experiment only reads
// the stopwatch — which must stay clean.
package experiments

import (
	"time"

	"bpart/internal/telemetry"
)

// MeasureRaw times a replay straight off the host clock — exactly the
// leak the parallel speedup harness must not contain.
func MeasureRaw() float64 {
	start := time.Now() // want `wall-clock read time.Now in a deterministic package`
	replay()
	return time.Since(start).Seconds() // want `wall-clock read time.Since in a deterministic package`
}

// Backoff couples the sweep's pacing to the host scheduler.
func Backoff() {
	time.Sleep(time.Millisecond) // want `wall-clock read time.Sleep in a deterministic package`
}

// MeasureSanctioned is the speedup harness's idiom: wall time flows
// through telemetry.Stopwatch, the designated exempt boundary, and no
// finding fires.
func MeasureSanctioned() float64 {
	sw := telemetry.NewStopwatch()
	replay()
	return sw.Seconds() * 1e6
}

// SimulatedOnly derives its column from pure Duration arithmetic: exact,
// host-independent, no findings.
func SimulatedOnly(us float64) time.Duration {
	return time.Duration(us) * time.Microsecond
}

func replay() {}

// Package servestats mirrors bpart/internal/servestats: the serving-layer
// observer whose entire job is stamping request latencies off the host
// clock. Like telemetry and resview, it sits outside the deterministic
// set — wall-clock reads here are the feature, not a leak — so nothing
// may be flagged. The boundary holds in the other direction: the
// deterministic packages drive serving through servestats.Play and never
// time requests themselves, and the BENCH serving section's latency
// columns are zeroed by StripWallClock before any byte comparison.
package servestats

import "time"

// Start stamps a request begin; the observability side may read the clock
// freely.
func Start() time.Time { return time.Now() }

// LatencyUS measures a request's wall-clock duration in microseconds.
func LatencyUS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Microsecond)
}

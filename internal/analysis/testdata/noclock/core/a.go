// Package core mirrors a deterministic package's path: every wall-clock
// read below must be flagged, while pure time arithmetic stays allowed.
package core

import "time"

// Elapsed reads the wall clock twice.
func Elapsed() float64 {
	start := time.Now() // want `wall-clock read time.Now in a deterministic package`
	work()
	return time.Since(start).Seconds() // want `wall-clock read time.Since in a deterministic package`
}

// Deadline arms a timer off the wall clock.
func Deadline() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock read time.After in a deterministic package`
}

// Throttle sleeps, coupling progress to the host scheduler.
func Throttle() {
	time.Sleep(10 * time.Millisecond) // want `wall-clock read time.Sleep in a deterministic package`
}

// PureArithmetic only manipulates Durations and fixed instants: exact and
// host-independent, no findings.
func PureArithmetic() time.Time {
	d := 3 * time.Second
	return time.Unix(0, 0).Add(d)
}

func work() {}

// Package a seeds norawrand violations: both math/rand generations are
// forbidden outside internal/xrand.
package a

import (
	crand "crypto/rand" // fine: crypto randomness is not simulation randomness
	"math/rand"         // want `import of "math/rand" breaks seeded determinism`
	v2 "math/rand/v2"   // want `import of "math/rand/v2" breaks seeded determinism`
)

// Draw exists so the imports are used.
func Draw() (int, uint64, []byte) {
	b := make([]byte, 1)
	_, _ = crand.Read(b)
	return rand.Intn(10), v2.Uint64(), b
}

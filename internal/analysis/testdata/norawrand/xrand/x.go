// Package xrand stands in for bpart/internal/xrand: the sanctioned wrapper
// is allowed to reach for math/rand internally, so nothing here fires.
package xrand

import "math/rand"

// Wrap builds on a seeded source.
func Wrap(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

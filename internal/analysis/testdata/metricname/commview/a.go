// Package commview seeds metricname cases in the comm-matrix observation
// idiom of internal/cluster: comm_* counters and the per-pair batch
// histogram published once per superstep.
package commview

// Counter mimics telemetry.Counter.
type Counter struct{}

// Add increments by n.
func (*Counter) Add(n int64) {}

// Histogram mimics telemetry.Histogram.
type Histogram struct{}

// Observe records a sample.
func (*Histogram) Observe(float64) {}

// Registry mimics telemetry.Registry.
type Registry struct{}

// Counter returns the named counter.
func (*Registry) Counter(name string) *Counter { return nil }

// Histogram returns the named histogram.
func (*Registry) Histogram(name string) *Histogram { return nil }

// Observe mirrors the per-superstep comm metrics block.
func Observe(reg *Registry, src, dst int, n int64) {
	reg.Counter("comm_messages_total").Add(n)
	reg.Counter("comm_active_pairs_total").Add(1)
	reg.Histogram("comm_pair_batch_messages").Observe(float64(n))

	// Splicing the pair into the name mints k² series nobody can enumerate.
	reg.Counter(pairName(src, dst)).Add(n) // want `metric name must be a compile-time string constant`
	// Reusing the counter name as a histogram splits the exported series.
	reg.Histogram("comm_messages_total").Observe(float64(n)) // want `metric "comm_messages_total" registered as histogram here but as counter`
}

func pairName(src, dst int) string { return "comm_pair" }

// Package partaudit seeds metricname cases in the finish-time metrics
// idiom of internal/vcut and internal/multilevel: scheme-level counters
// and quality gauges published once per partition call.
package partaudit

// Counter mimics telemetry.Counter.
type Counter struct{}

// Inc increments.
func (*Counter) Inc() {}

// Add increments by n.
func (*Counter) Add(n int64) {}

// Gauge mimics telemetry.Gauge.
type Gauge struct{}

// Set records a value.
func (*Gauge) Set(float64) {}

// Registry mimics telemetry.Registry.
type Registry struct{}

// Counter returns the named counter.
func (*Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (*Registry) Gauge(name string) *Gauge { return nil }

// Publish mirrors the vcut/multilevel finish helpers.
func Publish(reg *Registry, scheme string) {
	reg.Counter("vcut_partitions_total").Inc()
	reg.Counter("multilevel_refine_moves_total").Add(1)
	reg.Gauge("vcut_replication_factor").Set(0)

	// Splicing the scheme into the name forks one logical metric into an
	// unenumerable family.
	reg.Counter("vcut_" + scheme + "_total").Inc() // want `metric name must be a compile-time string constant`
	// Reusing a counter name as a gauge splits the exported series.
	reg.Gauge("vcut_partitions_total").Set(0) // want `metric "vcut_partitions_total" registered as gauge here but as counter`
}

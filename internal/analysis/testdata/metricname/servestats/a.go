// Package servestats seeds metricname cases in the serving-recorder
// idiom of internal/servestats: a fixed set of constant serving series,
// with per-endpoint and per-part fan-out held as raw histograms on the
// recorder rather than spliced into registry names.
package servestats

// Counter mimics telemetry.Counter.
type Counter struct{}

// Inc increments.
func (*Counter) Inc() {}

// Gauge mimics telemetry.Gauge.
type Gauge struct{}

// Set records a value.
func (*Gauge) Set(float64) {}

// Histogram mimics telemetry.Histogram.
type Histogram struct{}

// Observe records a sample.
func (*Histogram) Observe(float64) {}

// Registry mimics telemetry.Registry.
type Registry struct{}

// Counter returns the named counter.
func (*Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (*Registry) Gauge(name string) *Gauge { return nil }

// Histogram returns the named histogram.
func (*Registry) Histogram(name string) *Histogram { return nil }

// The real recorder's registry surface: four constant snake_case names,
// one kind each.
const (
	metricRequestsTotal = "serving_requests_total"
	metricInflight      = "serving_inflight"
	metricLatencyUS     = "serving_latency_us"
)

// End mirrors the recorder's per-request bookkeeping.
func End(reg *Registry, endpoint string, part int, us float64) {
	reg.Counter(metricRequestsTotal).Inc()
	reg.Gauge(metricInflight).Set(0)
	reg.Histogram(metricLatencyUS).Observe(us)

	// Splicing the endpoint into the name forks one logical metric into an
	// unenumerable family — per-endpoint fan-out belongs on the recorder's
	// own histogram map, not in registry names.
	reg.Histogram("serving_latency_us_" + endpoint).Observe(us) // want `metric name must be a compile-time string constant`
	// Reusing the in-flight gauge's name as a counter splits the series.
	reg.Counter(metricInflight).Inc() // want `metric "serving_inflight" registered as counter here but as gauge`
}

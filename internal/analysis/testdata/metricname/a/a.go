// Package a seeds metricname violations against a miniature registry whose
// method shapes match telemetry.Registry.
package a

// Counter mimics telemetry.Counter.
type Counter struct{}

// Inc increments.
func (*Counter) Inc() {}

// Gauge mimics telemetry.Gauge.
type Gauge struct{}

// Set records a value.
func (*Gauge) Set(float64) {}

// Histogram mimics telemetry.Histogram.
type Histogram struct{}

// Observe records a sample.
func (*Histogram) Observe(float64) {}

// Registry mimics telemetry.Registry.
type Registry struct{}

// Counter returns the named counter.
func (*Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (*Registry) Gauge(name string) *Gauge { return nil }

// Histogram returns the named histogram.
func (*Registry) Histogram(name string) *Histogram { return nil }

const goodName = "layers_total"

// Record exercises the naming rules.
func Record(reg *Registry, dynamic string) {
	reg.Counter("stream_placed_total").Inc()
	reg.Counter(goodName).Inc() // constants are fine: still enumerable
	reg.Gauge("residual_v_bias").Set(0)

	reg.Counter(dynamic).Inc()               // want `metric name must be a compile-time string constant`
	reg.Counter("Stream_Placed").Inc()       // want `not snake_case`
	reg.Counter("stream-placed-total").Inc() // want `not snake_case`
	reg.Counter("_leading_underscore").Inc() // want `not snake_case`
	reg.Gauge("stream_placed_total").Set(0)  // want `metric "stream_placed_total" registered as gauge here but as counter`
	reg.Counter("stream_placed_total").Inc() // fine: same name, same kind (get-or-create)

	reg.Histogram("superstep_time_us").Observe(1)
	reg.Histogram("superstep_time_us").Observe(2)   // fine: same name, same kind
	reg.Histogram(dynamic).Observe(1)               // want `metric name must be a compile-time string constant`
	reg.Histogram("Superstep_Time").Observe(1)      // want `not snake_case`
	reg.Histogram("stream_placed_total").Observe(1) // want `metric "stream_placed_total" registered as histogram here but as counter`
	reg.Counter("superstep_time_us").Inc()          // want `metric "superstep_time_us" registered as counter here but as histogram`
}

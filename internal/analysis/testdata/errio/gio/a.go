// Package gio seeds errio violations; its path ends in /gio so it is in
// the analyzer's I/O scope, like bpart/internal/gio.
package gio

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
)

// Sink is a fallible writer like a file or socket.
type Sink struct{}

// Write mimics io.Writer.
func (*Sink) Write(p []byte) (int, error) { return len(p), nil }

// WriteString mimics io.StringWriter.
func (*Sink) WriteString(s string) (int, error) { return len(s), nil }

// Flush mimics bufio.Writer.Flush.
func (*Sink) Flush() error { return nil }

// Stop returns no error; discarding its result is fine.
func (*Sink) Stop() {}

// Dump exercises the discard rules.
func Dump(w *Sink, payload []byte) error {
	w.Write(payload)          // want `error from Write discarded`
	w.WriteString("header")   // want `error from WriteString discarded`
	w.Flush()                 // want `error from Flush discarded`
	defer w.Flush()           // want `error from Flush discarded by defer`
	_, _ = w.Write(payload)   // want `error from Write blanked with _`
	_ = w.Flush()             // want `error from Flush blanked with _`
	fmt.Fprintf(w, "n=%d", 1) // want `error from Fprintf discarded`
	w.Flush()                 //bpartlint:ignore errio waived deliberately for this fixture
	w.Stop()                  // no error to lose
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// Exempt writes to sinks that cannot fail or cannot be helped.
func Exempt(rw http.ResponseWriter) string {
	var buf bytes.Buffer
	buf.WriteString("in-memory buffers never fail")
	var sb strings.Builder
	sb.WriteString("neither do builders")
	rw.Write([]byte("the client may be gone; nothing to do"))
	fmt.Fprintf(rw, "same for Fprint* aimed at a ResponseWriter")
	return buf.String() + sb.String()
}

// Package partaudit seeds errio violations in the decision-audit JSONL
// writer idiom; its path ends in /partaudit so it is in the analyzer's I/O
// scope, like bpart/internal/partaudit. An audit log that silently loses
// lines explains a partition that never happened.
package partaudit

import "encoding/json"

// LineWriter is a fallible buffered sink like bufio.Writer.
type LineWriter struct{}

// Write mimics io.Writer.
func (*LineWriter) Write(p []byte) (int, error) { return len(p), nil }

// Flush mimics bufio.Writer.Flush.
func (*LineWriter) Flush() error { return nil }

// Auditor mimics the audit log writer.
type Auditor struct {
	bw   *LineWriter
	werr error
}

// EmitUnchecked drops the JSONL write and flush errors — the audit log
// truncates silently on a full disk.
func (a *Auditor) EmitUnchecked(rec any) {
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(`{"type":"error"}`)
	}
	a.bw.Write(append(line, '\n')) // want `error from Write discarded`
	_ = a.bw.Flush()               // want `error from Flush blanked with _`
}

// EmitChecked keeps the sticky first-error discipline the real Auditor
// uses: any failure surfaces at the next Flush/Close.
func (a *Auditor) EmitChecked(rec any) {
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(`{"type":"error"}`)
	}
	if _, err := a.bw.Write(append(line, '\n')); err != nil && a.werr == nil {
		a.werr = err
	}
	if err := a.bw.Flush(); err != nil && a.werr == nil {
		a.werr = err
	}
}

// Package servestats seeds errio violations in the request-log recorder
// idiom; its path ends in /servestats so it is in the analyzer's I/O
// scope, like bpart/internal/servestats. A request log that silently
// truncates on a full disk turns a routing trace into a partial one —
// tail attribution reconciled against it would then be wrong, which is
// exactly why the real recorder keeps write errors sticky.
package servestats

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
)

// RecordUnchecked appends one request record without checking the sink —
// a torn log tail looks like a quiet server.
func RecordUnchecked(w *bufio.Writer, endpoint string, latencyUS float64) {
	fmt.Fprintf(w, `{"endpoint":%q,"latency_us":%v}`+"\n", endpoint, latencyUS) // want `error from Fprintf discarded`
	w.Flush()                                                                   // want `error from Flush discarded`
}

// CloseUnchecked blanks the final flush — the exact failure Close exists
// to surface.
func CloseUnchecked(w *bufio.Writer, sink io.Writer) {
	_ = w.Flush()                        // want `error from Flush blanked with _`
	_, _ = io.WriteString(sink, "eof\n") // want `error from WriteString blanked with _`
}

// RecordSticky is the discipline the real recorder uses: the first write
// or flush failure is recorded and every later record no-ops against it.
func RecordSticky(w *bufio.Writer, endpoint string, latencyUS float64, werr *error) {
	if *werr != nil {
		return
	}
	if _, err := fmt.Fprintf(w, `{"endpoint":%q,"latency_us":%v}`+"\n", endpoint, latencyUS); err != nil {
		*werr = err
		return
	}
	if err := w.Flush(); err != nil {
		*werr = err
	}
}

// Respond writes to the HTTP response — an exempt sink: the client is
// gone on failure and there is nothing the handler can do about it.
func Respond(w http.ResponseWriter, body string) {
	io.WriteString(w, body)
}

// Package other is outside the I/O scope (not gio, telemetry or cluster):
// stderr chatter and best-effort writes are tolerated here.
package other

import (
	"fmt"
	"os"
)

// Log writes best-effort and is not reported.
func Log(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// Package resview seeds errio violations in the resource-probe idiom; its
// path ends in /resview so it is in the analyzer's I/O scope, like
// bpart/internal/resview. A resource log that silently truncates on a full
// disk turns a real measurement into a partial one with no warning — the
// probe's whole contract is that write failures are sticky and surfaced.
package resview

import (
	"bufio"
	"fmt"
	"io"
)

// EmitUnchecked streams resource records without checking the sink — a
// crashed flush loses the tail of the measurement silently.
func EmitUnchecked(w *bufio.Writer, phase string, wallUS float64) {
	fmt.Fprintf(w, `{"phase":%q,"wall_us":%v}`+"\n", phase, wallUS) // want `error from Fprintf discarded`
	w.Flush()                                                       // want `error from Flush discarded`
}

// CloseUnchecked blanks the final flush — the exact failure Close exists
// to surface.
func CloseUnchecked(w *bufio.Writer, sink io.Writer) {
	_ = w.Flush()                        // want `error from Flush blanked with _`
	_, _ = io.WriteString(sink, "EOF\n") // want `error from WriteString blanked with _`
}

// EmitSticky is the discipline the real probe uses: the first write or
// flush failure is recorded and every later record is a no-op against it.
func EmitSticky(w *bufio.Writer, phase string, wallUS float64, werr *error) {
	if *werr != nil {
		return
	}
	if _, err := fmt.Fprintf(w, `{"phase":%q,"wall_us":%v}`+"\n", phase, wallUS); err != nil {
		*werr = err
		return
	}
	if err := w.Flush(); err != nil {
		*werr = err
	}
}

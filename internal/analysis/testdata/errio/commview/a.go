// Package commview seeds errio violations in the comm-matrix report
// idiom; its path ends in /commview so it is in the analyzer's I/O scope,
// like bpart/internal/commview. A heatmap or matrix report that silently
// truncates on a full disk misreports the communication topology.
package commview

import (
	"fmt"
	"io"
)

// Matrix is a stand-in for a summed src→dst comm matrix.
type Matrix [][]int64

// WriteRowsUnchecked streams the matrix rows without checking the sink —
// the tail of the report goes missing on a closed pipe.
func WriteRowsUnchecked(w io.Writer, m Matrix) {
	for i, row := range m {
		fmt.Fprintf(w, "M%d %v\n", i, row) // want `error from Fprintf discarded`
	}
	_, _ = io.WriteString(w, "done\n") // want `error from WriteString blanked with _`
}

// WriteRowsChecked is the sticky-error discipline the real report writers
// use: first failure wins, everything after is a no-op.
func WriteRowsChecked(w io.Writer, m Matrix) error {
	for i, row := range m {
		if _, err := fmt.Fprintf(w, "M%d %v\n", i, row); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "done\n")
	return err
}

// Package a seeds aliasret violations: exported functions that retain or
// return caller-supplied slices/maps without copying, next to the clean
// defensive-copy idioms the pass must accept.
package a

// Store is a retained-state struct used by the cases below.
type Store struct {
	ids    []int
	byName map[string]int
}

var global []int

// NewBad stores the caller's slice straight into the returned struct.
func NewBad(ids []int) *Store {
	return &Store{ids: ids} // want `NewBad retains its caller-supplied slice "ids" without copying`
}

// NewCopied reassigns the parameter to a fresh backing array first: clean.
func NewCopied(ids []int) *Store {
	ids = append([]int(nil), ids...)
	return &Store{ids: ids}
}

// NewMapBad aliases the caller's map.
func NewMapBad(m map[string]int) *Store {
	return &Store{byName: m} // want `NewMapBad retains its caller-supplied map "m" without copying`
}

// NewMapCopied rebuilds the map: clean.
func NewMapCopied(m map[string]int) *Store {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return &Store{byName: c}
}

// SetIDs assigns the parameter into a field.
func (s *Store) SetIDs(ids []int) {
	s.ids = ids // want `SetIDs retains its caller-supplied slice "ids" without copying`
}

// SetIDsCopied copies on every path before the store: clean.
func (s *Store) SetIDsCopied(ids []int) {
	ids = append([]int(nil), ids...)
	s.ids = ids
}

// SetIDsOnOnePath copies on one branch only: the other still aliases.
func (s *Store) SetIDsOnOnePath(ids []int, safe bool) {
	if safe {
		ids = append([]int(nil), ids...)
	}
	s.ids = ids // want `SetIDsOnOnePath retains its caller-supplied slice "ids" without copying`
}

// Publish stashes the parameter in a package-level variable.
func Publish(ids []int) {
	global = ids // want `Publish retains its caller-supplied slice "ids" without copying`
}

// Identity hands the caller's slice straight back.
func Identity(ids []int) []int {
	return ids // want `Identity returns its caller-supplied slice "ids" without copying`
}

// Cloned returns a fresh slice built from the input: clean.
func Cloned(ids []int) []int {
	return append([]int(nil), ids...)
}

// Grown appends in place before returning: append reuses the caller's
// backing array whenever capacity suffices, so the result can still
// alias it — a self-append is not a defensive copy.
func Grown(ids []int, x int) []int {
	ids = append(ids, x)
	return ids // want `Grown returns its caller-supplied slice "ids" without copying`
}

// GrownIntoField self-appends and then retains: same aliasing hazard.
func (s *Store) GrownIntoField(ids []int, x int) {
	ids = append(ids, x)
	s.ids = ids // want `GrownIntoField retains its caller-supplied slice "ids" without copying`
}

// Sum only reads the parameter: clean.
func Sum(ids []int) int {
	total := 0
	for _, v := range ids {
		total += v
	}
	return total
}

// KeepLocal copies into a local that never outlives the call: clean.
func KeepLocal(ids []int) int {
	local := ids
	return len(local)
}

// register is unexported: intra-package handoff is the package's business.
func register(ids []int) *Store {
	return &Store{ids: ids}
}

var _ = register

// Package a seeds spanend violations against a miniature tracer whose
// shape matches bpart/internal/telemetry: Span(name) returns a value with
// End and Annotate methods.
package a

import "errors"

// Span mimics telemetry.Span.
type Span struct{}

// End closes the span.
func (Span) End() {}

// Annotate attaches attributes.
func (Span) Annotate() {}

// Tracer mimics telemetry.Tracer.
type Tracer struct{}

// Span opens a span.
func (Tracer) Span(name string) Span { return Span{} }

var cond bool

// DiscardedInline starts a span nothing can ever end.
func DiscardedInline(tr Tracer) {
	tr.Span("phase") // want `span started and discarded`
}

// DiscardedBlank throws the span away explicitly.
func DiscardedBlank(tr Tracer) {
	_ = tr.Span("phase") // want `span discarded into _`
}

// NeverEnded uses the span but never closes it.
func NeverEnded(tr Tracer) {
	sp := tr.Span("phase") // want `span "sp" is never ended`
	sp.Annotate()
}

// LeakOnEarlyReturn ends the span on the happy path only.
func LeakOnEarlyReturn(tr Tracer) error {
	sp := tr.Span("phase")
	if cond {
		return errors.New("bail") // want `span "sp" .* is not ended on this return path`
	}
	sp.End()
	return nil
}

// Deferred is the canonical correct form.
func Deferred(tr Tracer) error {
	sp := tr.Span("phase")
	defer sp.End()
	if cond {
		return errors.New("bail")
	}
	return nil
}

// EndPerPath mirrors the End-per-error-path style used by core.BPart.
func EndPerPath(tr Tracer) error {
	sp := tr.Span("phase")
	if cond {
		sp.End()
		return errors.New("bail")
	}
	sp.End()
	return nil
}

// Escapes hands the span to a helper, which owns ending it now.
func Escapes(tr Tracer) {
	sp := tr.Span("phase")
	finish(sp)
}

func finish(sp Span) { sp.End() }

// ConditionalStart mirrors partition.Stream: an interface-typed var
// assigned under a guard, ended under the matching nil-style guard.
func ConditionalStart(tr Tracer, on bool) {
	var sp *Span
	if on {
		s := tr.Span("phase")
		sp = &s
	}
	if sp != nil {
		sp.End()
	}
}

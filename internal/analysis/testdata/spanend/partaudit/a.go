// Package partaudit seeds spanend cases in the helper idiom the
// observability embeds of internal/vcut and internal/multilevel use: a
// span opened after the argument checks and handed to a finish helper
// that owns ending it.
package partaudit

// Span mimics telemetry.Span.
type Span struct{}

// End closes the span.
func (Span) End() {}

// Annotate attaches attributes.
func (Span) Annotate() {}

// Tracer mimics telemetry.Tracer.
type Tracer struct{}

// Span opens a span.
func (Tracer) Span(name string) Span { return Span{} }

type report struct{}

// Finished mirrors vcut.Partition: the span escapes into finish, whose
// End satisfies the pass.
func Finished(tr Tracer) {
	sp := tr.Span("vcut.partition")
	finish(sp, report{})
}

func finish(sp Span, _ report) { sp.End() }

// Forgotten opens the partition span but never hands it to finish — the
// phase silently vanishes from the trace timeline.
func Forgotten(tr Tracer) {
	sp := tr.Span("vcut.partition") // want `span "sp" is never ended`
	sp.Annotate()
}

// Package cfgonly seeds spanend cases a lexical checker provably cannot
// decide: every finding (and deliberate non-finding) below hinges on
// control-flow paths — branch merges, goto, labeled break, switch
// fallthrough, conditional defer, loop back edges, and panic-only exits.
// The old lexical approximation got all of these wrong in one direction
// or the other; the CFG-backed pass must get every one right.
package cfgonly

import "errors"

// Span mimics telemetry.Span.
type Span struct{}

// End closes the span.
func (Span) End() {}

// Annotate attaches attributes.
func (Span) Annotate() {}

// Tracer mimics telemetry.Tracer.
type Tracer struct{}

// Span opens a span.
func (Tracer) Span(name string) Span { return Span{} }

var cond bool

func pick() int { return 0 }

// BranchEndOnly ends the span in one branch only; the shared return after
// the merge leaks the other path. A lexical check is satisfied by any End
// above the return — the flow-sensitive pass is not.
func BranchEndOnly(tr Tracer) error {
	sp := tr.Span("phase")
	if cond {
		sp.End()
	}
	return nil // want `span "sp" .* is not ended on this return path`
}

// ImplicitExitLeak falls off the end of the function with the span live
// on the no-End path; the leak anchors at the closing brace.
func ImplicitExitLeak(tr Tracer) {
	sp := tr.Span("phase")
	if cond {
		sp.End()
	}
} // want `span "sp" .* is not ended on this return path`

// GotoEndsBeforeReturn is the dual false positive: the only return sits
// lexically above the End, yet every execution path runs the End first
// (entry -> finish -> ret). The lexical pass flagged this; the CFG pass
// must stay silent.
func GotoEndsBeforeReturn(tr Tracer) {
	sp := tr.Span("phase")
	goto finish
ret:
	return
finish:
	sp.End()
	goto ret
}

// LabeledBreakLeak leaves the loop through two labeled breaks; only one
// of them ends the span first.
func LabeledBreakLeak(tr Tracer) error {
	sp := tr.Span("phase")
loop:
	for {
		switch pick() {
		case 1:
			sp.End()
			break loop
		case 2:
			break loop
		}
	}
	return errors.New("done") // want `span "sp" .* is not ended on this return path`
}

// FallthroughShared reaches case 2 both via fallthrough (after End) and
// directly from the switch head (span still live).
func FallthroughShared(tr Tracer) error {
	sp := tr.Span("phase")
	switch pick() {
	case 1:
		sp.End()
		fallthrough
	case 2:
		return errors.New("two") // want `span "sp" .* is not ended on this return path`
	}
	sp.End()
	return nil
}

// ConditionalDefer registers the deferred End under a guard; the other
// path returns with the span live. A lexical "has a defer somewhere"
// check accepts this — the CFG sees the uncovered path.
func ConditionalDefer(tr Tracer, on bool) error {
	sp := tr.Span("phase")
	if on {
		defer sp.End()
	}
	return nil // want `span "sp" .* is not ended on this return path`
}

// DeferInLoop is clean: each iteration's span has its End registered
// before any back edge or exit can be taken.
func DeferInLoop(tr Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Span("iter")
		defer sp.End()
		sp.Annotate()
	}
}

// LoopRestartLeak can skip the End via continue: the back edge overwrites
// a live span (reported at the restart), and leaving the loop on that
// same path leaks it out of the function (reported at the brace).
func LoopRestartLeak(tr Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Span("iter") // want `span "sp" .* is overwritten before being ended`
		if cond {
			continue
		}
		sp.End()
	}
} // want `span "sp" .* is not ended on this return path`

// PanicOnlyExit needs no End on the panicking path: the CFG gives the
// panic block no successors, so the obligation is never charged there.
func PanicOnlyExit(tr Tracer) {
	sp := tr.Span("phase")
	if cond {
		panic("boom")
	}
	sp.End()
}

// PanicAlways never returns normally, so no End is required at all — the
// lexical pass reported a leak here.
func PanicAlways(tr Tracer) {
	sp := tr.Span("phase")
	sp.Annotate()
	panic("boom")
}

// ClosureFrame: the outer function's paths need not end a span started
// inside a closure — but the closure's own paths must.
func ClosureFrame(tr Tracer) error {
	fn := func() error {
		sp := tr.Span("inner")
		if cond {
			return errors.New("bail") // want `span "sp" .* is not ended on this return path`
		}
		sp.End()
		return nil
	}
	return fn()
}

// InvokedClosureEnd runs the literal at its own statement, so the End
// inside it executes exactly when the statement does: a genuine clear.
func InvokedClosureEnd(tr Tracer) {
	sp := tr.Span("phase")
	func() { sp.End() }()
}

// DeferredClosureEnd is `defer sp.End()` with one wrapper: the deferred
// literal runs at frame exit on every path through the defer statement.
func DeferredClosureEnd(tr Tracer) error {
	sp := tr.Span("phase")
	defer func() { sp.End() }()
	if cond {
		return errors.New("bail")
	}
	return nil
}

// StoredClosureEscapes: a literal that is merely stored may run later, on
// some paths only, or never — its End must not discharge the span at the
// definition site. The span escapes into the closure instead (assumed
// ended by its new owner), so the pass stays silent without wrongly
// treating `f := ...` as a clear on the paths that skip f().
func StoredClosureEscapes(tr Tracer) {
	sp := tr.Span("phase")
	f := func() { sp.End() }
	if cond {
		return
	}
	f()
}

// GoClosureEscapes: a goroutine's End is unordered with frame exit — no
// guarantee it runs before the trace is read. Escape, not a clear.
func GoClosureEscapes(tr Tracer) {
	sp := tr.Span("phase")
	go func() { sp.End() }()
}

package norawrand_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/norawrand"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/norawrand/a", norawrand.Analyzer)
}

func TestXrandIsExempt(t *testing.T) {
	analysistest.Run(t, "../testdata/norawrand/xrand", norawrand.Analyzer)
}

// Package norawrand forbids math/rand outside internal/xrand.
//
// Every experiment table in EXPERIMENTS.md must be regenerable
// bit-for-bit. math/rand (and math/rand/v2) breaks that two ways: the
// global functions are seeded from runtime entropy, and even explicitly
// seeded generators do not promise a stable stream across Go releases.
// internal/xrand's splitmix64 RNG is the only sanctioned randomness
// source; this pass turns any other import of math/rand into a lint error.
package norawrand

import (
	"strconv"
	"strings"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "norawrand",
	Doc: "forbid math/rand imports outside internal/xrand\n\n" +
		"Seeded determinism is a reproducibility invariant: all randomness must " +
		"flow through bpart/internal/xrand's splitmix64 streams, which are stable " +
		"across platforms and Go releases.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// xrand itself is the sanctioned wrapper: if it ever chooses to build
	// on math/rand/v2 internals, that is its business.
	if strings.HasSuffix(pass.Path, "/xrand") || strings.HasSuffix(pass.Path, "/xrand_test") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %q breaks seeded determinism: use bpart/internal/xrand", path)
			}
		}
	}
	return nil
}

// Package analysis is a self-contained, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package and reports Diagnostics. The repo's reproducibility
// invariants — seeded determinism, span hygiene, metric naming, epsilon
// float comparisons, checked writer errors — live in the sibling analyzer
// packages (norawrand, spanend, metricname, floateq, errio) and are driven
// by cmd/bpartlint.
//
// The x/tools module is deliberately not vendored: the build environment is
// offline, so the loader (loader.go) resolves module-local imports itself
// and delegates the standard library to go/importer's source importer.
// When x/tools becomes available the analyzers port mechanically — the
// Analyzer/Pass/Diagnostic surface mirrors go/analysis on purpose.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"sync"

	"bpart/internal/analysis/cfg"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and ignore directives.
	// It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text: first line is a summary.
	Doc string
	// Run executes the pass over one package, reporting findings via
	// pass.Report. An error aborts the whole lint run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one type-checked package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path. Testdata fixtures get their
	// module-relative path (".../testdata/floateq/core"), so analyzers
	// that scope by path substring work unchanged under analysistest.
	Path string
	// Shared accumulates cross-package state within one Run, e.g. the
	// repo-wide metric-name table maintained by metricname.
	Shared *Shared

	report func(Diagnostic)
}

// Report emits a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// cfgCache memoizes control-flow graphs per function body across every
// analyzer of one lint run.
type cfgCache struct {
	mu     sync.Mutex
	graphs map[*ast.BlockStmt]*cfg.Graph
}

// CFG returns the control-flow graph of a function body (see
// internal/analysis/cfg), built on first request and shared via the
// Shared blackboard, so flow-sensitive analyzers pay for each function
// once per run rather than once per pass.
func (p *Pass) CFG(body *ast.BlockStmt) *cfg.Graph {
	c := p.Shared.Get("analysis.cfg", func() any {
		return &cfgCache{graphs: map[*ast.BlockStmt]*cfg.Graph{}}
	}).(*cfgCache)
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.graphs[body]
	if g == nil {
		g = cfg.New(body)
		c.graphs[body] = g
	}
	return g
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Shared is the cross-package blackboard for one lint run. Analyzers that
// enforce repo-wide invariants stash their accumulation here keyed by
// analyzer name; access is serialized so packages may be analyzed
// concurrently later without changing the analyzers.
type Shared struct {
	mu   sync.Mutex
	vals map[string]any
}

// NewShared returns an empty blackboard.
func NewShared() *Shared { return &Shared{vals: map[string]any{}} }

// Get returns the value stored under key, creating it with mk on first use.
func (s *Shared) Get(key string, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vals == nil {
		s.vals = map[string]any{}
	}
	v, ok := s.vals[key]
	if !ok {
		v = mk()
		s.vals[key] = v
	}
	return v
}

// ignoreDirective matches "bpartlint:ignore name1,name2 optional reason"
// inside a comment. The directive suppresses the named analyzers on the
// directive's line, or on the following line when the comment stands alone.
var ignoreDirective = regexp.MustCompile(`bpartlint:ignore\s+([A-Za-z0-9_,]+)`)

// ignoreIndex maps file line numbers to the set of analyzer names ignored
// on that line.
type ignoreIndex map[int]map[string]bool

// buildIgnoreIndex scans a file's comments for bpartlint:ignore directives.
func buildIgnoreIndex(fset *token.FileSet, f *ast.File) ignoreIndex {
	var idx ignoreIndex
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreDirective.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			if idx == nil {
				idx = ignoreIndex{}
			}
			line := fset.Position(c.Pos()).Line
			names := map[string]bool{}
			for _, n := range strings.Split(m[1], ",") {
				names[strings.TrimSpace(n)] = true
			}
			// A standalone directive comment guards the next line; a
			// trailing one guards its own. Registering both is harmless:
			// directives never collide with real code on the same line.
			for _, l := range []int{line, line + 1} {
				if idx[l] == nil {
					idx[l] = map[string]bool{}
				}
				for n := range names {
					idx[l][n] = true
				}
			}
		}
	}
	return idx
}

// Ignored reports whether a diagnostic from analyzer name at pos is
// suppressed by a bpartlint:ignore directive.
func (idx ignoreIndex) Ignored(fset *token.FileSet, name string, pos token.Pos) bool {
	if idx == nil {
		return false
	}
	names := idx[fset.Position(pos).Line]
	return names != nil && (names[name] || names["all"])
}

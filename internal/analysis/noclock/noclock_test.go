package noclock_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/noclock"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/core", noclock.Analyzer)
}

// TestExperimentsStopwatchRoute pins the experiments idiom: raw time.Now
// / time.Since / time.Sleep are flagged inside the experiments scope,
// while wall-clock measurement routed through telemetry.NewStopwatch (the
// parallel speedup and scaling harnesses' route) stays clean.
func TestExperimentsStopwatchRoute(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/experiments", noclock.Analyzer)
}

func TestOutOfScopePackageIsExempt(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/other", noclock.Analyzer)
}

// TestResviewIsExempt pins the observability boundary: resview is the
// package that reads the clock on the deterministic packages' behalf
// (through telemetry.PhaseProbe), so it must stay outside noclock's scope.
func TestResviewIsExempt(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/resview", noclock.Analyzer)
}

// TestServestatsIsExempt pins the serving-layer boundary: servestats is
// the package that stamps request latencies off the host clock on the
// serving surface's behalf, so — like resview and telemetry — it must
// stay outside noclock's scope.
func TestServestatsIsExempt(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/servestats", noclock.Analyzer)
}

// TestSegmentNotSubstring pins scope matching to whole path segments: a
// package named clustering shares a prefix with the deterministic package
// cluster and must stay exempt.
func TestSegmentNotSubstring(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/clustering", noclock.Analyzer)
}

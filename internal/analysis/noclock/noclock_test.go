package noclock_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/noclock"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/core", noclock.Analyzer)
}

func TestOutOfScopePackageIsExempt(t *testing.T) {
	analysistest.Run(t, "../testdata/noclock/other", noclock.Analyzer)
}

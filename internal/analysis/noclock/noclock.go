// Package noclock forbids wall-clock reads in the deterministic packages.
//
// Everything under internal/core, internal/partition, internal/cluster,
// internal/engine, internal/walk, internal/fault and internal/experiments
// must rerun bit-identically: simulated time drives the cluster model,
// seeded xrand drives the randomness, and the determinism gates (trace
// diff, BENCH byte comparison, recovery proofs) assume outputs carry no
// trace of the machine's clock. A stray time.Now — even one that only
// feeds a report column — couples artifacts to the host and breaks those
// gates silently.
//
// time.Now, time.Since, time.Until, the timer/ticker constructors and
// time.Sleep are therefore lint errors in those packages. Wall-clock
// measurement that belongs in reports (real partitioner runtimes, for
// example) routes through internal/telemetry — the designated
// observability boundary, exempt by construction — via
// telemetry.NewStopwatch; runtime resource capture likewise lives in the
// exempt internal/resview, which the deterministic packages reach only
// through the telemetry.PhaseProbe interface; request-latency capture for
// the serving layer lives in the exempt internal/servestats, whose clock
// reads are the feature (the BENCH serving section stays deterministic
// because StripWallClock zeroes the latency columns, and experiments
// drives serving through servestats.Play rather than timing anything
// itself). Test files are exempt:
// -timeout handling and
// benchmark plumbing there are the test harness's business. Anything else
// needs a bpartlint:ignore noclock waiver and a reason.
package noclock

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc: "forbid wall-clock reads in the deterministic packages\n\n" +
		"time.Now/Since/Until, timers and Sleep are banned in core, partition, " +
		"cluster, engine, walk, fault and experiments: reruns must be " +
		"bit-identical. Route report timing through telemetry.NewStopwatch.",
	Run: run,
}

// forbidden is the set of time-package functions that read or depend on
// the wall clock. Constructors like time.Unix or time.Date and Duration
// arithmetic are pure and stay allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// deterministic names the packages that must rerun bit-identically.
var deterministic = map[string]bool{
	"core":        true,
	"partition":   true,
	"cluster":     true,
	"engine":      true,
	"walk":        true,
	"fault":       true,
	"experiments": true,
}

// scoped reports whether the package must stay deterministic. Whole path
// segments are compared — not raw substrings — so a future
// internal/clustering or internal/walkthrough is not pulled into scope by
// name coincidence. Testdata fixtures mirror the real layout
// (testdata/noclock/core), so the same segments match both.
func scoped(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if deterministic[seg] {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock read time.%s in a deterministic package: use simulated time or telemetry.NewStopwatch (or waive with bpartlint:ignore noclock)", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// Package suite enumerates the bpartlint analyzers in one place, so the
// CLI and the repo-wide smoke test agree on what "the suite" is.
package suite

import (
	"bpart/internal/analysis"
	"bpart/internal/analysis/errio"
	"bpart/internal/analysis/floateq"
	"bpart/internal/analysis/metricname"
	"bpart/internal/analysis/norawrand"
	"bpart/internal/analysis/spanend"
)

// Analyzers returns the full bpartlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errio.Analyzer,
		floateq.Analyzer,
		metricname.Analyzer,
		norawrand.Analyzer,
		spanend.Analyzer,
	}
}

// Package suite enumerates the bpartlint analyzers in one place, so the
// CLI and the repo-wide smoke test agree on what "the suite" is.
package suite

import (
	"bpart/internal/analysis"
	"bpart/internal/analysis/aliasret"
	"bpart/internal/analysis/errio"
	"bpart/internal/analysis/floateq"
	"bpart/internal/analysis/maporder"
	"bpart/internal/analysis/metricname"
	"bpart/internal/analysis/noclock"
	"bpart/internal/analysis/norawrand"
	"bpart/internal/analysis/spanend"
)

// Analyzers returns the full bpartlint suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		aliasret.Analyzer,
		errio.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		metricname.Analyzer,
		noclock.Analyzer,
		norawrand.Analyzer,
		spanend.Analyzer,
	}
}

package suite

import (
	"sort"
	"strings"
	"testing"
)

// TestInventory pins the suite's size and ordering: exactly these eight
// analyzers, alphabetical by name, so CLI output, CI artifacts and the
// Makefile inventory print stay stable.
func TestInventory(t *testing.T) {
	want := []string{"aliasret", "errio", "floateq", "maporder", "metricname", "noclock", "norawrand", "spanend"}
	as := Analyzers()
	var got []string
	for _, a := range as {
		got = append(got, a.Name)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("suite = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("suite order is not alphabetical: %v", got)
	}
	for _, a := range as {
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing doc or run function", a.Name)
		}
		first := strings.SplitN(a.Doc, "\n", 2)[0]
		if strings.HasSuffix(first, ".") || first == "" {
			t.Errorf("analyzer %q doc first line should be a short undotted summary, got %q", a.Name, first)
		}
	}
}

package maporder_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/maporder"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/maporder/a", maporder.Analyzer)
}

// Package maporder finds `range` loops over maps whose iteration order
// can escape into output.
//
// Go randomizes map iteration order per run, so any map range that feeds
// an order-sensitive consumer makes reruns non-bit-identical — the exact
// property the repo's determinism gates (trace diffs, BENCH byte
// comparisons, recovery proofs) stand on. Four escape channels are
// modeled:
//
//   - slice append: elements collected in iteration order, unless every
//     path from the loop sorts the slice before its next use (checked on
//     the control-flow graph via Pass.CFG — the canonical
//     collect-keys/sort/iterate idiom stays clean);
//   - output: fmt printing or Write*/Encode-style writer calls inside the
//     body emit in iteration order;
//   - float accumulation: += and friends on a float declared outside the
//     loop round differently per order (integer accumulation is exact and
//     commutative, so it is exempt);
//   - channel send: downstream receivers observe the order.
//
// Counting, map-to-map transfers, and min/max scans are order-insensitive
// and stay silent, as are writes into per-iteration buffers and follow-up
// `v = append(v, ...)` collection phases (growing a slice does not observe
// its order; the sort obligation carries past them). Test files are exempt. Where order provably cannot
// escape but the pattern is too clever for the pass, waive with
// `bpartlint:ignore maporder` and say why.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"bpart/internal/analysis"
	"bpart/internal/analysis/cfg"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration whose order escapes into output\n\n" +
		"A range over a map that appends to a slice (without sorting it " +
		"before use), prints, accumulates floats, or sends on a channel makes " +
		"reruns non-bit-identical. Iterate over sorted keys instead.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[rng.X]; ok && isMap(tv.Type) {
					checkRange(pass, fd, rng)
				}
				return true
			})
		}
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkRange classifies everything the loop body does with the iteration
// order and reports the channels through which it escapes.
func checkRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	var reasons []string
	seen := map[string]bool{}
	addReason := func(r string) {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}
	// collected maps each outer slice appended to inside the body to one
	// representative ident (for the message); order matters only if the
	// slice is later used unsorted, which the CFG query below decides.
	collected := map[*types.Var]bool{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			addReason("a channel send")
		case *ast.AssignStmt:
			classifyAssign(pass, rng, st, collected, addReason)
		case *ast.CallExpr:
			if name, ok := outputCall(pass, rng, st); ok {
				addReason(name)
			}
		}
		return true
	})

	for v := range collected {
		if useBeforeSort(pass, fd, rng, v) {
			addReason(fmt.Sprintf("a slice %q used without a sort", v.Name()))
		}
	}
	if len(reasons) == 0 {
		return
	}
	sort.Strings(reasons)
	pass.Reportf(rng.For, "map iteration order escapes via %s; iterate over sorted keys or waive with bpartlint:ignore maporder",
		strings.Join(reasons, ", "))
}

// classifyAssign spots order-sensitive assignments in the loop body:
// appends that collect elements into an outer slice, and accumulation
// into outer floats or strings.
func classifyAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, collected map[*types.Var]bool, addReason func(string)) {
	// x op= expr accumulation.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 {
			if v := outerVar(pass, rng, as.Lhs[0]); v != nil {
				switch kind(v.Type()) {
				case "float":
					addReason("float accumulation")
				case "string":
					addReason("string concatenation")
				}
			}
		}
		return
	}
	for i, lhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		v := outerVar(pass, rng, as.Lhs[i])
		if v == nil {
			continue
		}
		call, ok := ast.Unparen(lhs).(*ast.CallExpr)
		if ok && isAppend(pass, call) {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				collected[v] = true
			}
			continue
		}
		// x = x + expr accumulation spelled out.
		if be, ok := ast.Unparen(lhs).(*ast.BinaryExpr); ok && be.Op == token.ADD {
			if mentionsVar(pass, be, v) {
				switch kind(v.Type()) {
				case "float":
					addReason("float accumulation")
				case "string":
					addReason("string concatenation")
				}
			}
		}
	}
}

// outerVar resolves e to a variable declared outside the range statement;
// loop-local temporaries cannot carry order out of the loop.
func outerVar(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
		return nil // declared inside the loop
	}
	return v
}

func kind(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Info()&types.IsFloat != 0:
		return "float"
	case b.Info()&types.IsString != 0:
		return "string"
	}
	return ""
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCall reports fmt printing and writer-method calls, which emit in
// iteration order. Writes into a destination declared inside the loop body
// (a per-iteration buffer) stay within one iteration and are exempt — if
// that buffer's contents later escape, they do so through a slice append
// or an outer writer, which the other channels catch.
func outputCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Print") ||
				(strings.HasPrefix(sel.Sel.Name, "Fprint") &&
					!(len(call.Args) > 0 && loopLocal(pass, rng, call.Args[0]))) {
				return "fmt output", true
			}
			return "", false
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		if !loopLocal(pass, rng, sel.X) {
			return "a writer call", true
		}
	}
	return "", false
}

// loopLocal reports whether e (possibly behind & or parens) names a
// variable declared inside the range statement.
func loopLocal(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pos() >= rng.Pos() && v.Pos() < rng.End()
}

// mentionsVar reports whether v appears anywhere under n.
func mentionsVar(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// observesVar is mentionsVar minus the uses that cannot observe element
// order: len(v) and cap(v) see only the size, so the guard in the
// canonical `if len(v) > 0 { sort; use }` idiom is not a sink.
func observesVar(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return false // size-only: skip the whole call
				}
			}
		}
		if id, ok := m.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// useBeforeSort asks the control-flow graph whether any path from the
// loop reaches a use of the collected slice before a sort call covers it.
// Paths on which the slice is never touched again are harmless.
func useBeforeSort(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	g := pass.CFG(fd.Body)
	if !g.Contains(rng) {
		// The range lives inside a closure: the obligation belongs to the
		// literal's own graph.
		var lit *ast.FuncLit
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				flg := pass.CFG(fl.Body)
				if flg.Contains(rng) {
					lit = fl
					return false
				}
			}
			return true
		})
		if lit == nil {
			return true // cannot anchor: be conservative
		}
		g = pass.CFG(lit.Body)
	}
	res := g.Find(cfg.Query{
		Start: rng,
		Clear: func(n ast.Node) bool { return sortsVar(pass, n, v) },
		Sink: func(n ast.Node) bool {
			if n.Pos() >= rng.Pos() && n.End() <= rng.End() {
				return false // the collecting loop itself
			}
			if selfAppend(pass, n, v) {
				return false // growing the slice does not observe its order
			}
			// A RangeStmt graph node stands for the loop header only; its
			// body statements live in their own blocks and are judged
			// there, so scan just the header expressions here.
			if rs, ok := n.(*ast.RangeStmt); ok {
				for _, h := range []ast.Node{rs.X, rs.Key, rs.Value} {
					if h != nil && observesVar(pass, h, v) {
						return true
					}
				}
				return false
			}
			return observesVar(pass, n, v)
		},
	})
	return len(res.Sinks) > 0
}

// selfAppend reports whether n is `v = append(v, ...)` with no other
// mention of v: a later collection phase (another loop appending into the
// same slice) extends the slice without observing element order, so it is
// not a use — the obligation to sort carries past it.
func selfAppend(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || resolveVar(pass, lhs) != v {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isAppend(pass, call) || len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || resolveVar(pass, first) != v {
		return false
	}
	for _, a := range call.Args[1:] {
		if mentionsVar(pass, a, v) {
			return false
		}
	}
	return true
}

func resolveVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// sortsVar reports whether n is a statement calling a sort/slices sorting
// function over v.
func sortsVar(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort", "slices":
		return mentionsVar(pass, call, v)
	}
	return false
}

package metricname_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/metricname"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/metricname/a", metricname.Analyzer)
}

func TestSeededViolationsPartaudit(t *testing.T) {
	analysistest.Run(t, "../testdata/metricname/partaudit", metricname.Analyzer)
}

func TestSeededViolationsCommview(t *testing.T) {
	analysistest.Run(t, "../testdata/metricname/commview", metricname.Analyzer)
}

func TestSeededViolationsServestats(t *testing.T) {
	analysistest.Run(t, "../testdata/metricname/servestats", metricname.Analyzer)
}

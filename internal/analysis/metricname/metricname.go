// Package metricname vets names handed to the telemetry registry.
//
// Registry.Counter / Registry.Gauge / Registry.Histogram are get-or-create
// by name: a typo'd or
// dynamically built name silently forks a second metric, and a name reused
// across kinds (counter in one file, gauge in another) splits one logical
// metric into two exported series. This pass requires every name to be a
// compile-time string constant in snake_case, and tracks names across the
// whole lint run so a kind collision anywhere in the repo is reported.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require snake_case constant metric names, consistent per kind\n\n" +
		"Names passed to telemetry Registry.Counter/Gauge/Histogram must be " +
		"compile-time string constants matching ^[a-z][a-z0-9]*(_[a-z0-9]+)*$, " +
		"and one name must keep one kind across the repo.",
	Run: run,
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registration records where a metric name was first seen and as what kind.
type registration struct {
	kind string
	pos  token.Position
}

// table is the repo-wide name table kept on the shared blackboard.
type table map[string]registration

func run(pass *analysis.Pass) error {
	// The registry implementation (and its white-box tests, which feed
	// deliberately hostile names through sanitizeMetricName) is exempt:
	// the invariant binds consumers.
	if strings.Contains(pass.Path, "internal/telemetry") {
		return nil
	}
	names := pass.Shared.Get("metricname", func() any { return table{} }).(table)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := ""
			switch sel.Sel.Name {
			case "Counter":
				kind = "counter"
			case "Gauge":
				kind = "gauge"
			case "Histogram":
				kind = "histogram"
			default:
				return true
			}
			if !isRegistryRecv(pass, sel) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant so the registry's series are enumerable")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not snake_case (want ^[a-z][a-z0-9]*(_[a-z0-9]+)*$)", name)
				return true
			}
			if prev, seen := names[name]; seen && prev.kind != kind {
				pass.Reportf(call.Args[0].Pos(), "metric %q registered as %s here but as %s at %s: one name, one kind", name, kind, prev.kind, prev.pos)
			} else if !seen {
				names[name] = registration{kind: kind, pos: pass.Fset.Position(call.Args[0].Pos())}
			}
			return true
		})
	}
	return nil
}

// isRegistryRecv reports whether the selector's receiver is the telemetry
// Registry (or a fixture standing in for it). Without type information the
// call is skipped rather than guessed at.
func isRegistryRecv(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.String()
	return strings.HasSuffix(strings.TrimPrefix(t, "*"), "telemetry.Registry") ||
		strings.Contains(t, "/metricname/") // fixture registries under testdata
}

// Package spanend checks that every telemetry span opened is also ended.
//
// Tracer.Span's contract (internal/telemetry) is "the returned Span must
// be Ended exactly once": a leaked span never records its duration, so the
// JSONL timeline silently loses the phase it was supposed to measure. The
// pass finds every `x := tr.Span(...)` whose result type has an End
// method, then demands either a `defer x.End()` or an `x.End()` lexically
// before every return in the variable's scope.
//
// The return-path check is a lexical approximation, not a CFG: an End in
// one branch satisfies returns that follow it. In exchange it has no false
// positives on the repo's End-per-error-path style, and it still catches
// the real leak class — an early return before any End exists at all.
// Spans that escape (passed to a function, stored, returned) are assumed
// ended by their new owner and skipped.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require every started telemetry span to be ended\n\n" +
		"A span from Tracer.Span must reach End() on all return paths: either " +
		"defer it or End it before each return. Leaked spans drop their phase " +
		"from the trace timeline.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc analyzes one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "span started and discarded: its End can never be called")
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Rhs {
				call, ok := st.Rhs[i].(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span discarded into _: its End can never be called")
					continue
				}
				checkSpanVar(pass, fd, parents, id, call)
			}
		}
		return true
	})
}

// isSpanStart reports whether call is `<recv>.Span(...)` yielding a value
// with an End method.
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Span" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, "End")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

type useKind int

const (
	useNeutral useKind = iota
	useEnd
	useDeferEnd
	useEscape
)

// checkSpanVar verifies the span held in id reaches End.
func checkSpanVar(pass *analysis.Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, id *ast.Ident, call *ast.CallExpr) {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
		return
	}
	start := call.End()

	var hasDefer, escaped bool
	var ends []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use == id {
			return true
		}
		if pass.TypesInfo.Uses[use] != v && pass.TypesInfo.Defs[use] != v {
			return true
		}
		switch classifyUse(parents, use) {
		case useEnd:
			if use.Pos() > start {
				ends = append(ends, use.Pos())
			}
		case useDeferEnd:
			if use.Pos() > start {
				hasDefer = true
			}
		case useEscape:
			escaped = true
		}
		return true
	})
	if escaped || hasDefer {
		return
	}
	if len(ends) == 0 {
		pass.Reportf(call.Pos(), "span %q is never ended: defer %s.End() or End it on every path", id.Name, id.Name)
		return
	}
	// Every return inside the variable's scope after the start needs an
	// End lexically before it (returns belonging to nested closures run on
	// someone else's clock and are skipped).
	scope := v.Parent()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= start || ret.Pos() >= scope.End() || inFuncLit(parents, ret) {
			return true
		}
		ended := false
		for _, e := range ends {
			if e < ret.Pos() {
				ended = true
				break
			}
		}
		if !ended {
			pass.Reportf(ret.Pos(), "span %q (started at %s) is not ended on this return path", id.Name, pass.Fset.Position(call.Pos()))
		}
		return true
	})
}

// classifyUse decides what one mention of the span variable does with it.
func classifyUse(parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	switch p := parents[id].(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return useEscape
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok || call.Fun != ast.Expr(p) {
			// Method value (sp.End passed around): treat as escape.
			return useEscape
		}
		if p.Sel.Name != "End" {
			return useNeutral // Annotate and friends keep ownership
		}
		if d, ok := parents[call].(*ast.DeferStmt); ok && d.Call == call {
			return useDeferEnd
		}
		return useEnd
	case *ast.BinaryExpr:
		return useNeutral // nil checks
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return useNeutral // reassignment is a fresh start, checked separately
			}
		}
		return useEscape
	case *ast.ValueSpec:
		return useNeutral
	default:
		return useEscape
	}
}

// buildParents records each node's parent within root.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// inFuncLit reports whether n sits inside a function literal below the
// analyzed function's body.
func inFuncLit(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

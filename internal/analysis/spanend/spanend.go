// Package spanend checks that every telemetry span opened is also ended.
//
// Tracer.Span's contract (internal/telemetry) is "the returned Span must
// be Ended exactly once": a leaked span never records its duration, so the
// JSONL timeline silently loses the phase it was supposed to measure. The
// pass finds every `x := tr.Span(...)` whose result type has an End
// method, then walks the function's control-flow graph
// (internal/analysis/cfg, via Pass.CFG) demanding that every execution
// path from the start reaches an `x.End()` — direct or deferred — before
// any return, before the function falls off its end, and before the
// variable is overwritten by a fresh span.
//
// The check is a true all-paths analysis, not the lexical approximation
// earlier revisions used: an End in one branch no longer excuses the
// branch without one, and an End that is lexically below a return but
// flow-wise before it (goto, loop back edges) no longer trips a false
// positive. Two deliberate exemptions remain. Panic-only exits need no
// End — the block that panics has no successors in the CFG, so paths
// ending there are never charged (the trace is lost in the unwind
// anyway). And spans that escape (passed to a function, stored, returned,
// aliased) are assumed ended by their new owner and skipped.
package spanend

import (
	"go/ast"
	"go/types"

	"bpart/internal/analysis"
	"bpart/internal/analysis/cfg"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require every started telemetry span to be ended on all paths\n\n" +
		"A span from Tracer.Span must reach End() on every control-flow path: " +
		"either defer it or End it before each return (checked on the CFG). " +
		"Leaked spans drop their phase from the trace timeline.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				// Each function literal is its own frame: a span started
				// inside a closure must be ended by that closure's paths.
				checkFrame(pass, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						checkFrame(pass, fl.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkFrame analyzes the spans started directly in one function body
// (spans started in nested literals belong to the nested frame).
func checkFrame(pass *analysis.Pass, body *ast.BlockStmt) {
	parents := buildParents(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "span started and discarded: its End can never be called")
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Rhs {
				call, ok := st.Rhs[i].(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span discarded into _: its End can never be called")
					continue
				}
				checkSpanVar(pass, body, parents, id, call)
			}
		}
		return true
	})
}

// isSpanStart reports whether call is `<recv>.Span(...)` yielding a value
// with an End method.
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Span" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, "End")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

type useKind int

const (
	useNeutral useKind = iota
	useEnd
	useDeferEnd
	useEscape
)

// checkSpanVar verifies that the span held in id reaches End on every
// control-flow path from its start.
func checkSpanVar(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, id *ast.Ident, call *ast.CallExpr) {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
		return
	}

	g := pass.CFG(body)
	startStmt := enclosingGraphNode(g, parents, call)
	if startStmt == nil {
		return // start buried in an expression the CFG cannot anchor
	}

	// Classify every mention of the variable. End and defer-End uses are
	// lifted to their enclosing CFG statement: that statement clears the
	// obligation on paths that execute it. An End inside a nested closure
	// only lifts when the closure provably runs at that statement
	// (immediately invoked or deferred there); a closure merely stored or
	// passed along may run later, on some paths, or never — the span
	// escapes into it instead. Any escaping use transfers ownership and
	// ends the analysis.
	clear := map[ast.Node]bool{}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use == id {
			return true
		}
		if pass.TypesInfo.Uses[use] != v && pass.TypesInfo.Defs[use] != v {
			return true
		}
		switch classifyUse(parents, use) {
		case useEnd, useDeferEnd:
			if !runsAtStatement(parents, use, body) {
				escaped = true
				return true
			}
			if stmt := enclosingGraphNode(g, parents, use); stmt != nil && stmt != startStmt {
				clear[stmt] = true
			}
		case useEscape:
			escaped = true
		}
		return true
	})
	if escaped {
		return
	}

	// reassigns reports whether stmt overwrites v (a fresh Span start or
	// any other assignment): reaching one with the current span unended
	// leaks it. The start statement itself counts — reaching it again on
	// a loop back edge restarts the span over an unended one.
	reassigns := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, l := range as.Lhs {
			if lid, ok := l.(*ast.Ident); ok {
				if pass.TypesInfo.Defs[lid] == v || pass.TypesInfo.Uses[lid] == v {
					return true
				}
			}
		}
		return false
	}

	res := g.Find(cfg.Query{
		Start: startStmt,
		Clear: func(n ast.Node) bool { return clear[n] },
		Sink: func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return true
			}
			return reassigns(n)
		},
		ExitSink: true,
	})

	if len(clear) == 0 {
		// No End anywhere: one finding at the start reads better than one
		// per leaking path — unless every path panics, which needs no End.
		if len(res.Sinks) > 0 || res.ReachedExit {
			pass.Reportf(call.Pos(), "span %q is never ended: defer %s.End() or End it on every path", id.Name, id.Name)
		}
		return
	}
	for _, sink := range res.Sinks {
		if _, ok := sink.(*ast.ReturnStmt); ok {
			pass.Reportf(sink.Pos(), "span %q (started at %s) is not ended on this return path", id.Name, pass.Fset.Position(call.Pos()))
		} else {
			pass.Reportf(sink.Pos(), "span %q (started at %s) is overwritten before being ended", id.Name, pass.Fset.Position(call.Pos()))
		}
	}
	if res.ReachedExit {
		pass.Reportf(body.Rbrace, "span %q (started at %s) is not ended on this return path", id.Name, pass.Fset.Position(call.Pos()))
	}
}

// runsAtStatement reports whether every FuncLit boundary between use and
// the frame body is executed exactly when its anchoring statement runs:
// the literal is the function of a call that is either evaluated in place
// (`func() { sp.End() }()`) or deferred (`defer func() { sp.End() }()`).
// A literal that is stored, passed to a function, or launched with `go`
// gives no such guarantee — its End may run later, on some paths only, or
// never.
func runsAtStatement(parents map[ast.Node]ast.Node, use ast.Node, body *ast.BlockStmt) bool {
	for p := parents[use]; p != nil && p != ast.Node(body); p = parents[p] {
		fl, ok := p.(*ast.FuncLit)
		if !ok {
			continue
		}
		outer := parents[fl]
		for {
			pe, ok := outer.(*ast.ParenExpr)
			if !ok {
				break
			}
			outer = parents[pe]
		}
		call, ok := outer.(*ast.CallExpr)
		if !ok || ast.Unparen(call.Fun) != ast.Expr(fl) {
			return false // stored or passed along, not invoked here
		}
		if g, ok := parents[call].(*ast.GoStmt); ok && g.Call == call {
			return false // runs concurrently, unordered with frame exit
		}
	}
	return true
}

// classifyUse decides what one mention of the span variable does with it.
func classifyUse(parents map[ast.Node]ast.Node, id *ast.Ident) useKind {
	switch p := parents[id].(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return useEscape
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok || call.Fun != ast.Expr(p) {
			// Method value (sp.End passed around): treat as escape.
			return useEscape
		}
		if p.Sel.Name != "End" {
			return useNeutral // Annotate and friends keep ownership
		}
		if d, ok := parents[call].(*ast.DeferStmt); ok && d.Call == call {
			return useDeferEnd
		}
		return useEnd
	case *ast.BinaryExpr:
		return useNeutral // nil checks
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return useNeutral // reassignment is a fresh start, checked separately
			}
		}
		return useEscape
	case *ast.ValueSpec:
		return useNeutral
	default:
		return useEscape
	}
}

// buildParents records each node's parent within root.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingGraphNode climbs from n to the nearest ancestor that is a node
// of the control-flow graph — the statement that anchors n on a path.
func enclosingGraphNode(g *cfg.Graph, parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := ast.Node(n); p != nil; p = parents[p] {
		if g.Contains(p) {
			return p
		}
	}
	return nil
}

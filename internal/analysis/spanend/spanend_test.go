package spanend_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/spanend"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/spanend/a", spanend.Analyzer)
}

func TestSeededViolationsPartaudit(t *testing.T) {
	analysistest.Run(t, "../testdata/spanend/partaudit", spanend.Analyzer)
}

// TestCFGOnlyCases pins the flow-sensitive behavior on fixtures a lexical
// checker provably cannot decide: goto, labeled break, fallthrough,
// conditional defer, loop back edges, panic-only exits, closure frames.
func TestCFGOnlyCases(t *testing.T) {
	analysistest.Run(t, "../testdata/spanend/cfg", spanend.Analyzer)
}

package spanend_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/spanend"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/spanend/a", spanend.Analyzer)
}

func TestSeededViolationsPartaudit(t *testing.T) {
	analysistest.Run(t, "../testdata/spanend/partaudit", spanend.Analyzer)
}

// Package aliasret flags exported functions that retain or return a
// caller-supplied slice or map without copying it.
//
// This is the bug class behind the cluster.New assignment-aliasing fix:
// a constructor stored the caller's slice, the caller kept mutating it,
// and two owners silently shared one backing store — the kind of aliasing
// that becomes a data race the moment real goroutine parallelism lands.
// The pass inspects every exported function and method: a slice- or
// map-typed parameter that is returned as-is, stored into a struct field
// or composite literal, stashed in a container, or assigned to a
// package-level variable is a finding, unless some reassignment of the
// parameter (the `p = append([]T(nil), p...)` / maps.Clone defensive-copy
// idiom) dominates the retention on the control-flow graph (Pass.CFG).
//
// Unexported functions are exempt — intra-package helpers hand slices
// around by design, and the package owns both ends. APIs that document
// ownership transfer (zero-copy loaders, builders that adopt their input)
// waive with `bpartlint:ignore aliasret` and a reason, which is exactly
// the reviewable trail an ownership handoff deserves.
package aliasret

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"bpart/internal/analysis"
	"bpart/internal/analysis/cfg"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "aliasret",
	Doc: "forbid retaining or returning caller-supplied slices/maps without copy\n\n" +
		"An exported function that stores or returns a parameter slice/map " +
		"aliases the caller's backing store; copy first (append, maps.Clone) " +
		"or waive with bpartlint:ignore aliasret to document ownership transfer.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// aliasable returns "slice" or "map" for reference types whose backing
// store a retention would share, "" otherwise.
func aliasable(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return ""
}

// paramVars collects the function's slice/map parameters.
func paramVars(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if kind := aliasable(v.Type()); kind != "" {
				out[v] = kind
			}
		}
	}
	return out
}

// site is one retention of a parameter.
type site struct {
	node ast.Node // the retaining expression (for the position)
	verb string   // "returns" or "retains"
	v    *types.Var
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := paramVars(pass, fd)
	if len(params) == 0 {
		return
	}
	resolve := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || params[v] == "" {
			return nil
		}
		return v
	}

	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if v := resolve(r); v != nil {
					sites = append(sites, site{r, "returns", v})
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if v := resolve(e); v != nil {
					sites = append(sites, site{e, "retains", v})
				}
			}
		case *ast.AssignStmt:
			for i, r := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				v := resolve(r)
				if v == nil {
					continue
				}
				if retainingLHS(pass, st.Lhs[i]) {
					sites = append(sites, site{r, "retains", v})
				}
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	g := pass.CFG(fd.Body)
	parents := buildParents(fd.Body)
	for _, s := range sites {
		stmt := enclosingGraphNode(g, parents, s.node)
		if stmt == nil {
			continue
		}
		// A reassignment of the parameter before the retention is the
		// defensive-copy idiom: the retained value is no longer the
		// caller's. Checked on all paths from function entry.
		res := g.Find(cfg.Query{
			Clear: func(n ast.Node) bool { return n != stmt && reassigns(pass, n, s.v) },
			Sink:  func(n ast.Node) bool { return n == stmt },
		})
		if len(res.Sinks) == 0 {
			continue
		}
		pass.Reportf(s.node.Pos(), "%s %s its caller-supplied %s %q without copying: caller and callee now alias one backing store (copy with append/maps.Clone, or waive with bpartlint:ignore aliasret to document ownership transfer)",
			fd.Name.Name, s.verb, params[s.v], s.v.Name())
	}
}

// retainingLHS reports whether assigning to dst retains the value beyond
// the call: a struct field, a container slot, or a package-level
// variable. Plain locals are fine — they alias only within the call.
func retainingLHS(pass *analysis.Pass, dst ast.Expr) bool {
	switch d := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[d].(*types.Var)
		if !ok {
			if v, ok = pass.TypesInfo.Defs[d].(*types.Var); !ok {
				return false
			}
		}
		return v != nil && v.Parent() == pass.Pkg.Scope()
	}
	return false
}

// reassigns reports whether stmt assigns a fresh value to v. A
// self-append — `p = append(p, x)` — is not a clear: append reuses the
// caller's backing array whenever capacity suffices, so the retained
// value can still alias it. The copying idiom `p = append([]T(nil), p...)`
// clears because its first argument is a fresh slice.
func reassigns(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || (pass.TypesInfo.Uses[id] != v && pass.TypesInfo.Defs[id] != v) {
			continue
		}
		// Positional RHS only exists for non-tuple assignments; a tuple
		// assignment (`p, err := f()`) always produces a fresh value.
		if len(as.Rhs) == len(as.Lhs) && selfAppend(pass, as.Rhs[i], v) {
			continue
		}
		return true
	}
	return false
}

// selfAppend reports whether e is `append(v, ...)` — an append whose
// destination is the parameter itself, which may grow in place.
func selfAppend(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[arg] == v
}

// buildParents records each node's parent within root.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingGraphNode climbs from n to the nearest ancestor that is a node
// of the control-flow graph.
func enclosingGraphNode(g *cfg.Graph, parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := ast.Node(n); p != nil; p = parents[p] {
		if g.Contains(p) {
			return p
		}
	}
	return nil
}

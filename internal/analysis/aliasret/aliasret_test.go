package aliasret_test

import (
	"testing"

	"bpart/internal/analysis/aliasret"
	"bpart/internal/analysis/analysistest"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/aliasret/a", aliasret.Analyzer)
}

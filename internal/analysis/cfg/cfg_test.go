package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src (the body of `func f() { ... }`) and returns its CFG.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// callNode finds the graph node that is (or contains, for loop headers)
// the statement calling name. Plain call statements resolve to their
// ExprStmt; the marker must appear exactly once as a call.
func callNode(t *testing.T, g *Graph, name string) ast.Node {
	t.Helper()
	var found ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			var call *ast.CallExpr
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, _ = x.X.(*ast.CallExpr)
			case *ast.CallExpr:
				// conditions and switch tags are bare expressions
				call = x
			}
			if call == nil {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				if found != nil {
					t.Fatalf("marker %s appears twice", name)
				}
				found = n
			}
		}
	}
	if found == nil {
		t.Fatalf("marker %s not found in graph:\n%s", name, g.Describe())
	}
	return found
}

func blockOf(t *testing.T, g *Graph, n ast.Node) *Block {
	t.Helper()
	p, ok := g.pos[n]
	if !ok {
		t.Fatalf("node not in graph")
	}
	return p.block
}

// canReach reports whether to's block is reachable from from's block
// (following successor edges, including from's own block's successors).
func canReach(g *Graph, from, to *Block) bool {
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func assertReach(t *testing.T, g *Graph, from, to string, want bool) {
	t.Helper()
	fb := blockOf(t, g, callNode(t, g, from))
	tb := blockOf(t, g, callNode(t, g, to))
	if got := canReach(g, fb, tb) || fb == tb; got != want {
		t.Errorf("reach %s -> %s = %v, want %v\n%s", from, to, got, want, g.Describe())
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, `
	if cond() {
		then()
	} else {
		other()
	}
	after()`)
	assertReach(t, g, "cond", "then", true)
	assertReach(t, g, "cond", "other", true)
	assertReach(t, g, "then", "after", true)
	assertReach(t, g, "other", "after", true)
	assertReach(t, g, "then", "other", false)
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `
	before()
	for i := 0; cond(); i++ {
		body()
	}
	after()`)
	assertReach(t, g, "body", "body", true) // back edge through post
	assertReach(t, g, "body", "after", true)
	assertReach(t, g, "after", "body", false)
}

func TestRangeLoop(t *testing.T) {
	g := build(t, `
	for _, v := range xs {
		body(v)
	}
	after()`)
	assertReach(t, g, "body", "body", true)
	assertReach(t, g, "body", "after", true)
}

func TestGoto(t *testing.T) {
	g := build(t, `
	start()
	goto finish
ret:
	onret()
	return
finish:
	onfinish()
	goto ret`)
	// start flows to finish (not ret) directly; ret only via finish.
	assertReach(t, g, "start", "onfinish", true)
	assertReach(t, g, "onfinish", "onret", true)
	// The statement after `goto finish` is the labeled ret block, but the
	// fall-through edge from start's block must not exist: start's block
	// ends at the goto.
	sb := blockOf(t, g, callNode(t, g, "start"))
	if len(sb.Succs) != 1 {
		t.Fatalf("goto block has %d succs, want 1\n%s", len(sb.Succs), g.Describe())
	}
	if sb.Succs[0].Kind != "label.finish" {
		t.Fatalf("goto edge to %q, want label.finish", sb.Succs[0].Kind)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `
outer:
	for {
		inner()
		for {
			if a() {
				continue outer
			}
			if b() {
				break outer
			}
			deep()
		}
	}
	after()`)
	// continue outer re-enters the outer loop body.
	assertReach(t, g, "a", "inner", true)
	// break outer leaves both loops.
	assertReach(t, g, "b", "after", true)
	// deep continues the inner loop only.
	assertReach(t, g, "deep", "a", true)
	// An infinite outer loop's only way to after() is the labeled break:
	// inner() cannot reach after() except through b()'s break — still
	// reachable, but a() path loops back. Sanity: after is reachable at all.
	assertReach(t, g, "inner", "after", true)
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
	switch tag() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	case 3:
		three()
	}
	after()`)
	assertReach(t, g, "one", "two", true)    // fallthrough edge
	assertReach(t, g, "one", "three", false) // but only to the next case
	assertReach(t, g, "two", "three", false)
	assertReach(t, g, "tag", "three", true)
	assertReach(t, g, "three", "after", true)
	// No default: the head can bypass every case.
	hb := blockOf(t, g, callNode(t, g, "tag"))
	ab := blockOf(t, g, callNode(t, g, "after"))
	direct := false
	for _, s := range hb.Succs {
		if s == ab || (len(s.Nodes) == 0 && canReach(g, s, ab)) {
			direct = true
		}
	}
	if !direct {
		t.Errorf("switch head cannot bypass cases\n%s", g.Describe())
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
	select {
	case <-ch1:
		one()
	case ch2 <- v:
		two()
	default:
		dflt()
	}
	after()`)
	assertReach(t, g, "one", "after", true)
	assertReach(t, g, "two", "after", true)
	assertReach(t, g, "dflt", "after", true)
	assertReach(t, g, "one", "two", false)
}

func TestPanicTerminatesBlock(t *testing.T) {
	g := build(t, `
	if bad() {
		pre()
		panic("boom")
	}
	after()`)
	pre := blockOf(t, g, callNode(t, g, "pre"))
	if pre.Kind != "panic" || len(pre.Succs) != 0 {
		t.Fatalf("panic block kind=%q succs=%d, want panic/0\n%s", pre.Kind, len(pre.Succs), g.Describe())
	}
	assertReach(t, g, "pre", "after", false)
	assertReach(t, g, "bad", "after", true)
}

func TestOsExitTerminates(t *testing.T) {
	g := build(t, `
	pre()
	os.Exit(1)
	dead()`)
	assertReach(t, g, "pre", "dead", false)
}

func TestFatalTerminatesOnKnownReceivers(t *testing.T) {
	g := build(t, `
	pre()
	log.Fatalf("boom: %v", 1)
	dead()`)
	assertReach(t, g, "pre", "dead", false)

	g = build(t, `
	pre()
	t.Fatal("boom")
	dead()`)
	assertReach(t, g, "pre", "dead", false)

	g = build(t, `
	pre()
	tb.FailNow()
	dead()`)
	assertReach(t, g, "pre", "dead", false)
}

// TestCustomFatalDoesNotTerminate pins the receiver restriction: a Fatal
// method on an arbitrary value may return normally, so it must not cut
// the path and hide the statements after it from all-path analyses.
func TestCustomFatalDoesNotTerminate(t *testing.T) {
	g := build(t, `
	pre()
	logger.Fatal("soft")
	after()`)
	assertReach(t, g, "pre", "after", true)
}

func TestReturnEdgesIntoExit(t *testing.T) {
	g := build(t, `
	if cond() {
		return
	}
	after()`)
	// The return's block must edge into Exit and nothing else.
	var retBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlock = b
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	if len(retBlock.Succs) != 1 || retBlock.Succs[0] != g.Exit {
		t.Fatalf("return block succs wrong\n%s", g.Describe())
	}
	// after() also reaches Exit implicitly.
	ab := blockOf(t, g, callNode(t, g, "after"))
	if !canReach(g, ab, g.Exit) {
		t.Fatalf("implicit exit missing\n%s", g.Describe())
	}
}

func TestDeferInLoopIsStraightLine(t *testing.T) {
	g := build(t, `
	for range xs {
		pre()
		defer cleanup()
		post()
	}`)
	// defer is a plain node: pre, defer, post share a block.
	pb := blockOf(t, g, callNode(t, g, "pre"))
	qb := blockOf(t, g, callNode(t, g, "post"))
	if pb != qb {
		t.Fatalf("defer split the block\n%s", g.Describe())
	}
	found := false
	for _, n := range pb.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer node missing from block\n%s", g.Describe())
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	g := build(t, `
	fn := func() {
		inner()
		return
	}
	fn()
	after()`)
	// inner() lives inside the closure: it must not appear as a graph
	// node, and the closure's return must not edge into Exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "inner" {
						t.Fatalf("closure body leaked into graph\n%s", g.Describe())
					}
				}
			}
		}
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("Exit has %d preds, want 1 (implicit only)\n%s", len(g.Exit.Preds), g.Describe())
	}
}

func TestFindAllPathsObligation(t *testing.T) {
	g := build(t, `
	start()
	if cond() {
		clear()
	}
	sink()`)
	isCall := func(n ast.Node, name string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	res := g.Find(Query{
		Start: callNode(t, g, "start"),
		Clear: func(n ast.Node) bool { return isCall(n, "clear") },
		Sink:  func(n ast.Node) bool { return isCall(n, "sink") },
	})
	if len(res.Sinks) != 1 {
		t.Fatalf("got %d sinks, want 1 (the else path skips clear)", len(res.Sinks))
	}
}

func TestFindClearOnAllPaths(t *testing.T) {
	g := build(t, `
	start()
	if cond() {
		clear()
	} else {
		clear2()
	}
	sink()`)
	isCall := func(n ast.Node, names ...string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		for _, name := range names {
			if id.Name == name {
				return true
			}
		}
		return false
	}
	res := g.Find(Query{
		Start:    callNode(t, g, "start"),
		Clear:    func(n ast.Node) bool { return isCall(n, "clear", "clear2") },
		Sink:     func(n ast.Node) bool { return isCall(n, "sink") },
		ExitSink: true,
	})
	if len(res.Sinks) != 0 || res.ReachedExit {
		t.Fatalf("cleared on all paths but got sinks=%d exit=%v", len(res.Sinks), res.ReachedExit)
	}
}

func TestFindLoopCarried(t *testing.T) {
	// The sink is lexically before the clear, but only reachable on the
	// second iteration — after the clear ran. A lexical check would flag
	// it; the CFG must not (path: start -> loop -> clear stops the path).
	g := build(t, `
	start()
	for {
		if cond() {
			sink()
		}
		clear()
	}`)
	isCall := func(n ast.Node, name string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	res := g.Find(Query{
		Start: callNode(t, g, "start"),
		Clear: func(n ast.Node) bool { return isCall(n, "clear") },
		Sink:  func(n ast.Node) bool { return isCall(n, "sink") },
	})
	// First iteration can reach sink before clear.
	if len(res.Sinks) != 1 {
		t.Fatalf("got %d sinks, want 1 (first iteration reaches sink unclear)", len(res.Sinks))
	}
}

func TestFindPanicPathExempt(t *testing.T) {
	g := build(t, `
	start()
	if bad() {
		panic("boom")
	}
	clear()`)
	isCall := func(n ast.Node, name string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	res := g.Find(Query{
		Start:    callNode(t, g, "start"),
		Clear:    func(n ast.Node) bool { return isCall(n, "clear") },
		ExitSink: true,
	})
	if res.ReachedExit {
		t.Fatal("panic-only path demanded the obligation")
	}
}

func TestDescribeMentionsEveryBlock(t *testing.T) {
	g := build(t, `
	if cond() {
		then()
	}`)
	d := g.Describe()
	if !strings.Contains(d, "entry") || !strings.Contains(d, "exit") {
		t.Fatalf("describe missing entry/exit:\n%s", d)
	}
	if len(strings.Split(strings.TrimSpace(d), "\n")) != len(g.Blocks) {
		t.Fatalf("describe line count != block count:\n%s", d)
	}
}

// Package cfg builds per-function control-flow graphs over go/ast bodies,
// giving the bpartlint analyzers (internal/analysis) a flow-sensitive
// substrate: instead of reasoning about lexical position, a pass can ask
// whether every execution path from one statement reaches another.
//
// The graph is intraprocedural and intentionally simple — basic blocks of
// statement nodes connected by successor edges — but it models the full
// Go control-flow menu: if/else, for and range loops, switch and type
// switch (including fallthrough), select, labeled break/continue, goto,
// and terminating calls. Return statements edge into a synthetic Exit
// block; calls that provably never return (panic, os.Exit, log.Fatal*,
// runtime.Goexit, testing's Fatal/FailNow/Skip family) end their block
// with no successors, so "all paths" analyses naturally exempt
// panic-only exits. Function literals are opaque: their bodies are
// expression subtrees of the enclosing statement and contribute no edges,
// matching the analyzers' view that a closure runs on someone else's
// clock.
//
// The shape mirrors golang.org/x/tools/go/cfg (not vendored — the build
// is offline, see internal/analysis); porting an analyzer between the two
// is mechanical.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line run of statements
// (and loop-header control nodes) executed in order, ending in zero or
// more successor edges.
type Block struct {
	// Index is the block's position in Graph.Blocks; Blocks[0] is entry.
	Index int
	// Kind names the construct that created the block ("entry", "if.then",
	// "range.loop", "panic", ...) for dumps and tests.
	Kind string
	// Nodes holds the block's statements and control expressions in
	// execution order. Compound statements (RangeStmt headers, for-loop
	// conditions) appear as single nodes; their nested bodies live in
	// their own blocks.
	Nodes []ast.Node
	// Succs are the possible next blocks. Empty for panic/terminating
	// blocks and for the Exit block.
	Succs []*Block
	// Preds are the blocks that can flow here (computed once at the end
	// of construction).
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic function-exit block: every return statement
	// and the implicit fall-off-the-end path edge into it. Panic-style
	// terminations do not.
	Exit *Block

	pos map[ast.Node]nodePos
}

type nodePos struct {
	block *Block
	index int
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{pos: map[ast.Node]nodePos{}}
	b := &builder{g: g, labels: map[string]*lblock{}}
	b.cur = g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	b.stmt(body, "")
	edge(b.cur, g.Exit) // implicit return at the end of the body
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// Contains reports whether n was recorded as a node of the graph (i.e. it
// is a statement or control node of this function body, not nested inside
// another statement).
func (g *Graph) Contains(n ast.Node) bool {
	_, ok := g.pos[n]
	return ok
}

// Describe renders the graph compactly for tests and debugging: one line
// per block with its kind, node count and successor indices.
func (g *Graph) Describe() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s nodes=%d succs=[", b.Index, b.Kind, len(b.Nodes))
		for i, s := range b.Succs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "b%d", s.Index)
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// builder threads the construction state: the block under construction,
// the stack of enclosing break/continue targets, and the label table.
type builder struct {
	g      *Graph
	cur    *Block
	tgt    *targets
	labels map[string]*lblock
	// fall is the next case-body block while building a switch case, the
	// target of a fallthrough statement.
	fall *Block
}

// targets is one frame of the break/continue stack.
type targets struct {
	tail  *targets
	brk   *Block
	cont  *Block // nil for switch/select frames
	label string
}

// lblock collects the blocks a label can address: its goto target and,
// when the label names a loop/switch/select, its break and continue
// targets.
type lblock struct {
	gotoB *Block
	brk   *Block
	cont  *Block
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (g *Graph) newBlock(kind string) *Block {
	b := &Block{Index: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, b)
	return b
}

// add appends n to the current block and records its position.
func (b *builder) add(n ast.Node) {
	b.g.pos[n] = nodePos{b.cur, len(b.cur.Nodes)}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// labeledBlock returns (creating on first mention, so forward gotos work)
// the label's block record.
func (b *builder) labeledBlock(name string) *lblock {
	lb := b.labels[name]
	if lb == nil {
		lb = &lblock{gotoB: b.g.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

// stmt builds s into the graph. label is the name of the LabeledStmt
// directly wrapping s ("" when unlabeled): loops and switches register
// their break/continue targets under it.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
		// no effect on flow

	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t, "")
		}

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name)
		edge(b.cur, lb.gotoB)
		b.cur = lb.gotoB
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ExprStmt:
		b.add(s)
		if terminates(s.X) {
			b.cur.Kind = "panic"
			b.cur = b.g.newBlock("unreachable")
		}

	case *ast.ReturnStmt:
		b.add(s)
		edge(b.cur, b.g.Exit)
		b.cur = b.g.newBlock("unreachable")

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt:
		// straight-line statements.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.g.newBlock("if.then")
	done := b.g.newBlock("if.done")
	els := done
	if s.Else != nil {
		els = b.g.newBlock("if.else")
	}
	edge(cond, then)
	edge(cond, els)
	b.cur = then
	b.stmt(s.Body, "")
	edge(b.cur, done)
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else, "")
		edge(b.cur, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	loop := b.g.newBlock("for.loop")
	edge(b.cur, loop)
	b.cur = loop
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.g.newBlock("for.body")
	done := b.g.newBlock("for.done")
	edge(loop, body)
	if s.Cond != nil {
		edge(loop, done)
	}
	cont := loop
	if s.Post != nil {
		cont = b.g.newBlock("for.post")
	}
	if label != "" {
		lb := b.labeledBlock(label)
		lb.brk, lb.cont = done, cont
	}
	b.tgt = &targets{tail: b.tgt, brk: done, cont: cont, label: label}
	b.cur = body
	b.stmt(s.Body, "")
	edge(b.cur, cont)
	if s.Post != nil {
		b.cur = cont
		b.add(s.Post)
		edge(b.cur, loop)
	}
	b.tgt = b.tgt.tail
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	loop := b.g.newBlock("range.loop")
	edge(b.cur, loop)
	b.cur = loop
	// The RangeStmt itself is the header's control node: analyses can
	// start a path query "after the loop" from it.
	b.add(s)
	body := b.g.newBlock("range.body")
	done := b.g.newBlock("range.done")
	edge(loop, body)
	edge(loop, done)
	if label != "" {
		lb := b.labeledBlock(label)
		lb.brk, lb.cont = done, loop
	}
	b.tgt = &targets{tail: b.tgt, brk: done, cont: loop, label: label}
	b.cur = body
	b.stmt(s.Body, "")
	edge(b.cur, loop)
	b.tgt = b.tgt.tail
	b.cur = done
}

// switchBody builds the shared case-clause structure of switch and type
// switch. allowFall wires fallthrough targets (expression switches only).
func (b *builder) switchBody(body *ast.BlockStmt, label string, allowFall bool) {
	head := b.cur
	done := b.g.newBlock("switch.done")
	if label != "" {
		b.labeledBlock(label).brk = done
	}
	b.tgt = &targets{tail: b.tgt, brk: done, label: label}
	bodies := make([]*Block, len(body.List))
	hasDefault := false
	for i := range body.List {
		bodies[i] = b.g.newBlock("switch.body")
	}
	savedFall := b.fall
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// Case guard expressions are evaluated while control still sits in
		// the head block.
		b.cur = head
		for _, e := range cc.List {
			b.add(e)
		}
		edge(head, bodies[i])
		b.cur = bodies[i]
		b.fall = nil
		if allowFall && i+1 < len(bodies) {
			b.fall = bodies[i+1]
		}
		for _, st := range cc.Body {
			b.stmt(st, "")
		}
		edge(b.cur, done)
	}
	b.fall = savedFall
	if !hasDefault {
		edge(head, done)
	}
	b.tgt = b.tgt.tail
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.g.newBlock("select.done")
	if label != "" {
		b.labeledBlock(label).brk = done
	}
	b.tgt = &targets{tail: b.tgt, brk: done, label: label}
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		body := b.g.newBlock("select.body")
		edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st, "")
		}
		edge(b.cur, done)
	}
	// A bare `select {}` blocks forever: head keeps no edge to done, so
	// done is unreachable — exactly the semantics.
	b.tgt = b.tgt.tail
	b.cur = done
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name).brk
		} else {
			for t := b.tgt; t != nil; t = t.tail {
				if t.brk != nil {
					target = t.brk
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name).cont
		} else {
			for t := b.tgt; t != nil; t = t.tail {
				if t.cont != nil {
					target = t.cont
					break
				}
			}
		}
	case token.FALLTHROUGH:
		target = b.fall
	case token.GOTO:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name).gotoB
		}
	}
	if target != nil {
		edge(b.cur, target)
	}
	b.cur = b.g.newBlock("unreachable")
}

// terminates reports whether the expression statement provably never
// returns. The check is a name heuristic (no type information reaches the
// builder): the builtin panic, os.Exit, runtime.Goexit, the log.Fatal
// family, and testing's goroutine-terminating Fatal/FailNow/Skip family.
// The Fatal family is recognised only on the conventional receivers —
// the log package and testing's t/b/tb parameters — so a custom type
// whose Fatal method returns normally does not cut the CFG path and
// starve downstream all-path analyses of the statements after the call.
func terminates(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		recv, _ := fun.X.(*ast.Ident)
		if recv == nil {
			return false
		}
		switch fun.Sel.Name {
		case "Exit":
			return recv.Name == "os"
		case "Goexit":
			return recv.Name == "runtime"
		case "Fatal", "Fatalf", "Fatalln":
			return recv.Name == "log" || testingRecv[recv.Name]
		case "FailNow", "SkipNow":
			return testingRecv[recv.Name]
		}
	}
	return false
}

// testingRecv names the conventional identifiers for *testing.T/B and
// testing.TB parameters, whose Fatal/FailNow/SkipNow terminate the
// goroutine.
var testingRecv = map[string]bool{"t": true, "b": true, "tb": true}

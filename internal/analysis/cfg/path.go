package cfg

import "go/ast"

// Query is an all-paths obligation check: starting just after Start (or at
// function entry when Start is nil), explore every control-flow path and
// report the Sink nodes that can be reached before any Clear node. It is
// the shared engine behind the flow-sensitive analyzers: spanend asks
// "can a return be reached before End()", maporder asks "can the collected
// key slice be used before sort".
//
// Callbacks see each block node in execution order. Clear is consulted
// first: a node that both satisfies and violates counts as satisfying
// (e.g. sort.Strings(keys) both uses and sorts keys). A cleared or
// violating path stops; panic-terminated blocks end their path silently,
// so obligations are never demanded on panic-only exits.
type Query struct {
	// Start is the node the obligation begins at; exploration starts with
	// the next node of its block. It must be a node recorded in the graph
	// (a statement or control node of the function body). Nil means the
	// function entry.
	Start ast.Node
	// Clear reports that the obligation is satisfied at n.
	Clear func(n ast.Node) bool
	// Sink reports that reaching n unclear is a violation.
	Sink func(n ast.Node) bool
	// ExitSink additionally treats reaching the synthetic Exit block —
	// a return or the implicit fall-off-the-end — as a violation,
	// recorded in Result.ReachedExit.
	ExitSink bool
}

// Result holds the violations a Find call discovered.
type Result struct {
	// Sinks are the violating nodes in discovery order, deduplicated.
	Sinks []ast.Node
	// ReachedExit is set when ExitSink was requested and some path
	// reached the function exit unclear.
	ReachedExit bool
}

// Find runs the query over the graph. Back edges re-scan their loop
// blocks from the top (a second iteration re-executes the whole body), so
// loop-carried violations and loop-carried clears are both seen; each
// block is explored at most once in the unclear state, which bounds the
// search.
func (g *Graph) Find(q Query) Result {
	var res Result
	seenBlock := map[*Block]bool{}
	seenSink := map[ast.Node]bool{}
	var walk func(b *Block, from int)
	walk = func(b *Block, from int) {
		for i := from; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			if q.Clear != nil && q.Clear(n) {
				return
			}
			if q.Sink != nil && q.Sink(n) {
				if !seenSink[n] {
					seenSink[n] = true
					res.Sinks = append(res.Sinks, n)
				}
				return
			}
		}
		if b == g.Exit {
			if q.ExitSink {
				res.ReachedExit = true
			}
			return
		}
		for _, s := range b.Succs {
			if !seenBlock[s] {
				seenBlock[s] = true
				walk(s, 0)
			}
		}
	}
	if q.Start == nil {
		entry := g.Blocks[0]
		seenBlock[entry] = true
		walk(entry, 0)
		return res
	}
	p, ok := g.pos[q.Start]
	if !ok {
		return res
	}
	walk(p.block, p.index+1)
	return res
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis. A directory
// yields up to two: the base package augmented with its in-package _test.go
// files, and — when present — the external "_test" package.
type LoadedPackage struct {
	Dir   string
	Path  string // module-relative import path; xtest variants get a "_test" suffix
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// CheckErrs holds type-checking problems. Analyzers still run (the
	// checker recovers and keeps going), but drivers should surface these:
	// analysis over a broken package can miss findings.
	CheckErrs []error
}

// Loader parses and type-checks packages of one module without help from
// go/packages: imports inside the module resolve straight to directories,
// and everything else (the standard library) goes through go/importer's
// source importer, which works offline. One Loader shares a FileSet and an
// import cache across every Load call.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*types.Package
	busy  map[string]bool // import cycle guard
}

// NewLoader returns a Loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		cache:      map[string]*types.Package{},
		busy:       map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// PkgPath maps a directory under the module to its import path.
func (l *Loader) PkgPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// type-checked from their directory (sans test files); all other paths are
// delegated to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := l.cache[path]; pkg != nil {
		return pkg, nil
	}
	rel, local := l.localDir(path)
	if !local {
		return l.std.ImportFrom(path, l.ModuleDir, mode)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, _, _, err := l.parseDir(rel)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", rel)
	}
	// Imported packages must be internally consistent; collect errors but
	// only fail when the checker couldn't produce a package at all.
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		if len(errs) > 0 {
			err = errs[0]
		}
		return nil, fmt.Errorf("analysis: checking %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// localDir resolves an import path inside the module to its directory.
func (l *Loader) localDir(path string) (dir string, ok bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, found := strings.CutPrefix(path, l.ModulePath+"/"); found {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses a directory's .go files into base, in-package test, and
// external-test groups.
func (l *Loader) parseDir(dir string) (base, tests, xtests []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		if buildIgnored(f) {
			continue
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtests = append(xtests, f)
		case strings.HasSuffix(name, "_test.go"):
			tests = append(tests, f)
		default:
			base = append(base, f)
		}
	}
	return base, tests, xtests, nil
}

// buildIgnored reports whether a file opts out of the build ("//go:build
// ignore" helper programs). Other build expressions are rare in this repo
// and are compiled unconditionally.
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			expr := strings.TrimSpace(strings.TrimPrefix(c.Text, "//go:build"))
			if strings.HasPrefix(c.Text, "//go:build") && expr == "ignore" {
				return true
			}
		}
	}
	return false
}

// Load type-checks dir for analysis: the base package with its in-package
// tests merged, plus the external test package when one exists.
func (l *Loader) Load(dir string) ([]*LoadedPackage, error) {
	path, err := l.PkgPath(dir)
	if err != nil {
		return nil, err
	}
	base, tests, xtests, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*LoadedPackage
	if len(base)+len(tests) > 0 {
		out = append(out, l.check(dir, path, append(append([]*ast.File{}, base...), tests...)))
	}
	if len(xtests) > 0 {
		out = append(out, l.check(dir, path+"_test", xtests))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return out, nil
}

// check type-checks one analysis variant with full type info. The result is
// never entered into the import cache: importers must see the base package
// without test files.
func (l *Loader) check(dir, path string, files []*ast.File) *LoadedPackage {
	lp := &LoadedPackage{
		Dir:   dir,
		Path:  path,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { lp.CheckErrs = append(lp.CheckErrs, err) },
	}
	// The checker recovers from errors; a nil package only happens on
	// catastrophic failure, which CheckErrs already captures.
	lp.Types, _ = conf.Check(path, l.fset, files, lp.Info)
	return lp
}

package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is a resolved diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes every analyzer over every package, applies
// bpartlint:ignore directives, and returns the surviving findings sorted
// by position. Cross-package analyzers communicate through a fresh Shared
// blackboard scoped to this call.
func Run(analyzers []*Analyzer, fset *token.FileSet, pkgs []*LoadedPackage) ([]Finding, error) {
	shared := NewShared()
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := make([]ignoreIndex, len(pkg.Files))
		for i, f := range pkg.Files {
			ignores[i] = buildIgnoreIndex(fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				Shared:    shared,
			}
			pass.report = func(d Diagnostic) {
				for i, f := range pkg.Files {
					if d.Pos >= f.FileStart && d.Pos < f.FileEnd {
						if ignores[i].Ignored(fset, d.Analyzer, d.Pos) {
							return
						}
						break
					}
				}
				findings = append(findings, Finding{
					Analyzer: d.Analyzer,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

package errio_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/errio"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/gio", errio.Analyzer)
}

func TestSeededViolationsPartaudit(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/partaudit", errio.Analyzer)
}

func TestSeededViolationsCommview(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/commview", errio.Analyzer)
}

func TestSeededViolationsResview(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/resview", errio.Analyzer)
}

func TestSeededViolationsServestats(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/servestats", errio.Analyzer)
}

func TestOutOfScopePackagesAreClean(t *testing.T) {
	analysistest.Run(t, "../testdata/errio/other", errio.Analyzer)
}

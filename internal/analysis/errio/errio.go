// Package errio forbids discarding writer and flush errors in the I/O
// packages (internal/gio, internal/telemetry, internal/cluster,
// internal/partaudit, internal/commview, internal/resview,
// internal/servestats).
//
// Graph dumps, assignment files, JSONL traces and CSV timelines are the
// artifacts experiments are reproduced from; a full disk or closed pipe
// that only truncates them silently is the worst failure mode. Any call
// whose callee looks like a write (Write*, Flush, Sync, fmt.Fprint*) and
// returns an error must have that error consumed — not dropped as a bare
// statement, not blanked with `_`.
package errio

import (
	"go/ast"
	"go/types"
	"strings"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "errio",
	Doc: "forbid discarded writer/flush errors in I/O packages\n\n" +
		"In internal/gio, internal/telemetry, internal/cluster, " +
		"internal/partaudit, internal/commview, internal/resview and " +
		"internal/servestats, errors from " +
		"Write*/Flush/Sync/fmt.Fprint* calls " +
		"must be checked; bytes.Buffer, strings.Builder and " +
		"http.ResponseWriter sinks are exempt.",
	Run: run,
}

// scoped reports whether the package writes artifacts worth protecting.
// Testdata fixtures mirror the layout (testdata/errio/gio).
func scoped(path string) bool {
	for _, s := range []string{"/gio", "/telemetry", "/cluster", "/partaudit", "/commview", "/resview", "/servestats"} {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				check(pass, st.Call, "discarded by defer")
			case *ast.GoStmt:
				check(pass, st.Call, "discarded by go")
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				check(pass, call, "blanked with _")
			}
			return true
		})
	}
	return nil
}

// check reports call if it is a writer-shaped call returning an error that
// the surrounding statement throws away.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Flush" && name != "Sync" && !strings.HasPrefix(name, "Write") && !strings.HasPrefix(name, "Fprint") {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	// Sinks that cannot fail, or whose failure has no caller-visible
	// remedy: in-memory buffers and HTTP response writers (the client is
	// gone; nothing to do). The exemption also covers Fprint* whose first
	// argument is such a sink.
	if exemptType(pass, sel.X) {
		return
	}
	if len(call.Args) > 0 && exemptType(pass, call.Args[0]) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s: write/flush failures must be checked in I/O packages (or waived with bpartlint:ignore errio)", name, how)
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isError(t)
	}
}

func isError(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// exemptType reports whether expr is an in-memory or HTTP sink.
func exemptType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := strings.TrimPrefix(tv.Type.String(), "*")
	switch t {
	case "bytes.Buffer", "strings.Builder", "net/http.ResponseWriter":
		return true
	}
	return false
}

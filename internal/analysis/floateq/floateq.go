// Package floateq forbids raw ==/!= on floating-point operands in the
// balance-sensitive packages (internal/core, internal/partition,
// internal/metrics).
//
// Balance scores, biases and per-part weights are accumulated floats:
// whether two of them compare equal depends on summation order, FMA
// contraction and compiler version, so a raw == silently couples partition
// decisions (e.g. tie-breaks) to floating-point noise. Comparisons must go
// through the designated helpers in internal/metrics/floatcmp.go —
// ApproxEq for tolerances, TieEq / IsZero where exact semantics are the
// documented intent — or carry a bpartlint:ignore waiver. Test files are
// exempt: golden assertions there pin exact values deliberately.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"bpart/internal/analysis"
)

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on float operands outside the epsilon helpers\n\n" +
		"In internal/core, internal/partition and internal/metrics, float " +
		"comparisons must use metrics.ApproxEq/TieEq/IsZero (floatcmp.go) so " +
		"intent — tolerance vs exact tie-break — is named and reviewable.",
	Run: run,
}

// scoped reports whether the package is balance-sensitive. Testdata
// fixtures mirror the real layout (testdata/floateq/core), so the same
// substrings match both.
func scoped(path string) bool {
	for _, s := range []string{"/core", "/partition", "/metrics"} {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		// floatcmp.go is the designated home of the raw comparisons that
		// implement the helpers themselves. Test files are also exempt:
		// assertions there compare against exact expected values on
		// purpose — pinning bit-for-bit reproducibility is the point.
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		if base == "floatcmp.go" || strings.HasSuffix(base, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xv, xok := pass.TypesInfo.Types[be.X]
			yv, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok || (!isFloat(xv.Type) && !isFloat(yv.Type)) {
				return true
			}
			// Two constants fold at compile time; that comparison is exact
			// by construction.
			if xv.Value != nil && yv.Value != nil {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s depends on rounding; use metrics.ApproxEq/TieEq/IsZero or waive with bpartlint:ignore floateq", be.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

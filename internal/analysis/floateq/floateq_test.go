package floateq_test

import (
	"testing"

	"bpart/internal/analysis/analysistest"
	"bpart/internal/analysis/floateq"
)

func TestSeededViolations(t *testing.T) {
	analysistest.Run(t, "../testdata/floateq/core", floateq.Analyzer)
}

func TestOutOfScopePackagesAreClean(t *testing.T) {
	analysistest.Run(t, "../testdata/floateq/other", floateq.Analyzer)
}

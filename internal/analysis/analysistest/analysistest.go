// Package analysistest is the golden-test harness for the bpartlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: a
// fixture package under internal/analysis/testdata marks every expected
// diagnostic with a trailing
//
//	// want "regexp"
//	// want `regexp with "quotes"`
//
// comment (several per line allowed). The harness type-checks the fixture,
// runs one analyzer, and fails on any unexpected, missing, or mismatched
// diagnostic.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bpart/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type key struct {
	file string
	line int
}

// Run type-checks the fixture directory and checks a's diagnostics against
// its // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, cerr := range pkg.CheckErrs {
			t.Errorf("fixture does not type-check: %v", cerr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loader.Fset().Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	findings, err := analysis.Run([]*analysis.Analyzer{a}, loader.Fset(), pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	var missing []string
	for k, res := range wants {
		for _, re := range res {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("missing diagnostics:\n%s", strings.Join(missing, "\n"))
	}
}

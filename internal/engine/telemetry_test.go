package engine

import (
	"sync"
	"testing"

	"bpart/internal/gen"
	"bpart/internal/telemetry"
)

// A traced PageRank run must emit one engine.pagerank span and one
// cluster.superstep record per iteration, each mirroring IterationStats.
func TestPageRankTelemetry(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 8, Skew: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()
	e.SetTelemetry(tr, reg)

	res, err := e.PageRank(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}

	runs := tr.Find("engine.pagerank")
	if len(runs) != 1 {
		t.Fatalf("got %d engine.pagerank spans, want 1", len(runs))
	}
	if got := runs[0].Attr("iterations"); got != int64(5) {
		t.Fatalf("run span iterations = %v, want 5", got)
	}
	if got := runs[0].Attr("sim_time_us"); got != res.Stats.TotalTime() {
		t.Fatalf("run span sim_time_us = %v, want %v", got, res.Stats.TotalTime())
	}

	steps := tr.Find("cluster.superstep")
	if len(steps) != len(res.Stats.Iterations) {
		t.Fatalf("got %d superstep records, want %d", len(steps), len(res.Stats.Iterations))
	}
	for i, rec := range steps {
		it := res.Stats.Iterations[i]
		if got := rec.Attr("time_us"); got != it.Time {
			t.Fatalf("superstep %d time_us = %v, want %v", i, got, it.Time)
		}
		comp, ok := rec.Attr("compute").([]float64)
		if !ok || len(comp) != 4 {
			t.Fatalf("superstep %d compute attr = %v", i, rec.Attr("compute"))
		}
		for m := range comp {
			if comp[m] != it.Compute[m] {
				t.Fatalf("superstep %d machine %d compute %v, IterationStats %v",
					i, m, comp[m], it.Compute[m])
			}
		}
	}
	if got := reg.Counter("cluster_supersteps_total").Value(); got != int64(len(steps)) {
		t.Fatalf("cluster_supersteps_total = %d, want %d", got, len(steps))
	}
	if got := reg.Counter("cluster_messages_total").Value(); got != res.Stats.TotalMessages() {
		t.Fatalf("cluster_messages_total = %d, want %d", got, res.Stats.TotalMessages())
	}
}

// Two engines sharing one tracer and registry, run concurrently: the
// machine goroutines of Cluster.Parallel and the telemetry counters must be
// race-free (this test is the -race coverage the telemetry layer needs).
func TestTelemetrySharedAcrossEnginesConcurrently(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1500, AvgDegree: 6, Skew: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewMemory()
	reg := telemetry.NewRegistry()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		e := newEngine(t, g, 4)
		e.SetTelemetry(tr, reg)
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			if _, err := e.PageRank(4, 0.85); err != nil {
				t.Error(err)
			}
			if _, err := e.ConnectedComponents(3); err != nil {
				t.Error(err)
			}
		}(e)
	}
	// A reader polling the registry while both runs are live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()

	if got := len(tr.Find("engine.pagerank")); got != 2 {
		t.Fatalf("got %d engine.pagerank spans, want 2", got)
	}
	if got := len(tr.Find("engine.cc")); got != 2 {
		t.Fatalf("got %d engine.cc spans, want 2", got)
	}
	if reg.Counter("cluster_supersteps_total").Value() == 0 {
		t.Fatal("no supersteps counted")
	}
}

// BFS and CC also carry run-level spans.
func TestTraversalTelemetry(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1000, AvgDegree: 6, Skew: 0.7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	tr := telemetry.NewMemory()
	e.SetTelemetry(tr, nil)
	if _, err := e.BFS(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ConnectedComponents(0); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Find("engine.bfs")); got != 1 {
		t.Fatalf("engine.bfs spans = %d, want 1", got)
	}
	ccs := tr.Find("engine.cc")
	if len(ccs) != 1 {
		t.Fatalf("engine.cc spans = %d, want 1", len(ccs))
	}
	if comp, ok := ccs[0].Attr("components").(int64); !ok || comp < 1 {
		t.Fatalf("engine.cc components attr = %v", ccs[0].Attr("components"))
	}
}

// Histograms: each traced algorithm run observes its simulated time once;
// BFS additionally records its frontier sizes.
func TestRunHistograms(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 8, Skew: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	reg := telemetry.NewRegistry()
	e.SetTelemetry(nil, reg)

	pr, err := e.PageRank(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	rh := reg.Histogram("engine_run_sim_time_us")
	if rh.Count() != 2 {
		t.Fatalf("run time observations = %d, want 2 (PR + BFS)", rh.Count())
	}
	want := pr.Stats.TotalTime() + bfs.Stats.TotalTime()
	if got := rh.Sum(); got != want {
		t.Fatalf("run time sum = %v, want %v", got, want)
	}
	fh := reg.Histogram("engine_bfs_frontier_vertices")
	if got := fh.Count(); got != int64(len(bfs.Stats.Iterations)) {
		t.Fatalf("frontier observations = %d, want %d", got, len(bfs.Stats.Iterations))
	}
}

package engine

import (
	"math"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
)

func chunkAssign(g *graph.Graph, k int) []int {
	a, err := (partition.ChunkV{}).Partition(g, k)
	if err != nil {
		panic(err)
	}
	return a.Parts
}

func newEngine(t testing.TB, g *graph.Graph, k int) *Engine {
	t.Helper()
	e, err := New(g, chunkAssign(g, k), k, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	g := gen.Ring(4)
	if _, err := New(nil, nil, 2, cluster.DefaultCostModel()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, []int{0}, 2, cluster.DefaultCostModel()); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := New(g, []int{0, 0, 0, 9}, 2, cluster.DefaultCostModel()); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
}

func TestPageRankArgs(t *testing.T) {
	e := newEngine(t, gen.Ring(4), 2)
	if _, err := e.PageRank(0, 0.85); err == nil {
		t.Fatal("iters=0 accepted")
	}
	if _, err := e.PageRank(5, 1.0); err == nil {
		t.Fatal("damping=1 accepted")
	}
	if _, err := e.PageRank(5, -0.1); err == nil {
		t.Fatal("negative damping accepted")
	}
}

func TestPageRankRing(t *testing.T) {
	// On a directed ring all ranks stay exactly 1/n by symmetry.
	n := 20
	e := newEngine(t, gen.Ring(n), 4)
	res, err := e.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1/%d", v, r, n)
		}
	}
	if len(res.Stats.Iterations) != 10 {
		t.Fatalf("ran %d iterations", len(res.Stats.Iterations))
	}
}

func TestPageRankMassConservedAndHubFavored(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 3000, AvgDegree: 10, Skew: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.PageRank(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("total rank %v, want 1 (dangling handled)", sum)
	}
	// Vertex 0 is the biggest hub by construction (everyone links to it);
	// its rank must far exceed the mean.
	if res.Ranks[0] < 5.0/3000 {
		t.Fatalf("hub rank %v not above mean", res.Ranks[0])
	}
}

func TestPageRankPartitionIndependent(t *testing.T) {
	// Ranks must not depend on the placement — only timing does.
	g, err := gen.ChungLu(gen.Config{NumVertices: 1000, AvgDegree: 8, Skew: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e1 := newEngine(t, g, 2)
	hashAssign, _ := (partition.Hash{}).Partition(g, 5)
	e2, err := New(g, hashAssign.Parts, 5, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.PageRank(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.PageRank(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Ranks {
		if math.Abs(r1.Ranks[v]-r2.Ranks[v]) > 1e-9 {
			t.Fatalf("rank[%d] differs across placements: %v vs %v", v, r1.Ranks[v], r2.Ranks[v])
		}
	}
}

func TestPageRankDangling(t *testing.T) {
	// 0 -> 1, 1 is a sink. Mass must be conserved.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.PageRank(30, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Ranks[0] + res.Ranks[1]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("total rank %v, want 1", sum)
	}
	if res.Ranks[1] <= res.Ranks[0] {
		t.Fatalf("sink rank %v not above source %v", res.Ranks[1], res.Ranks[0])
	}
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	// Island A: 0-1-2 path; island B: 3-4.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {}, {4}, {}})
	e, err := New(g, []int{0, 0, 1, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 2 {
		t.Fatalf("components = %d, want 2", res.Components)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[1] != res.Labels[2] {
		t.Fatalf("island A labels differ: %v", res.Labels)
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[0] == res.Labels[3] {
		t.Fatalf("island separation broken: %v", res.Labels)
	}
}

func TestConnectedComponentsWeakDirection(t *testing.T) {
	// 1 -> 0 only: still one weak component.
	g := graph.FromAdjacency([][]graph.VertexID{{}, {0}})
	e, err := New(g, []int{0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("components = %d, want 1 (weak connectivity)", res.Components)
	}
}

func TestConnectedComponentsRing(t *testing.T) {
	e := newEngine(t, gen.Ring(100), 4)
	res, err := e.ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("ring components = %d", res.Components)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatalf("ring label %d, want 0", l)
		}
	}
}

func TestConnectedComponentsMaxIters(t *testing.T) {
	e := newEngine(t, gen.Ring(100), 4)
	res, err := e.ConnectedComponents(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Iterations) != 3 {
		t.Fatalf("ran %d iterations, want capped at 3", len(res.Stats.Iterations))
	}
}

func TestBFSRing(t *testing.T) {
	n := 50
	e := newEngine(t, gen.Ring(n), 4)
	res, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != n {
		t.Fatalf("reached %d of %d", res.Reached, n)
	}
	for v, d := range res.Dist {
		if int(d) != v {
			t.Fatalf("dist[%d] = %d, want %d on a directed ring", v, d, v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	// 0 -> 1, 2 isolated.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}, {}})
	e, err := New(g, []int{0, 0, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 2 || res.Dist[2] != -1 {
		t.Fatalf("reach set wrong: %+v", res)
	}
	if _, err := e.BFS(99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestMessagesTrackCutEdges(t *testing.T) {
	// Ring split into 2 halves: exactly 2 cut arcs, so PageRank must send
	// exactly 2 messages per iteration.
	g := gen.Ring(10)
	e, err := New(g, []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.PageRank(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.Stats.Iterations {
		var msgs int64
		for _, m := range it.Work.Messages {
			msgs += m
		}
		if msgs != 2 {
			t.Fatalf("iteration %d sent %d messages, want 2", i, msgs)
		}
	}
}

func TestLoadImbalanceCreatesWaiting(t *testing.T) {
	// Skewed graph + Chunk-V: machine owning the hubs does more edge work,
	// so other machines must wait (the paper's Fig 12/13 effect).
	g, err := gen.ChungLu(gen.Config{NumVertices: 5000, AvgDegree: 12, Skew: 0.8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.PageRank(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.WaitRatio(); r < 0.1 {
		t.Fatalf("wait ratio %v under Chunk-V on a skewed graph, want substantial", r)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 20000, AvgDegree: 16, Skew: 0.75, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(g, chunkAssign(g, 8), 8, cluster.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PageRank(5, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

package engine

import (
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
)

func TestEdgeWeightDeterministicBounded(t *testing.T) {
	for u := graph.VertexID(0); u < 50; u++ {
		for v := graph.VertexID(0); v < 50; v++ {
			w := EdgeWeight(u, v)
			if w < 1 || w > 8 {
				t.Fatalf("weight(%d,%d) = %d out of [1,8]", u, v, w)
			}
			if w != EdgeWeight(u, v) {
				t.Fatalf("weight(%d,%d) not deterministic", u, v)
			}
		}
	}
}

func TestSSSPLine(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: distances are the sums of the arc weights.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {3}, {}})
	e, err := New(g, []int{0, 0, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{
		0,
		EdgeWeight(0, 1),
		EdgeWeight(0, 1) + EdgeWeight(1, 2),
		EdgeWeight(0, 1) + EdgeWeight(1, 2) + EdgeWeight(2, 3),
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	if res.Reached != 4 {
		t.Fatalf("reached %d", res.Reached)
	}
}

func TestSSSPPrefersCheaperLongerPath(t *testing.T) {
	// Diamond where the two-hop path may beat the direct arc depending on
	// weights; verify against a sequential Bellman-Ford.
	g, err := gen.ChungLu(gen.Config{NumVertices: 300, AvgDegree: 6, Skew: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	const unreached = int64(-1)
	ref := make([]int64, g.NumVertices())
	for i := range ref {
		ref[i] = unreached
	}
	ref[0] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.NumVertices(); v++ {
			if ref[v] == unreached {
				continue
			}
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				cand := ref[v] + EdgeWeight(graph.VertexID(v), u)
				if ref[u] == unreached || cand < ref[u] {
					ref[u] = cand
					changed = true
				}
			}
		}
	}
	for v := range ref {
		if res.Dist[v] != ref[v] {
			t.Fatalf("dist[%d] = %d, reference %d", v, res.Dist[v], ref[v])
		}
	}
}

func TestSSSPUnreachableAndBadSource(t *testing.T) {
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {}, {}})
	e, err := New(g, []int{0, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != -1 || res.Reached != 2 {
		t.Fatalf("unexpected reach: %+v", res)
	}
	if _, err := e.SSSP(99); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestKCoreRing(t *testing.T) {
	// Directed ring: undirected degree 2 everywhere. 2-core = everything,
	// 3-core = empty.
	g := gen.Ring(50)
	e := newEngine(t, g, 4)
	res2, err := e.KCore(2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CoreSize != 50 {
		t.Fatalf("2-core size %d, want 50", res2.CoreSize)
	}
	res3, err := e.KCore(3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CoreSize != 0 {
		t.Fatalf("3-core size %d, want 0", res3.CoreSize)
	}
}

func TestKCorePeelsTail(t *testing.T) {
	// A triangle (0,1,2 fully connected both ways) with a pendant chain
	// 2->3->4. The 4-core is empty; the 2-core... each triangle vertex has
	// undirected degree ≥ 4 within the triangle; pendant vertices die.
	g := graph.FromAdjacency([][]graph.VertexID{
		{1, 2}, {0, 2}, {0, 1, 3}, {4}, {},
	})
	e, err := New(g, []int{0, 0, 0, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.KCore(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InCore[0] || !res.InCore[1] || !res.InCore[2] {
		t.Fatalf("triangle not in 3-core: %v", res.InCore)
	}
	if res.InCore[3] || res.InCore[4] {
		t.Fatalf("pendant chain in 3-core: %v", res.InCore)
	}
	if res.CoreSize != 3 {
		t.Fatalf("core size %d", res.CoreSize)
	}
	if _, err := e.KCore(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPageRankUntilConverges(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 1000, AvgDegree: 8, Skew: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, err := e.PageRankUntil(200, 0.85, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta >= 1e-8 {
		t.Fatalf("final delta %v did not reach tolerance", res.Delta)
	}
	if len(res.Stats.Iterations) >= 200 {
		t.Fatalf("no early stop: ran %d iterations", len(res.Stats.Iterations))
	}
	// Converged result must be a fixed point: one more fixed iteration
	// barely changes it.
	fixed, err := e.PageRank(len(res.Stats.Iterations)+5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Ranks {
		d := res.Ranks[v] - fixed.Ranks[v]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("converged ranks differ at %d by %v", v, d)
		}
	}
	if _, err := e.PageRankUntil(10, 0.85, 0); err == nil {
		t.Fatal("tol=0 accepted")
	}
}

func TestKCoreCascade(t *testing.T) {
	// A path a-b-c-d (undirected): 2-core is empty but peeling must
	// cascade from the endpoints inwards across multiple rounds.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {3}, {}})
	e, err := New(g, []int{0, 0, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.KCore(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreSize != 0 {
		t.Fatalf("path 2-core size %d, want 0", res.CoreSize)
	}
	if len(res.Stats.Iterations) < 2 {
		t.Fatalf("peeling converged in %d rounds, expected a cascade", len(res.Stats.Iterations))
	}
}

package engine

import (
	"testing"

	"bpart/internal/gen"
)

func TestDirectionOptimizingMatchesPlainBFS(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 5000, AvgDegree: 12, Skew: 0.75, Locality: 0.4, Window: 128, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	plain, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.BFSDirectionOptimizing(0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Reached != opt.Reached {
		t.Fatalf("reached %d vs %d", plain.Reached, opt.Reached)
	}
	for v := range plain.Dist {
		if plain.Dist[v] != opt.Dist[v] {
			t.Fatalf("dist[%d]: plain %d vs optimized %d", v, plain.Dist[v], opt.Dist[v])
		}
	}
}

func TestDirectionOptimizingScansFewerEdges(t *testing.T) {
	// Small-world graph: the middle BFS levels touch nearly every edge
	// top-down; bottom-up early exit must cut the total edge work.
	g, err := gen.ChungLu(gen.Config{
		NumVertices: 20000, AvgDegree: 16, Skew: 0.75, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	plain, err := e.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.BFSDirectionOptimizing(0)
	if err != nil {
		t.Fatal(err)
	}
	edgesOf := func(r *BFSResult) int64 {
		var total int64
		for _, it := range r.Stats.Iterations {
			for _, x := range it.Work.Edges {
				total += x
			}
		}
		return total
	}
	pe, oe := edgesOf(plain), edgesOf(opt)
	if oe >= pe {
		t.Fatalf("direction-optimizing scanned %d edges, plain %d — no savings", oe, pe)
	}
}

func TestDirectionOptimizingBadSource(t *testing.T) {
	e := newEngine(t, gen.Ring(4), 2)
	if _, err := e.BFSDirectionOptimizing(99); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestDirectionOptimizingLineGraphStaysTopDown(t *testing.T) {
	// A ring frontier is always tiny: the heuristic must never switch,
	// and results must still be exact.
	g := gen.Ring(200)
	e := newEngine(t, g, 2)
	res, err := e.BFSDirectionOptimizing(0)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range res.Dist {
		if int(d) != v {
			t.Fatalf("ring dist[%d] = %d", v, d)
		}
	}
}

// edgemap.go is the engine's shared execution kernel: a Ligra-style
// generic EdgeMap (Shun & Blelloch) over VertexSubset frontiers with
// push/pull direction switching (Beamer et al.), running each superstep's
// vertex work on the cluster's bounded worker pool.
//
// Determinism is the kernel's contract, enforced structurally rather than
// by luck of scheduling:
//
//   - Work is decomposed into shards whose boundaries are a pure function
//     of the work-list length — never of the worker count. Each shard
//     accumulates into shard-private counters, combined in fixed
//     (machine, shard) order after the phase barrier.
//   - Proposals land in a shared buffer through compare-and-swap *minimum*,
//     a commutative and idempotent combine whose fixed point is the same
//     whatever order workers fire in.
//   - Floating-point sums never cross shard boundaries unordered: each
//     destination vertex is summed by exactly one chunk in adjacency
//     order, and per-chunk partials are reduced in chunk index order.
//
// Together these make ranks, labels, distances and every IterationStats
// counter bit-identical at any Workers setting — the property the
// worker-grid tests pin.
package engine

import (
	"sync/atomic"

	"bpart/internal/cluster"
	"bpart/internal/graph"
)

// shardTarget is the nominal vertices-per-shard granule. Shard boundaries
// depend only on the list length, so the decomposition — and therefore
// every combine order — is identical at any worker count.
const shardTarget = 1024

// unsetKey is the proposal buffer's "no proposal" sentinel; every real
// proposal compares below it.
const unsetKey = ^uint64(0)

// shardCount returns the fixed shard count for a work list of length n.
func shardCount(n int) int {
	if n <= shardTarget {
		return 1
	}
	return (n + shardTarget - 1) / shardTarget
}

// machineShard is one task of a scatter phase: the [lo, hi) slice of
// machine m's work list.
type machineShard struct {
	m      int
	lo, hi int
}

// shardLists flattens the fixed shard decomposition of every machine's
// work list (lens[m] = list length) into tasks, machine-major. Empty lists
// still yield one empty shard so per-machine counters are always written.
func shardLists(lens []int) []machineShard {
	var tasks []machineShard
	for m, n := range lens {
		s := shardCount(n)
		if n == 0 {
			s = 1
		}
		for i := 0; i < s; i++ {
			tasks = append(tasks, machineShard{m: m, lo: i * n / s, hi: (i + 1) * n / s})
		}
	}
	return tasks
}

// taskCounters is one shard's private slice of the superstep counters.
type taskCounters struct {
	edges, msgs, verts int64
	prow               []int64 // per-destination messages, nil unless matrix capture
}

// newTaskCounters allocates one private counter set per task, with matrix
// rows exactly when the superstep captures them.
func newTaskCounters(ntasks, k int, pairs bool) []taskCounters {
	ts := make([]taskCounters, ntasks)
	if pairs {
		flat := make([]int64, ntasks*k)
		for i := range ts {
			ts[i].prow = flat[i*k : (i+1)*k : (i+1)*k]
		}
	}
	return ts
}

// combineCounters folds shard-private counters into the superstep's
// per-machine slots in fixed (machine, shard) order. Integer sums are
// commutative, but the fixed order costs nothing and keeps the discipline
// uniform.
func combineCounters(w *cluster.Counters, tasks []machineShard, ts []taskCounters) {
	for i, t := range tasks {
		w.Edges[t.m] += ts[i].edges
		w.Messages[t.m] += ts[i].msgs
		w.Vertices[t.m] += ts[i].verts
		if w.Pairs != nil && ts[i].prow != nil {
			row := w.Pairs[t.m]
			for o, x := range ts[i].prow {
				row[o] += x
			}
		}
	}
}

// atomicMinU64 lowers *p to v if v is smaller — the kernel's commutative,
// idempotent proposal combine.
func atomicMinU64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

// Beamer's direction-switching thresholds, as used by the pre-kernel
// direction-optimizing BFS: go bottom-up when the frontier's out-edge
// volume exceeds |E|/alpha, back to top-down when the frontier shrinks
// below |V|/beta.
const (
	dirAlpha = 14
	dirBeta  = 24
)

// edgeMapSpec is one algorithm's relaxation, expressed against uint64
// proposal keys (order-preserving encodings of the algorithm's value:
// label, distance, depth). Smaller is better; unsetKey means "no value".
type edgeMapSpec struct {
	// value is the key proposed along arc (src, dst). src is always the
	// frontier side: the pull direction discovers the same arcs from dst's
	// in-edges and calls value with the same orientation.
	value func(src, dst graph.VertexID) uint64
	// cur is v's current key; proposals not strictly below it are ignored.
	cur func(v graph.VertexID) uint64
	// apply commits an improved key during the merge phase. It is called
	// exactly once per improved vertex, from the single chunk owning it.
	apply func(v graph.VertexID, key uint64)
	// undirected also scans the reverse adjacency, computing over the
	// undirected closure (Connected Components).
	undirected bool
	// auto enables Beamer direction switching; otherwise every superstep
	// pushes. Pull supersteps charge edges and messages to the scanning
	// (destination-owning) machine, exactly as the hand-written DOBFS did.
	auto bool
	// stopEarly stops a pull scan of one vertex's in-edges at the first
	// frontier hit (BFS semantics: any parent will do — and with a uniform
	// key per superstep the early exit cannot change the committed value).
	stopEarly bool
}

// kernelState is the per-run scratch of the edge-map kernel.
type kernelState struct {
	prop    []uint64           // shared proposal buffer, CAS-min
	byOwner [][]graph.VertexID // sparse-frontier split scratch
}

func (e *Engine) newKernelState() *kernelState {
	n := e.g.NumVertices()
	st := &kernelState{
		prop:    make([]uint64, n),
		byOwner: make([][]graph.VertexID, e.cl.NumMachines()),
	}
	for i := range st.prop {
		st.prop[i] = unsetKey
	}
	return st
}

// edgeMapOut is one superstep's outcome: the next frontier, its out-edge
// volume (the auto heuristic's input), and the direction taken.
type edgeMapOut struct {
	frontier      *VertexSubset
	frontierEdges int64
	bottomUp      bool
}

// edgeMap advances one superstep: scatter the frontier's proposals (push)
// or gather them from in-edges (pull), then merge improvements into the
// algorithm state and build the next frontier. Counters for the superstep
// are accumulated into w with the same semantics as the hand-written
// per-algorithm loops this kernel replaced.
func (e *Engine) edgeMap(s *edgeMapSpec, st *kernelState, frontier *VertexSubset, frontierEdges int64, w *cluster.Counters) edgeMapOut {
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	bottomUp := false
	if s.auto {
		m := e.g.NumEdges()
		bottomUp = frontierEdges > int64(m/dirAlpha) && frontier.Len() > n/dirBeta
	}

	// Scatter/gather phase: shard every machine's work list and run the
	// shards on the worker pool.
	var tasks []machineShard
	var run func(t machineShard, tc *taskCounters)
	if bottomUp {
		// Pull: every owned vertex still lacking a value scans its
		// in-edges for a frontier parent.
		tr := e.transpose()
		lens := make([]int, k)
		for m := range lens {
			lens[m] = len(e.owned[m])
		}
		tasks = shardLists(lens)
		run = func(t machineShard, tc *taskCounters) {
			scan := func(v graph.VertexID, ns []graph.VertexID) bool {
				for _, u := range ns {
					tc.edges++
					if o := e.cl.Owner(u); o != t.m {
						tc.msgs++
						if tc.prow != nil {
							tc.prow[o]++
						}
					}
					if frontier.Contains(u) {
						atomicMinU64(&st.prop[v], s.value(u, v))
						if s.stopEarly {
							return true
						}
					}
				}
				return false
			}
			for _, v := range e.owned[t.m][t.lo:t.hi] {
				if s.cur(v) != unsetKey {
					continue
				}
				tc.verts++
				if scan(v, tr.Neighbors(v)) {
					continue
				}
				if s.undirected {
					scan(v, e.g.Neighbors(v))
				}
			}
		}
	} else {
		// Push: frontier members scatter proposals along out-edges (and,
		// for undirected closures, in-edges). Dense frontiers filter the
		// owned lists through the bitmap; sparse frontiers are split by
		// owner — both iterate owned∩frontier in ascending vertex order,
		// so the representation never changes a counter.
		var tr *graph.Graph
		if s.undirected {
			tr = e.transpose()
		}
		var member []bool
		var lists [][]graph.VertexID
		if frontier.IsDense() {
			member = frontier.Bitmap()
			lists = e.owned
		} else {
			for m := range st.byOwner {
				st.byOwner[m] = st.byOwner[m][:0]
			}
			for _, v := range frontier.Vertices() {
				m := e.cl.Owner(v)
				st.byOwner[m] = append(st.byOwner[m], v)
			}
			lists = st.byOwner
		}
		lens := make([]int, k)
		for m := range lens {
			lens[m] = len(lists[m])
		}
		tasks = shardLists(lens)
		run = func(t machineShard, tc *taskCounters) {
			scatter := func(v graph.VertexID, ns []graph.VertexID) {
				for _, u := range ns {
					tc.edges++
					if o := e.cl.Owner(u); o != t.m {
						tc.msgs++
						if tc.prow != nil {
							tc.prow[o]++
						}
					}
					if key := s.value(v, u); key < s.cur(u) {
						atomicMinU64(&st.prop[u], key)
					}
				}
			}
			for _, v := range lists[t.m][t.lo:t.hi] {
				if member != nil && !member[v] {
					continue
				}
				tc.verts++
				scatter(v, e.g.Neighbors(v))
				if s.undirected {
					scatter(v, tr.Neighbors(v))
				}
			}
		}
	}
	tcs := newTaskCounters(len(tasks), k, w.Pairs != nil)
	e.cl.RunTasks(len(tasks), func(t int) { run(tasks[t], &tcs[t]) })
	combineCounters(w, tasks, tcs)

	// Merge phase: fixed chunks over the vertex space, each chunk applying
	// its own vertices' improvements and resetting the proposal buffer.
	// Chunk outputs are concatenated in chunk order, so the next frontier
	// is sorted ascending however the chunks were scheduled.
	chunks := shardCount(n)
	outs := make([][]graph.VertexID, chunks)
	fedges := make([]int64, chunks)
	e.cl.RunTasks(chunks, func(c int) {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		var members []graph.VertexID
		var fe int64
		for v := lo; v < hi; v++ {
			key := st.prop[v]
			if key == unsetKey {
				continue
			}
			st.prop[v] = unsetKey
			id := graph.VertexID(v)
			if key < s.cur(id) {
				s.apply(id, key)
				members = append(members, id)
				fe += int64(e.g.OutDegree(id))
			}
		}
		outs[c] = members
		fedges[c] = fe
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	members := make([]graph.VertexID, 0, total)
	var fe int64
	for c := range outs {
		members = append(members, outs[c]...)
		fe += fedges[c]
	}
	return edgeMapOut{
		frontier:      SubsetFromVertices(n, members),
		frontierEdges: fe,
		bottomUp:      bottomUp,
	}
}

// ownedShards is the dense vertex-map decomposition: every machine's full
// owned list, sharded.
func (e *Engine) ownedShards() []machineShard {
	lens := make([]int, e.cl.NumMachines())
	for m := range lens {
		lens[m] = len(e.owned[m])
	}
	return shardLists(lens)
}

// chunkMap runs fn over fixed chunks of [0, n) on the worker pool —
// the merge-side primitive. Chunk boundaries depend only on n; callers
// combine per-chunk results in chunk index order.
func (e *Engine) chunkMap(n int, fn func(chunk, lo, hi int)) int {
	chunks := shardCount(n)
	e.cl.RunTasks(chunks, func(c int) {
		fn(c, c*n/chunks, (c+1)*n/chunks)
	})
	return chunks
}

package engine

import (
	"fmt"

	"bpart/internal/graph"
)

// BFSDirectionOptimizing runs Beamer-style direction-optimizing BFS: the
// classic top-down frontier expansion switches to bottom-up (every
// unvisited vertex scans its in-neighbors for a frontier parent) when the
// frontier's out-edge volume crosses |E|/alpha, and back when the frontier
// shrinks below |V|/beta. On small-world graphs the bottom-up phase skips
// the bulk of the edge work in the two or three "fat" middle levels —
// the same optimization Gemini's dense mode implements.
//
// Distances are identical to BFS; only the work (and therefore the
// simulated time) differs.
func (e *Engine) BFSDirectionOptimizing(source graph.VertexID) (*BFSResult, error) {
	const alpha, beta = 14, 24
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: BFS source %d out of range", source)
	}
	k := e.cl.NumMachines()
	tr := e.transpose()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	inFrontier := make([]bool, n)
	inFrontier[source] = true
	frontierSize := 1
	// Frontier out-edge volume estimate for the switch heuristic.
	frontierEdges := e.g.OutDegree(source)
	m := e.g.NumEdges()

	res := &BFSResult{}
	discovered := make([][]graph.VertexID, k)
	for depth := int32(1); frontierSize > 0; depth++ {
		w := e.cl.NewCounters()
		bottomUp := frontierEdges > m/alpha && frontierSize > n/beta
		e.cl.Parallel(func(mach int) {
			discovered[mach] = discovered[mach][:0]
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[mach]
			}
			if bottomUp {
				// Every unvisited owned vertex looks backwards for a
				// frontier parent and stops at the first hit.
				for _, v := range e.owned[mach] {
					if dist[v] != -1 {
						continue
					}
					verts++
					for _, u := range tr.Neighbors(v) {
						edges++
						if o := e.cl.Owner(u); o != mach {
							msgs++
							if prow != nil {
								prow[o]++
							}
						}
						if inFrontier[u] {
							discovered[mach] = append(discovered[mach], v)
							break
						}
					}
				}
			} else {
				for _, v := range e.owned[mach] {
					if !inFrontier[v] {
						continue
					}
					verts++
					for _, u := range e.g.Neighbors(v) {
						edges++
						if o := e.cl.Owner(u); o != mach {
							msgs++
							if prow != nil {
								prow[o]++
							}
						}
						if dist[u] == -1 {
							discovered[mach] = append(discovered[mach], u)
						}
					}
				}
			}
			w.Edges[mach] = edges
			w.Messages[mach] = msgs
			w.Vertices[mach] = verts
		})
		for i := range inFrontier {
			inFrontier[i] = false
		}
		frontierSize, frontierEdges = 0, 0
		for mach := 0; mach < k; mach++ {
			for _, u := range discovered[mach] {
				if dist[u] == -1 {
					dist[u] = depth
					inFrontier[u] = true
					frontierSize++
					frontierEdges += e.g.OutDegree(u)
				}
			}
		}
		res.Stats.Add(e.cl.FinishIteration(w))
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	return res, nil
}

package engine

import (
	"fmt"

	"bpart/internal/graph"
)

// BFSDirectionOptimizing runs Beamer-style direction-optimizing BFS: the
// classic top-down frontier expansion switches to bottom-up (every
// unvisited vertex scans its in-neighbors for a frontier parent) when the
// frontier's out-edge volume crosses |E|/alpha, and back when the frontier
// shrinks below |V|/beta. On small-world graphs the bottom-up phase skips
// the bulk of the edge work in the two or three "fat" middle levels —
// the same optimization Gemini's dense mode implements.
//
// It is the kernel's auto mode: one edge-map per level with direction
// switching and early-exit pull scans enabled.
//
// Distances are identical to BFS; only the work (and therefore the
// simulated time) differs.
func (e *Engine) BFSDirectionOptimizing(source graph.VertexID) (*BFSResult, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: BFS source %d out of range", source)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	frontier := SubsetFromVertices(n, []graph.VertexID{source})
	frontierEdges := int64(e.g.OutDegree(source))
	st := e.newKernelState()
	depth := int32(0)
	spec := &edgeMapSpec{
		value: func(src, dst graph.VertexID) uint64 { return uint64(depth) },
		cur: func(v graph.VertexID) uint64 {
			if dist[v] < 0 {
				return unsetKey
			}
			return uint64(dist[v])
		},
		apply:     func(v graph.VertexID, key uint64) { dist[v] = int32(key) },
		auto:      true,
		stopEarly: true,
	}

	res := &BFSResult{}
	for depth = 1; frontier.Len() > 0; depth++ {
		w := e.cl.NewCounters()
		out := e.edgeMap(spec, st, frontier, frontierEdges, w)
		frontier, frontierEdges = out.frontier, out.frontierEdges
		res.Stats.Add(e.cl.FinishIteration(w))
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	return res, nil
}

package engine

import (
	"math"
	"reflect"
	"testing"

	"bpart/internal/fault"
	"bpart/internal/gen"
	"bpart/internal/graph"
)

// faultEngine builds an engine over g with a chunk assignment and attaches
// a controller for spec.
func faultEngine(t testing.TB, g *graph.Graph, k int, spec *fault.Spec) *Engine {
	t.Helper()
	e := newEngine(t, g, k)
	ctl, err := fault.NewController(e.Graph(), e.Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetFaults(ctl); err != nil {
		t.Fatal(err)
	}
	return e
}

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.ChungLu(gen.Config{NumVertices: 600, AvgDegree: 8, Skew: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPageRankRollbackIdenticalRanks is the tentpole acceptance criterion:
// a PageRank run that crashes at superstep 5 and rolls back to its last
// checkpoint must converge to ranks bit-identical to the fault-free run —
// recovery replays the exact same float operations in the exact same order.
func TestPageRankRollbackIdenticalRanks(t *testing.T) {
	g := testGraph(t)
	base, err := newEngine(t, g, 4).PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fault.ReadSpecFile("../fault/testdata/crash5.json")
	if err != nil {
		t.Fatal(err)
	}
	e := faultEngine(t, g, 4, spec)
	got, err := e.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery == nil || got.Recovery.Crashes != 1 {
		t.Fatalf("Recovery = %+v, want 1 crash", got.Recovery)
	}
	for v := range base.Ranks {
		if base.Ranks[v] != got.Ranks[v] {
			t.Fatalf("rank[%d] differs after recovery: %v vs %v", v, base.Ranks[v], got.Ranks[v])
		}
	}
	// The recovered run recorded extra supersteps (replays + barriers).
	if len(got.Stats.Iterations) <= len(base.Stats.Iterations) {
		t.Fatalf("recovered run recorded %d supersteps, baseline %d",
			len(got.Stats.Iterations), len(base.Stats.Iterations))
	}
	if got.Recovery.RecoverySimTimeUS <= 0 {
		t.Fatalf("RecoverySimTimeUS = %v", got.Recovery.RecoverySimTimeUS)
	}
}

func TestPageRankUntilRollbackIdentical(t *testing.T) {
	g := testGraph(t)
	base, err := newEngine(t, g, 4).PageRankUntil(50, 0.85, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{CheckpointEvery: 3, Events: []fault.Event{{Kind: fault.Crash, Step: 4, Machine: 2}}}
	got, err := faultEngine(t, g, 4, spec).PageRankUntil(50, 0.85, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if base.Delta != got.Delta {
		t.Fatalf("Delta differs: %v vs %v", base.Delta, got.Delta)
	}
	for v := range base.Ranks {
		if base.Ranks[v] != got.Ranks[v] {
			t.Fatalf("rank[%d] differs: %v vs %v", v, base.Ranks[v], got.Ranks[v])
		}
	}
}

func TestPageRankPullRollbackIdentical(t *testing.T) {
	g := testGraph(t)
	base, err := newEngine(t, g, 4).PageRankPull(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{CheckpointEvery: 2, Events: []fault.Event{{Kind: fault.Crash, Step: 5, Machine: 0}}}
	got, err := faultEngine(t, g, 4, spec).PageRankPull(8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Ranks {
		if base.Ranks[v] != got.Ranks[v] {
			t.Fatalf("pull rank[%d] differs: %v vs %v", v, base.Ranks[v], got.Ranks[v])
		}
	}
	// Pull-mode replay must also re-count mirror messages identically:
	// compare per-iteration message totals for the replayed window against
	// the baseline's same logical supersteps.
	baseMsgs := make([]int64, 0, len(base.Stats.Iterations))
	for _, it := range base.Stats.Iterations {
		var m int64
		for _, x := range it.Work.Messages {
			m += x
		}
		baseMsgs = append(baseMsgs, m)
	}
	// The recovered run's final *algorithm* superstep corresponds to the
	// baseline's final iteration (recovery barriers carry zero work, so
	// skip them); both runs end at logical superstep 7.
	lastBase := baseMsgs[len(baseMsgs)-1]
	var lastGot int64 = -1
	for _, it := range got.Stats.Iterations {
		var verts, msgs int64
		for i := range it.Work.Vertices {
			verts += it.Work.Vertices[i]
			msgs += it.Work.Messages[i]
		}
		if verts > 0 {
			lastGot = msgs
		}
	}
	if lastBase != lastGot {
		t.Fatalf("final superstep messages differ: %d vs %d (stale mirror stamps on replay?)", lastBase, lastGot)
	}
}

func TestPageRankRestreamDegradedRanks(t *testing.T) {
	g := testGraph(t)
	base, err := newEngine(t, g, 4).PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fault.ReadSpecFile("../fault/testdata/crash5_restream.json")
	if err != nil {
		t.Fatal(err)
	}
	e := faultEngine(t, g, 4, spec)
	got, err := e.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery == nil || got.Recovery.RestreamedVertices == 0 {
		t.Fatalf("Recovery = %+v, want restreamed vertices", got.Recovery)
	}
	if e.Cluster().LiveMachines() != 3 {
		t.Fatalf("LiveMachines = %d after restream", e.Cluster().LiveMachines())
	}
	// Rehoming changes merge association order, so ranks are equal up to
	// float round-off, not bit-identical.
	for v := range base.Ranks {
		diff := math.Abs(base.Ranks[v] - got.Ranks[v])
		if diff > 1e-9*math.Max(base.Ranks[v], 1e-300) && diff > 1e-15 {
			t.Fatalf("restream rank[%d] diverged: %v vs %v", v, base.Ranks[v], got.Ranks[v])
		}
	}
}

func TestBFSAndCCRollbackIdentical(t *testing.T) {
	g := testGraph(t)
	spec := &fault.Spec{CheckpointEvery: 1, Events: []fault.Event{{Kind: fault.Crash, Step: 2, Machine: 1}}}

	baseBFS, err := newEngine(t, g, 4).BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	gotBFS, err := faultEngine(t, g, 4, spec).BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseBFS.Dist, gotBFS.Dist) {
		t.Fatal("BFS distances differ after recovery")
	}
	if gotBFS.Recovery == nil || gotBFS.Recovery.Crashes != 1 {
		t.Fatalf("BFS Recovery = %+v", gotBFS.Recovery)
	}

	baseCC, err := newEngine(t, g, 4).ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	gotCC, err := faultEngine(t, g, 4, spec).ConnectedComponents(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseCC.Labels, gotCC.Labels) {
		t.Fatal("CC labels differ after recovery")
	}
	if baseCC.Components != gotCC.Components {
		t.Fatalf("components differ: %d vs %d", baseCC.Components, gotCC.Components)
	}
}

// TestRecoveryStatsDeterministicAcrossRuns covers the second half of the
// acceptance criterion: the same seed and schedule yield identical
// RecoveryStats, field for field.
func TestRecoveryStatsDeterministicAcrossRuns(t *testing.T) {
	g := testGraph(t)
	mk := func() *fault.Spec {
		s, err := fault.RandomSpec(fault.RandomConfig{
			Seed: 21, Machines: 4, Horizon: 10,
			CrashProb: 0.25, SlowProb: 0.3, LossProb: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, err := faultEngine(t, g, 4, mk()).PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faultEngine(t, g, 4, mk()).PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("same seed, different RecoveryStats:\n%+v\n%+v", a.Recovery, b.Recovery)
	}
	for v := range a.Ranks {
		if a.Ranks[v] != b.Ranks[v] {
			t.Fatalf("same seed, different ranks at %d", v)
		}
	}
}

func TestSetFaultsValidation(t *testing.T) {
	g := gen.Ring(8)
	e1 := newEngine(t, g, 2)
	e2 := newEngine(t, g, 2)
	ctl, err := fault.NewController(g, e2.Cluster(), &fault.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.SetFaults(ctl); err == nil {
		t.Fatal("controller for a different cluster accepted")
	}
	if err := e2.SetFaults(ctl); err != nil {
		t.Fatal(err)
	}
	if err := e2.SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	// Detached: runs proceed without recovery stats.
	res, err := e2.PageRank(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery != nil {
		t.Fatal("detached engine still reports RecoveryStats")
	}
}

package engine

import (
	"math"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
)

func TestPullArgs(t *testing.T) {
	e := newEngine(t, gen.Ring(4), 2)
	if _, err := e.PageRankPull(0, 0.85); err == nil {
		t.Fatal("iters=0 accepted")
	}
	if _, err := e.PageRankPull(3, 1.0); err == nil {
		t.Fatal("damping=1 accepted")
	}
}

func TestPullMatchesPush(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 2000, AvgDegree: 10, Skew: 0.75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	push, err := e.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := e.PageRankPull(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := range push.Ranks {
		if math.Abs(push.Ranks[v]-pull.Ranks[v]) > 1e-9 {
			t.Fatalf("rank[%d]: push %v vs pull %v", v, push.Ranks[v], pull.Ranks[v])
		}
	}
}

func TestPullSendsFewerMessagesOnHighCut(t *testing.T) {
	// Under Hash partitioning nearly every edge is cut: push pays one
	// message per cut edge; pull pays one per mirror. On a hubby graph
	// mirrors ≪ cut edges, so pull must send far fewer messages.
	g, err := gen.ChungLu(gen.Config{NumVertices: 3000, AvgDegree: 12, Skew: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.Hash{}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, a.Parts, 8, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	push, err := e.PageRank(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := e.PageRankPull(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	pm := push.Stats.TotalMessages()
	qm := pull.Stats.TotalMessages()
	if qm >= pm {
		t.Fatalf("pull messages %d not below push %d", qm, pm)
	}
	if qm > 8*int64(g.NumVertices())*3 {
		t.Fatalf("pull messages %d exceed mirror bound", qm)
	}
}

func TestPullDangling(t *testing.T) {
	// Mass conservation with a sink under pull mode: a chain whose last
	// vertex has no out-edges.
	g := graph.FromAdjacency([][]graph.VertexID{{1}, {2}, {3}, {}})
	e, err := New(g, []int{0, 0, 1, 1}, 2, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.PageRankPull(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("total rank %v", sum)
	}
}

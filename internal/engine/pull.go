package engine

import (
	"fmt"

	"bpart/internal/fault"
	"bpart/internal/graph"
)

// PageRankPull runs PageRank in Gemini's pull mode: every machine computes
// its owned vertices' next ranks by pulling contributions along in-edges
// from the transpose. Communication is mirror-based, as in Gemini: a
// remote in-neighbor's value is fetched once per (machine, vertex) pair
// and cached for the iteration, so the message count is the number of
// mirrors touched rather than the number of cut edges — the reason pull
// mode wins on dense iterations over high-cut partitions.
//
// The returned ranks are identical (up to float association order) to the
// push-mode PageRank.
func (e *Engine) PageRankPull(iters int, damping float64) (*PRResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("engine: PageRankPull iters = %d", iters)
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping = %v, want [0,1)", damping)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	contrib := make([]float64, n)
	next := make([]float64, n)
	// Per-machine mirror stamps: stamp[m][u] == current iteration means
	// u's value is already cached on machine m this iteration.
	stamps := make([][]int32, k)
	for m := range stamps {
		stamps[m] = make([]int32, n)
		for i := range stamps[m] {
			stamps[m][i] = -1
		}
	}
	dangling := make([]float64, k)

	res := &PRResult{}
	it := -1
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &prSnap{ranks: append([]float64(nil), ranks...), it: it}
			},
			Restore: func(s any) {
				sn := s.(*prSnap)
				copy(ranks, sn.ranks)
				it = sn.it
				// A restarted machine has lost its mirror caches, and a
				// stale stamp equal to a replayed iteration number would
				// silently suppress that mirror's message. Reset them all.
				for m := range stamps {
					for i := range stamps[m] {
						stamps[m][i] = -1
					}
				}
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	for it = 0; it < iters; it++ {
		// Pre-phase: per-vertex contribution and dangling mass.
		mergeParallel(n, k, func(chunk, lo, hi int) {
			var dang float64
			for v := lo; v < hi; v++ {
				if d := e.g.OutDegree(graph.VertexID(v)); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
					dang += ranks[v]
				}
			}
			dangling[chunk] = dang
		})
		var danglingSum float64
		for _, d := range dangling {
			danglingSum += d
		}
		base := (1-damping)/float64(n) + damping*danglingSum/float64(n)

		w := e.cl.NewCounters()
		e.cl.Parallel(func(m int) {
			stamp := stamps[m]
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			for _, v := range e.owned[m] {
				verts++
				var sum float64
				for _, u := range tr.Neighbors(v) {
					edges++
					// Matrix row = the requesting machine m (who is charged
					// for the fetch), column = the mirror's home machine —
					// in pull mode traffic flows toward the row machine.
					if o := e.cl.Owner(u); o != m && stamp[u] != int32(it) {
						stamp[u] = int32(it)
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
					sum += contrib[u]
				}
				next[v] = base + damping*sum
			}
			w.Edges[m] = edges
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		ranks, next = next, ranks
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Ranks = ranks
	return res, nil
}

package engine

import (
	"fmt"
	"sync/atomic"

	"bpart/internal/fault"
	"bpart/internal/graph"
)

// PageRankPull runs PageRank in Gemini's pull mode: every machine computes
// its owned vertices' next ranks by pulling contributions along in-edges
// from the transpose. Communication is mirror-based, as in Gemini: a
// remote in-neighbor's value is fetched once per (machine, vertex) pair
// and cached for the iteration, so the message count is the number of
// mirrors touched rather than the number of cut edges — the reason pull
// mode wins on dense iterations over high-cut partitions.
//
// On the worker pool, each owned vertex's float sum is produced by exactly
// one shard in transpose adjacency order, and mirror stamps advance by
// compare-and-swap so exactly one shard counts each (machine, mirror)
// fetch per iteration — ranks and message counts are bit-identical at any
// worker count.
//
// The returned ranks are identical (up to float association order) to the
// push-mode PageRank.
func (e *Engine) PageRankPull(iters int, damping float64) (*PRResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("engine: PageRankPull iters = %d", iters)
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping = %v, want [0,1)", damping)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	contrib := make([]float64, n)
	next := make([]float64, n)
	// Per-machine mirror stamps: stamp[m][u] == current iteration means
	// u's value is already cached on machine m this iteration.
	stamps := make([][]int32, k)
	for m := range stamps {
		stamps[m] = make([]int32, n)
		for i := range stamps[m] {
			stamps[m][i] = -1
		}
	}
	chunks := shardCount(n)
	dangling := make([]float64, chunks)

	res := &PRResult{}
	it := -1
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &prSnap{ranks: append([]float64(nil), ranks...), it: it}
			},
			Restore: func(s any) {
				sn := s.(*prSnap)
				copy(ranks, sn.ranks)
				it = sn.it
				// A restarted machine has lost its mirror caches, and a
				// stale stamp equal to a replayed iteration number would
				// silently suppress that mirror's message. Reset them all.
				for m := range stamps {
					for i := range stamps[m] {
						stamps[m][i] = -1
					}
				}
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	for it = 0; it < iters; it++ {
		// Pre-phase: per-vertex contribution and dangling mass, per-chunk
		// partials reduced in chunk order.
		e.chunkMap(n, func(c, lo, hi int) {
			var dang float64
			for v := lo; v < hi; v++ {
				if d := e.g.OutDegree(graph.VertexID(v)); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
					dang += ranks[v]
				}
			}
			dangling[c] = dang
		})
		var danglingSum float64
		for _, d := range dangling {
			danglingSum += d
		}
		base := (1-damping)/float64(n) + damping*danglingSum/float64(n)

		w := e.cl.NewCounters()
		tasks := e.ownedShards()
		tcs := newTaskCounters(len(tasks), k, w.Pairs != nil)
		e.cl.RunTasks(len(tasks), func(t int) {
			ts, tc := tasks[t], &tcs[t]
			stamp := stamps[ts.m]
			for _, v := range e.owned[ts.m][ts.lo:ts.hi] {
				tc.verts++
				var sum float64
				for _, u := range tr.Neighbors(v) {
					tc.edges++
					// Matrix row = the requesting machine (who is charged
					// for the fetch), column = the mirror's home machine —
					// in pull mode traffic flows toward the row machine.
					if o := e.cl.Owner(u); o != ts.m {
						for {
							cur := atomic.LoadInt32(&stamp[u])
							if cur == int32(it) {
								break // already fetched this iteration
							}
							if atomic.CompareAndSwapInt32(&stamp[u], cur, int32(it)) {
								tc.msgs++
								if tc.prow != nil {
									tc.prow[o]++
								}
								break
							}
						}
					}
					sum += contrib[u]
				}
				next[v] = base + damping*sum
			}
		})
		combineCounters(w, tasks, tcs)
		ranks, next = next, ranks
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Ranks = ranks
	return res, nil
}

package engine

import "bpart/internal/graph"

// VertexSubset is a Ligra-style frontier: a set of vertices over a
// universe [0, n) held either sparsely (a sorted slice of members) or
// densely (a membership bitmap), with automatic switching between the two
// as the set grows or shrinks. The representation is an execution detail,
// never an output: both forms iterate members in ascending vertex order,
// so the kernel's counters and results are identical whichever one a
// frontier happens to be in.
type VertexSubset struct {
	n     int
	count int
	// Exactly one of the two is the active representation.
	dense  []bool           // non-nil in dense mode
	sparse []graph.VertexID // sorted ascending in sparse mode
}

// denseRatio is the switch threshold: a subset goes dense when it holds
// more than n/denseRatio members, sparse again below. Ligra uses |V|/20
// for its edge-map threshold; /10 keeps the bitmap worthwhile for the
// membership tests the pull direction does per in-edge.
const denseRatio = 10

// NewVertexSubset returns the empty subset over [0, n).
func NewVertexSubset(n int) *VertexSubset {
	return &VertexSubset{n: n}
}

// FullVertexSubset returns the subset holding every vertex of [0, n).
func FullVertexSubset(n int) *VertexSubset {
	d := make([]bool, n)
	for i := range d {
		d[i] = true
	}
	return &VertexSubset{n: n, count: n, dense: d}
}

// SubsetFromVertices builds a subset from members, which must be sorted
// ascending and duplicate-free (the kernel's merge produces exactly that).
// The representation is chosen by the usual threshold.
func SubsetFromVertices(n int, members []graph.VertexID) *VertexSubset {
	//bpartlint:ignore aliasret the subset takes ownership of members; the kernel hands it freshly built slices
	s := &VertexSubset{n: n, count: len(members), sparse: members}
	s.settle()
	return s
}

// settle moves the subset to the representation its size calls for.
func (s *VertexSubset) settle() {
	if s.count*denseRatio > s.n {
		s.toDense()
	} else {
		s.toSparse()
	}
}

func (s *VertexSubset) toDense() {
	if s.dense != nil {
		return
	}
	d := make([]bool, s.n)
	for _, v := range s.sparse {
		d[v] = true
	}
	s.dense = d
	s.sparse = nil
}

func (s *VertexSubset) toSparse() {
	if s.dense == nil {
		return
	}
	sp := make([]graph.VertexID, 0, s.count)
	for v, in := range s.dense {
		if in {
			sp = append(sp, graph.VertexID(v))
		}
	}
	s.sparse = sp
	s.dense = nil
}

// N returns the universe size.
func (s *VertexSubset) N() int { return s.n }

// Len returns the member count.
func (s *VertexSubset) Len() int { return s.count }

// IsDense reports whether the bitmap representation is active.
func (s *VertexSubset) IsDense() bool { return s.dense != nil }

// Contains reports membership of v.
func (s *VertexSubset) Contains(v graph.VertexID) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	// Binary search the sorted sparse form.
	lo, hi := 0, len(s.sparse)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.sparse[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.sparse) && s.sparse[lo] == v
}

// Bitmap returns a dense membership view of the subset, converting if
// needed. The returned slice is the subset's own storage — read-only for
// callers, valid until the subset is mutated.
func (s *VertexSubset) Bitmap() []bool {
	s.toDense()
	return s.dense
}

// Vertices returns the members in ascending order, converting if needed.
// The returned slice is the subset's own storage — read-only for callers.
func (s *VertexSubset) Vertices() []graph.VertexID {
	s.toSparse()
	return s.sparse
}

// subsetMembers returns a fresh copy of s's members in ascending order,
// without disturbing the active representation (checkpoint Save hooks use
// it so snapshotting never perturbs the run).
func subsetMembers(s *VertexSubset) []graph.VertexID {
	out := make([]graph.VertexID, 0, s.Len())
	s.ForEach(func(v graph.VertexID) { out = append(out, v) })
	return out
}

// ForEach calls fn for every member in ascending vertex order, whichever
// representation is active.
func (s *VertexSubset) ForEach(fn func(v graph.VertexID)) {
	if s.dense != nil {
		for v, in := range s.dense {
			if in {
				fn(graph.VertexID(v))
			}
		}
		return
	}
	for _, v := range s.sparse {
		fn(v)
	}
}

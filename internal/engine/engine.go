// Package engine is the Gemini-like distributed graph engine of the
// reproduction: a vertex-centric, push-style, bulk-synchronous-parallel
// system running on the simulated cluster of internal/cluster.
//
// Per iteration, every machine processes the out-edges of the vertices it
// owns in parallel (real goroutine parallelism, one goroutine per machine,
// each writing only machine-private buffers), then buffers are merged and
// the BSP barrier timing is settled by the cost model: an edge whose
// endpoints live on different machines costs a message, and the iteration
// lasts as long as its slowest machine. PageRank and Connected Components
// are the two iteration-based applications the paper runs on Gemini (§4.1);
// BFS is included as the natural third traversal workload.
package engine

import (
	"fmt"
	"sync"

	"bpart/internal/cluster"
	"bpart/internal/fault"
	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// Engine binds a graph, a placement and a cost model.
type Engine struct {
	g     *graph.Graph
	cl    *cluster.Cluster
	owned [][]graph.VertexID  // vertices per machine
	tel   telemetry.Tracer    // run-level spans; supersteps come from cl
	reg   *telemetry.Registry // run-level histograms; superstep metrics come from cl
	flt   *fault.Controller   // nil = fault injection disabled

	trMu sync.Mutex
	tr   *graph.Graph // transpose, built on demand (CC uses both directions)
}

// New builds an engine for g with the given vertex→machine assignment.
func New(g *graph.Graph, assignment []int, machines int, model cluster.CostModel) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("engine: nil graph")
	}
	if len(assignment) != g.NumVertices() {
		return nil, fmt.Errorf("engine: %d assignments for %d vertices", len(assignment), g.NumVertices())
	}
	cl, err := cluster.New(assignment, machines, model)
	if err != nil {
		return nil, err
	}
	owned := make([][]graph.VertexID, machines)
	for v := 0; v < g.NumVertices(); v++ {
		m := assignment[v]
		owned[m] = append(owned[m], graph.VertexID(v))
	}
	return &Engine{g: g, cl: cl, owned: owned, tel: telemetry.Nop()}, nil
}

// Cluster exposes the underlying simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Graph returns the graph the engine computes over.
func (e *Engine) Graph() *graph.Graph { return e.g }

// SetFaults attaches (or with nil detaches) a fault controller. The
// controller must have been built on this engine's cluster; every
// subsequent algorithm run then executes under its schedule: checkpoints
// at interval barriers, crashes rolled back (or restreamed, per policy),
// and the run's result structs carry the RecoveryStats.
func (e *Engine) SetFaults(ctl *fault.Controller) error {
	if ctl != nil && ctl.Cluster() != e.cl {
		return fmt.Errorf("engine: fault controller bound to a different cluster")
	}
	e.flt = ctl
	return nil
}

// reassign rebuilds ownership-derived structures after degraded-mode
// restreaming moved vertices off a dead machine.
func (e *Engine) reassign(assignment []int) {
	owned := make([][]graph.VertexID, e.cl.NumMachines())
	for v, m := range assignment {
		owned[m] = append(owned[m], graph.VertexID(v))
	}
	e.owned = owned
}

// prSnap, ccSnap and bfsSnap capture each algorithm's complete mutable
// state at a checkpoint barrier, including the loop position: restore puts
// the loop variable back to the checkpointed superstep, and the loop's own
// increment then re-executes the first lost superstep.
type prSnap struct {
	ranks []float64
	delta float64
	it    int
}

type ccSnap struct {
	labels   []uint32
	frontier []graph.VertexID
	it       int
}

type bfsSnap struct {
	dist     []int32
	frontier []graph.VertexID
	depth    int32
}

// SetTelemetry implements telemetry.Instrumentable: the tracer receives one
// run-level span per algorithm invocation and — via the underlying cluster
// — one "cluster.superstep" record per BSP iteration carrying the
// IterationStats.
func (e *Engine) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	e.tel = telemetry.Safe(tr)
	e.reg = reg
	e.cl.SetTelemetry(tr, reg)
}

// SetResourceProbe implements telemetry.Probeable by forwarding to the
// underlying cluster: every BSP superstep then emits one
// "cluster.superstep" resource lap (real host time and alloc/GC activity,
// not simulated time).
func (e *Engine) SetResourceProbe(p telemetry.PhaseProbe) { e.cl.SetResourceProbe(p) }

func (e *Engine) transpose() *graph.Graph {
	e.trMu.Lock()
	defer e.trMu.Unlock()
	if e.tr == nil {
		e.tr = e.g.Transpose()
	}
	return e.tr
}

// SetTranspose installs a precomputed transpose of the engine's graph,
// letting callers that build many engines over the same graph (one per
// partitioning scheme, as the experiment harness does) share the expensive
// reversed adjacency instead of rebuilding it per engine.
func (e *Engine) SetTranspose(tr *graph.Graph) error {
	if tr.NumVertices() != e.g.NumVertices() || tr.NumEdges() != e.g.NumEdges() {
		return fmt.Errorf("engine: transpose shape %v does not match graph %v", tr, e.g)
	}
	e.trMu.Lock()
	defer e.trMu.Unlock()
	e.tr = tr
	return nil
}

// PRResult is the outcome of a PageRank run.
type PRResult struct {
	Ranks []float64
	Stats cluster.RunStats
	// Delta is the final iteration's L1 rank change (set by the
	// tolerance-based variants).
	Delta float64
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// PageRank runs the classic damped PageRank for a fixed number of
// iterations (the paper runs ten).
func (e *Engine) PageRank(iters int, damping float64) (*PRResult, error) {
	return e.pageRankPush(iters, damping, 0)
}

// PageRankUntil runs push-mode PageRank until the L1 rank change drops
// below tol (capped at maxIters iterations).
func (e *Engine) PageRankUntil(maxIters int, damping, tol float64) (*PRResult, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("engine: tolerance = %v, want > 0", tol)
	}
	return e.pageRankPush(maxIters, damping, tol)
}

// pageRankPush is push-mode PageRank on the parallel kernel. The
// communication accounting is push-semantics exactly as before — every
// out-edge is traversed and a cut out-edge costs its owner one message —
// while the floating-point accumulation is per-destination over the
// transpose in adjacency order, so each vertex's sum is produced by
// exactly one chunk and the ranks are bit-identical at any worker count
// (and across placements).
func (e *Engine) pageRankPush(iters int, damping, tol float64) (*PRResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("engine: PageRank iters = %d", iters)
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping = %v, want [0,1)", damping)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	contrib := make([]float64, n)
	chunks := shardCount(n)
	dangling := make([]float64, chunks)
	deltas := make([]float64, chunks)

	res := &PRResult{}
	it := -1 // the initial snapshot is "superstep -1": restore replays from 0
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &prSnap{ranks: append([]float64(nil), ranks...), delta: res.Delta, it: it}
			},
			Restore: func(s any) {
				sn := s.(*prSnap)
				copy(ranks, sn.ranks)
				res.Delta = sn.delta
				it = sn.it
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.pagerank",
		telemetry.Int("max_iters", iters),
		telemetry.Float("damping", damping),
		telemetry.Float("tol", tol))
	for it = 0; it < iters; it++ {
		// Pre-phase: per-vertex contribution and dangling mass, per-chunk
		// partials reduced in chunk order.
		e.chunkMap(n, func(c, lo, hi int) {
			var dang float64
			for v := lo; v < hi; v++ {
				if d := e.g.OutDegree(graph.VertexID(v)); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
					dang += ranks[v]
				}
			}
			dangling[c] = dang
		})
		var danglingSum float64
		for _, d := range dangling {
			danglingSum += d
		}
		base := (1-damping)/float64(n) + damping*danglingSum/float64(n)

		// Push accounting scan: every owned vertex's out-edges, sharded on
		// the worker pool, integer counters only.
		w := e.cl.NewCounters()
		tasks := e.ownedShards()
		tcs := newTaskCounters(len(tasks), k, w.Pairs != nil)
		e.cl.RunTasks(len(tasks), func(t int) {
			ts, tc := tasks[t], &tcs[t]
			for _, v := range e.owned[ts.m][ts.lo:ts.hi] {
				tc.verts++
				for _, u := range e.g.Neighbors(v) {
					tc.edges++
					if o := e.cl.Owner(u); o != ts.m {
						tc.msgs++
						if tc.prow != nil {
							tc.prow[o]++
						}
					}
				}
			}
		})
		combineCounters(w, tasks, tcs)

		// Rank update: per-destination sums in transpose adjacency order.
		e.chunkMap(n, func(c, lo, hi int) {
			var delta float64
			for v := lo; v < hi; v++ {
				var sum float64
				for _, u := range tr.Neighbors(graph.VertexID(v)) {
					sum += contrib[u]
				}
				next := base + damping*sum
				d := next - ranks[v]
				if d < 0 {
					d = -d
				}
				delta += d
				ranks[v] = next
			}
			deltas[c] = delta
		})
		res.Delta = 0
		for _, d := range deltas {
			res.Delta += d
		}
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
		if tol > 0 && res.Delta < tol {
			break
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Ranks = ranks
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Float("delta", res.Delta),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()),
		telemetry.Int64("messages", res.Stats.TotalMessages()))
	return res, nil
}

// CCResult is the outcome of a Connected Components run.
type CCResult struct {
	Labels     []uint32
	Components int
	Stats      cluster.RunStats
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// ConnectedComponents runs frontier-based label propagation over the
// undirected closure (out- and in-edges) until convergence, computing weak
// components. maxIters <= 0 means "until convergence". The propagation is
// one edge-map per superstep: the frontier (initially every vertex)
// scatters labels with a min-combine, and the vertices whose label
// improved form the next frontier.
func (e *Engine) ConnectedComponents(maxIters int) (*CCResult, error) {
	n := e.g.NumVertices()
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = uint32(v)
	}
	frontier := FullVertexSubset(n)
	st := e.newKernelState()
	spec := &edgeMapSpec{
		value:      func(src, dst graph.VertexID) uint64 { return uint64(labels[src]) },
		cur:        func(v graph.VertexID) uint64 { return uint64(labels[v]) },
		apply:      func(v graph.VertexID, key uint64) { labels[v] = uint32(key) },
		undirected: true,
	}
	res := &CCResult{}
	it := -1
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &ccSnap{
					labels:   append([]uint32(nil), labels...),
					frontier: subsetMembers(frontier),
					it:       it,
				}
			},
			Restore: func(s any) {
				sn := s.(*ccSnap)
				copy(labels, sn.labels)
				frontier = SubsetFromVertices(n, append([]graph.VertexID(nil), sn.frontier...))
				it = sn.it
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.cc", telemetry.Int("max_iters", maxIters))
	for it = 0; maxIters <= 0 || it < maxIters; it++ {
		w := e.cl.NewCounters()
		out := e.edgeMap(spec, st, frontier, 0, w)
		frontier = out.frontier
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
		if frontier.Len() == 0 {
			break
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Labels = labels
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	res.Components = len(seen)
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Int("components", res.Components),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()))
	return res, nil
}

// BFSResult is the outcome of a breadth-first search.
type BFSResult struct {
	Dist    []int32 // -1 = unreachable
	Reached int
	Stats   cluster.RunStats
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// BFS runs a BSP breadth-first search over out-edges from source.
func (e *Engine) BFS(source graph.VertexID) (*BFSResult, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: BFS source %d out of range", source)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	frontier := SubsetFromVertices(n, []graph.VertexID{source})
	st := e.newKernelState()
	res := &BFSResult{}
	depth := int32(0)
	spec := &edgeMapSpec{
		value: func(src, dst graph.VertexID) uint64 { return uint64(depth) },
		cur: func(v graph.VertexID) uint64 {
			if dist[v] < 0 {
				return unsetKey
			}
			return uint64(dist[v])
		},
		apply: func(v graph.VertexID, key uint64) { dist[v] = int32(key) },
	}
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &bfsSnap{
					dist:     append([]int32(nil), dist...),
					frontier: subsetMembers(frontier),
					depth:    depth,
				}
			},
			Restore: func(s any) {
				sn := s.(*bfsSnap)
				copy(dist, sn.dist)
				frontier = SubsetFromVertices(n, append([]graph.VertexID(nil), sn.frontier...))
				depth = sn.depth
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.bfs", telemetry.Int("source", int(source)))
	for depth = 1; frontier.Len() > 0; depth++ {
		e.reg.Histogram("engine_bfs_frontier_vertices").Observe(float64(frontier.Len()))
		w := e.cl.NewCounters()
		out := e.edgeMap(spec, st, frontier, 0, w)
		frontier = out.frontier
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Int("reached", res.Reached),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()))
	return res, nil
}

// Package engine is the Gemini-like distributed graph engine of the
// reproduction: a vertex-centric, push-style, bulk-synchronous-parallel
// system running on the simulated cluster of internal/cluster.
//
// Per iteration, every machine processes the out-edges of the vertices it
// owns in parallel (real goroutine parallelism, one goroutine per machine,
// each writing only machine-private buffers), then buffers are merged and
// the BSP barrier timing is settled by the cost model: an edge whose
// endpoints live on different machines costs a message, and the iteration
// lasts as long as its slowest machine. PageRank and Connected Components
// are the two iteration-based applications the paper runs on Gemini (§4.1);
// BFS is included as the natural third traversal workload.
package engine

import (
	"fmt"
	"sync"

	"bpart/internal/cluster"
	"bpart/internal/fault"
	"bpart/internal/graph"
	"bpart/internal/telemetry"
)

// Engine binds a graph, a placement and a cost model.
type Engine struct {
	g     *graph.Graph
	cl    *cluster.Cluster
	owned [][]graph.VertexID  // vertices per machine
	tel   telemetry.Tracer    // run-level spans; supersteps come from cl
	reg   *telemetry.Registry // run-level histograms; superstep metrics come from cl
	flt   *fault.Controller   // nil = fault injection disabled

	trMu sync.Mutex
	tr   *graph.Graph // transpose, built on demand (CC uses both directions)
}

// New builds an engine for g with the given vertex→machine assignment.
func New(g *graph.Graph, assignment []int, machines int, model cluster.CostModel) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("engine: nil graph")
	}
	if len(assignment) != g.NumVertices() {
		return nil, fmt.Errorf("engine: %d assignments for %d vertices", len(assignment), g.NumVertices())
	}
	cl, err := cluster.New(assignment, machines, model)
	if err != nil {
		return nil, err
	}
	owned := make([][]graph.VertexID, machines)
	for v := 0; v < g.NumVertices(); v++ {
		m := assignment[v]
		owned[m] = append(owned[m], graph.VertexID(v))
	}
	return &Engine{g: g, cl: cl, owned: owned, tel: telemetry.Nop()}, nil
}

// Cluster exposes the underlying simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Graph returns the graph the engine computes over.
func (e *Engine) Graph() *graph.Graph { return e.g }

// SetFaults attaches (or with nil detaches) a fault controller. The
// controller must have been built on this engine's cluster; every
// subsequent algorithm run then executes under its schedule: checkpoints
// at interval barriers, crashes rolled back (or restreamed, per policy),
// and the run's result structs carry the RecoveryStats.
func (e *Engine) SetFaults(ctl *fault.Controller) error {
	if ctl != nil && ctl.Cluster() != e.cl {
		return fmt.Errorf("engine: fault controller bound to a different cluster")
	}
	e.flt = ctl
	return nil
}

// reassign rebuilds ownership-derived structures after degraded-mode
// restreaming moved vertices off a dead machine.
func (e *Engine) reassign(assignment []int) {
	owned := make([][]graph.VertexID, e.cl.NumMachines())
	for v, m := range assignment {
		owned[m] = append(owned[m], graph.VertexID(v))
	}
	e.owned = owned
}

// prSnap, ccSnap and bfsSnap capture each algorithm's complete mutable
// state at a checkpoint barrier, including the loop position: restore puts
// the loop variable back to the checkpointed superstep, and the loop's own
// increment then re-executes the first lost superstep.
type prSnap struct {
	ranks []float64
	delta float64
	it    int
}

type ccSnap struct {
	labels []uint32
	active []bool
	it     int
}

type bfsSnap struct {
	dist     []int32
	frontier []graph.VertexID
	depth    int32
}

// SetTelemetry implements telemetry.Instrumentable: the tracer receives one
// run-level span per algorithm invocation and — via the underlying cluster
// — one "cluster.superstep" record per BSP iteration carrying the
// IterationStats.
func (e *Engine) SetTelemetry(tr telemetry.Tracer, reg *telemetry.Registry) {
	e.tel = telemetry.Safe(tr)
	e.reg = reg
	e.cl.SetTelemetry(tr, reg)
}

// SetResourceProbe implements telemetry.Probeable by forwarding to the
// underlying cluster: every BSP superstep then emits one
// "cluster.superstep" resource lap (real host time and alloc/GC activity,
// not simulated time).
func (e *Engine) SetResourceProbe(p telemetry.PhaseProbe) { e.cl.SetResourceProbe(p) }

func (e *Engine) transpose() *graph.Graph {
	e.trMu.Lock()
	defer e.trMu.Unlock()
	if e.tr == nil {
		e.tr = e.g.Transpose()
	}
	return e.tr
}

// SetTranspose installs a precomputed transpose of the engine's graph,
// letting callers that build many engines over the same graph (one per
// partitioning scheme, as the experiment harness does) share the expensive
// reversed adjacency instead of rebuilding it per engine.
func (e *Engine) SetTranspose(tr *graph.Graph) error {
	if tr.NumVertices() != e.g.NumVertices() || tr.NumEdges() != e.g.NumEdges() {
		return fmt.Errorf("engine: transpose shape %v does not match graph %v", tr, e.g)
	}
	e.trMu.Lock()
	defer e.trMu.Unlock()
	e.tr = tr
	return nil
}

// PRResult is the outcome of a PageRank run.
type PRResult struct {
	Ranks []float64
	Stats cluster.RunStats
	// Delta is the final iteration's L1 rank change (set by the
	// tolerance-based variants).
	Delta float64
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// PageRank runs the classic damped PageRank for a fixed number of
// iterations (the paper runs ten).
func (e *Engine) PageRank(iters int, damping float64) (*PRResult, error) {
	return e.pageRankPush(iters, damping, 0)
}

// PageRankUntil runs push-mode PageRank until the L1 rank change drops
// below tol (capped at maxIters iterations).
func (e *Engine) PageRankUntil(maxIters int, damping, tol float64) (*PRResult, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("engine: tolerance = %v, want > 0", tol)
	}
	return e.pageRankPush(maxIters, damping, tol)
}

func (e *Engine) pageRankPush(iters int, damping, tol float64) (*PRResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("engine: PageRank iters = %d", iters)
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("engine: damping = %v, want [0,1)", damping)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1 / float64(n)
	}
	// Machine-private contribution buffers, reused across iterations.
	bufs := make([][]float64, k)
	for m := range bufs {
		bufs[m] = make([]float64, n)
	}
	dangling := make([]float64, k)

	res := &PRResult{}
	deltas := make([]float64, k)
	it := -1 // the initial snapshot is "superstep -1": restore replays from 0
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &prSnap{ranks: append([]float64(nil), ranks...), delta: res.Delta, it: it}
			},
			Restore: func(s any) {
				sn := s.(*prSnap)
				copy(ranks, sn.ranks)
				res.Delta = sn.delta
				it = sn.it
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.pagerank",
		telemetry.Int("max_iters", iters),
		telemetry.Float("damping", damping),
		telemetry.Float("tol", tol))
	for it = 0; it < iters; it++ {
		w := e.cl.NewCounters()
		e.cl.Parallel(func(m int) {
			buf := bufs[m]
			for i := range buf {
				buf[i] = 0
			}
			dangling[m] = 0
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			for _, v := range e.owned[m] {
				ns := e.g.Neighbors(v)
				verts++
				if len(ns) == 0 {
					dangling[m] += ranks[v]
					continue
				}
				share := ranks[v] / float64(len(ns))
				for _, u := range ns {
					buf[u] += share
					edges++
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
				}
			}
			w.Edges[m] = edges
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		// Merge phase (simulation bookkeeping, charged via the barrier
		// latency in the cost model): parallel over vertex ranges.
		var danglingSum float64
		for _, d := range dangling {
			danglingSum += d
		}
		base := (1-damping)/float64(n) + damping*danglingSum/float64(n)
		mergeParallel(n, k, func(chunk, lo, hi int) {
			var delta float64
			for v := lo; v < hi; v++ {
				var sum float64
				for m := 0; m < k; m++ {
					sum += bufs[m][v]
				}
				next := base + damping*sum
				d := next - ranks[v]
				if d < 0 {
					d = -d
				}
				delta += d
				ranks[v] = next
			}
			deltas[chunk] = delta
		})
		res.Delta = 0
		for _, d := range deltas {
			res.Delta += d
		}
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
		if tol > 0 && res.Delta < tol {
			break
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Ranks = ranks
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Float("delta", res.Delta),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()),
		telemetry.Int64("messages", res.Stats.TotalMessages()))
	return res, nil
}

// CCResult is the outcome of a Connected Components run.
type CCResult struct {
	Labels     []uint32
	Components int
	Stats      cluster.RunStats
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// ConnectedComponents runs frontier-based label propagation over the
// undirected closure (out- and in-edges) until convergence, computing weak
// components. maxIters <= 0 means "until convergence".
func (e *Engine) ConnectedComponents(maxIters int) (*CCResult, error) {
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	labels := make([]uint32, n)
	active := make([]bool, n)
	for v := range labels {
		labels[v] = uint32(v)
		active[v] = true
	}
	bufs := make([][]uint32, k)
	for m := range bufs {
		bufs[m] = make([]uint32, n)
	}
	res := &CCResult{}
	it := -1
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &ccSnap{
					labels: append([]uint32(nil), labels...),
					active: append([]bool(nil), active...),
					it:     it,
				}
			},
			Restore: func(s any) {
				sn := s.(*ccSnap)
				copy(labels, sn.labels)
				active = append([]bool(nil), sn.active...)
				it = sn.it
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.cc", telemetry.Int("max_iters", maxIters))
	for it = 0; maxIters <= 0 || it < maxIters; it++ {
		w := e.cl.NewCounters()
		e.cl.Parallel(func(m int) {
			buf := bufs[m]
			for i := range buf {
				buf[i] = labels[i]
			}
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			propose := func(v graph.VertexID, ns []graph.VertexID, l uint32) {
				for _, u := range ns {
					edges++
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
					if l < buf[u] {
						buf[u] = l
					}
				}
			}
			for _, v := range e.owned[m] {
				if !active[v] {
					continue
				}
				verts++
				l := labels[v]
				propose(v, e.g.Neighbors(v), l)
				propose(v, tr.Neighbors(v), l)
			}
			w.Edges[m] = edges
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		changed := make([]bool, k)
		nextActive := make([]bool, n)
		mergeParallel(n, k, func(chunk, lo, hi int) {
			for v := lo; v < hi; v++ {
				minL := labels[v]
				for m := 0; m < k; m++ {
					if bufs[m][v] < minL {
						minL = bufs[m][v]
					}
				}
				if minL < labels[v] {
					labels[v] = minL
					nextActive[v] = true
					changed[chunk] = true
				}
			}
		})
		active = nextActive
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
		anyChanged := false
		for _, c := range changed {
			anyChanged = anyChanged || c
		}
		if !anyChanged {
			break
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Labels = labels
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	res.Components = len(seen)
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Int("components", res.Components),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()))
	return res, nil
}

// BFSResult is the outcome of a breadth-first search.
type BFSResult struct {
	Dist    []int32 // -1 = unreachable
	Reached int
	Stats   cluster.RunStats
	// Recovery is set when the run executed under a fault controller.
	Recovery *fault.RecoveryStats
}

// BFS runs a BSP breadth-first search over out-edges from source.
func (e *Engine) BFS(source graph.VertexID) (*BFSResult, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: BFS source %d out of range", source)
	}
	k := e.cl.NumMachines()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	frontier := []graph.VertexID{source}
	discovered := make([][]graph.VertexID, k)
	res := &BFSResult{}
	depth := int32(0)
	if e.flt != nil {
		err := e.flt.BeginRun(fault.Hooks{
			Save: func() any {
				return &bfsSnap{
					dist:     append([]int32(nil), dist...),
					frontier: append([]graph.VertexID(nil), frontier...),
					depth:    depth,
				}
			},
			Restore: func(s any) {
				sn := s.(*bfsSnap)
				copy(dist, sn.dist)
				frontier = append([]graph.VertexID(nil), sn.frontier...)
				depth = sn.depth
			},
			Reassign: func(dead int, assignment []int) { e.reassign(assignment) },
		})
		if err != nil {
			return nil, err
		}
	}
	sp := e.tel.Span("engine.bfs", telemetry.Int("source", int(source)))
	for depth = 1; len(frontier) > 0; depth++ {
		e.reg.Histogram("engine_bfs_frontier_vertices").Observe(float64(len(frontier)))
		w := e.cl.NewCounters()
		// Split the frontier by owner so each machine scans its own part.
		byOwner := make([][]graph.VertexID, k)
		for _, v := range frontier {
			m := e.cl.Owner(v)
			byOwner[m] = append(byOwner[m], v)
		}
		e.cl.Parallel(func(m int) {
			discovered[m] = discovered[m][:0]
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			for _, v := range byOwner[m] {
				verts++
				for _, u := range e.g.Neighbors(v) {
					edges++
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
					if dist[u] == -1 {
						// Benign duplicate proposals are deduplicated
						// in the merge below.
						discovered[m] = append(discovered[m], u)
					}
				}
			}
			w.Edges[m] = edges
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		frontier = frontier[:0]
		for m := 0; m < k; m++ {
			for _, u := range discovered[m] {
				if dist[u] == -1 {
					dist[u] = depth
					frontier = append(frontier, u)
				}
			}
		}
		res.Stats.Add(e.cl.FinishIteration(w))
		if e.flt != nil && e.flt.EndSuperstep(&res.Stats) == fault.Restored {
			continue
		}
	}
	if e.flt != nil {
		rec := e.flt.Finish(&res.Stats)
		res.Recovery = &rec
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	e.reg.Histogram("engine_run_sim_time_us").Observe(res.Stats.TotalTime())
	sp.End(
		telemetry.Int("iterations", len(res.Stats.Iterations)),
		telemetry.Int("reached", res.Reached),
		telemetry.Float("sim_time_us", res.Stats.TotalTime()))
	return res, nil
}

// mergeParallel splits [0,n) into one contiguous chunk per worker and runs
// fn(worker, lo, hi) on each chunk concurrently.
func mergeParallel(n, workers int, fn func(worker, lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * n / workers
		hi := (wkr + 1) * n / workers
		go func(wkr, lo, hi int) {
			defer wg.Done()
			fn(wkr, lo, hi)
		}(wkr, lo, hi)
	}
	wg.Wait()
}

package engine

import (
	"bytes"
	"sync"
	"testing"

	"bpart/internal/fault"
)

// The race battery: parallel supersteps under the race detector, with
// fault injection firing at a superstep boundary while the worker pool is
// live, and independent engines running concurrently. `go test -race -run
// Parallel` is the CI entry point; every test here doubles as a byte-
// identity check against a sequential run of the same schedule.

// faultSpec loads a fault schedule fixture fresh for each engine (the
// controller owns its spec once attached).
func faultSpec(t testing.TB, name string) *fault.Spec {
	t.Helper()
	spec, err := fault.ReadSpecFile("../fault/testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// parallelFaultEngine is faultEngine plus a live worker pool and the comm
// matrix enabled, so recovery runs with workers scanning while the
// controller crashes and restores machines at barriers.
func parallelFaultEngine(t testing.TB, spec *fault.Spec, workers int) *Engine {
	t.Helper()
	e := faultEngine(t, testGraph(t), 4, spec)
	e.Cluster().SetCommMatrix(true)
	e.Cluster().SetWorkers(workers)
	return e
}

// TestParallelRollbackCrashByteIdentical crashes machine 1 at superstep 5
// under the rollback policy while four workers drive the supersteps; the
// recovered run must match the sequential run of the same schedule byte
// for byte (results, RunStats, recovery stats and comm matrix).
func TestParallelRollbackCrashByteIdentical(t *testing.T) {
	for _, algo := range []parallelAlgo{
		{"PageRank", func(e *Engine) ([]byte, error) { return marshalRun(e.PageRank(10, 0.85)) }},
		{"PageRankPull", func(e *Engine) ([]byte, error) { return marshalRun(e.PageRankPull(10, 0.85)) }},
		{"CC", func(e *Engine) ([]byte, error) { return marshalRun(e.ConnectedComponents(0)) }},
		{"BFS", func(e *Engine) ([]byte, error) { return marshalRun(e.BFS(0)) }},
	} {
		ref, err := algo.run(parallelFaultEngine(t, faultSpec(t, "crash5.json"), 1))
		if err != nil {
			t.Fatalf("%s workers=1: %v", algo.name, err)
		}
		for _, wk := range []int{2, 4} {
			got, err := algo.run(parallelFaultEngine(t, faultSpec(t, "crash5.json"), wk))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo.name, wk, err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("%s workers=%d: crash+rollback run differs from sequential run of the same schedule", algo.name, wk)
			}
		}
	}
}

// TestParallelRestreamCrashByteIdentical covers the other recovery policy:
// the crash is permanent, survivors take over the dead machine's vertices,
// and the reassigned run continues on the live worker pool. Determinism
// must survive the mid-run repartition.
func TestParallelRestreamCrashByteIdentical(t *testing.T) {
	run := func(e *Engine) ([]byte, error) { return marshalRun(e.PageRank(10, 0.85)) }
	ref, err := run(parallelFaultEngine(t, faultSpec(t, "crash5_restream.json"), 1))
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, wk := range []int{2, 4} {
		got, err := run(parallelFaultEngine(t, faultSpec(t, "crash5_restream.json"), wk))
		if err != nil {
			t.Fatalf("workers=%d: %v", wk, err)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: crash+restream run differs from sequential run of the same schedule", wk)
		}
	}
}

// TestParallelConcurrentEngines runs independent engines, each with its
// own 4-worker pool (one of them under fault injection), at the same
// time. Engines share no mutable state, so the race detector staying
// quiet here certifies the kernel's state is fully per-engine.
func TestParallelConcurrentEngines(t *testing.T) {
	g := testGraph(t)
	type job struct {
		name string
		e    *Engine
		run  func(e *Engine) ([]byte, error)
	}
	jobs := []job{
		{"pagerank", schemeEngine(t, g, "Chunk-V", 4), func(e *Engine) ([]byte, error) { return marshalRun(e.PageRank(10, 0.85)) }},
		{"cc", schemeEngine(t, g, "Hash", 4), func(e *Engine) ([]byte, error) { return marshalRun(e.ConnectedComponents(0)) }},
		{"sssp", schemeEngine(t, g, "Chunk-E", 4), func(e *Engine) ([]byte, error) { return marshalRun(e.SSSP(0)) }},
		{"faulted", parallelFaultEngine(t, faultSpec(t, "crash5.json"), 4), func(e *Engine) ([]byte, error) { return marshalRun(e.PageRank(10, 0.85)) }},
	}
	refs := make([][]byte, len(jobs))
	for i, j := range jobs {
		j.e.Cluster().SetWorkers(1)
		b, err := j.run(j.e)
		if err != nil {
			t.Fatalf("%s reference: %v", j.name, err)
		}
		refs[i] = b
	}
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	got := make([][]byte, len(jobs))
	for i, j := range jobs {
		j.e.Cluster().SetWorkers(4)
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			got[i], errs[i] = j.run(j.e)
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("%s: %v", j.name, errs[i])
		}
		if !bytes.Equal(got[i], refs[i]) {
			t.Errorf("%s: concurrent 4-worker run differs from its own sequential run", j.name)
		}
	}
}

package engine

import (
	"sort"
	"testing"

	"bpart/internal/graph"
)

// members builds a sorted, duplicate-free member slice from ints.
func members(vs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(vs))
	for i, v := range vs {
		out[i] = graph.VertexID(v)
	}
	return out
}

func TestVertexSubsetEmptyAndFull(t *testing.T) {
	const n = 50
	empty := NewVertexSubset(n)
	if empty.Len() != 0 || empty.N() != n || empty.IsDense() {
		t.Fatalf("empty subset: len=%d n=%d dense=%t", empty.Len(), empty.N(), empty.IsDense())
	}
	if empty.Contains(0) || empty.Contains(n-1) {
		t.Fatal("empty subset contains a vertex")
	}
	empty.ForEach(func(v graph.VertexID) { t.Fatalf("ForEach visited %d on empty subset", v) })

	full := FullVertexSubset(n)
	if full.Len() != n || !full.IsDense() {
		t.Fatalf("full subset: len=%d dense=%t", full.Len(), full.IsDense())
	}
	var seen int
	prev := graph.VertexID(0)
	full.ForEach(func(v graph.VertexID) {
		if seen > 0 && v <= prev {
			t.Fatalf("ForEach out of order: %d after %d", v, prev)
		}
		prev = v
		seen++
	})
	if seen != n {
		t.Fatalf("ForEach visited %d of %d", seen, n)
	}
	for v := 0; v < n; v++ {
		if !full.Contains(graph.VertexID(v)) {
			t.Fatalf("full subset missing %d", v)
		}
	}
}

func TestVertexSubsetThresholdSwitching(t *testing.T) {
	const n = 100 // dense when count*denseRatio > n, i.e. count >= 11
	small := SubsetFromVertices(n, members(3, 17, 42))
	if small.IsDense() {
		t.Fatalf("3/%d members settled dense", n)
	}
	atEdge := SubsetFromVertices(n, members(0, 1, 2, 3, 4, 5, 6, 7, 8, 9))
	if atEdge.IsDense() {
		t.Fatalf("%d/%d members settled dense, threshold is count*%d > n", atEdge.Len(), n, denseRatio)
	}
	big := SubsetFromVertices(n, members(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	if !big.IsDense() {
		t.Fatalf("%d/%d members stayed sparse past the threshold", big.Len(), n)
	}
	// Conversions are views of the same set: membership survives both ways.
	bm := small.Bitmap()
	if !small.IsDense() {
		t.Fatal("Bitmap did not convert to dense")
	}
	if !bm[17] || bm[18] {
		t.Fatal("bitmap view wrong")
	}
	vs := small.Vertices()
	if small.IsDense() {
		t.Fatal("Vertices did not convert to sparse")
	}
	if len(vs) != 3 || vs[0] != 3 || vs[1] != 17 || vs[2] != 42 {
		t.Fatalf("sparse view %v", vs)
	}
}

func TestSubsetMembersDoesNotConvert(t *testing.T) {
	const n = 100
	s := FullVertexSubset(n)
	got := subsetMembers(s)
	if !s.IsDense() {
		t.Fatal("subsetMembers converted the representation")
	}
	if len(got) != n {
		t.Fatalf("got %d members", len(got))
	}
	// The copy is fresh storage: mutating it must not touch the subset.
	got[0] = graph.VertexID(n + 1)
	if !s.Contains(0) {
		t.Fatal("subsetMembers aliased subset storage")
	}
}

// FuzzVertexSubsetRoundTrip drives random membership sets through both
// representations and checks that membership, order and count survive
// every conversion.
func FuzzVertexSubsetRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(16))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(8))
	f.Add([]byte{250, 251, 252, 1, 1, 1}, uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint8) {
		n := int(nRaw)
		if n == 0 {
			n = 1
		}
		want := map[int]bool{}
		for _, b := range raw {
			want[int(b)%n] = true
		}
		var ms []graph.VertexID
		for v := range want {
			ms = append(ms, graph.VertexID(v))
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })

		s := SubsetFromVertices(n, ms)
		check := func(stage string) {
			t.Helper()
			if s.Len() != len(want) || s.N() != n {
				t.Fatalf("%s: len=%d n=%d, want %d/%d", stage, s.Len(), s.N(), len(want), n)
			}
			for v := 0; v < n; v++ {
				if s.Contains(graph.VertexID(v)) != want[v] {
					t.Fatalf("%s: Contains(%d) = %t", stage, v, !want[v])
				}
			}
			var visited []graph.VertexID
			s.ForEach(func(v graph.VertexID) { visited = append(visited, v) })
			if len(visited) != len(want) {
				t.Fatalf("%s: ForEach visited %d of %d", stage, len(visited), len(want))
			}
			for i := 1; i < len(visited); i++ {
				if visited[i] <= visited[i-1] {
					t.Fatalf("%s: ForEach out of order at %d: %v", stage, i, visited)
				}
			}
		}
		check("settled")
		s.Bitmap() // force dense
		check("dense")
		s.Vertices() // force sparse
		check("sparse")
		s.Bitmap() // and back again
		check("dense-again")
	})
}

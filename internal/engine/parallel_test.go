package engine

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"bpart/internal/cluster"
	_ "bpart/internal/core" // registers the "BPart" scheme
	"bpart/internal/gen"
	"bpart/internal/graph"
	"bpart/internal/partition"
)

// The worker-grid property battery: every algorithm on the shared kernel,
// run under every partition scheme of the grid on several generator seeds,
// must produce byte-identical marshaled results (outputs + RunStats,
// comm matrix included) at Workers = 1, 2, 4 and NumCPU. This is the
// determinism contract the parallel supersteps are sold on — any
// scheduling-dependent float sum, counter or ordering shows up here as a
// byte diff naming the exact grid point.

// parallelWorkerGrid is the ladder every grid point is checked against the
// 1-worker reference: 2, 4 and the host's CPU count (deduplicated).
func parallelWorkerGrid() []int {
	ws := []int{2, 4}
	if n := runtime.NumCPU(); n > 1 && n != 2 && n != 4 {
		ws = append(ws, n)
	}
	return ws
}

// parallelAlgo is one algorithm of the battery; run executes it and
// returns its full marshaled result.
type parallelAlgo struct {
	name string
	run  func(e *Engine) ([]byte, error)
}

func marshalRun(v any, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

func parallelAlgos() []parallelAlgo {
	return []parallelAlgo{
		{"PageRank", func(e *Engine) ([]byte, error) { return marshalRun(e.PageRank(10, 0.85)) }},
		{"PageRankPull", func(e *Engine) ([]byte, error) { return marshalRun(e.PageRankPull(10, 0.85)) }},
		{"CC", func(e *Engine) ([]byte, error) { return marshalRun(e.ConnectedComponents(0)) }},
		{"BFS", func(e *Engine) ([]byte, error) { return marshalRun(e.BFS(0)) }},
		{"DOBFS", func(e *Engine) ([]byte, error) { return marshalRun(e.BFSDirectionOptimizing(0)) }},
		{"SSSP", func(e *Engine) ([]byte, error) { return marshalRun(e.SSSP(0)) }},
		{"KCore", func(e *Engine) ([]byte, error) { return marshalRun(e.KCore(3)) }},
	}
}

// schemeEngine builds an engine over g using the named partition scheme,
// with the comm matrix enabled so Pairs counters are part of the evidence.
func schemeEngine(t testing.TB, g *graph.Graph, scheme string, k int) *Engine {
	t.Helper()
	p, err := partition.Get(scheme)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Partition(g, k)
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	e, err := New(g, a.Parts, k, cluster.DefaultCostModel())
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	e.Cluster().SetCommMatrix(true)
	return e
}

func TestParallelWorkerGridByteIdentical(t *testing.T) {
	schemes := []string{"Chunk-V", "Chunk-E", "Hash", "BPart"}
	seeds := []uint64{1, 7}
	const k = 4
	for _, seed := range seeds {
		g, err := gen.ChungLu(gen.Config{NumVertices: 400, AvgDegree: 6, Skew: 0.6, Seed: seed})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		for _, scheme := range schemes {
			e := schemeEngine(t, g, scheme, k)
			for _, algo := range parallelAlgos() {
				e.Cluster().SetWorkers(1)
				ref, err := algo.run(e)
				if err != nil {
					t.Fatalf("%s/%s seed=%d workers=1: %v", algo.name, scheme, seed, err)
				}
				for _, wk := range parallelWorkerGrid() {
					e.Cluster().SetWorkers(wk)
					got, err := algo.run(e)
					if err != nil {
						t.Fatalf("%s/%s seed=%d workers=%d: %v", algo.name, scheme, seed, wk, err)
					}
					if !bytes.Equal(got, ref) {
						t.Errorf("%s/%s seed=%d workers=%d: marshaled result differs from the 1-worker run (%d vs %d bytes)",
							algo.name, scheme, seed, wk, len(got), len(ref))
					}
				}
			}
		}
	}
}

// TestParallelRunTasksCoverage checks the pool primitive directly: every
// task index runs exactly once at any worker count, including ladders
// wider than the task list.
func TestParallelRunTasksCoverage(t *testing.T) {
	cl, err := cluster.New([]int{0, 1, 2, 0, 1, 2}, 3, cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, wk := range []int{0, 1, 2, 4, 9, 64} {
		cl.SetWorkers(wk)
		for _, ntasks := range []int{0, 1, 5, 33} {
			hits := make([]int32, ntasks)
			cl.RunTasks(ntasks, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d ntasks=%d: task %d ran %d times", wk, ntasks, i, h)
				}
			}
		}
	}
}

package engine

import (
	"math"
	"testing"

	"bpart/internal/cluster"
	"bpart/internal/gen"
	"bpart/internal/partition"
)

// TestPipelinedEndToEnd runs the same PageRank computation under the
// sequential and pipelined cost models: identical ranks and work counters,
// pipelined simulated time never longer (§2.1: pipelining amortizes part
// of the communication cost).
func TestPipelinedEndToEnd(t *testing.T) {
	g, err := gen.ChungLu(gen.Config{NumVertices: 4000, AvgDegree: 10, Skew: 0.75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := (partition.Hash{}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq := cluster.DefaultCostModel()
	pipe := seq
	pipe.Pipelined = true

	eSeq, err := New(g, a.Parts, 8, seq)
	if err != nil {
		t.Fatal(err)
	}
	ePipe, err := New(g, a.Parts, 8, pipe)
	if err != nil {
		t.Fatal(err)
	}
	rSeq, err := eSeq.PageRank(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	rPipe, err := ePipe.PageRank(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for v := range rSeq.Ranks {
		if math.Abs(rSeq.Ranks[v]-rPipe.Ranks[v]) > 1e-12 {
			t.Fatalf("pipelining changed ranks at %d", v)
		}
	}
	if rPipe.Stats.TotalTime() > rSeq.Stats.TotalTime() {
		t.Fatalf("pipelined time %v exceeds sequential %v",
			rPipe.Stats.TotalTime(), rSeq.Stats.TotalTime())
	}
	if rPipe.Stats.TotalMessages() != rSeq.Stats.TotalMessages() {
		t.Fatal("pipelining changed message counts")
	}
}

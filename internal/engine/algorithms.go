package engine

import (
	"fmt"

	"bpart/internal/cluster"
	"bpart/internal/graph"
)

// EdgeWeight returns the deterministic synthetic weight of arc (u,v) used
// by SSSP: an integer in [1, 8] derived by hashing the endpoints. Gemini
// and its successors evaluate SSSP on weighted variants of the same social
// graphs; deriving weights on the fly keeps the CSR compact and every run
// reproducible.
func EdgeWeight(u, v graph.VertexID) int64 {
	z := (uint64(u) << 32) | uint64(v)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64((z^(z>>31))%8) + 1
}

// SSSPResult is the outcome of a single-source shortest paths run.
type SSSPResult struct {
	Dist    []int64 // -1 = unreachable
	Reached int
	Stats   cluster.RunStats
}

// SSSP runs frontier-based Bellman–Ford over out-edges from source with
// the synthetic EdgeWeight weights. Each BSP iteration relaxes the
// out-edges of the vertices whose distance improved in the previous one.
func (e *Engine) SSSP(source graph.VertexID) (*SSSPResult, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: SSSP source %d out of range", source)
	}
	k := e.cl.NumMachines()
	const unreached = int64(-1)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = unreached
	}
	dist[source] = 0
	active := make([]bool, n)
	active[source] = true
	// Machine-private proposal buffers.
	bufs := make([][]int64, k)
	for m := range bufs {
		bufs[m] = make([]int64, n)
	}
	res := &SSSPResult{}
	for anyActive := true; anyActive; {
		w := e.cl.NewCounters()
		e.cl.Parallel(func(m int) {
			buf := bufs[m]
			for i := range buf {
				buf[i] = unreached
			}
			var edges, msgs, verts int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			for _, v := range e.owned[m] {
				if !active[v] {
					continue
				}
				verts++
				base := dist[v]
				for _, u := range e.g.Neighbors(v) {
					edges++
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
					cand := base + EdgeWeight(v, u)
					if buf[u] == unreached || cand < buf[u] {
						buf[u] = cand
					}
				}
			}
			w.Edges[m] = edges
			w.Messages[m] = msgs
			w.Vertices[m] = verts
		})
		nextActive := make([]bool, n)
		changed := make([]bool, k)
		mergeParallel(n, k, func(chunk, lo, hi int) {
			for v := lo; v < hi; v++ {
				best := dist[v]
				for m := 0; m < k; m++ {
					if c := bufs[m][v]; c != unreached && (best == unreached || c < best) {
						best = c
					}
				}
				if best != dist[v] {
					dist[v] = best
					nextActive[v] = true
					changed[chunk] = true
				}
			}
		})
		active = nextActive
		res.Stats.Add(e.cl.FinishIteration(w))
		anyActive = false
		for _, c := range changed {
			anyActive = anyActive || c
		}
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	return res, nil
}

// KCoreResult is the outcome of a k-core decomposition run.
type KCoreResult struct {
	// InCore[v] reports whether v survives in the k-core.
	InCore []bool
	// CoreSize is the number of surviving vertices.
	CoreSize int
	Stats    cluster.RunStats
}

// KCore computes the k-core of the undirected closure by iterative
// peeling: each BSP round removes every remaining vertex with fewer than
// kCore remaining (out+in) neighbors, until a fixed point.
func (e *Engine) KCore(kCore int) (*KCoreResult, error) {
	if kCore < 1 {
		return nil, fmt.Errorf("engine: k-core with k = %d", kCore)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	alive := make([]bool, n)
	degree := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		degree[v] = e.g.OutDegree(graph.VertexID(v)) + tr.OutDegree(graph.VertexID(v))
	}
	res := &KCoreResult{}
	for {
		w := e.cl.NewCounters()
		removed := make([][]graph.VertexID, k)
		e.cl.Parallel(func(m int) {
			var verts int64
			for _, v := range e.owned[m] {
				if alive[v] && degree[v] < kCore {
					removed[m] = append(removed[m], v)
				}
				if alive[v] {
					verts++
				}
			}
			w.Vertices[m] = verts
		})
		total := 0
		for m := 0; m < k; m++ {
			total += len(removed[m])
		}
		if total == 0 {
			res.Stats.Add(e.cl.FinishIteration(w))
			break
		}
		// Peel: mark dead, decrement neighbor degrees, count the edge
		// scans and the cross-machine notifications.
		for m := 0; m < k; m++ {
			for _, v := range removed[m] {
				alive[v] = false
			}
		}
		for m := 0; m < k; m++ {
			var edges, msgs int64
			var prow []int64
			if w.Pairs != nil {
				prow = w.Pairs[m]
			}
			for _, v := range removed[m] {
				for _, u := range e.g.Neighbors(v) {
					edges++
					degree[u]--
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
				}
				for _, u := range tr.Neighbors(v) {
					edges++
					degree[u]--
					if o := e.cl.Owner(u); o != m {
						msgs++
						if prow != nil {
							prow[o]++
						}
					}
				}
			}
			w.Edges[m] += edges
			w.Messages[m] += msgs
		}
		res.Stats.Add(e.cl.FinishIteration(w))
	}
	res.InCore = alive
	for _, a := range alive {
		if a {
			res.CoreSize++
		}
	}
	return res, nil
}

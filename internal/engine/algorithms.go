package engine

import (
	"fmt"
	"sync/atomic"

	"bpart/internal/cluster"
	"bpart/internal/graph"
)

// EdgeWeight returns the deterministic synthetic weight of arc (u,v) used
// by SSSP: an integer in [1, 8] derived by hashing the endpoints. Gemini
// and its successors evaluate SSSP on weighted variants of the same social
// graphs; deriving weights on the fly keeps the CSR compact and every run
// reproducible.
func EdgeWeight(u, v graph.VertexID) int64 {
	z := (uint64(u) << 32) | uint64(v)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64((z^(z>>31))%8) + 1
}

// SSSPResult is the outcome of a single-source shortest paths run.
type SSSPResult struct {
	Dist    []int64 // -1 = unreachable
	Reached int
	Stats   cluster.RunStats
}

// SSSP runs frontier-based Bellman–Ford over out-edges from source with
// the synthetic EdgeWeight weights. Each BSP iteration is one push-mode
// edge-map relaxing the out-edges of the vertices whose distance improved
// in the previous one; distances are non-negative, so they serve directly
// as the kernel's min-combine keys.
func (e *Engine) SSSP(source graph.VertexID) (*SSSPResult, error) {
	n := e.g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("engine: SSSP source %d out of range", source)
	}
	const unreached = int64(-1)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = unreached
	}
	dist[source] = 0
	frontier := SubsetFromVertices(n, []graph.VertexID{source})
	st := e.newKernelState()
	spec := &edgeMapSpec{
		value: func(src, dst graph.VertexID) uint64 {
			return uint64(dist[src] + EdgeWeight(src, dst))
		},
		cur: func(v graph.VertexID) uint64 {
			if dist[v] < 0 {
				return unsetKey
			}
			return uint64(dist[v])
		},
		apply: func(v graph.VertexID, key uint64) { dist[v] = int64(key) },
	}
	res := &SSSPResult{}
	for frontier.Len() > 0 {
		w := e.cl.NewCounters()
		out := e.edgeMap(spec, st, frontier, 0, w)
		frontier = out.frontier
		res.Stats.Add(e.cl.FinishIteration(w))
	}
	res.Dist = dist
	for _, d := range dist {
		if d >= 0 {
			res.Reached++
		}
	}
	return res, nil
}

// KCoreResult is the outcome of a k-core decomposition run.
type KCoreResult struct {
	// InCore[v] reports whether v survives in the k-core.
	InCore []bool
	// CoreSize is the number of surviving vertices.
	CoreSize int
	Stats    cluster.RunStats
}

// KCore computes the k-core of the undirected closure by iterative
// peeling: each BSP round removes every remaining vertex with fewer than
// kCore remaining (out+in) neighbors, until a fixed point. Both the scan
// and the peel run as fixed shards on the worker pool; degree decrements
// are atomic adds (commutative integers), so the surviving core and every
// counter are identical at any worker count.
func (e *Engine) KCore(kCore int) (*KCoreResult, error) {
	if kCore < 1 {
		return nil, fmt.Errorf("engine: k-core with k = %d", kCore)
	}
	n := e.g.NumVertices()
	k := e.cl.NumMachines()
	tr := e.transpose()
	alive := make([]bool, n)
	degree := make([]int32, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		degree[v] = int32(e.g.OutDegree(graph.VertexID(v)) + tr.OutDegree(graph.VertexID(v)))
	}
	res := &KCoreResult{}
	for {
		w := e.cl.NewCounters()
		// Scan: find the sub-threshold survivors. Per-shard removed lists
		// concatenate in fixed (machine, shard) order, so each machine's
		// removed list comes out in ascending vertex order.
		tasks := e.ownedShards()
		tcs := newTaskCounters(len(tasks), k, false)
		found := make([][]graph.VertexID, len(tasks))
		e.cl.RunTasks(len(tasks), func(t int) {
			ts := tasks[t]
			var members []graph.VertexID
			for _, v := range e.owned[ts.m][ts.lo:ts.hi] {
				if alive[v] {
					tcs[t].verts++
					if degree[v] < int32(kCore) {
						members = append(members, v)
					}
				}
			}
			found[t] = members
		})
		combineCounters(w, tasks, tcs)
		removed := make([][]graph.VertexID, k)
		total := 0
		for t, ts := range tasks {
			removed[ts.m] = append(removed[ts.m], found[t]...)
			total += len(found[t])
		}
		if total == 0 {
			res.Stats.Add(e.cl.FinishIteration(w))
			break
		}
		// Peel: mark dead, decrement neighbor degrees, count the edge
		// scans and the cross-machine notifications.
		for m := 0; m < k; m++ {
			for _, v := range removed[m] {
				alive[v] = false
			}
		}
		lens := make([]int, k)
		for m := range lens {
			lens[m] = len(removed[m])
		}
		ptasks := shardLists(lens)
		ptcs := newTaskCounters(len(ptasks), k, w.Pairs != nil)
		e.cl.RunTasks(len(ptasks), func(t int) {
			ts, tc := ptasks[t], &ptcs[t]
			peel := func(v graph.VertexID, ns []graph.VertexID) {
				for _, u := range ns {
					tc.edges++
					atomic.AddInt32(&degree[u], -1)
					if o := e.cl.Owner(u); o != ts.m {
						tc.msgs++
						if tc.prow != nil {
							tc.prow[o]++
						}
					}
				}
			}
			for _, v := range removed[ts.m][ts.lo:ts.hi] {
				peel(v, e.g.Neighbors(v))
				peel(v, tr.Neighbors(v))
			}
		})
		combineCounters(w, ptasks, ptcs)
		res.Stats.Add(e.cl.FinishIteration(w))
	}
	res.InCore = alive
	for _, a := range alive {
		if a {
			res.CoreSize++
		}
	}
	return res, nil
}

package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Health is the liveness/readiness state behind DebugMux's /healthz and
// /readyz probes. Liveness is implicit (the process answered); readiness
// is an explicit flag the owner flips once startup work — loading a graph,
// reading an assignment — has finished, and may flip back off during a
// drain. All methods are nil-safe: a nil *Health is always ready, so
// callers with no startup phase (cmd/bpart, cmd/bench) pass nothing.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a Health that is not yet ready.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness flag.
func (h *Health) SetReady(ready bool) {
	if h != nil {
		h.ready.Store(ready)
	}
}

// Ready reports readiness (true for a nil Health).
func (h *Health) Ready() bool {
	return h == nil || h.ready.Load()
}

// DebugMux returns an HTTP mux exposing the standard Go profiling surface
// plus the registry's metrics and the health probes:
//
//	/debug/pprof/...   CPU, heap, goroutine, block, mutex profiles
//	/metrics           Prometheus text exposition of reg
//	/debug/vars        expvar JSON including reg's snapshot under "bpart"
//	/healthz           200 "ok" always — the process is alive
//	/readyz            200 "ready" once health says so, 503 before
//
// An optional *Health gates /readyz; with none (or nil) the mux is ready
// from the start, which suits the CLIs that only serve diagnostics. The
// CLIs serve it behind --pprof addr; nothing is registered on the
// process-global http.DefaultServeMux.
func DebugMux(reg *Registry, health ...*Health) *http.ServeMux {
	var h *Health
	if len(health) > 0 {
		h = health[len(health)-1]
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte(expvarJSON(reg)))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("not ready\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	return mux
}

// MetricsHandler serves reg in the Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// expvarJSON renders the process expvars plus reg's snapshot as one JSON
// object, mirroring the stock /debug/vars handler without claiming the
// global mux.
func expvarJSON(reg *Registry) string {
	v := expvar.Map{}
	v.Init()
	expvar.Do(func(kv expvar.KeyValue) { v.Set(kv.Key, kv.Value) })
	if reg != nil {
		v.Set("bpart", expvar.Func(func() any { return reg.Snapshot() }))
	}
	return v.String()
}

package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns an HTTP mux exposing the standard Go profiling surface
// plus the registry's metrics:
//
//	/debug/pprof/...   CPU, heap, goroutine, block, mutex profiles
//	/metrics           Prometheus text exposition of reg
//	/debug/vars        expvar JSON including reg's snapshot under "bpart"
//
// The CLIs serve it behind --pprof addr; nothing is registered on the
// process-global http.DefaultServeMux.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte(expvarJSON(reg)))
	})
	return mux
}

// MetricsHandler serves reg in the Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// expvarJSON renders the process expvars plus reg's snapshot as one JSON
// object, mirroring the stock /debug/vars handler without claiming the
// global mux.
func expvarJSON(reg *Registry) string {
	v := expvar.Map{}
	v.Init()
	expvar.Do(func(kv expvar.KeyValue) { v.Set(kv.Key, kv.Value) })
	if reg != nil {
		v.Set("bpart", expvar.Func(func() any { return reg.Snapshot() }))
	}
	return v.String()
}

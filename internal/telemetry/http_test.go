package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthzAlwaysOK(t *testing.T) {
	mux := DebugMux(NewRegistry())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz body = %q", body)
	}
}

func TestReadyzGatedByHealth(t *testing.T) {
	h := NewHealth()
	mux := DebugMux(NewRegistry(), h)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz before SetReady = %d, want 503", rec.Code)
	}

	h.SetReady(true)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after SetReady = %d, want 200", rec.Code)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	if strings.TrimSpace(string(body)) != "ready" {
		t.Fatalf("/readyz body = %q", body)
	}

	// Readiness can flip back off (drain).
	h.SetReady(false)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz after drain = %d, want 503", rec.Code)
	}
}

func TestReadyzWithoutHealthIsReady(t *testing.T) {
	for name, mux := range map[string]*http.ServeMux{
		"no health arg":  DebugMux(NewRegistry()),
		"nil health arg": DebugMux(NewRegistry(), nil),
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != 200 {
			t.Fatalf("%s: /readyz = %d, want 200", name, rec.Code)
		}
	}
}

func TestNilHealthSafe(t *testing.T) {
	var h *Health
	h.SetReady(true) // must not panic
	if !h.Ready() {
		t.Fatal("nil Health not ready")
	}
	h2 := NewHealth()
	if h2.Ready() {
		t.Fatal("fresh Health already ready")
	}
}
